//! Vendored, dependency-free stand-in for `serde_json`, built on the
//! in-tree serde `Content` value model.
//!
//! Objects are backed by a `BTreeMap`, so serialized output always has
//! sorted keys — byte-stable across runs regardless of hash seeds.

use std::collections::btree_map;
use std::collections::BTreeMap;
use std::fmt::{self, Display};

use serde::{de, ser, Content, Deserialize, Deserializer, Serialize, Serializer};

// ---------------------------------------------------------------------------
// Error
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
pub struct Error(pub String);

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl ser::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl de::Error for Error {
    fn custom<T: Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Value & Map
// ---------------------------------------------------------------------------

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    #[default]
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Map),
}

/// A JSON object with sorted (byte-stable) keys.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    inner: BTreeMap<String, Value>,
}

impl Map {
    pub fn new() -> Self {
        Map {
            inner: BTreeMap::new(),
        }
    }

    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        self.inner.insert(key, value)
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        self.inner.get(key)
    }

    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.inner.remove(key)
    }

    pub fn contains_key(&self, key: &str) -> bool {
        self.inner.contains_key(key)
    }

    pub fn len(&self) -> usize {
        self.inner.len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub fn iter(&self) -> btree_map::Iter<'_, String, Value> {
        self.inner.iter()
    }

    pub fn keys(&self) -> btree_map::Keys<'_, String, Value> {
        self.inner.keys()
    }

    pub fn values(&self) -> btree_map::Values<'_, String, Value> {
        self.inner.values()
    }
}

impl IntoIterator for Map {
    type Item = (String, Value);
    type IntoIter = btree_map::IntoIter<String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.into_iter()
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = btree_map::Iter<'a, String, Value>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        Map {
            inner: iter.into_iter().collect(),
        }
    }
}

static NULL_VALUE: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    fn from_content(c: Content) -> Value {
        match c {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::Num(n) => Value::Number(n),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Value::from_content).collect())
            }
            Content::Map(m) => Value::Object(Map {
                inner: m
                    .into_iter()
                    .map(|(k, v)| (k, Value::from_content(v)))
                    .collect(),
            }),
        }
    }

    fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::Number(n) => Content::Num(n),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Value::into_content).collect())
            }
            Value::Object(m) => Content::Map(
                m.inner
                    .into_iter()
                    .map(|(k, v)| (k, v.into_content()))
                    .collect(),
            ),
        }
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.accept(self.clone().into_content())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Value::from_content(d.take()?))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL_VALUE)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL_VALUE),
            _ => &NULL_VALUE,
        }
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty),*) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                matches!(self, Value::Number(n) if *n == *other as f64)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        matches!(self, Value::String(s) if s == other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&write_value(self, None, 0))
    }
}

macro_rules! impl_value_from_num {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Value { Value::Number(v as f64) }
        }
    )*};
}

impl_value_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::String(v)
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Value {
        Value::Object(m)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

// ---------------------------------------------------------------------------
// Conversion entry points
// ---------------------------------------------------------------------------

/// Convert any serializable value to a [`Value`].
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    serde::to_content(value)
        .map(Value::from_content)
        .map_err(|e| Error(e.0))
}

/// Deserialize a typed value out of a [`Value`].
pub fn from_value<'de, T: Deserialize<'de>>(value: Value) -> Result<T, Error> {
    serde::from_content(value.into_content())
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_value(&to_value(value)?, None, 0))
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(write_value(&to_value(value)?, Some(2), 0))
}

pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

pub fn from_str<'de, T: Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    from_value(value)
}

pub fn from_slice<'de, T: Deserialize<'de>>(bytes: &[u8]) -> Result<T, Error> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error(format!("invalid utf-8: {e}")))?;
    from_str(s)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_number(n: f64, out: &mut String) {
    if n.is_finite() && n.fract() == 0.0 && n.abs() < 9.0e15 {
        out.push_str(&format!("{}", n as i64));
    } else if n.is_finite() {
        out.push_str(&format!("{n}"));
    } else {
        // JSON has no Infinity/NaN; mirror serde_json's strictness loosely
        // by emitting null.
        out.push_str("null");
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize) -> String {
    let mut out = String::new();
    write_into(v, indent, depth, &mut out);
    out
}

fn write_into(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => write_number(*n, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_into(item, indent, depth + 1, out);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(w) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(w * (depth + 1)));
                }
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_into(val, indent, depth + 1, out);
            }
            if let Some(w) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(w * depth));
            }
            out.push('}');
        }
    }
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at offset {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".to_string()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".to_string()))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!(
                                "invalid escape {:?}",
                                other.map(|b| *b as char)
                            )))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|e| Error(format!("invalid utf-8 in string: {e}")))?;
                    let ch = rest.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| Error(format!("invalid number `{text}`: {e}")))
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `]`, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(Error(format!(
                        "expected `,` or `}}`, found {:?}",
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// json! macro
// ---------------------------------------------------------------------------

/// Build a [`Value`] from a literal. Supports flat and nested object/array
/// literals with string-literal keys and arbitrary serializable value
/// expressions, plus bare expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $(
            __m.insert(
                ::std::string::String::from($key),
                $crate::to_value(&$val).expect("json! value serialization is infallible"),
            );
        )*
        $crate::Value::Object(__m)
    }};
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![
            $($crate::to_value(&$val).expect("json! value serialization is infallible"),)*
        ])
    };
    ($other:expr) => {
        $crate::to_value(&$other).expect("json! value serialization is infallible")
    };
}
