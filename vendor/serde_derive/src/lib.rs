//! Vendored `#[derive(Serialize, Deserialize)]` for the in-tree serde
//! stand-in. Parses the derive input token stream directly (no syn/quote)
//! and emits impls against the `Content` value model in `serde`.
//!
//! Supported shapes — exactly what this workspace declares:
//! - named-field structs, with `#[serde(default)]` and `#[serde(with = "path")]`
//! - newtype tuple structs (serialized transparently)
//! - unit-variant enums (serialized as the variant name string)
//! - struct-variant enums (externally tagged: `{"Variant": {..fields..}}`)

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    default: bool,
    with: Option<String>,
}

#[derive(Debug, Clone)]
enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<(String, Shape)>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Serialize impl")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_punct(&mut self, ch: char) -> bool {
        if let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() == ch {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    /// Consume leading attributes, returning the streams of any
    /// `#[serde(...)]` groups encountered.
    fn eat_attrs(&mut self) -> Vec<TokenStream> {
        let mut serde_attrs = Vec::new();
        while self.eat_punct('#') {
            // Outer attribute body: a bracketed group.
            if let Some(TokenTree::Group(g)) = self.next() {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                if let (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) =
                    (inner.first(), inner.get(1))
                {
                    if name.to_string() == "serde" && args.delimiter() == Delimiter::Parenthesis {
                        serde_attrs.push(args.stream());
                    }
                }
            }
        }
        serde_attrs
    }

    fn eat_visibility(&mut self) {
        if self.peek_ident("pub") {
            self.pos += 1;
            // pub(crate), pub(super), ...
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.pos += 1;
                }
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.eat_attrs();
    c.eat_visibility();

    let kw = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {other:?}"),
    };
    let name = match c.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive: expected type name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive: generic types are not supported (deriving `{name}`)");
        }
    }

    match kw.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Struct {
                name,
                shape: Shape::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Item::Struct {
                name,
                shape: Shape::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::Struct {
                name,
                shape: Shape::Unit,
            },
            other => panic!("serde_derive: unexpected struct body for `{name}`: {other:?}"),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive: unexpected enum body for `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}`"),
    }
}

fn parse_named_fields(ts: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(ts);
    let mut fields = Vec::new();
    while c.peek().is_some() {
        let serde_attrs = c.eat_attrs();
        if c.peek().is_none() {
            break;
        }
        c.eat_visibility();
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        if !c.eat_punct(':') {
            panic!("serde_derive: expected `:` after field `{name}`");
        }
        skip_type(&mut c);
        c.eat_punct(',');

        let mut field = Field {
            name,
            default: false,
            with: None,
        };
        for attr in serde_attrs {
            apply_serde_attr(&mut field, attr);
        }
        fields.push(field);
    }
    fields
}

fn apply_serde_attr(field: &mut Field, attr: TokenStream) {
    let toks: Vec<TokenTree> = attr.into_iter().collect();
    let mut i = 0;
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                field.default = true;
                i += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                // with = "path"
                if let (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(lit))) =
                    (toks.get(i + 1), toks.get(i + 2))
                {
                    if eq.as_char() == '=' {
                        let raw = lit.to_string();
                        field.with = Some(raw.trim_matches('"').to_string());
                    }
                }
                i += 3;
            }
            _ => i += 1,
        }
    }
}

/// Skip a type expression up to a top-level `,` (tracking `<...>` nesting).
fn skip_type(c: &mut Cursor) {
    let mut depth: i32 = 0;
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
            _ => {}
        }
        c.pos += 1;
    }
}

fn count_tuple_fields(ts: TokenStream) -> usize {
    let mut c = Cursor::new(ts);
    let mut count = 0;
    while c.peek().is_some() {
        c.eat_attrs();
        if c.peek().is_none() {
            break;
        }
        c.eat_visibility();
        skip_type(&mut c);
        c.eat_punct(',');
        count += 1;
    }
    count
}

fn parse_variants(ts: TokenStream) -> Vec<(String, Shape)> {
    let mut c = Cursor::new(ts);
    let mut variants = Vec::new();
    while c.peek().is_some() {
        c.eat_attrs();
        if c.peek().is_none() {
            break;
        }
        let name = match c.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(parse_named_fields(g.stream()));
                c.pos += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                s
            }
            _ => Shape::Unit,
        };
        // Skip an optional discriminant `= expr` up to the next comma.
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                break;
            }
            c.pos += 1;
        }
        c.eat_punct(',');
        variants.push((name, shape));
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen: Serialize
// ---------------------------------------------------------------------------

fn ser_named_fields(fields: &[Field], access_prefix: &str) -> String {
    let mut out = String::from(
        "let mut __m = ::std::collections::BTreeMap::<::std::string::String, ::serde::Content>::new();\n",
    );
    for f in fields {
        let access = format!("{access_prefix}{}", f.name);
        let value_expr = match &f.with {
            Some(path) => format!(
                "{path}::serialize(&{access}, ::serde::ContentSerializer)\
                 .map_err(::serde::ser_custom::<S::Error>)?"
            ),
            None => {
                format!("::serde::to_content(&{access}).map_err(::serde::ser_custom::<S::Error>)?")
            }
        };
        out.push_str(&format!(
            "__m.insert(::std::string::String::from(\"{}\"), {value_expr});\n",
            f.name
        ));
    }
    out
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let mut b = ser_named_fields(fields, "self.");
                    b.push_str("__s.accept(::serde::Content::Map(__m))");
                    b
                }
                Shape::Tuple(1) => "::serde::Serialize::serialize(&self.0, __s)".to_string(),
                Shape::Tuple(n) => {
                    let mut b = String::from("let __items = vec![");
                    for i in 0..*n {
                        b.push_str(&format!(
                            "::serde::to_content(&self.{i}).map_err(::serde::ser_custom::<S::Error>)?,"
                        ));
                    }
                    b.push_str("];\n__s.accept(::serde::Content::Seq(__items))");
                    b
                }
                Shape::Unit => "__s.accept(::serde::Content::Null)".to_string(),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut b = String::from("match self {\n");
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => b.push_str(&format!(
                        "{name}::{vname} => __s.accept(::serde::Content::Str(\
                         ::std::string::String::from(\"{vname}\"))),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let pat = binders.join(", ");
                        let inner = if *n == 1 {
                            "::serde::to_content(__f0).map_err(::serde::ser_custom::<S::Error>)?"
                                .to_string()
                        } else {
                            let mut s = String::from("::serde::Content::Seq(vec![");
                            for bdr in &binders {
                                s.push_str(&format!(
                                    "::serde::to_content({bdr}).map_err(::serde::ser_custom::<S::Error>)?,"
                                ));
                            }
                            s.push_str("])");
                            s
                        };
                        b.push_str(&format!(
                            "{name}::{vname}({pat}) => {{\n\
                             let mut __m = ::std::collections::BTreeMap::new();\n\
                             __m.insert(::std::string::String::from(\"{vname}\"), {inner});\n\
                             __s.accept(::serde::Content::Map(__m))\n}}\n"
                        ));
                    }
                    Shape::Named(fields) => {
                        let pat: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let pat = pat.join(", ");
                        let inner = ser_named_fields(fields, "*");
                        b.push_str(&format!(
                            "{name}::{vname} {{ {pat} }} => {{\n{inner}\
                             let mut __outer = ::std::collections::BTreeMap::new();\n\
                             __outer.insert(::std::string::String::from(\"{vname}\"), ::serde::Content::Map(__m));\n\
                             __s.accept(::serde::Content::Map(__outer))\n}}\n"
                        ));
                    }
                }
            }
            b.push('}');
            (name.clone(), b)
        }
    };

    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, __s: S) -> \
         ::core::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}\n"
    )
}

// ---------------------------------------------------------------------------
// Codegen: Deserialize
// ---------------------------------------------------------------------------

fn de_named_fields(fields: &[Field], map_var: &str) -> String {
    let mut out = String::new();
    for f in fields {
        let expr = match &f.with {
            Some(path) => format!(
                "{path}::deserialize(::serde::ContentDeserializer::<D::Error>::new(\
                 ::serde::field_content(&mut {map_var}, \"{}\")))?",
                f.name
            ),
            None if f.default => {
                format!("::serde::field_or_default(&mut {map_var}, \"{}\")?", f.name)
            }
            None => format!("::serde::field(&mut {map_var}, \"{}\")?", f.name),
        };
        out.push_str(&format!("{}: {expr},\n", f.name));
    }
    out
}

fn gen_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Named(fields) => {
                    let inner = de_named_fields(fields, "__m");
                    format!(
                        "let mut __m = ::serde::take_map::<D::Error>(::serde::Deserializer::take(__d)?)?;\n\
                         ::core::result::Result::Ok({name} {{\n{inner}}})"
                    )
                }
                Shape::Tuple(1) => format!(
                    "::core::result::Result::Ok({name}(::serde::Deserialize::deserialize(__d)?))"
                ),
                Shape::Tuple(n) => {
                    let mut b = format!(
                        "let __items = ::serde::take_seq::<D::Error>(::serde::Deserializer::take(__d)?)?;\n\
                         if __items.len() != {n} {{\n\
                         return ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                         \"wrong tuple length\"));\n}}\n\
                         let mut __it = __items.into_iter();\n\
                         ::core::result::Result::Ok({name}("
                    );
                    for _ in 0..*n {
                        b.push_str("::serde::from_content::<_, D::Error>(__it.next().unwrap())?,");
                    }
                    b.push_str("))");
                    b
                }
                Shape::Unit => format!("::core::result::Result::Ok({name})"),
            };
            (name.clone(), body)
        }
        Item::Enum { name, variants } => {
            let mut str_arms = String::new();
            let mut map_arms = String::new();
            for (vname, shape) in variants {
                match shape {
                    Shape::Unit => str_arms.push_str(&format!(
                        "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),\n"
                    )),
                    Shape::Tuple(n) => {
                        let inner = if *n == 1 {
                            format!(
                                "::core::result::Result::Ok({name}::{vname}(\
                                 ::serde::from_content::<_, D::Error>(__v)?))"
                            )
                        } else {
                            let mut s = format!(
                                "let __items = ::serde::take_seq::<D::Error>(__v)?;\n\
                                 if __items.len() != {n} {{\n\
                                 return ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                                 \"wrong tuple variant length\"));\n}}\n\
                                 let mut __it = __items.into_iter();\n\
                                 ::core::result::Result::Ok({name}::{vname}("
                            );
                            for _ in 0..*n {
                                s.push_str(
                                    "::serde::from_content::<_, D::Error>(__it.next().unwrap())?,",
                                );
                            }
                            s.push_str("))");
                            s
                        };
                        map_arms.push_str(&format!("\"{vname}\" => {{\n{inner}\n}}\n"));
                    }
                    Shape::Named(fields) => {
                        let inner = de_named_fields(fields, "__vm");
                        map_arms.push_str(&format!(
                            "\"{vname}\" => {{\n\
                             let mut __vm = ::serde::take_map::<D::Error>(__v)?;\n\
                             ::core::result::Result::Ok({name}::{vname} {{\n{inner}}})\n}}\n"
                        ));
                    }
                }
            }
            let body = format!(
                "match ::serde::Deserializer::take(__d)? {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n{str_arms}\
                 __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n}},\n\
                 ::serde::Content::Map(__m) => {{\n\
                 let mut __m = __m;\n\
                 let (__k, __v) = match __m.pop_first() {{\n\
                 ::core::option::Option::Some(kv) => kv,\n\
                 ::core::option::Option::None => return ::core::result::Result::Err(\
                 <D::Error as ::serde::de::Error>::custom(\"empty variant map for {name}\")),\n}};\n\
                 match __k.as_str() {{\n{map_arms}\
                 __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"unknown variant `{{__other}}` for {name}\"))),\n}}\n}}\n\
                 __other => ::core::result::Result::Err(<D::Error as ::serde::de::Error>::custom(\
                 format!(\"expected variant for {name}, found {{}}\", __other.kind()))),\n}}"
            );
            (name.clone(), body)
        }
    };

    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(__d: D) -> \
         ::core::result::Result<Self, D::Error> {{\n{body}\n}}\n}}\n"
    )
}
