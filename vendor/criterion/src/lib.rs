//! Vendored mini benchmarking harness exposing the subset of the
//! `criterion` API this workspace uses. Measurement is deliberately simple:
//! a short warm-up, then timed batches, reporting the mean time per
//! iteration of the fastest batch (robust against scheduler noise).

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        let function_name = function_name.into();
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl From<&String> for BenchmarkId {
    fn from(s: &String) -> Self {
        BenchmarkId { id: s.clone() }
    }
}

/// Runs closures under timing; passed to benchmark functions.
pub struct Bencher {
    /// Best observed mean nanoseconds per iteration.
    best_ns_per_iter: f64,
    /// Total iterations executed across all batches.
    iterations: u64,
    measurement_time: Duration,
}

impl Bencher {
    fn new(measurement_time: Duration) -> Self {
        Bencher {
            best_ns_per_iter: f64::INFINITY,
            iterations: 0,
            measurement_time,
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: figure out a batch size targeting ~10ms per batch.
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(f());
            warmup_iters += 1;
            if warmup_start.elapsed() >= Duration::from_millis(10) || warmup_iters >= 1000 {
                break;
            }
        }
        let per_iter = warmup_start.elapsed().as_secs_f64() / warmup_iters as f64;
        let batch = ((0.01 / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let deadline = Instant::now() + self.measurement_time;
        let mut batches = 0u32;
        while batches < 3 || (Instant::now() < deadline && batches < 100) {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / batch as f64;
            if ns < self.best_ns_per_iter {
                self.best_ns_per_iter = ns;
            }
            self.iterations += batch;
            batches += 1;
        }
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let deadline = Instant::now() + self.measurement_time;
        let mut batches = 0u32;
        while batches < 3 || (Instant::now() < deadline && batches < 100) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            let ns = start.elapsed().as_nanos() as f64;
            if ns < self.best_ns_per_iter {
                self.best_ns_per_iter = ns;
            }
            self.iterations += 1;
            batches += 1;
        }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

fn report(group: Option<&str>, id: &str, b: &Bencher) {
    let full = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let ns = b.best_ns_per_iter;
    let human = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    };
    println!(
        "{full:<56} time: {human:>12}   ({} iterations)",
        b.iterations
    );
}

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        report(None, &id.id, &b);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            _parent: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b);
        report(Some(&self.name), &id.id, &b);
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher::new(self.measurement_time);
        f(&mut b, input);
        report(Some(&self.name), &id.id, &b);
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
