//! Vendored, dependency-free stand-in for `serde`.
//!
//! The build environment has no registry access, so this crate provides the
//! exact trait surface the workspace uses. Instead of serde's visitor
//! architecture it is built around a concrete value tree ([`Content`]):
//! `Serialize` produces a `Content`, `Deserialize` consumes one. The derive
//! macros in `serde_derive` generate code against the helper functions at the
//! bottom of this file.

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};
use std::hash::Hash;
use std::marker::PhantomData;

pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree — the interchange format between
/// serializers and deserializers in this vendored implementation.
#[derive(Clone, Debug, PartialEq)]
pub enum Content {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Seq(Vec<Content>),
    Map(BTreeMap<String, Content>),
}

impl Content {
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::Num(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }

    /// Total ordering used to sort map entries with non-string keys so that
    /// serialized output is byte-stable across runs.
    pub fn order_key(&self) -> String {
        match self {
            Content::Null => "0".to_string(),
            Content::Bool(b) => format!("1{b}"),
            Content::Num(n) => format!("2{:030.9}", n),
            Content::Str(s) => format!("3{s}"),
            Content::Seq(items) => {
                let mut s = String::from("4");
                for it in items {
                    s.push_str(&it.order_key());
                    s.push('\u{1}');
                }
                s
            }
            Content::Map(m) => {
                let mut s = String::from("5");
                for (k, v) in m {
                    s.push_str(k);
                    s.push('\u{1}');
                    s.push_str(&v.order_key());
                    s.push('\u{1}');
                }
                s
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Error traits
// ---------------------------------------------------------------------------

pub mod ser {
    use std::fmt::Display;
    pub trait Error: Sized + std::fmt::Debug {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

pub mod de {
    use std::fmt::Display;
    pub trait Error: Sized + std::fmt::Debug {
        fn custom<T: Display>(msg: T) -> Self;
    }
}

/// Concrete error type used by [`ContentSerializer`] / [`ContentDeserializer`].
#[derive(Debug, Clone)]
pub struct ContentError(pub String);

impl Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

impl ser::Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

impl de::Error for ContentError {
    fn custom<T: Display>(msg: T) -> Self {
        ContentError(msg.to_string())
    }
}

// ---------------------------------------------------------------------------
// Serialize
// ---------------------------------------------------------------------------

pub trait Serializer: Sized {
    type Ok;
    type Error: ser::Error;

    /// Accept a fully-built value tree.
    fn accept(self, value: Content) -> Result<Self::Ok, Self::Error>;

    fn serialize_none(self) -> Result<Self::Ok, Self::Error> {
        self.accept(Content::Null)
    }

    fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        let content = to_content(value).map_err(|e| <Self::Error as ser::Error>::custom(e.0))?;
        self.accept(content)
    }
}

pub trait Serialize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// The canonical serializer: returns the value tree itself.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = ContentError;
    fn accept(self, value: Content) -> Result<Content, ContentError> {
        Ok(value)
    }
}

/// Serialize any value into a [`Content`] tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Result<Content, ContentError> {
    value.serialize(ContentSerializer)
}

/// Map a [`ContentError`] into an arbitrary serializer error (derive helper).
pub fn ser_custom<E: ser::Error>(e: ContentError) -> E {
    E::custom(e.0)
}

macro_rules! impl_ser_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.accept(Content::Num(*self as f64))
            }
        }
    )*};
}

impl_ser_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.accept(Content::Bool(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.accept(Content::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.accept(Content::Str(self.clone()))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.accept(Content::Str(self.to_string()))
    }
}

impl Serialize for Content {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.accept(self.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(v) => s.serialize_some(v),
            None => s.serialize_none(),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut items = Vec::with_capacity(self.len());
        for v in self {
            items.push(to_content(v).map_err(ser_custom::<S::Error>)?);
        }
        s.accept(Content::Seq(items))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let items = vec![
                    $(to_content(&self.$idx).map_err(ser_custom::<S::Error>)?,)+
                ];
                s.accept(Content::Seq(items))
            }
        }
    };
}

impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Shared map-serialization logic: string keys become a JSON object with
/// sorted keys; any other key type becomes a sorted sequence of `[k, v]`
/// pairs. Both forms are byte-stable across runs regardless of hash order.
fn serialize_pairs<S: Serializer>(pairs: Vec<(Content, Content)>, s: S) -> Result<S::Ok, S::Error> {
    let all_strings = pairs.iter().all(|(k, _)| matches!(k, Content::Str(_)));
    if all_strings {
        let mut m = BTreeMap::new();
        for (k, v) in pairs {
            if let Content::Str(key) = k {
                m.insert(key, v);
            }
        }
        s.accept(Content::Map(m))
    } else {
        let mut items: Vec<(String, Content)> = pairs
            .into_iter()
            .map(|(k, v)| (k.order_key(), Content::Seq(vec![k, v])))
            .collect();
        items.sort_by(|a, b| a.0.cmp(&b.0));
        s.accept(Content::Seq(items.into_iter().map(|(_, v)| v).collect()))
    }
}

impl<K: Serialize, V: Serialize, St> Serialize for HashMap<K, V, St> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut pairs = Vec::with_capacity(self.len());
        for (k, v) in self {
            pairs.push((
                to_content(k).map_err(ser_custom::<S::Error>)?,
                to_content(v).map_err(ser_custom::<S::Error>)?,
            ));
        }
        serialize_pairs(pairs, s)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut pairs = Vec::with_capacity(self.len());
        for (k, v) in self {
            pairs.push((
                to_content(k).map_err(ser_custom::<S::Error>)?,
                to_content(v).map_err(ser_custom::<S::Error>)?,
            ));
        }
        serialize_pairs(pairs, s)
    }
}

// ---------------------------------------------------------------------------
// Deserialize
// ---------------------------------------------------------------------------

pub trait Deserializer<'de>: Sized {
    type Error: de::Error;

    /// Yield the underlying value tree.
    fn take(self) -> Result<Content, Self::Error>;
}

pub trait Deserialize<'de>: Sized {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializer over an in-memory [`Content`] tree, generic in the error type
/// so derived code can thread through the caller's `D::Error`.
pub struct ContentDeserializer<E> {
    content: Content,
    _marker: PhantomData<E>,
}

impl<E> ContentDeserializer<E> {
    pub fn new(content: Content) -> Self {
        ContentDeserializer {
            content,
            _marker: PhantomData,
        }
    }
}

impl<'de, E: de::Error> Deserializer<'de> for ContentDeserializer<E> {
    type Error = E;
    fn take(self) -> Result<Content, E> {
        Ok(self.content)
    }
}

/// Deserialize a value out of a [`Content`] tree (derive helper).
pub fn from_content<'de, T: Deserialize<'de>, E: de::Error>(content: Content) -> Result<T, E> {
    T::deserialize(ContentDeserializer::<E>::new(content))
}

fn expect_num<E: de::Error>(c: &Content) -> Result<f64, E> {
    match c {
        Content::Num(n) => Ok(*n),
        Content::Bool(b) => Ok(if *b { 1.0 } else { 0.0 }),
        other => Err(E::custom(format!(
            "expected number, found {}",
            other.kind()
        ))),
    }
}

macro_rules! impl_de_num {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                Ok(expect_num::<D::Error>(&d.take()?)? as $t)
            }
        }
    )*};
}

impl_de_num!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take()? {
            Content::Bool(b) => Ok(b),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take()? {
            Content::Str(s) => Ok(s),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de> Deserialize<'de> for Content {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take()? {
            Content::Null => Ok(None),
            other => Ok(Some(from_content::<T, D::Error>(other)?)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take()? {
            Content::Seq(items) => items
                .into_iter()
                .map(|c| from_content::<T, D::Error>(c))
                .collect(),
            other => Err(<D::Error as de::Error>::custom(format!(
                "expected sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Ok(Box::new(from_content::<T, D::Error>(d.take()?)?))
    }
}

macro_rules! impl_de_tuple {
    ($len:expr => $($name:ident : $idx:tt),+) => {
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                match d.take()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut it = items.into_iter();
                        Ok(($(
                            {
                                let _ = $idx;
                                from_content::<$name, D::Error>(it.next().unwrap())?
                            },
                        )+))
                    }
                    other => Err(<D::Error as de::Error>::custom(format!(
                        "expected sequence of length {}, found {}",
                        $len,
                        other.kind()
                    ))),
                }
            }
        }
    };
}

impl_de_tuple!(1 => A: 0);
impl_de_tuple!(2 => A: 0, B: 1);
impl_de_tuple!(3 => A: 0, B: 1, C: 2);
impl_de_tuple!(4 => A: 0, B: 1, C: 2, Z: 3);

fn map_pairs<E: de::Error>(content: Content) -> Result<Vec<(Content, Content)>, E> {
    match content {
        Content::Map(m) => Ok(m.into_iter().map(|(k, v)| (Content::Str(k), v)).collect()),
        Content::Seq(items) => items
            .into_iter()
            .map(|item| match item {
                Content::Seq(mut kv) if kv.len() == 2 => {
                    let v = kv.pop().unwrap();
                    let k = kv.pop().unwrap();
                    Ok((k, v))
                }
                other => Err(E::custom(format!(
                    "expected [key, value] pair, found {}",
                    other.kind()
                ))),
            })
            .collect(),
        other => Err(E::custom(format!("expected map, found {}", other.kind()))),
    }
}

impl<'de, K, V, St> Deserialize<'de> for HashMap<K, V, St>
where
    K: Deserialize<'de> + Eq + Hash,
    V: Deserialize<'de>,
    St: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let pairs = map_pairs::<D::Error>(d.take()?)?;
        let mut out = HashMap::with_capacity_and_hasher(pairs.len(), St::default());
        for (k, v) in pairs {
            out.insert(
                from_content::<K, D::Error>(k)?,
                from_content::<V, D::Error>(v)?,
            );
        }
        Ok(out)
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: Deserialize<'de> + Ord,
    V: Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let pairs = map_pairs::<D::Error>(d.take()?)?;
        let mut out = BTreeMap::new();
        for (k, v) in pairs {
            out.insert(
                from_content::<K, D::Error>(k)?,
                from_content::<V, D::Error>(v)?,
            );
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Derive-codegen helpers
// ---------------------------------------------------------------------------

/// Unwrap a `Content::Map` (derive helper for struct deserialization).
pub fn take_map<E: de::Error>(content: Content) -> Result<BTreeMap<String, Content>, E> {
    match content {
        Content::Map(m) => Ok(m),
        other => Err(E::custom(format!(
            "expected struct map, found {}",
            other.kind()
        ))),
    }
}

/// Unwrap a `Content::Seq` (derive helper for tuple-struct deserialization).
pub fn take_seq<E: de::Error>(content: Content) -> Result<Vec<Content>, E> {
    match content {
        Content::Seq(items) => Ok(items),
        other => Err(E::custom(format!(
            "expected sequence, found {}",
            other.kind()
        ))),
    }
}

/// Extract a required struct field (derive helper).
pub fn field<'de, T: Deserialize<'de>, E: de::Error>(
    map: &mut BTreeMap<String, Content>,
    key: &str,
) -> Result<T, E> {
    match map.remove(key) {
        Some(v) => from_content(v),
        None => Err(E::custom(format!("missing field `{key}`"))),
    }
}

/// Extract a struct field marked `#[serde(default)]` (derive helper).
pub fn field_or_default<'de, T: Deserialize<'de> + Default, E: de::Error>(
    map: &mut BTreeMap<String, Content>,
    key: &str,
) -> Result<T, E> {
    match map.remove(key) {
        Some(Content::Null) | None => Ok(T::default()),
        Some(v) => from_content(v),
    }
}

/// Extract raw field content for `#[serde(with = "...")]` (derive helper).
pub fn field_content(map: &mut BTreeMap<String, Content>, key: &str) -> Content {
    map.remove(key).unwrap_or(Content::Null)
}
