//! Vendored stand-in for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer. Provides the subset of the real crate's API that this
//! workspace uses.
//!
//! Like the real crate, `Bytes::from_static` wraps a `'static` slice
//! without copying: constructing and cloning a static `Bytes` performs no
//! allocation, which the execution engine's zero-alloc data plane relies
//! on. Owned buffers are shared behind an `Arc<Vec<u8>>`, so `clone` is a
//! refcount bump in either representation. All comparisons, ordering, and
//! hashing are content-based — the representation is invisible.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone)]
enum Repr {
    Static(&'static [u8]),
    Shared(Arc<Vec<u8>>),
}

#[derive(Clone)]
pub struct Bytes {
    repr: Repr,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Wraps a static slice without copying or allocating.
    pub const fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            repr: Repr::Static(data),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::new(data.to_vec())),
        }
    }

    pub fn len(&self) -> usize {
        self.as_slice().len()
    }

    pub fn is_empty(&self) -> bool {
        self.as_slice().is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Static(s) => s,
            Repr::Shared(v) => v,
        }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::from_static(&[])
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::new(v)),
        }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            repr: Repr::Shared(Arc::new(s.into_bytes())),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
