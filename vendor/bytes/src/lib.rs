//! Vendored stand-in for the `bytes` crate: a cheaply clonable, immutable
//! byte buffer backed by `Arc<Vec<u8>>`. Provides the subset of the real
//! crate's API that this workspace uses.

use std::ops::Deref;
use std::sync::Arc;

#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes::default()
    }

    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::new(data.to_vec()),
        }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: Arc::new(s.into_bytes()),
        }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(v: &'static [u8]) -> Self {
        Bytes::from_static(v)
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::from_static(s.as_bytes())
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}
