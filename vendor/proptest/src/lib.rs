//! Vendored mini property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the `proptest!` macro, range and
//! tuple strategies, `any::<T>()`, `Just`, `prop_map`, and
//! `proptest::collection::vec`.
//!
//! Cases are generated from a deterministic RNG seeded by the test name, so
//! failures reproduce exactly across runs (there is no shrinking).

use std::ops::Range;

/// Number of cases to run per property.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// SplitMix64 — deterministic, seedable, and good enough for test-case
/// generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Seed from a test name so every property gets its own stream.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::new(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }
}

/// A generator of values for one property argument.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy returned by [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize);

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.start + rng.next_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

/// Types with a canonical "anything" strategy (see [`any`]).
pub trait Arbitrary {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy for any value of `T` (see [`any`]).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = (self.len.clone()).generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{Arbitrary, Just, ProptestConfig, Strategy, TestRng};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` block: each contained `fn name(arg in strategy, ...)`
/// becomes a `#[test]`-style function running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { @cfg($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_fns! { @cfg($cfg) $($rest)* }
    };
}
