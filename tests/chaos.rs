//! Chaos-harness integration tests: randomized fault campaigns must uphold
//! the robustness invariants for *every* seed, and the seed-42 acceptance
//! campaign must stay green (it is also the `scripts/check.sh` smoke).

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_core::chaos::{run_campaign, ChaosConfig};
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_exec::outcome::InvocationStatus;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_model::builder::Workflow;
use caribou_model::dist::DistSpec;
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::faults::FaultPlan;
use caribou_simcloud::orchestration::Orchestrator;
use proptest::prelude::*;

fn quick_config(seed: u64, breaker: bool, drop_prob: f64) -> ChaosConfig {
    ChaosConfig {
        seed,
        requests: 80,
        duration_s: 2.0 * 3600.0,
        breaker_enabled: breaker,
        drop_prob,
        ..ChaosConfig::default()
    }
}

#[test]
fn seed_42_acceptance_campaign_upholds_every_invariant() {
    // The exact campaign from the acceptance criteria:
    // `caribou chaos --seed 42 --requests 500`.
    let report = run_campaign(&ChaosConfig::default());
    assert!(report.ok(), "violations: {:?}", report.violations);
    assert_eq!(report.requests, 500);
    assert!(report.faults.partitions > 0, "partitions injected");
    assert!(report.faults.gray_failures > 0, "gray failures injected");
    assert!(report.faults.kv_throttles > 0, "KV throttling injected");
    assert_eq!(
        report.completed_clean + report.fell_back_home + report.failed,
        report.requests,
        "every request classified exactly once"
    );
    assert!(report.fell_back_home > 0, "faults forced failovers");
}

#[test]
fn disabling_the_breaker_raises_tail_latency() {
    // Same campaign, breaker on vs off: without pre-flight rerouting every
    // request into a dead region pays the dead-letter retry tax, so the
    // tail inflates measurably.
    let on = run_campaign(&ChaosConfig::default());
    let off = run_campaign(&ChaosConfig {
        breaker_enabled: false,
        ..ChaosConfig::default()
    });
    assert!(on.ok(), "violations: {:?}", on.violations);
    assert!(off.ok(), "violations: {:?}", off.violations);
    assert!(on.breaker_reroutes > 0);
    assert_eq!(off.breaker_reroutes, 0);
    assert!(
        off.p99_latency_s > on.p99_latency_s * 1.5,
        "breaker off p99 {:.2} s should clearly exceed breaker on p99 {:.2} s",
        off.p99_latency_s,
        on.p99_latency_s
    );
    assert!(
        off.fell_back_home > on.fell_back_home,
        "breaker prevents repeated mid-flight failovers"
    );
}

/// A diamond app exercising conditional edges and a sync node.
fn diamond_app(home: RegionId) -> WorkflowApp {
    let mut wf = Workflow::new("diamond", "0.1");
    let a = wf
        .serverless_function("A")
        .exec_time(DistSpec::Constant { value: 0.4 })
        .register();
    let b = wf
        .serverless_function("B")
        .exec_time(DistSpec::Constant { value: 0.5 })
        .register();
    let c = wf
        .serverless_function("C")
        .exec_time(DistSpec::Constant { value: 0.7 })
        .register();
    let d = wf
        .serverless_function("D")
        .exec_time(DistSpec::Constant { value: 0.3 })
        .register();
    wf.invoke(a, b, Some(0.6));
    wf.invoke(a, c, None);
    wf.invoke(b, d, None);
    wf.invoke(c, d, None);
    wf.get_predecessor_data(d);
    let (dag, profile, _) = wf.extract().unwrap();
    WorkflowApp {
        name: "diamond".into(),
        dag,
        profile,
        home,
    }
}

fn flat_carbon(cloud: &SimCloud) -> TableSource {
    let mut t = TableSource::new();
    for (id, _) in cloud.regions.iter() {
        t.insert(id, CarbonSeries::new(-400, vec![300.0; 24 * 100]));
    }
    t
}

/// An arbitrary fault plan over the evaluation regions — unlike
/// [`FaultPlan::randomized`], this one may take the home region down too.
fn arbitrary_fault_plan(seed: u64, regions: &[RegionId], duration_s: f64) -> FaultPlan {
    let mut rng = Pcg32::seed_stream(seed, 0xbad);
    let mut plan = FaultPlan::none();
    for &r in regions {
        if rng.chance(0.4) {
            let start = rng.uniform(0.0, duration_s * 0.8);
            plan = plan.with_outage(r, start, start + rng.uniform(60.0, duration_s * 0.3));
        }
        if rng.chance(0.3) {
            let start = rng.uniform(0.0, duration_s * 0.8);
            plan = plan.with_gray_failure(
                r,
                start,
                start + rng.uniform(60.0, duration_s * 0.3),
                rng.uniform(2.0, 6.0),
            );
        }
        if rng.chance(0.3) {
            let start = rng.uniform(0.0, duration_s * 0.8);
            plan = plan.with_kv_throttle(
                r,
                start,
                start + rng.uniform(60.0, duration_s * 0.3),
                rng.uniform(0.2, 0.8),
            );
        }
        if rng.chance(0.25) {
            let start = rng.uniform(0.0, duration_s * 0.8);
            plan = plan.with_cold_storm(r, start, start + rng.uniform(60.0, duration_s * 0.2));
        }
    }
    if regions.len() >= 2 && rng.chance(0.5) {
        let a = regions[rng.next_index(regions.len())];
        let mut b = regions[rng.next_index(regions.len())];
        if a == b {
            b = regions[(regions.iter().position(|r| *r == a).unwrap() + 1) % regions.len()];
        }
        let start = rng.uniform(0.0, duration_s * 0.8);
        plan = plan.with_partition(a, b, start, start + rng.uniform(60.0, duration_s * 0.3));
    }
    plan.message_drop_prob = rng.uniform(0.0, 0.05);
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full campaign harness upholds its invariants for arbitrary
    /// seeds, drop probabilities, and breaker settings.
    #[test]
    fn campaign_invariants_hold_for_arbitrary_seeds(
        seed in any::<u64>(),
        drop in 0.0f64..0.05,
        breaker in any::<bool>(),
    ) {
        let report = run_campaign(&quick_config(seed, breaker, drop));
        prop_assert!(report.ok(), "violations: {:?}", report.violations);
        prop_assert_eq!(
            report.completed_clean + report.fell_back_home + report.failed,
            report.requests
        );
        if !breaker {
            prop_assert_eq!(report.breaker_reroutes, 0);
        }
    }

    /// Engine-level: under *arbitrary* fault plans — including ones that
    /// take the home region down, which the campaign generator never does —
    /// every invocation terminates in exactly one consistent state and the
    /// usage meter never double-counts a pub/sub message.
    #[test]
    fn engine_never_loses_or_double_counts_an_invocation(
        seed in any::<u64>(),
    ) {
        let duration_s = 2.0 * 3600.0;
        let mut cloud = SimCloud::aws(seed);
        let home = cloud.region("us-east-1").unwrap();
        let regions = cloud.regions.evaluation_regions();
        let carbon = flat_carbon(&cloud);
        let app = diamond_app(home);
        let offload: Vec<RegionId> =
            regions.iter().copied().filter(|r| *r != home).collect();
        let mut plan = DeploymentPlan::uniform(4, home);
        plan.set(caribou_model::dag::NodeId(1), offload[0]);
        plan.set(caribou_model::dag::NodeId(2), offload[1 % offload.len()]);
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Caribou,
        };
        engine.provision(&mut cloud, &app, &plan);
        cloud.set_faults(arbitrary_fault_plan(seed, &regions, duration_s));

        let mut master = Pcg32::seed_stream(seed, 0xfee1);
        for i in 0..12u64 {
            let at_s = 100.0 + i as f64 * duration_s / 12.0;
            let before = cloud.pubsub.total_published();
            let mut rng = master.fork(i + 1);
            let out = engine.invoke(&mut cloud, &app, &plan, i + 1, at_s, &mut rng);
            // Exactly-one-of, consistent with the raw fields.
            match out.status() {
                InvocationStatus::Completed => {
                    prop_assert!(out.completed && out.failovers == 0);
                }
                InvocationStatus::FellBackHome => {
                    prop_assert!(out.completed && out.failovers > 0);
                    prop_assert!(out.failed_region.is_some());
                }
                InvocationStatus::Failed => {
                    prop_assert!(!out.completed);
                }
            }
            // Meter == messages the pub/sub service actually accepted.
            let billed: u64 = out.meter.sns_publishes.values().sum();
            let accepted = cloud.pubsub.total_published() - before;
            prop_assert_eq!(billed, accepted, "invocation {} meter drift", i);
        }
    }
}
