//! Fault-injection integration: region outages, deployment failures, and
//! message loss exercised through the full stack (§6.1's fallback and
//! retry behaviour).

use caribou_carbon::source::RegionalSource;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_core::migrator::Migrator;
use caribou_core::utility::DeploymentUtility;
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::montecarlo::MonteCarloConfig;
use caribou_model::builder::Workflow;
use caribou_model::dist::DistSpec;
use caribou_model::manifest::DeploymentManifest;
use caribou_model::plan::{DeploymentPlan, HourlyPlans};
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::faults::FaultPlan;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_workloads::traces::uniform_trace;

fn two_stage_app(cloud: &SimCloud) -> WorkflowApp {
    let mut wf = Workflow::new("wf", "0.1");
    let a = wf
        .serverless_function("A")
        .exec_time(DistSpec::Constant { value: 2.0 })
        .register();
    let b = wf
        .serverless_function("B")
        .exec_time(DistSpec::Constant { value: 4.0 })
        .register();
    wf.invoke(a, b, None)
        .payload(DistSpec::Constant { value: 10_000.0 });
    let (dag, profile, _) = wf.extract().unwrap();
    WorkflowApp {
        name: "wf".into(),
        dag,
        profile,
        home: cloud.region("us-east-1").unwrap(),
    }
}

#[test]
fn outage_during_migration_falls_back_home_then_retries() {
    let mut cloud = SimCloud::aws(200);
    let app = two_stage_app(&cloud);
    let manifest = DeploymentManifest::new("wf", "0.1", "us-east-1");
    let mut dep = DeploymentUtility::deploy_initial(&mut cloud, app, &manifest).unwrap();
    let ca = cloud.region("ca-central-1").unwrap();
    cloud.set_faults(FaultPlan::none().with_outage(ca, 0.0, 5_000.0));

    let plans = HourlyPlans::hourly(
        (0..24).map(|_| DeploymentPlan::uniform(2, ca)).collect(),
        0.0,
        1e9,
    );
    // During the outage: rollout fails, traffic stays home, plan pending.
    assert!(Migrator::rollout(&mut cloud, &mut dep, plans, 100.0).is_err());
    assert!(!dep.router.has_active_plan(100.0));
    assert!(dep.pending.is_some());
    let d = dep.router.route(150.0);
    assert!(d.plan.is_single_region());
    assert_eq!(
        d.plan.region_of(caribou_model::dag::NodeId(0)),
        dep.app.home
    );

    // After the outage: the periodic retry activates the plan.
    let retry = Migrator::retry_pending(&mut cloud, &mut dep, 6_000.0).unwrap();
    assert!(retry.is_ok());
    assert!(dep.router.has_active_plan(6_000.0));
    let d = dep.router.route(6_100.0);
    assert_eq!(d.plan.region_of(caribou_model::dag::NodeId(1)), ca);
}

#[test]
fn message_loss_is_absorbed_by_retries() {
    let mut cloud = SimCloud::aws(201);
    cloud.set_faults(FaultPlan {
        message_drop_prob: 0.10,
        ..FaultPlan::none()
    });
    let app = two_stage_app(&cloud);
    let plan = DeploymentPlan::uniform(2, app.home);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(201)).unwrap();
    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        orchestrator: Orchestrator::Caribou,
    };
    engine.provision(&mut cloud, &app, &plan);
    let mut rng = Pcg32::seed(201);
    let mut completed = 0;
    let mut retried = 0;
    let n = 300;
    for i in 0..n {
        let out = engine.invoke(&mut cloud, &app, &plan, i, 1000.0, &mut rng);
        if out.completed {
            completed += 1;
        }
        if out.e2e_latency_s > 6.8 {
            // A retry backoff (0.5 s) pushed the latency visibly.
            retried += 1;
        }
    }
    // At 10% drop probability with 5 attempts, nearly everything
    // completes; some invocations visibly paid retry latency.
    assert!(
        completed as f64 / n as f64 > 0.99,
        "completed {completed}/{n}"
    );
    assert!(retried > 0, "some retries should be visible in latency");
}

#[test]
fn framework_run_survives_transient_outage_of_offload_region() {
    let cloud = SimCloud::aws(202);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(202)).unwrap();
    let regions = cloud.regions.evaluation_regions();
    let mut config = CaribouConfig::new(regions, TransmissionScenario::BEST);
    config.mc = MonteCarloConfig {
        batch: 60,
        max_samples: 120,
        cv_threshold: 0.1,
    };
    config.hbss.max_iterations = 60;
    let mut caribou = Caribou::new(cloud, carbon, config);
    // The clean region is down for the first day and a half: the first
    // solve's rollout fails, traffic stays home, and the retry succeeds
    // once the region recovers.
    let ca = caribou.cloud.region("ca-central-1").unwrap();
    caribou
        .cloud
        .set_faults(FaultPlan::none().with_outage(ca, 0.0, 1.3 * 86_400.0));

    let app = two_stage_app(&caribou.cloud);
    let manifest = DeploymentManifest::new("wf", "0.1", "us-east-1");
    let mut constraints = caribou_model::constraints::Constraints::unconstrained(2);
    constraints.tolerances.latency = 0.5;
    constraints.tolerances.cost = 1.0;
    let idx = caribou.deploy(app, &manifest, constraints).unwrap();
    let trace = uniform_trace(30.0, 3.0 * 86_400.0, 1500.0);
    let report = caribou.run_trace(idx, &trace);

    // No invocation was ever routed into the dead region while it was
    // down (fallback-to-home protected the traffic).
    let misrouted = report
        .samples
        .iter()
        .filter(|s| s.at_s < 1.3 * 86_400.0 && s.majority_region == ca)
        .count();
    assert_eq!(
        misrouted, 0,
        "no traffic into a region that never activated"
    );
    assert!(report.completion_rate() > 0.999);
    // After recovery the workflow eventually shifted.
    let shifted_late = report
        .samples
        .iter()
        .filter(|s| s.at_s > 2.5 * 86_400.0 && s.majority_region == ca)
        .count();
    assert!(
        shifted_late > 0,
        "the retry should activate the clean region"
    );
}

// ---------------------------------------------------------------------------
// Correlated fault classes + precomputed-contingency failover (property).
// ---------------------------------------------------------------------------

use caribou_core::chaos::{run_correlated_campaign, ChaosConfig};
use caribou_model::region::ProviderSet;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Under arbitrary correlated fault plans (provider-wide outages,
    /// shared failure domains, carbon-data outages — all drawn from the
    /// campaign seed) with precomputed-contingency failover armed, no
    /// invocation is lost (every request classified exactly once), SNS
    /// request metering stays honest per-invocation and campaign-wide
    /// (checked inside the campaign's invariant sweep), and the full
    /// report is bit-identical at 1, 2 and 8 workers.
    #[test]
    fn correlated_faults_with_failover_lose_nothing(
        seed in 0u64..1_000_000,
        contingency in 0usize..4usize,
    ) {
        let cfg = |workers: usize| ChaosConfig {
            seed,
            requests: 40,
            duration_s: 2.0 * 3600.0,
            providers: ProviderSet::parse("aws,gcp").unwrap(),
            contingency,
            workers,
            ..ChaosConfig::default()
        };
        let r1 = run_correlated_campaign(&cfg(1));
        prop_assert!(r1.base.ok(), "violations: {:?}", r1.base.violations);
        prop_assert_eq!(
            r1.base.completed_clean + r1.base.fell_back_home + r1.base.failed,
            r1.base.requests,
            "every invocation classified exactly once"
        );
        let r2 = run_correlated_campaign(&cfg(2));
        let r8 = run_correlated_campaign(&cfg(8));
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&r1, &r8);
    }
}
