//! Integration tests for the telemetry subsystem threaded through the
//! framework: a quickstart-scale run must emit pub/sub, KV and solver
//! events, spans must export as parseable Chrome trace JSON, and the
//! NullSink must keep instrumentation overhead negligible.

use caribou_carbon::source::RegionalSource;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_exec::engine::WorkflowApp;
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_metrics::montecarlo::MonteCarloConfig;
use caribou_model::manifest::DeploymentManifest;
use caribou_simcloud::cloud::SimCloud;
use caribou_solver::hbss::HbssParams;
use caribou_telemetry::{MemorySink, NullSink};
use caribou_workloads::benchmarks::{text2speech_censoring, Benchmark, InputSize};
use caribou_workloads::traces::uniform_trace;

fn fast_config(regions: Vec<caribou_model::region::RegionId>) -> CaribouConfig {
    let mut config = CaribouConfig::new(regions, TransmissionScenario::BEST);
    config.mc = MonteCarloConfig {
        batch: 60,
        max_samples: 120,
        cv_threshold: 0.1,
    };
    config.hbss = HbssParams {
        max_iterations: 60,
        ..HbssParams::default()
    };
    config
}

fn quickstart_run(seed: u64, horizon_s: f64) -> caribou_core::framework::RunReport {
    let bench: Benchmark = text2speech_censoring(InputSize::Small);
    let cloud = SimCloud::aws(seed);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(seed)).unwrap();
    let regions = cloud.regions.evaluation_regions();
    let mut caribou = Caribou::new(cloud, carbon, fast_config(regions));
    let mut constraints = bench.constraints.clone();
    constraints.tolerances.latency = 0.15;
    constraints.tolerances.cost = 1.0;
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        home: caribou.cloud.region("us-east-1").unwrap(),
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
    };
    let manifest = DeploymentManifest::new(app.name.clone(), "1.0", "us-east-1");
    let idx = caribou
        .deploy(app, &manifest, constraints)
        .expect("deploys");
    let trace = uniform_trace(30.0, horizon_s, 600.0);
    caribou.run_trace(idx, &trace)
}

#[test]
fn quickstart_run_emits_pubsub_kv_and_solver_events() {
    caribou_telemetry::enable(Box::new(MemorySink::default()));
    quickstart_run(200, 86_400.0);
    let finished = caribou_telemetry::finish().expect("session active");
    let rec = &finished.recorder;
    assert!(rec.counter("pubsub.publish") > 0, "pub/sub publishes");
    assert!(rec.counter("pubsub.ack") > 0, "pub/sub acks");
    assert!(rec.counter("kv.read") > 0, "KV reads");
    assert!(rec.counter("kv.write") > 0, "KV writes");
    assert!(rec.counter("solver.iterations") > 0, "solver iterated");
    assert!(rec.counter("exec.invocation") > 0, "invocations recorded");
    assert!(rec.counter("clock.advance") > 0, "clock advances recorded");
    assert!(!rec.journal.is_empty(), "journal has events");
    // Journal is ordered by virtual sim time (monotone clock feed).
    let times: Vec<f64> = rec.journal.iter().map(|e| e.t_s).collect();
    assert!(
        times.windows(2).all(|w| w[0] <= w[1] + 1e6),
        "journal roughly time-ordered"
    );
}

#[test]
fn chrome_trace_export_round_trips_with_a_span_per_node() {
    let bench = text2speech_censoring(InputSize::Small);
    let node_count = bench.dag.node_count();

    caribou_telemetry::enable(Box::new(MemorySink::default()));
    quickstart_run(201, 6.0 * 3600.0);
    let finished = caribou_telemetry::finish().expect("session active");
    let sink = finished
        .sink
        .as_any()
        .downcast_ref::<MemorySink>()
        .expect("MemorySink");
    assert!(!sink.spans.is_empty(), "spans were streamed");

    // Every workflow node produced at least one "exec" span named after it.
    for i in 0..node_count {
        let name = bench
            .dag
            .node(caribou_model::dag::NodeId(i as u32))
            .name
            .clone();
        let n = sink
            .spans
            .iter()
            .filter(|s| s.cat == "exec" && s.name == name)
            .count();
        assert!(n >= 1, "no exec span for node {name}");
    }

    // The export is well-formed Chrome trace JSON: serialize, parse back.
    let doc = caribou_telemetry::chrome_trace(&sink.spans);
    let text = serde_json::to_string(&doc).expect("serializes");
    let parsed: serde_json::Value = serde_json::from_str(&text).expect("parses back");
    let events = parsed["traceEvents"].as_array().expect("traceEvents array");
    assert_eq!(events.len(), sink.spans.len());
    for e in events {
        assert_eq!(e["ph"], "X");
        assert!(e["name"].as_str().is_some());
        assert!(e["ts"].as_f64().is_some());
        assert!(e["dur"].as_f64().is_some());
    }
}

#[test]
fn null_sink_overhead_is_negligible() {
    // Warm up caches and JIT-ish effects, then compare an uninstrumented
    // run against one with telemetry enabled through the NullSink. The
    // bound is deliberately loose (3x) so a noisy CI machine can't flake
    // it; the real budget (<2% on fig7 scale) is tracked by the criterion
    // bench in crates/bench.
    quickstart_run(202, 6.0 * 3600.0);

    let t0 = std::time::Instant::now();
    let base = quickstart_run(202, 6.0 * 3600.0);
    let uninstrumented = t0.elapsed();

    caribou_telemetry::enable(Box::new(NullSink));
    let t1 = std::time::Instant::now();
    let instrumented_report = quickstart_run(202, 6.0 * 3600.0);
    let instrumented = t1.elapsed();
    caribou_telemetry::finish();

    // Same seed, same results: telemetry must not perturb the simulation.
    assert_eq!(base.samples.len(), instrumented_report.samples.len());
    assert_eq!(
        base.workflow_carbon_g(),
        instrumented_report.workflow_carbon_g()
    );

    assert!(
        instrumented.as_secs_f64() < uninstrumented.as_secs_f64() * 3.0 + 0.05,
        "NullSink run {:?} vs uninstrumented {:?}",
        instrumented,
        uninstrumented
    );
}
