//! Golden regression pins for the repo's §9 headline numbers.
//!
//! Every pipeline below is a pure function of its seeds, so these
//! fixed-seed outputs are bit-stable across refactors that preserve
//! semantics — and move the moment an "equivalent" change quietly shifts
//! the published results. EXPERIMENTS.md quotes the same figures; update
//! both together, and only deliberately.

use caribou_bench::harness::{default_tolerances, eval_over_week, ExpEnv, FineSolver};
use caribou_core::chaos::run_campaign;
use caribou_core::ChaosConfig;
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::plan::DeploymentPlan;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};

/// Relative tolerance for the floating-point pins: tight enough that any
/// semantic drift trips it, loose enough to survive benign float
/// formatting (the pipelines themselves are bit-deterministic).
const REL_TOL: f64 = 1e-9;

fn assert_close(actual: f64, pinned: f64, what: &str) {
    let rel = ((actual - pinned) / pinned).abs();
    assert!(
        rel <= REL_TOL,
        "{what}: got {actual:.12e}, pinned {pinned:.12e} (rel err {rel:.3e})"
    );
}

/// The §9.1/Fig. 11 headline: fine-grained shifting of the compute-heavy
/// Text2Speech workload over the evaluation week (best-case transmission,
/// fast experiment profile) — pinned carbon, tail latency, and cost.
#[test]
fn text2speech_weekly_numbers_are_pinned() {
    std::env::set_var("CARIBOU_FAST", "1");
    let env = ExpEnv::new(600);
    let bench = text2speech_censoring(InputSize::Small);
    let home = env.home;
    let base = eval_over_week(
        &env,
        &bench,
        TransmissionScenario::BEST,
        |_| DeploymentPlan::uniform(bench.dag.node_count(), home),
        1,
    );
    let regions = env.regions.clone();
    let mut solver = FineSolver::new(
        &env,
        &bench,
        &regions,
        TransmissionScenario::BEST,
        default_tolerances(),
        2,
    );
    let fine = eval_over_week(
        &env,
        &bench,
        TransmissionScenario::BEST,
        |h| solver.plan_at(h),
        3,
    );

    assert_close(
        base.carbon_g,
        GOLDEN_BASE_CARBON_G,
        "home-only weekly carbon",
    );
    assert_close(
        fine.carbon_g,
        GOLDEN_FINE_CARBON_G,
        "fine-grained weekly carbon",
    );
    assert_close(
        fine.latency_p95_s,
        GOLDEN_FINE_P95_S,
        "fine-grained p95 latency",
    );
    assert_close(
        fine.cost_usd,
        GOLDEN_FINE_COST_USD,
        "fine-grained weekly cost",
    );
    // The headline claim itself: large best-case savings (§9.1).
    let norm = fine.carbon_g / base.carbon_g;
    assert!(
        norm < 0.4,
        "weekly carbon norm {norm} lost the headline savings"
    );
}

/// The §6.1-resilience headline from EXPERIMENTS.md's chaos table:
/// default seed-42 campaign (500 requests, 6 h, breaker on) — pinned
/// completion split and latency percentiles (p99 17.40 s with breaker).
#[test]
fn chaos_campaign_numbers_are_pinned() {
    let report = run_campaign(&ChaosConfig::default());
    assert_eq!(report.requests, 500);
    assert_eq!(report.completed_clean, 473);
    assert_eq!(report.fell_back_home, 27);
    assert_eq!(report.failed, 0);
    assert_eq!(report.breaker_reroutes, 67);
    assert_close(
        report.p50_latency_s,
        GOLDEN_CHAOS_P50_S,
        "chaos p50 latency",
    );
    assert_close(
        report.p99_latency_s,
        GOLDEN_CHAOS_P99_S,
        "chaos p99 latency",
    );
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

// Pinned values, measured once at fixed seeds (see EXPERIMENTS.md).
const GOLDEN_BASE_CARBON_G: f64 = 0.006960313957589775;
const GOLDEN_FINE_CARBON_G: f64 = 0.0011328248594264254;
const GOLDEN_FINE_P95_S: f64 = 14.761530969436963;
const GOLDEN_FINE_COST_USD: f64 = 0.0004302545515993516;
const GOLDEN_CHAOS_P50_S: f64 = 2.1977746314841937;
const GOLDEN_CHAOS_P99_S: f64 = 17.40237316594512;
