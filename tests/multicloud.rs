//! Multi-cloud integration: GCP regions participate fully, same-grid
//! regions share intensity across providers, and provider compliance
//! constraints hold.

use caribou_carbon::source::{CarbonDataSource, RegionalSource};
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_model::constraints::{Constraints, RegionFilter};
use caribou_model::region::{Provider, RegionCatalog};
use caribou_simcloud::cloud::SimCloud;

#[test]
fn multi_cloud_catalog_is_complete() {
    let cat = RegionCatalog::multi_cloud();
    assert!(cat.len() >= 15);
    let gcp: Vec<_> = cat
        .iter()
        .filter(|(_, s)| s.provider == Provider::Gcp)
        .collect();
    assert_eq!(gcp.len(), 5);
    // Every region's grid zone has a calibrated carbon profile.
    let synth = SyntheticCarbonSource::aws_calibrated(1);
    for (_, spec) in cat.iter() {
        assert!(
            synth.has_zone(&spec.grid_zone),
            "missing {}",
            spec.grid_zone
        );
    }
    // Latency, pricing, and compute cover the new regions.
    let cloud = SimCloud::with_catalog(cat, 1);
    let gcp_qc = cloud.region("northamerica-northeast1").unwrap();
    let aws_east = cloud.region("us-east-1").unwrap();
    assert!(cloud.latency.rtt(aws_east, gcp_qc) > 0.005);
    assert!(cloud.pricing.region(gcp_qc).lambda_gb_second > 0.0);
}

#[test]
fn same_grid_regions_share_intensity_across_providers() {
    let cat = RegionCatalog::multi_cloud();
    let src = RegionalSource::new(&cat, SyntheticCarbonSource::aws_calibrated(2)).unwrap();
    // AWS us-west-2 and GCP us-west1 both sit on the Pacific Northwest
    // grid; AWS ca-central-1 and GCP northamerica-northeast1 on Québec's.
    let pairs = [
        ("us-west-2", "us-west1"),
        ("ca-central-1", "northamerica-northeast1"),
    ];
    for (aws, gcp) in pairs {
        let a = cat.id_of(aws).unwrap();
        let g = cat.id_of(gcp).unwrap();
        for h in [0.0, 13.0, 100.0] {
            assert_eq!(
                src.intensity(a, h),
                src.intensity(g, h),
                "{aws} vs {gcp} at hour {h}"
            );
        }
    }
}

#[test]
fn provider_filter_excludes_foreign_clouds() {
    let cat = RegionCatalog::multi_cloud();
    let universe = cat.all_ids();
    let home = cat.id_of("us-east-1").unwrap();
    let dag = {
        let mut wf = caribou_model::builder::Workflow::new("wf", "0.1");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        wf.invoke(a, b, None);
        wf.extract_dag().unwrap()
    };
    let mut c = Constraints::unconstrained(2);
    c.workflow = RegionFilter {
        allowed_providers: vec![Provider::Aws],
        ..RegionFilter::default()
    };
    let permitted = c.permitted_regions(&dag, &universe, &cat, home).unwrap();
    for set in &permitted {
        for r in set {
            assert_eq!(
                cat.spec(*r).provider,
                Provider::Aws,
                "{} leaked through the provider filter",
                cat.name(*r)
            );
        }
    }
    // The inverse filter yields GCP-only (plus the always-permitted home).
    let mut g = Constraints::unconstrained(2);
    g.workflow = RegionFilter {
        allowed_providers: vec![Provider::Gcp],
        ..RegionFilter::default()
    };
    let permitted = g.permitted_regions(&dag, &universe, &cat, home).unwrap();
    for set in &permitted {
        for r in set {
            assert!(cat.spec(*r).provider == Provider::Gcp || *r == home);
        }
    }
}
