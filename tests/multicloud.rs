//! Multi-cloud integration: GCP regions participate fully, same-grid
//! regions share intensity across providers, provider compliance
//! constraints hold, provider-asymmetric faults never alias colocated
//! regions, and cross-provider solves are worker-count invariant.

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::{CarbonDataSource, ForecastingSource, RegionalSource, TableSource};
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
use caribou_model::builder::Workflow;
use caribou_model::constraints::{Constraints, Objective, RegionFilter};
use caribou_model::dag::NodeId;
use caribou_model::dist::DistSpec;
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::{Provider, ProviderSet, RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::faults::FaultPlan;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::engine::{EstimateCache, EvalEngine};
use caribou_solver::hbss::HbssSolver;
use caribou_workloads::benchmarks::{all_benchmarks, InputSize};
use proptest::prelude::*;

#[test]
fn multi_cloud_catalog_is_complete() {
    let cat = RegionCatalog::multi_cloud();
    assert!(cat.len() >= 15);
    let gcp: Vec<_> = cat
        .iter()
        .filter(|(_, s)| s.provider == Provider::Gcp)
        .collect();
    assert_eq!(gcp.len(), 5);
    // Every region's grid zone has a calibrated carbon profile.
    let synth = SyntheticCarbonSource::aws_calibrated(1);
    for (_, spec) in cat.iter() {
        assert!(
            synth.has_zone(&spec.grid_zone),
            "missing {}",
            spec.grid_zone
        );
    }
    // Latency, pricing, and compute cover the new regions.
    let cloud = SimCloud::with_catalog(cat, 1);
    let gcp_qc = cloud.region("northamerica-northeast1").unwrap();
    let aws_east = cloud.region("us-east-1").unwrap();
    assert!(cloud.latency.rtt(aws_east, gcp_qc) > 0.005);
    assert!(cloud.pricing.region(gcp_qc).lambda_gb_second > 0.0);
}

#[test]
fn same_grid_regions_share_intensity_across_providers() {
    let cat = RegionCatalog::multi_cloud();
    let src = RegionalSource::new(&cat, SyntheticCarbonSource::aws_calibrated(2)).unwrap();
    // AWS us-west-2 and GCP us-west1 both sit on the Pacific Northwest
    // grid; AWS ca-central-1 and GCP northamerica-northeast1 on Québec's.
    let pairs = [
        ("us-west-2", "us-west1"),
        ("ca-central-1", "northamerica-northeast1"),
    ];
    for (aws, gcp) in pairs {
        let a = cat.id_of(aws).unwrap();
        let g = cat.id_of(gcp).unwrap();
        for h in [0.0, 13.0, 100.0] {
            assert_eq!(
                src.intensity(a, h),
                src.intensity(g, h),
                "{aws} vs {gcp} at hour {h}"
            );
        }
    }
}

#[test]
fn provider_filter_excludes_foreign_clouds() {
    let cat = RegionCatalog::multi_cloud();
    let universe = cat.all_ids();
    let home = cat.id_of("us-east-1").unwrap();
    let dag = {
        let mut wf = caribou_model::builder::Workflow::new("wf", "0.1");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        wf.invoke(a, b, None);
        wf.extract_dag().unwrap()
    };
    let mut c = Constraints::unconstrained(2);
    c.workflow = RegionFilter {
        allowed_providers: vec![Provider::Aws],
        ..RegionFilter::default()
    };
    let permitted = c.permitted_regions(&dag, &universe, &cat, home).unwrap();
    for set in &permitted {
        for r in set {
            assert_eq!(
                cat.spec(*r).provider,
                Provider::Aws,
                "{} leaked through the provider filter",
                cat.name(*r)
            );
        }
    }
    // The inverse filter yields GCP-only (plus the always-permitted home).
    let mut g = Constraints::unconstrained(2);
    g.workflow = RegionFilter {
        allowed_providers: vec![Provider::Gcp],
        ..RegionFilter::default()
    };
    let permitted = g.permitted_regions(&dag, &universe, &cat, home).unwrap();
    for set in &permitted {
        for r in set {
            assert!(cat.spec(*r).provider == Provider::Gcp || *r == home);
        }
    }
}

fn two_stage_app(cloud: &SimCloud) -> WorkflowApp {
    let mut wf = Workflow::new("wf", "0.1");
    let a = wf
        .serverless_function("A")
        .exec_time(DistSpec::Constant { value: 1.0 })
        .register();
    let b = wf
        .serverless_function("B")
        .exec_time(DistSpec::Constant { value: 2.0 })
        .register();
    wf.invoke(a, b, None)
        .payload(DistSpec::Constant { value: 10_000.0 });
    let (dag, profile, _) = wf.extract().unwrap();
    WorkflowApp {
        name: "wf".into(),
        dag,
        profile,
        home: cloud.region("aws:us-east-1").unwrap(),
    }
}

/// Provider-asymmetric chaos (§6.1 across clouds): an outage of one
/// provider's region re-routes the offloaded stage across the provider
/// boundary without losing the invocation, and the *colocated* region of
/// the other provider — same grid zone, different `RegionId` — is
/// untouched by the fault.
#[test]
fn provider_asymmetric_outage_reroutes_without_aliasing_colocated_region() {
    let set = ProviderSet::parse("aws,gcp").unwrap();
    let mut cloud = SimCloud::for_providers(set, 61).unwrap();
    let app = two_stage_app(&cloud);
    let gcp_west = cloud.region("gcp:us-west1").unwrap();
    let aws_west = cloud.region("aws:us-west-2").unwrap();
    assert_ne!(gcp_west, aws_west);
    assert_eq!(
        cloud.regions.spec(gcp_west).grid_zone,
        cloud.regions.spec(aws_west).grid_zone,
        "test premise: the two regions share a grid"
    );
    cloud.set_faults(FaultPlan::none().with_outage(gcp_west, 0.0, 1e9));
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(61)).unwrap();
    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        orchestrator: Orchestrator::Caribou,
    };

    // Stage 1 planned into the dead GCP region: the failover crosses the
    // provider boundary back to the AWS home and completes.
    let mut plan = DeploymentPlan::uniform(2, app.home);
    plan.set(NodeId(1), gcp_west);
    engine.provision(&mut cloud, &app, &plan);
    let out = engine.invoke(&mut cloud, &app, &plan, 1, 100.0, &mut Pcg32::seed(1));
    assert!(out.completed, "invocation lost in cross-provider failover");
    assert!(out.failovers >= 1);
    assert_eq!(out.failed_region, Some(gcp_west));
    let rec = out.log.nodes.iter().find(|r| r.node == 1).unwrap();
    assert_eq!(rec.region, app.home, "stage 1 fell back across providers");
    assert_eq!(cloud.regions.spec(rec.region).provider, Provider::Aws);

    // The same plan shape through the colocated AWS region is clean: the
    // outage is keyed by RegionId, never by name or grid zone.
    let mut plan = DeploymentPlan::uniform(2, app.home);
    plan.set(NodeId(1), aws_west);
    engine.provision(&mut cloud, &app, &plan);
    let out = engine.invoke(&mut cloud, &app, &plan, 2, 300.0, &mut Pcg32::seed(2));
    assert!(out.completed);
    assert_eq!(
        out.failovers, 0,
        "outage aliased onto the colocated other-provider region"
    );
    let rec = out.log.nodes.iter().find(|r| r.node == 1).unwrap();
    assert_eq!(rec.region, aws_west);
}

/// Seeded cross-provider win (the acceptance scenario): with `aws,gcp`
/// the solver splits the Text2Speech DAG across both providers and beats
/// the best aws-only plan on carbon, deterministically at any worker
/// count.
#[test]
fn cross_provider_plan_splits_dag_and_beats_single_provider_carbon() {
    // Mirrors `caribou plan text2speech [--providers ...]` at hour 12.5.
    let solve = |set: ProviderSet| -> (Vec<Provider>, f64) {
        let aws_only = set == ProviderSet::aws_only();
        let cloud = if aws_only {
            SimCloud::aws(7)
        } else {
            SimCloud::for_providers(set, 7).unwrap()
        };
        let regions: Vec<RegionId> = if aws_only {
            cloud.regions.evaluation_regions()
        } else {
            SimCloud::evaluation_universe(set)
                .iter()
                .map(|n| cloud.regions.resolve(n).unwrap())
                .collect()
        };
        let bench = all_benchmarks(InputSize::Small)
            .into_iter()
            .find(|b| b.dag.name().contains("text2speech"))
            .unwrap();
        let carbon = RegionalSource::new(
            &cloud.regions,
            SyntheticCarbonSource::aws_calibrated(20231015),
        )
        .unwrap();
        let home = cloud.region("us-east-1").unwrap();
        let mut constraints = bench.constraints.clone();
        constraints.tolerances.latency = 0.10;
        constraints.tolerances.cost = 1.0;
        let permitted = constraints
            .permitted_regions(&bench.dag, &regions, &cloud.regions, home)
            .unwrap();
        let forecast = ForecastingSource::fit(&carbon, &regions, 0.0, 48);
        let models = DefaultModels {
            profile: &bench.profile,
            runtime: &cloud.compute,
            latency: &cloud.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let ctx = SolverContext {
            dag: &bench.dag,
            profile: &bench.profile,
            permitted: &permitted,
            home,
            objective: Objective::Carbon,
            tolerances: constraints.tolerances,
            carbon_source: &forecast,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&cloud.pricing),
            models: &models,
            mc_config: MonteCarloConfig::default(),
        };
        let bits = cloud.regions.provider_bits(&regions);
        let solver = HbssSolver::new();
        let solve_at = |workers: usize| {
            let engine =
                EvalEngine::with_cache_providers(7, 0, bits, workers, EstimateCache::shared(4096));
            solver.solve_with(&engine, &ctx, 12.5, &mut Pcg32::seed(7))
        };
        let base = solve_at(1);
        // Worker-count invariance of the cross-provider solve.
        let wide = solve_at(4);
        assert_eq!(base.best.assignment(), wide.best.assignment());
        assert_eq!(base.best_estimate, wide.best_estimate);
        let providers = base
            .best
            .assignment()
            .iter()
            .map(|r| cloud.regions.spec(*r).provider)
            .collect();
        (providers, ctx.metric_of(&base.best_estimate))
    };

    let (aws_providers, aws_best) = solve(ProviderSet::aws_only());
    assert!(aws_providers.iter().all(|p| *p == Provider::Aws));
    let (multi_providers, multi_best) = solve(ProviderSet::parse("aws,gcp").unwrap());
    assert!(
        multi_providers.contains(&Provider::Aws) && multi_providers.contains(&Provider::Gcp),
        "plan must split the DAG across providers, got {multi_providers:?}"
    );
    assert!(
        multi_best < aws_best,
        "cross-provider plan must beat the single-provider best: {multi_best} vs {aws_best}"
    );
}

/// Builds a small cross-provider two-node world for the determinism
/// proptest — same shape as `tests/solver_determinism.rs`, but over a
/// multi-provider cloud whose permitted sets span AWS and GCP.
fn with_cross_ctx<R>(
    f: impl FnOnce(&SolverContext<'_, TableSource, DefaultModels<'_>>, u64) -> R,
) -> R {
    let set = ProviderSet::parse("aws,gcp").unwrap();
    let cloud = SimCloud::for_providers(set, 9).unwrap();
    let cat = &cloud.regions;
    let east = cat.resolve("aws:us-east-1").unwrap();
    let aws_ca = cat.resolve("aws:ca-central-1").unwrap();
    let gcp_qc = cat.resolve("gcp:northamerica-northeast1").unwrap();
    let gcp_west = cat.resolve("gcp:us-west1").unwrap();
    // Diurnal structure so different hours pick different winners, with
    // the cheapest regions on both sides of the provider boundary.
    let mut carbon = TableSource::new();
    for (id, _) in cat.iter() {
        let values: Vec<f64> = (0..24)
            .map(|h| {
                if id == gcp_west {
                    if h < 12 {
                        55.0
                    } else {
                        700.0
                    }
                } else if id == gcp_qc {
                    35.0
                } else if id == aws_ca {
                    40.0 + 5.0 * (h % 4) as f64
                } else {
                    390.0
                }
            })
            .collect();
        carbon.insert(id, CarbonSeries::new(0, values));
    }
    let mut wf = Workflow::new("w", "0.1");
    let a = wf
        .serverless_function("A")
        .exec_time(DistSpec::Constant { value: 5.0 })
        .register();
    let b = wf
        .serverless_function("B")
        .exec_time(DistSpec::Uniform { lo: 4.0, hi: 8.0 })
        .register();
    wf.invoke(a, b, None)
        .payload(DistSpec::Constant { value: 8_000.0 });
    let (dag, profile, _) = wf.extract().unwrap();
    let mut span = vec![east, aws_ca, gcp_west, gcp_qc];
    span.sort_unstable();
    let permitted = vec![span.clone(), span.clone()];
    let models = DefaultModels {
        profile: &profile,
        runtime: &cloud.compute,
        latency: &cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let ctx = SolverContext {
        dag: &dag,
        profile: &profile,
        permitted: &permitted,
        home: east,
        objective: Objective::Carbon,
        tolerances: caribou_model::constraints::Tolerances {
            latency: 0.5,
            cost: 0.5,
            carbon: f64::INFINITY,
        },
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&cloud.pricing),
        models: &models,
        mc_config: MonteCarloConfig {
            batch: 60,
            max_samples: 120,
            cv_threshold: 0.1,
        },
    };
    let bits = cat.provider_bits(&span);
    f(&ctx, bits)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Cross-provider solves are bit-identical at 1, 2 and 8 workers for
    /// any (engine seed, walk seed, hour) — the provider bits extend the
    /// evaluation streams but never make them depend on scheduling.
    #[test]
    fn cross_provider_solve_is_worker_count_invariant(
        engine_seed in any::<u64>(),
        walk_seed in any::<u64>(),
        hour_idx in 0u8..24,
    ) {
        with_cross_ctx(|ctx, bits| {
            assert_ne!(bits, 0, "aws+gcp universe must set non-AWS bits");
            let hour = hour_idx as f64 + 0.5;
            let solver = HbssSolver::new();
            let solve_at = |workers: usize| {
                let engine = EvalEngine::with_cache_providers(
                    engine_seed, 0, bits, workers, EstimateCache::shared(4096),
                );
                solver.solve_with(&engine, ctx, hour, &mut Pcg32::seed(walk_seed))
            };
            let base = solve_at(1);
            for w in [2usize, 8] {
                let other = solve_at(w);
                assert_eq!(base.best.assignment(), other.best.assignment());
                assert_eq!(base.best_estimate, other.best_estimate);
                assert_eq!(base.home_estimate, other.home_estimate);
                assert_eq!(base.evaluated, other.evaluated);
            }
        });
    }
}
