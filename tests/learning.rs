//! Learning-loop integration: the Metrics Manager learns distributions and
//! probabilities from real engine executions, closing the §7.2 loop
//! ("Learning from Past Invocations").

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::manager::MetricsManager;
use caribou_metrics::montecarlo::StageModels;
use caribou_model::builder::Workflow;
use caribou_model::dist::DistSpec;
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;

fn flat_carbon(cloud: &SimCloud) -> TableSource {
    let mut t = TableSource::new();
    for (id, _) in cloud.regions.iter() {
        t.insert(id, CarbonSeries::new(0, vec![250.0; 24]));
    }
    t
}

/// Conditional-edge probabilities learned from executed logs converge to
/// the true branch rate and flow into the refreshed profile.
#[test]
fn conditional_probabilities_are_learned_from_executions() {
    let mut cloud = SimCloud::aws(500);
    let mut wf = Workflow::new("wf", "0.1");
    let a = wf.serverless_function("A").register();
    let b = wf.serverless_function("B").register();
    // Declared at 0.9 — but we will *execute* with the profile's 0.3 and
    // verify the logs recover it.
    wf.invoke(a, b, Some(0.3));
    let (dag, profile, _) = wf.extract().unwrap();
    let app = WorkflowApp {
        name: "wf".into(),
        dag: dag.clone(),
        profile: profile.clone(),
        home: cloud.region("us-east-1").unwrap(),
    };
    let plan = DeploymentPlan::uniform(2, app.home);
    let carbon = flat_carbon(&cloud);
    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        orchestrator: Orchestrator::Caribou,
    };
    engine.provision(&mut cloud, &app, &plan);

    let mut mm = MetricsManager::new();
    let mut rng = Pcg32::seed(500);
    for i in 0..400 {
        let out = engine.invoke(&mut cloud, &app, &plan, i, 50.0 + i as f64, &mut rng);
        mm.record(out.log);
    }
    let probs = mm.edge_probabilities(&dag);
    let learned = probs[0].expect("enough observations");
    assert!((learned - 0.3).abs() < 0.07, "learned {learned}");

    // A stale declared probability is corrected by the refresh.
    let mut stale = profile.clone();
    stale.edges[0].probability = 0.9;
    let refreshed = mm.refreshed_profile(&dag, &stale);
    assert!((refreshed.edges[0].probability - learned).abs() < 1e-12);
}

/// Learned execution distributions from engine logs override the profile
/// model in the solver's stage models, and transmission observations feed
/// the learned transfer distributions.
#[test]
fn execution_distributions_are_learned_from_executions() {
    let mut cloud = SimCloud::aws(501);
    cloud.compute.cold_start_prob = 0.0;
    let mut wf = Workflow::new("wf", "0.1");
    let a = wf
        .serverless_function("A")
        // The *declared* model says 1 s...
        .exec_time(DistSpec::Constant { value: 1.0 })
        .register();
    let b = wf
        .serverless_function("B")
        .exec_time(DistSpec::Constant { value: 1.0 })
        .register();
    wf.invoke(a, b, None);
    let (dag, profile, _) = wf.extract().unwrap();
    // ...but the app actually runs 5 s per stage.
    let mut real_profile = profile.clone();
    for n in &mut real_profile.nodes {
        n.exec_time = DistSpec::Constant { value: 5.0 };
    }
    let app = WorkflowApp {
        name: "wf".into(),
        dag: dag.clone(),
        profile: real_profile,
        home: cloud.region("us-east-1").unwrap(),
    };
    let plan = DeploymentPlan::uniform(2, app.home);
    let carbon = flat_carbon(&cloud);
    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        orchestrator: Orchestrator::Caribou,
    };
    engine.provision(&mut cloud, &app, &plan);
    let mut mm = MetricsManager::new();
    let mut rng = Pcg32::seed(501);
    for i in 0..50 {
        let out = engine.invoke(&mut cloud, &app, &plan, i, 100.0 + i as f64, &mut rng);
        mm.record(out.log);
    }
    // The learned models should reflect the observed ~5 s, not the
    // declared 1 s.
    let runtime = cloud.compute.clone();
    let latency = cloud.latency.clone();
    let lm = mm.learned_models(
        &profile,
        &runtime,
        &latency,
        Orchestrator::Caribou,
        app.home,
    );
    assert!(lm.has_exec_data(0, app.home));
    let mut srng = Pcg32::seed(1);
    let mean: f64 = (0..100)
        .map(|_| lm.sample_exec(0, app.home, &mut srng))
        .sum::<f64>()
        / 100.0;
    assert!((4.0..6.5).contains(&mean), "learned mean {mean}");
    assert!(
        lm.has_transfer_data(app.home, app.home),
        "edge transmission observations recorded"
    );
}

/// Extensibility: a brand-new region added to the catalog participates in
/// carbon data, latency, pricing, execution, and solving.
#[test]
fn custom_region_is_first_class() {
    use caribou_carbon::synth::{GridProfile, SyntheticCarbonSource};
    use caribou_model::region::{Provider, RegionCatalog, RegionSpec};

    let mut catalog = RegionCatalog::aws_default();
    let new_region = catalog.push(RegionSpec {
        name: "eu-north-1".into(),
        provider: Provider::Aws,
        country: "SE".into(),
        grid_zone: "SE".into(),
        latitude: 59.3,
        longitude: 18.1,
    });
    // Give the new grid a profile (Sweden: hydro/nuclear, very clean).
    let mut profiles = std::collections::HashMap::new();
    profiles.insert(
        "SE".to_string(),
        GridProfile {
            mean: 25.0,
            diurnal_amp: 0.05,
            diurnal_peak_hour: 18.0,
            solar_depth: 0.0,
            weekly_amp: 0.02,
            noise_sigma: 0.05,
            utc_offset: 1.0,
        },
    );
    let synth = SyntheticCarbonSource::new(profiles, 1);
    assert!(synth.zone_intensity("SE", 12.0).unwrap() > 0.0);

    let cloud = SimCloud::with_catalog(catalog, 502);
    // Latency and pricing cover the new region out of the box.
    let east = cloud.region("us-east-1").unwrap();
    assert!(
        cloud.latency.rtt(east, new_region) > 0.05,
        "transatlantic RTT"
    );
    assert!(cloud.pricing.region(new_region).lambda_gb_second > 0.0);
    assert!(cloud.compute.perf_factor(new_region) > 0.0);
}
