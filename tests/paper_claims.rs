//! Reduced-scale checks of the paper's headline claims (§9.2 insights).
//!
//! These run the figure pipelines at coarse resolution so the claims stay
//! continuously verified by `cargo test`; the full-resolution numbers come
//! from the `caribou-bench` binaries.

use caribou_bench::harness::{default_tolerances, eval_over_week, ExpEnv, FineSolver};
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::plan::DeploymentPlan;
use caribou_workloads::benchmarks::{
    image_processing, text2speech_censoring, video_analytics, InputSize,
};

fn fast() {
    std::env::set_var("CARIBOU_FAST", "1");
}

/// I1: static deployment to a lower-carbon region does not necessarily
/// reduce emissions — coarse offloading of the transmission-heavy Image
/// Processing workload under the worst-case scenario *increases* carbon.
#[test]
fn i1_static_low_carbon_deployment_can_worsen_emissions() {
    fast();
    let env = ExpEnv::new(400);
    let bench = image_processing(InputSize::Large);
    let home = env.region("us-east-1");
    let ca = env.region("ca-central-1");
    let base = eval_over_week(
        &env,
        &bench,
        TransmissionScenario::WORST,
        |_| DeploymentPlan::uniform(bench.dag.node_count(), home),
        1,
    );
    let coarse_ca = eval_over_week(
        &env,
        &bench,
        TransmissionScenario::WORST,
        |_| DeploymentPlan::uniform(bench.dag.node_count(), ca),
        2,
    );
    assert!(
        coarse_ca.carbon_g > base.carbon_g * 2.0,
        "coarse offload must backfire: home {} vs ca {}",
        base.carbon_g,
        coarse_ca.carbon_g
    );
}

/// I2: the adaptive framework tames the spikes — Caribou never does
/// meaningfully worse than the home deployment, even where coarse
/// offloading backfires badly.
#[test]
fn i2_adaptive_framework_never_backfires() {
    fast();
    let env = ExpEnv::new(401);
    let home = env.region("us-east-1");
    for bench in [
        image_processing(InputSize::Large),
        image_processing(InputSize::Small),
    ] {
        let base = eval_over_week(
            &env,
            &bench,
            TransmissionScenario::WORST,
            |_| DeploymentPlan::uniform(bench.dag.node_count(), home),
            1,
        );
        let regions = env.regions.clone();
        let mut solver = FineSolver::new(
            &env,
            &bench,
            &regions,
            TransmissionScenario::WORST,
            default_tolerances(),
            3,
        );
        let fine = eval_over_week(
            &env,
            &bench,
            TransmissionScenario::WORST,
            |h| solver.plan_at(h),
            4,
        );
        assert!(
            fine.carbon_g <= base.carbon_g * 1.05,
            "{} {}: fine {} vs home {}",
            bench.name,
            bench.input.label(),
            fine.carbon_g,
            base.carbon_g
        );
    }
}

/// I4: effectiveness depends on the compute-to-transmission ratio — the
/// compute-heavy Video Analytics saves far more than the transmission-
/// heavy Image Processing.
#[test]
fn i4_savings_grow_with_compute_to_transmission_ratio() {
    fast();
    let env = ExpEnv::new(402);
    let home = env.region("us-east-1");
    let norm = |bench: &caribou_workloads::benchmarks::Benchmark| -> f64 {
        let base = eval_over_week(
            &env,
            bench,
            TransmissionScenario::BEST,
            |_| DeploymentPlan::uniform(bench.dag.node_count(), home),
            1,
        );
        let regions = env.regions.clone();
        let mut solver = FineSolver::new(
            &env,
            bench,
            &regions,
            TransmissionScenario::BEST,
            default_tolerances(),
            5,
        );
        let fine = eval_over_week(
            &env,
            bench,
            TransmissionScenario::BEST,
            |h| solver.plan_at(h),
            6,
        );
        fine.carbon_g / base.carbon_g
    };
    let compute_heavy = norm(&video_analytics(InputSize::Small));
    let transmission_heavy = norm(&image_processing(InputSize::Large));
    assert!(
        compute_heavy < transmission_heavy * 0.5,
        "compute-heavy {compute_heavy} vs transmission-heavy {transmission_heavy}"
    );
}

/// The carbon calibration reproduces §9.2's reported grid relations.
#[test]
fn carbon_calibration_matches_reported_relations() {
    use caribou_carbon::source::CarbonDataSource;
    let env = ExpEnv::new(403);
    let avg = |name: &str| env.carbon.average(env.region(name), 0.0, 168.0);
    let pjm = avg("us-east-1");
    assert!((1.0 - avg("ca-central-1") / pjm - 0.915).abs() < 0.03);
    assert!((1.0 - avg("us-west-1") / pjm - 0.061).abs() < 0.05);
    assert!((avg("us-west-2") / pjm - 1.0).abs() < 0.1);
    // Same grid → identical intensity (us-east-1 and us-east-2 on PJM).
    let e1 = env.region("us-east-1");
    let e2 = env.region("us-east-2");
    assert_eq!(
        env.carbon.intensity(e1, 42.0),
        env.carbon.intensity(e2, 42.0)
    );
}

/// §9.4: carbon is (weakly) non-increasing in the latency tolerance, and
/// the chosen deployments meet the QoS bound.
#[test]
fn latency_tolerance_trades_into_carbon() {
    fast();
    let env = ExpEnv::new(404);
    let bench = text2speech_censoring(InputSize::Small);
    let home = env.region("us-east-1");
    let base = eval_over_week(
        &env,
        &bench,
        TransmissionScenario::BEST,
        |_| DeploymentPlan::uniform(bench.dag.node_count(), home),
        1,
    );
    let mut norms = Vec::new();
    for tol in [0.0, 0.10] {
        let t = caribou_model::constraints::Tolerances {
            latency: tol,
            cost: 1.0,
            carbon: f64::INFINITY,
        };
        let regions = env.regions.clone();
        let mut solver = FineSolver::new(&env, &bench, &regions, TransmissionScenario::BEST, t, 7);
        let fine = eval_over_week(
            &env,
            &bench,
            TransmissionScenario::BEST,
            |h| solver.plan_at(h),
            8,
        );
        let qos = base.latency_p95_s * (1.0 + tol);
        assert!(
            fine.latency_p95_s <= qos * 1.03,
            "tol {tol}: p95 {} vs bound {qos}",
            fine.latency_p95_s
        );
        norms.push(fine.carbon_g / base.carbon_g);
    }
    assert!(
        norms[1] <= norms[0] + 0.02,
        "more tolerance must not cost carbon: {norms:?}"
    );
}
