//! Integration tests for the fleet subsystem: multi-tenant solving with
//! the cross-app estimate cache and incremental hourly re-solve.
//!
//! The load-bearing property is **incremental-equivalence**: after an
//! arbitrary single-hour forecast revision, [`replan_incremental`] — which
//! re-solves only the dependency-indexed dirty cells over the warm,
//! partially-invalidated cache — must produce a schedule bit-identical to
//! a from-scratch [`solve_fleet`] against the revised forecast, at every
//! worker count. This is what makes the dependency index and the cache's
//! `invalidate_hour` hook *sound*, not just fast.

use std::sync::Arc;

use caribou_core::fleet::{
    replan_incremental, solve_fleet, DependencyIndex, FleetConfig, FleetEnv, FleetSchedule,
    PerturbOp, Perturbation,
};
use caribou_solver::engine::EstimateCache;
use caribou_workloads::fleet::{generate_fleet, FleetApp};
use proptest::prelude::*;

/// Worker counts exercised everywhere: serial, even split, oversubscribed.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

fn cfg(workers: usize) -> FleetConfig {
    FleetConfig {
        apps: 10,
        hours: 3,
        workers,
        seed: 33,
        ..FleetConfig::default()
    }
}

fn fixture(workers: usize) -> (FleetConfig, FleetEnv, Vec<FleetApp>) {
    let cfg = cfg(workers);
    let env = FleetEnv::new(cfg.seed, cfg.hours);
    let apps = generate_fleet(cfg.seed, cfg.apps, &env.universe);
    (cfg, env, apps)
}

/// Strategy for one forecast revision within the fixture's bounds:
/// any hour, any single region or all regions, scale or shift.
fn perturbation() -> impl Strategy<Value = (usize, Option<usize>, bool, f64)> {
    (
        0usize..3,     // hour
        0usize..5,     // region selector: 0..4 target one region, 4 = all
        any::<bool>(), // scale vs shift
        0.25f64..4.0,  // magnitude
    )
        .prop_map(|(hour, region_sel, scale, magnitude)| {
            let region = if region_sel < 4 {
                Some(region_sel)
            } else {
                None
            };
            (hour, region, scale, magnitude)
        })
}

fn build_perturbation(
    env: &FleetEnv,
    (hour, region_idx, scale, magnitude): (usize, Option<usize>, bool, f64),
) -> Perturbation {
    Perturbation {
        hour,
        region: region_idx.map(|i| env.universe[i % env.universe.len()]),
        op: if scale {
            PerturbOp::Scale(magnitude)
        } else {
            // Map [0.25, 4) onto a signed shift spanning ±200 gCO2eq/kWh.
            PerturbOp::Shift((magnitude - 2.125) * 106.0)
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Satellite 3: after an arbitrary single-hour forecast perturbation,
    /// incremental re-solve is bit-identical to a from-scratch full fleet
    /// solve — at 1, 2, and 8 workers.
    #[test]
    fn incremental_replan_equals_from_scratch(raw in perturbation()) {
        let (_, base_env, apps) = fixture(1);
        let perturb = build_perturbation(&base_env, raw);
        let perturbs = vec![perturb];

        let mut schedules: Vec<FleetSchedule> = Vec::new();
        for &w in &WORKER_COUNTS {
            let (cfg, env, _) = fixture(w);
            let cache: Arc<EstimateCache> = EstimateCache::shared(cfg.cache_capacity);
            let before = solve_fleet(&apps, &env, &cfg, &cache);

            let mut revised = FleetEnv::new(cfg.seed, cfg.hours);
            revised.apply_perturbations(&perturbs);
            let inc = replan_incremental(&apps, &revised, &cfg, &cache, &before.schedule, &perturbs);

            let scratch = solve_fleet(
                &apps,
                &revised,
                &cfg,
                &EstimateCache::shared(cfg.cache_capacity),
            );
            prop_assert_eq!(
                &inc.schedule, &scratch.schedule,
                "incremental != from-scratch at {} workers", w
            );
            prop_assert_eq!(inc.schedule.digest(), scratch.schedule.digest());
            prop_assert_eq!(
                inc.solved_cells + inc.reused_cells,
                cfg.apps * cfg.hours
            );
            // A single-hour revision never re-solves more than one cell
            // per app — strictly fewer than the full grid.
            prop_assert!(inc.solved_cells <= cfg.apps);
            prop_assert!(inc.solved_cells < cfg.apps * cfg.hours);
            schedules.push(inc.schedule);
        }
        // And the incremental result itself is worker-count invariant.
        prop_assert_eq!(&schedules[0], &schedules[1]);
        prop_assert_eq!(&schedules[0], &schedules[2]);
    }
}

/// Full fleet solves are bit-identical at every worker count, and the
/// shared cache sees cross-app hits (structurally identical species
/// share estimates).
#[test]
fn full_solve_worker_invariance_and_cross_app_sharing() {
    let mut digests = Vec::new();
    for &w in &WORKER_COUNTS {
        let (cfg, env, apps) = fixture(w);
        let cache = EstimateCache::shared(cfg.cache_capacity);
        let report = solve_fleet(&apps, &env, &cfg, &cache);
        assert!(cache.hit_count() > 0, "cache must hit at {w} workers");
        digests.push(report.schedule.digest());
    }
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[0], digests[2]);
}

/// The dependency index is conservative and precise: a region-targeted
/// revision dirties exactly the apps whose permitted sets read that
/// region, and those apps re-solve only at the revised hour.
#[test]
fn dirty_set_matches_forecast_read_sets() {
    let (cfg, env, apps) = fixture(1);
    let index = DependencyIndex::build(&apps);
    let target = env.universe[3];
    let perturbs = vec![Perturbation {
        hour: 2,
        region: Some(target),
        op: PerturbOp::Scale(1.9),
    }];
    let dirty = index.dirty_cells(&env.universe, &perturbs);
    for a in 0..cfg.apps {
        let expects = index.reads(a).contains(&target);
        let got = dirty.cells.iter().any(|&(da, _)| da == a);
        assert_eq!(expects, got, "app {a} dirtiness mismatches its read set");
    }
    assert!(dirty.cells.iter().all(|&(_, h)| h == 2));
}

/// Cache capacity does not change results: a severely bounded cache
/// (forcing constant eviction) still yields the identical schedule,
/// because cached estimates are bit-equal to fresh computation.
#[test]
fn tiny_cache_capacity_preserves_schedules() {
    let (cfg, env, apps) = fixture(2);
    let unbounded = solve_fleet(
        &apps,
        &env,
        &cfg,
        &EstimateCache::shared(cfg.cache_capacity),
    );
    let tiny_cache = EstimateCache::shared(8);
    let tiny_cfg = FleetConfig {
        cache_capacity: 8,
        ..cfg
    };
    let tiny = solve_fleet(&apps, &env, &tiny_cfg, &tiny_cache);
    assert!(tiny_cache.eviction_count() > 0, "capacity 8 must evict");
    assert_eq!(unbounded.schedule, tiny.schedule);
}
