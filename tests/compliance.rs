//! Compliance integration: data-residency constraints are honored across
//! the solver, migrator, and executor (§2.3, §8).

use caribou_carbon::source::RegionalSource;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_exec::engine::WorkflowApp;
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_metrics::montecarlo::MonteCarloConfig;
use caribou_model::constraints::{Constraints, RegionFilter, Tolerances};
use caribou_model::manifest::DeploymentManifest;
use caribou_simcloud::cloud::SimCloud;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};
use caribou_workloads::traces::uniform_trace;

fn run_with_constraints(constraints: Constraints, seed: u64) -> (Caribou<RegionalSource>, usize) {
    let cloud = SimCloud::aws(seed);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(seed)).unwrap();
    let regions = cloud.regions.evaluation_regions();
    let mut config = CaribouConfig::new(regions, TransmissionScenario::BEST);
    config.mc = MonteCarloConfig {
        batch: 60,
        max_samples: 120,
        cv_threshold: 0.1,
    };
    config.hbss.max_iterations = 80;
    config.seed = seed;
    let mut caribou = Caribou::new(cloud, carbon, config);
    let bench = text2speech_censoring(InputSize::Small);
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        home: caribou.cloud.region("us-east-1").unwrap(),
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
    };
    let manifest = DeploymentManifest::new(app.name.clone(), "1.0", "us-east-1");
    let idx = caribou.deploy(app, &manifest, constraints).unwrap();
    let trace = uniform_trace(30.0, 2.5 * 86_400.0, 1500.0);
    let report = caribou.run_trace(idx, &trace);
    assert!(report.completion_rate() > 0.999);
    (caribou, idx)
}

fn base_constraints() -> Constraints {
    let bench = text2speech_censoring(InputSize::Small);
    let mut c = Constraints::unconstrained(bench.dag.node_count());
    c.tolerances = Tolerances {
        latency: 0.15,
        cost: 1.0,
        carbon: f64::INFINITY,
    };
    c
}

/// Active plans never assign a constrained node outside its permitted
/// country, even after days of re-solving.
#[test]
fn per_node_residency_is_never_violated() {
    let bench = text2speech_censoring(InputSize::Small);
    let upload = bench.dag.node_by_name("Upload").unwrap();
    let mut constraints = base_constraints();
    constraints.per_node[upload.index()] = Some(RegionFilter::countries(["US"]));

    let (caribou, idx) = run_with_constraints(constraints, 300);
    let state = caribou.workflow(idx);
    if let Some(plans) = state.router.active_plans() {
        for h in 0..24 {
            let region = plans.plan_for_hour(h).region_of(upload);
            assert_eq!(
                caribou.cloud.regions.spec(region).country,
                "US",
                "hour {h}: Upload escaped the US"
            );
        }
    } else {
        panic!("a busy workflow should have an active plan by day 2.5");
    }
}

/// Workflow-level residency restricts every node; yet the framework still
/// deploys and operates (home fallback is always permitted).
#[test]
fn workflow_level_residency_restricts_all_nodes() {
    let mut constraints = base_constraints();
    constraints.workflow = RegionFilter::countries(["US"]);

    let (caribou, idx) = run_with_constraints(constraints, 301);
    let ca = caribou.cloud.region("ca-central-1").unwrap();
    let state = caribou.workflow(idx);
    if let Some(plans) = state.router.active_plans() {
        for h in 0..24 {
            for node in state.app.dag.all_nodes() {
                assert_ne!(
                    plans.plan_for_hour(h).region_of(node),
                    ca,
                    "node escaped to Canada despite US-only workflow policy"
                );
            }
        }
    }
}

/// Per-node constraints supersede workflow-level ones: a node explicitly
/// allowed into Canada may go there even under a US-only workflow filter
/// — and emission reductions remain possible (the paper's compliance
/// argument).
#[test]
fn node_filter_supersedes_workflow_filter_in_deployed_plans() {
    let bench = text2speech_censoring(InputSize::Small);
    let t2s = bench.dag.node_by_name("Text2Speech").unwrap();
    let mut constraints = base_constraints();
    constraints.workflow = RegionFilter::countries(["US"]);
    constraints.per_node[t2s.index()] = Some(RegionFilter::any());

    let (caribou, idx) = run_with_constraints(constraints, 302);
    let ca = caribou.cloud.region("ca-central-1").unwrap();
    let state = caribou.workflow(idx);
    let plans = state
        .router
        .active_plans()
        .expect("busy workflow has an active plan");
    // The liberated node reaches the hydro grid in at least one hour...
    let t2s_in_ca = (0..24).any(|h| plans.plan_for_hour(h).region_of(t2s) == ca);
    assert!(t2s_in_ca, "the unconstrained node should use ca-central-1");
    // ...while all other nodes respect the workflow-level US policy.
    for h in 0..24 {
        for node in state.app.dag.all_nodes() {
            if node != t2s {
                assert_ne!(plans.plan_for_hour(h).region_of(node), ca);
            }
        }
    }
}
