//! Cross-component determinism: every experiment pipeline is a pure
//! function of its seeds, so published numbers are reproducible bit for
//! bit.

use caribou_bench::harness::{default_tolerances, eval_over_week, ExpEnv, FineSolver};
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_model::plan::DeploymentPlan;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};

#[test]
fn full_experiment_pipeline_is_bit_reproducible() {
    std::env::set_var("CARIBOU_FAST", "1");
    let run = || {
        let env = ExpEnv::new(600);
        let bench = text2speech_censoring(InputSize::Small);
        let home = env.home;
        let base = eval_over_week(
            &env,
            &bench,
            TransmissionScenario::BEST,
            |_| DeploymentPlan::uniform(bench.dag.node_count(), home),
            1,
        );
        let regions = env.regions.clone();
        let mut solver = FineSolver::new(
            &env,
            &bench,
            &regions,
            TransmissionScenario::BEST,
            default_tolerances(),
            2,
        );
        let fine = eval_over_week(
            &env,
            &bench,
            TransmissionScenario::BEST,
            |h| solver.plan_at(h),
            3,
        );
        (
            base.carbon_g,
            fine.carbon_g,
            fine.latency_p95_s,
            fine.cost_usd,
        )
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "identical seeds must give identical numbers");
}

#[test]
fn different_seeds_change_noise_not_conclusions() {
    std::env::set_var("CARIBOU_FAST", "1");
    let norm_for = |seed: u64| -> f64 {
        let env = ExpEnv::new(seed);
        let bench = text2speech_censoring(InputSize::Small);
        let home = env.home;
        let base = eval_over_week(
            &env,
            &bench,
            TransmissionScenario::BEST,
            |_| DeploymentPlan::uniform(bench.dag.node_count(), home),
            seed,
        );
        let regions = env.regions.clone();
        let mut solver = FineSolver::new(
            &env,
            &bench,
            &regions,
            TransmissionScenario::BEST,
            default_tolerances(),
            seed,
        );
        let fine = eval_over_week(
            &env,
            &bench,
            TransmissionScenario::BEST,
            |h| solver.plan_at(h),
            seed + 1,
        );
        fine.carbon_g / base.carbon_g
    };
    let a = norm_for(601);
    let b = norm_for(602);
    assert_ne!(a, b, "different seeds perturb the numbers");
    // ...but the headline conclusion (large best-case savings for the
    // compute-heavy workload) is seed-robust.
    assert!(a < 0.4 && b < 0.4, "a {a} b {b}");
}
