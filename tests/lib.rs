//! Integration-test host crate; all content lives in the `[[test]]` targets.
