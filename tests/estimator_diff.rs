//! Differential harness pinning the batched structure-of-arrays Monte
//! Carlo estimator to the scalar reference path: for *arbitrary*
//! (workload, plan, hour, seed, stopping rule), `estimate_batched` must
//! be the same function as `estimate_scalar` — every `f64` in the
//! returned [`EstimateSummary`] equal bit for bit, at every lane width.
//!
//! The generator grows random layered DAGs (2–7 nodes, random extra
//! edges, conditional probabilities, payload/exec distributions of every
//! `DistSpec` kind, external data, sync join nodes) and random
//! multi-region plans, so the batched path's invariant hoisting and
//! lane-ordered folds are exercised across workflow shapes no hand-written
//! case covers.

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{
    DefaultModels, EstimateSummary, MonteCarloConfig, MonteCarloEstimator, MAX_LANES,
};
use caribou_model::builder::Workflow;
use caribou_model::dist::DistSpec;
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::{RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;
use caribou_simcloud::compute::LambdaRuntime;
use caribou_simcloud::latency::LatencyModel;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_simcloud::pricing::PricingCatalog;
use proptest::prelude::*;

/// Lane widths every case is checked at (1 = degenerate batch, 4/8 =
/// partial, 16 = [`MAX_LANES`]).
const WIDTHS: [usize; 4] = [1, 4, 8, MAX_LANES];

/// Exact bit-for-bit comparison of every field of two summaries.
fn assert_bits_eq(scalar: &EstimateSummary, batched: &EstimateSummary, what: &str) {
    let pairs = [
        ("latency.mean", scalar.latency.mean, batched.latency.mean),
        ("latency.p95", scalar.latency.p95, batched.latency.p95),
        (
            "latency.std_dev",
            scalar.latency.std_dev,
            batched.latency.std_dev,
        ),
        ("cost.mean", scalar.cost.mean, batched.cost.mean),
        ("cost.p95", scalar.cost.p95, batched.cost.p95),
        ("cost.std_dev", scalar.cost.std_dev, batched.cost.std_dev),
        ("carbon.mean", scalar.carbon.mean, batched.carbon.mean),
        ("carbon.p95", scalar.carbon.p95, batched.carbon.p95),
        (
            "carbon.std_dev",
            scalar.carbon.std_dev,
            batched.carbon.std_dev,
        ),
        (
            "exec_carbon_mean",
            scalar.exec_carbon_mean,
            batched.exec_carbon_mean,
        ),
        (
            "trans_carbon_mean",
            scalar.trans_carbon_mean,
            batched.trans_carbon_mean,
        ),
    ];
    for (name, s, b) in pairs {
        assert_eq!(
            s.to_bits(),
            b.to_bits(),
            "{what}: {name} diverged (scalar {s:?} vs batched {b:?})"
        );
    }
    assert_eq!(scalar.latency.n, batched.latency.n, "{what}: latency.n");
    assert_eq!(scalar.cost.n, batched.cost.n, "{what}: cost.n");
    assert_eq!(scalar.carbon.n, batched.carbon.n, "{what}: carbon.n");
    assert_eq!(scalar.samples, batched.samples, "{what}: samples");
}

struct World {
    pricing: PricingCatalog,
    runtime: LambdaRuntime,
    latency: LatencyModel,
    carbon: TableSource,
    regions: Vec<RegionId>,
}

/// A world with the stochastic knobs ON (cold starts, execution noise):
/// the batched sampler must reproduce every draw, not just the easy ones.
fn world() -> World {
    let cat = RegionCatalog::aws_default();
    let pricing = PricingCatalog::aws_default(&cat);
    let runtime = LambdaRuntime::aws_default(&cat);
    let latency = LatencyModel::from_catalog(&cat);
    let mut carbon = TableSource::new();
    for (id, spec) in cat.iter() {
        // Distinct diurnal shapes per region so carbon depends on both the
        // placement and the hour.
        let base = 40.0 + 37.0 * (id.0 % 11) as f64;
        let values: Vec<f64> = (0..24)
            .map(|h| base + 25.0 * ((h + id.0 as usize) % 7) as f64)
            .collect();
        carbon.insert(id, CarbonSeries::new(0, values));
        let _ = spec;
    }
    let regions = ["us-east-1", "us-east-2", "us-west-2", "ca-central-1"]
        .iter()
        .map(|n| cat.id_of(n).unwrap())
        .collect();
    World {
        pricing,
        runtime,
        latency,
        carbon,
        regions,
    }
}

/// One node's genome: (dist kind, shape parameter, memory selector,
/// external-data selector).
type NodeGene = (u8, f64, u8, u8);
/// One potential extra edge's genome: (endpoint word, conditional
/// selector, probability).
type EdgeGene = (u64, u8, f64);

fn exec_dist(kind: u8, p: f64) -> DistSpec {
    match kind % 5 {
        0 => DistSpec::Constant { value: 0.2 + p },
        1 => DistSpec::Uniform {
            lo: 0.1,
            hi: 0.3 + p,
        },
        2 => DistSpec::Normal {
            mean: 0.4 + p,
            std_dev: 0.1 + p / 4.0,
        },
        3 => DistSpec::LogNormal {
            median: 0.3 + p,
            sigma: 0.2 + p / 2.0,
        },
        _ => DistSpec::Empirical {
            samples: vec![0.2, 0.3 + p, 0.6, 0.9 + p],
        },
    }
}

fn payload_dist(kind: u8, p: f64) -> DistSpec {
    match kind % 4 {
        0 => DistSpec::Constant {
            value: 2_000.0 + 60_000.0 * p,
        },
        1 => DistSpec::Uniform {
            lo: 1_000.0,
            hi: 20_000.0 + 80_000.0 * p,
        },
        2 => DistSpec::LogNormal {
            median: 30_000.0 * (0.2 + p),
            sigma: 0.4,
        },
        _ => DistSpec::Empirical {
            samples: vec![500.0, 8_000.0, 45_000.0 * (0.5 + p)],
        },
    }
}

/// Builds the workflow and plan a genome describes. Node 0 is the root;
/// every later node is invoked by an earlier one, so the DAG is connected
/// and acyclic by construction. Nodes that end up with several in-edges
/// become sync joins.
fn build_case(
    w: &World,
    nodes: &[NodeGene],
    extra_edges: &[EdgeGene],
    plan_picks: &[u64],
) -> (
    caribou_model::WorkflowDag,
    caribou_model::profile::WorkflowProfile,
    DeploymentPlan,
) {
    let n = nodes.len();
    let mut wf = Workflow::new("diff", "0.1");
    let mut handles = Vec::with_capacity(n);
    for (i, &(kind, p, mem, ext)) in nodes.iter().enumerate() {
        let mut f = wf
            .serverless_function(format!("F{i}"))
            .exec_time(exec_dist(kind, p))
            .memory_mb(512 * (1 + (mem % 4) as u32))
            .cpu_utilization(0.3 + 0.15 * (mem % 4) as f64);
        if ext % 3 == 0 {
            f = f.external_data_bytes(1.0e6 + 2.0e6 * p);
        }
        handles.push(f.register());
    }
    // Spanning edges: parent of node i drawn from its genome word.
    let mut in_degree = vec![0usize; n];
    let mut present = std::collections::HashSet::new();
    for i in 1..n {
        let parent = (nodes[i].0 as usize * 31 + i * 17) % i;
        let (kind, _, _, ext) = nodes[i];
        let cond = if ext % 2 == 0 {
            None
        } else {
            Some(0.3 + 0.6 * nodes[i].1)
        };
        wf.invoke(handles[parent], handles[i], cond)
            .payload(payload_dist(kind, nodes[i].1));
        in_degree[i] += 1;
        present.insert((parent, i));
    }
    // Extra edges from the edge genomes, duplicates and self-loops skipped.
    for &(word, kind, p) in extra_edges {
        if n < 3 {
            break;
        }
        let to = 2 + (word as usize) % (n - 2);
        let from = (word as usize >> 16) % to;
        if present.contains(&(from, to)) {
            continue;
        }
        let cond = if kind % 2 == 0 {
            None
        } else {
            Some(0.2 + 0.7 * p)
        };
        wf.invoke(handles[from], handles[to], cond)
            .payload(payload_dist(kind, p));
        in_degree[to] += 1;
        present.insert((from, to));
    }
    for (i, &d) in in_degree.iter().enumerate() {
        if d > 1 {
            wf.get_predecessor_data(handles[i]);
        }
    }
    wf.set_input(DistSpec::Uniform {
        lo: 400.0,
        hi: 6_000.0,
    });
    let (dag, profile, _) = wf.extract().unwrap();
    let assignment: Vec<RegionId> = (0..n)
        .map(|i| w.regions[plan_picks[i % plan_picks.len()] as usize % w.regions.len()])
        .collect();
    (dag, profile, DeploymentPlan::new(assignment))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary (workload, plan, hour, seed) → the batched path is
    /// bit-identical to the scalar path at widths 1/4/8/16, and the
    /// dispatching `estimate` entry point agrees too.
    #[test]
    fn batched_estimator_is_the_same_function_as_scalar(
        nodes in collection::vec((any::<u8>(), 0f64..1.0, any::<u8>(), any::<u8>()), 2..8),
        extra_edges in collection::vec((any::<u64>(), any::<u8>(), 0f64..1.0), 0..4),
        plan_picks in collection::vec(any::<u64>(), 1..8),
        rest in (0f64..24.0, any::<u64>(), 10usize..80),
    ) {
        let (hour, seed, batch) = rest;
        let w = world();
        let (dag, profile, plan) = build_case(&w, &nodes, &extra_edges, &plan_picks);
        let models = DefaultModels {
            profile: &profile,
            runtime: &w.runtime,
            latency: &w.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let est = MonteCarloEstimator {
            dag: &dag,
            profile: &profile,
            carbon_source: &w.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::WORST),
            cost_model: CostModel::new(&w.pricing),
            models: &models,
            home: w.regions[0],
            config: MonteCarloConfig {
                batch,
                max_samples: batch * 4,
                cv_threshold: 0.05,
            },
        };
        let scalar = est.estimate_scalar(&plan, hour, &mut Pcg32::seed(seed));
        for lanes in WIDTHS {
            let batched = est.estimate_batched(&plan, hour, &mut Pcg32::seed(seed), lanes);
            assert_bits_eq(&scalar, &batched, &format!("lanes={lanes} seed={seed}"));
        }
        let dispatched = est.estimate(&plan, hour, &mut Pcg32::seed(seed));
        assert_bits_eq(&scalar, &dispatched, "dispatching estimate()");
    }
}

/// The ragged tail, pinned deterministically: a batch size that is a
/// multiple of no lane width (and caps mid-batch at `max_samples`), so the
/// final lane group of every batch — and the final batch itself — is
/// partial at every width.
#[test]
fn ragged_tail_batches_stay_bit_identical() {
    let w = world();
    let nodes: Vec<NodeGene> = vec![
        (3, 0.6, 1, 3),
        (4, 0.3, 2, 0),
        (1, 0.8, 0, 1),
        (2, 0.2, 3, 0),
        (0, 0.5, 1, 2),
    ];
    let extra: Vec<EdgeGene> = vec![(7, 1, 0.4), (9_000_077, 0, 0.9)];
    let picks = vec![0u64, 2, 3, 1, 2];
    let (dag, profile, plan) = build_case(&w, &nodes, &extra, &picks);
    let models = DefaultModels {
        profile: &profile,
        runtime: &w.runtime,
        latency: &w.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let est = MonteCarloEstimator {
        dag: &dag,
        profile: &profile,
        carbon_source: &w.carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&w.pricing),
        models: &models,
        home: w.regions[0],
        // 53 % {4, 8, 16} != 0 and 200 % 53 != 0: ragged everywhere.
        config: MonteCarloConfig {
            batch: 53,
            max_samples: 200,
            cv_threshold: 0.0,
        },
    };
    let scalar = est.estimate_scalar(&plan, 17.25, &mut Pcg32::seed(4242));
    // Whole batches are drawn until the cap is met: 4 × 53 = 212.
    assert_eq!(scalar.samples, 212);
    for lanes in WIDTHS {
        let batched = est.estimate_batched(&plan, 17.25, &mut Pcg32::seed(4242), lanes);
        assert_bits_eq(&scalar, &batched, &format!("ragged lanes={lanes}"));
    }
}
