//! Measures the engine's real per-invocation allocation count with a
//! counting global allocator and asserts the buffer-pooling win: the
//! pooled `invoke_with_scratch` path must allocate measurably less than
//! the fresh-buffer `invoke` path.
//!
//! This file holds exactly one test: the counter is process-global, so
//! any sibling test running concurrently would pollute the deltas.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_exec::engine::{ExecutionEngine, InvocationScratch, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};

struct CountingAllocator;

static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

fn allocs() -> u64 {
    ALLOC_CALLS.load(Ordering::Relaxed)
}

#[test]
fn pooled_scratch_reduces_allocations_per_invocation() {
    let mut cloud = SimCloud::aws(5);
    let bench = text2speech_censoring(InputSize::Small);
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        home: cloud.region("us-east-1").unwrap(),
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
    };
    let plan = DeploymentPlan::uniform(app.dag.node_count(), app.home);
    let mut carbon = TableSource::new();
    for (id, _) in cloud.regions.iter() {
        carbon.insert(id, CarbonSeries::new(0, vec![300.0; 24 * 8]));
    }
    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        orchestrator: Orchestrator::Caribou,
    };
    engine.provision(&mut cloud, &app, &plan);

    const ROUNDS: u64 = 200;
    let mut scratch = InvocationScratch::new();
    // Warm both paths (KV tables, warm pool, the scratch itself) so the
    // measured window sees steady state only.
    for inv in 0..20u64 {
        let mut rng = Pcg32::seed(inv);
        engine.invoke(&mut cloud, &app, &plan, inv, inv as f64 * 40.0, &mut rng);
        let mut rng = Pcg32::seed(inv);
        engine.invoke_with_scratch(
            &mut cloud,
            &app,
            &plan,
            inv,
            1e5 + inv as f64 * 40.0,
            &mut rng,
            &mut scratch,
        );
    }

    let before_fresh = allocs();
    for inv in 0..ROUNDS {
        let mut rng = Pcg32::seed(1000 + inv);
        engine.invoke(
            &mut cloud,
            &app,
            &plan,
            1000 + inv,
            2e5 + inv as f64 * 40.0,
            &mut rng,
        );
    }
    let fresh = allocs() - before_fresh;

    let before_pooled = allocs();
    for inv in 0..ROUNDS {
        let mut rng = Pcg32::seed(1000 + inv);
        engine.invoke_with_scratch(
            &mut cloud,
            &app,
            &plan,
            1000 + inv,
            3e5 + inv as f64 * 40.0,
            &mut rng,
            &mut scratch,
        );
    }
    let pooled = allocs() - before_pooled;

    let fresh_per_inv = fresh as f64 / ROUNDS as f64;
    let pooled_per_inv = pooled as f64 / ROUNDS as f64;
    eprintln!(
        "alloc_budget: fresh {fresh_per_inv:.1} allocs/invocation, \
         pooled {pooled_per_inv:.1} allocs/invocation"
    );
    assert!(
        pooled_per_inv < 0.75 * fresh_per_inv,
        "pooling saved too little: fresh {fresh_per_inv:.1} vs pooled {pooled_per_inv:.1}"
    );
    // The steady-state budget: the two log-record vectors handed to the
    // caller inside the InvocationLog, and nothing else. Everything the
    // engine touches per invocation — ctx vectors, event queue, topic/key
    // strings, payload Bytes (static), KV/blob first-insert keys (free-
    // listed via reclaim), sync annotations (static table), the usage
    // meter (inline TinyMap columns), the workflow name stamp (interned)
    // — must come from reused or static storage.
    assert!(
        pooled_per_inv <= 2.0,
        "steady-state budget blown: {pooled_per_inv:.1} allocs/invocation (budget 2.0)"
    );

    // Per-phase breakdown via telemetry, asserted OUTSIDE the counting
    // windows above (the telemetry recorder itself allocates): a future
    // regression trips one of these gauges and names the subsystem that
    // started allocating instead of just moving the total.
    caribou_telemetry::enable(Box::new(caribou_telemetry::NullSink));
    let mut rng = Pcg32::seed(9999);
    engine.invoke_with_scratch(&mut cloud, &app, &plan, 9999, 4e5, &mut rng, &mut scratch);
    let session = caribou_telemetry::finish().unwrap();
    let total = session.recorder.gauges["engine.alloc_per_invocation"];
    let log_records = session.recorder.gauges["engine.alloc_per_invocation.log_records"];
    let scratch_grew = session.recorder.gauges["engine.alloc_per_invocation.scratch"];
    assert_eq!(
        log_records, 2.0,
        "log-record vectors are the only budgeted allocations"
    );
    assert_eq!(scratch_grew, 0.0, "warm scratch buffers regrew");
    assert_eq!(
        total,
        log_records + scratch_grew,
        "breakdown must sum to the total"
    );
    assert_eq!(
        total, 2.0,
        "telemetry budget gauge drifted from the measured budget"
    );
}
