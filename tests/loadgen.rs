//! Integration tests for the `caribou loadgen` sustained-load harness:
//! the merged report must be bit-identical at any worker count (1/2/8),
//! including across chunk boundaries in the persistent sharded mode; the
//! streaming sketch must track exact sorted-vector quantiles to within
//! one bucket's relative error; and the persistent shards must pay cold
//! starts exactly once per container, not once per chunk.

use caribou_core::loadgen::{
    run_loadgen, LoadReport, LoadgenConfig, LoadgenMode, CHUNK_INVOCATIONS,
};
use caribou_telemetry::{Histogram, QuantileSketch, SUB_BUCKETS};
use caribou_workloads::arrivals::ArrivalProcess;
use caribou_workloads::benchmarks::{image_processing, text2speech_censoring, InputSize};
use proptest::prelude::*;

fn config(n: usize, seed: u64, workers: usize, arrivals: ArrivalProcess) -> LoadgenConfig {
    LoadgenConfig {
        invocations: n,
        seed,
        workers,
        arrivals,
        ..LoadgenConfig::default()
    }
}

fn run(n: usize, seed: u64, workers: usize, arrivals: ArrivalProcess) -> LoadReport {
    let bench = text2speech_censoring(InputSize::Small);
    run_loadgen(&bench, &config(n, seed, workers, arrivals)).expect("calibrated catalog")
}

fn assert_identical(a: &LoadReport, b: &LoadReport) {
    assert_eq!(a.invocations(), b.invocations());
    for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
        assert_eq!(
            a.latency_quantile(q).to_bits(),
            b.latency_quantile(q).to_bits(),
            "quantile {q} diverged"
        );
    }
    assert_eq!(a.mean_latency_s().to_bits(), b.mean_latency_s().to_bits());
    assert_eq!(a.latency.min().to_bits(), b.latency.min().to_bits());
    assert_eq!(a.latency.max().to_bits(), b.latency.max().to_bits());
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failovers, b.failovers);
    assert_eq!(a.cold_starts, b.cold_starts);
    assert_eq!(a.warm_starts, b.warm_starts);
    assert_eq!(a.exec_carbon_g.to_bits(), b.exec_carbon_g.to_bits());
    assert_eq!(a.trans_carbon_g.to_bits(), b.trans_carbon_g.to_bits());
    assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharding across any worker count merges to exactly the 1-worker
    /// report.
    #[test]
    fn shard_merge_preserves_outcomes(
        n in 1usize..400,
        seed in any::<u64>(),
        workers in 2usize..9,
        arrival_idx in 0usize..3,
    ) {
        let arrivals = match arrival_idx {
            0 => ArrivalProcess::Poisson { rate_per_s: 20.0 },
            1 => ArrivalProcess::Diurnal { rate_per_s: 20.0 },
            _ => ArrivalProcess::Bursty { rate_per_s: 20.0 },
        };
        let sequential = run(n, seed, 1, arrivals);
        let sharded = run(n, seed, workers, arrivals);
        assert_identical(&sequential, &sharded);
    }

    /// Histogram merge: bucket counts, count, min and max are exactly
    /// order-insensitive; identical fold order is bit-reproducible.
    #[test]
    fn histogram_merge_is_order_insensitive(
        values in collection::vec(1e-6f64..1e4, 1..300),
        split in 1usize..10,
    ) {
        let mut parts: Vec<Histogram> = (0..split).map(|_| Histogram::default()).collect();
        let mut whole = Histogram::default();
        for (i, v) in values.iter().enumerate() {
            parts[i % split].observe(*v);
            whole.observe(*v);
        }
        let mut fwd = Histogram::default();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = Histogram::default();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(fwd.buckets, whole.buckets);
        prop_assert_eq!(fwd.count, whole.count);
        prop_assert_eq!(fwd.min.to_bits(), whole.min.to_bits());
        prop_assert_eq!(fwd.max.to_bits(), whole.max.to_bits());
        prop_assert_eq!(fwd.buckets, rev.buckets);
        prop_assert_eq!(fwd.min.to_bits(), rev.min.to_bits());
        prop_assert_eq!(fwd.max.to_bits(), rev.max.to_bits());
        // Same fold order twice is bit-identical including the f64 sum.
        let mut again = Histogram::default();
        for p in &parts {
            again.merge(p);
        }
        prop_assert_eq!(fwd.sum.to_bits(), again.sum.to_bits());
    }

    /// Sketch quantiles stay within one bucket's relative width of the
    /// exact nearest-rank quantiles of the same values.
    #[test]
    fn sketch_tracks_exact_quantiles(
        values in collection::vec(1e-4f64..1e3, 10..500),
    ) {
        let mut sketch = QuantileSketch::new();
        let mut exact = values.clone();
        for v in &values {
            sketch.observe(*v);
        }
        exact.sort_by(f64::total_cmp);
        for q in [0.1, 0.5, 0.9, 0.95, 0.99] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let est = sketch.quantile(q);
            let rel = (est - truth).abs() / truth;
            prop_assert!(
                rel <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
                "q={} est={} truth={} rel={}", q, est, truth, rel
            );
        }
    }
}

/// Persistent sharding stays bit-identical at 1/2/8 workers when the run
/// spans multiple chunks (and therefore multiple shards and exchange
/// ticks).
#[test]
fn multi_chunk_run_is_identical_at_1_2_8_workers() {
    let n = CHUNK_INVOCATIONS * 2 + 123;
    let arrivals = ArrivalProcess::Diurnal { rate_per_s: 120.0 };
    let a = run(n, 9, 1, arrivals);
    let b = run(n, 9, 2, arrivals);
    let c = run(n, 9, 8, arrivals);
    assert_eq!(a.invocations(), n as u64);
    assert_eq!(a.chunks, 3);
    assert_eq!(a.shards, 3, "shard count caps at the chunk count");
    assert_identical(&a, &b);
    assert_identical(&a, &c);
}

/// The fan-out benchmark crosses a chunk boundary without disturbing the
/// merge order.
#[test]
fn chunk_boundary_is_seamless() {
    let bench = image_processing(InputSize::Small);
    let n = CHUNK_INVOCATIONS + 37;
    let mk = |workers| config(n, 7, workers, ArrivalProcess::Poisson { rate_per_s: 50.0 });
    let a = run_loadgen(&bench, &mk(1)).unwrap();
    let b = run_loadgen(&bench, &mk(4)).unwrap();
    assert_eq!(a.invocations(), n as u64);
    assert_identical(&a, &b);
    assert_eq!(a.completed, n as u64);
}

/// The sketch in a real report tracks the exact per-invocation latency
/// vector (captured on the side) to within one bucket's relative error.
#[test]
fn report_sketch_matches_captured_latencies() {
    let bench = text2speech_censoring(InputSize::Small);
    let cfg = LoadgenConfig {
        capture_latencies: true,
        ..config(1500, 3, 2, ArrivalProcess::Poisson { rate_per_s: 50.0 })
    };
    let report = run_loadgen(&bench, &cfg).unwrap();
    let mut exact = report.exact_latencies_s.clone().expect("captured");
    assert_eq!(exact.len(), 1500);
    exact.sort_by(f64::total_cmp);
    for q in [0.5, 0.95, 0.99] {
        let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
        let truth = exact[rank - 1];
        let est = report.latency_quantile(q);
        let rel = (est - truth).abs() / truth;
        assert!(
            rel <= 1.0 / SUB_BUCKETS as f64 + 1e-9,
            "q={q} est={est} truth={truth} rel={rel}"
        );
    }
    // The running moments are exact, not sketched.
    let mean = exact.iter().sum::<f64>() / exact.len() as f64;
    assert!((report.mean_latency_s() - mean).abs() < 1e-9);
}

/// Hand-computed cold-start schedule: with an effectively infinite
/// keep-alive every container goes cold exactly once per simulation
/// state that has to rebuild it. Persistent shards pay `shards × nodes`
/// cold starts for the whole run; the legacy chunked mode re-pays
/// `nodes` at every chunk boundary — the exact bug this PR removes.
#[test]
fn persistent_shards_pay_cold_starts_once_not_per_chunk() {
    let bench = text2speech_censoring(InputSize::Small);
    let nodes = bench.dag.node_count() as u64;
    let n = CHUNK_INVOCATIONS * 2; // exactly 2 chunks
    let arrivals = ArrivalProcess::Poisson { rate_per_s: 200.0 };
    let base = LoadgenConfig {
        keep_alive_s: 1e9,
        ..config(n, 11, 2, arrivals)
    };

    // One persistent shard: both chunks share one warm pool — each
    // container is cold exactly once in the whole run.
    let one = run_loadgen(
        &bench,
        &LoadgenConfig {
            shards: 1,
            ..base.clone()
        },
    )
    .unwrap();
    assert_eq!(one.cold_starts, nodes);

    // Two persistent shards: each shard's round-0 chunk warms its own
    // pool before the first exchange, so each pays `nodes` once.
    let two = run_loadgen(
        &bench,
        &LoadgenConfig {
            shards: 2,
            ..base.clone()
        },
    )
    .unwrap();
    assert_eq!(two.cold_starts, 2 * nodes);

    // Chunked mode: the warm pool resets at every chunk boundary, so
    // every chunk re-pays the full cold-start bill.
    let chunked = run_loadgen(
        &bench,
        &LoadgenConfig {
            mode: LoadgenMode::Chunked,
            ..base
        },
    )
    .unwrap();
    assert_eq!(chunked.cold_starts, 2 * nodes);
    // Totals agree: every node of every invocation executed.
    assert_eq!(one.cold_starts + one.warm_starts, n as u64 * nodes);
    assert_eq!(chunked.cold_starts + chunked.warm_starts, n as u64 * nodes);
}

/// With a huge keep-alive and more chunks than shards, chunked mode's
/// cold-start rate scales with the chunk count while persistent mode's
/// stays at one bill per shard.
#[test]
fn chunk_resets_inflate_cold_start_rate() {
    let bench = text2speech_censoring(InputSize::Small);
    let nodes = bench.dag.node_count() as u64;
    let n = CHUNK_INVOCATIONS * 3; // 3 chunks
    let base = LoadgenConfig {
        shards: 1,
        keep_alive_s: 1e9,
        ..config(n, 13, 2, ArrivalProcess::Poisson { rate_per_s: 200.0 })
    };
    let persistent = run_loadgen(&bench, &base).unwrap();
    let chunked = run_loadgen(
        &bench,
        &LoadgenConfig {
            mode: LoadgenMode::Chunked,
            ..base
        },
    )
    .unwrap();
    assert_eq!(persistent.cold_starts, nodes);
    assert_eq!(chunked.cold_starts, 3 * nodes);
    assert!(chunked.cold_start_rate() > persistent.cold_start_rate() * 2.9);
}

/// Arrival times are part of the contract: a different seed must change
/// the report (sanity check that determinism is not degeneracy).
#[test]
fn different_seeds_differ() {
    let a = run(200, 1, 1, ArrivalProcess::Poisson { rate_per_s: 20.0 });
    let b = run(200, 2, 1, ArrivalProcess::Poisson { rate_per_s: 20.0 });
    assert_ne!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
    assert_ne!(a.mean_latency_s().to_bits(), b.mean_latency_s().to_bits());
}
