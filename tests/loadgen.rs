//! Integration tests for the `caribou loadgen` sustained-load harness:
//! shard merging must preserve per-invocation outcomes bit-for-bit
//! against a 1-worker run, for any invocation count, seed, worker count,
//! and arrival process.

use caribou_core::loadgen::{run_loadgen, LoadReport, LoadgenConfig};
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_workloads::arrivals::ArrivalProcess;
use caribou_workloads::benchmarks::{image_processing, text2speech_censoring, InputSize};
use proptest::prelude::*;

fn run(n: usize, seed: u64, workers: usize, arrivals: ArrivalProcess) -> LoadReport {
    let bench = text2speech_censoring(InputSize::Small);
    run_loadgen(
        &bench,
        &LoadgenConfig {
            invocations: n,
            seed,
            workers,
            arrivals,
            scenario: TransmissionScenario::BEST,
        },
    )
    .expect("default catalog is calibrated")
}

fn assert_identical(a: &LoadReport, b: &LoadReport) {
    assert_eq!(a.latencies_s.len(), b.latencies_s.len());
    for (i, (x, y)) in a.latencies_s.iter().zip(&b.latencies_s).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "latency diverged at invocation {i}"
        );
    }
    assert_eq!(a.completed, b.completed);
    assert_eq!(a.failovers, b.failovers);
    assert_eq!(a.exec_carbon_g.to_bits(), b.exec_carbon_g.to_bits());
    assert_eq!(a.trans_carbon_g.to_bits(), b.trans_carbon_g.to_bits());
    assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Sharding across any worker count merges to exactly the 1-worker
    /// per-invocation outcomes.
    #[test]
    fn shard_merge_preserves_outcomes(
        n in 1usize..400,
        seed in any::<u64>(),
        workers in 2usize..6,
        arrival_idx in 0usize..3,
    ) {
        let arrivals = match arrival_idx {
            0 => ArrivalProcess::Poisson { rate_per_s: 20.0 },
            1 => ArrivalProcess::Diurnal { rate_per_s: 20.0 },
            _ => ArrivalProcess::Bursty { rate_per_s: 20.0 },
        };
        let sequential = run(n, seed, 1, arrivals);
        let sharded = run(n, seed, workers, arrivals);
        assert_identical(&sequential, &sharded);
    }
}

/// The fan-out benchmark crosses a chunk boundary without disturbing the
/// merge order.
#[test]
fn chunk_boundary_is_seamless() {
    let bench = image_processing(InputSize::Small);
    let n = caribou_core::loadgen::CHUNK_INVOCATIONS + 37;
    let config = |workers| LoadgenConfig {
        invocations: n,
        seed: 7,
        workers,
        arrivals: ArrivalProcess::Poisson { rate_per_s: 50.0 },
        scenario: TransmissionScenario::BEST,
    };
    let a = run_loadgen(&bench, &config(1)).unwrap();
    let b = run_loadgen(&bench, &config(4)).unwrap();
    assert_eq!(a.latencies_s.len(), n);
    assert_identical(&a, &b);
    assert_eq!(a.completed, n as u64);
}

/// Arrival times are part of the contract: a different seed must change
/// the report (sanity check that determinism is not degeneracy).
#[test]
fn different_seeds_differ() {
    let a = run(200, 1, 1, ArrivalProcess::Poisson { rate_per_s: 20.0 });
    let b = run(200, 2, 1, ArrivalProcess::Poisson { rate_per_s: 20.0 });
    assert_ne!(a.latencies_s, b.latencies_s);
}
