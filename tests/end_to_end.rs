//! End-to-end integration: every benchmark workload deployed and run
//! through the full framework on the simulated cloud.

use caribou_carbon::source::RegionalSource;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_core::manager::ManagerConfig;
use caribou_exec::engine::WorkflowApp;
use caribou_metrics::carbonmodel::TransmissionScenario;
use caribou_metrics::montecarlo::MonteCarloConfig;
use caribou_model::manifest::DeploymentManifest;
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_solver::hbss::HbssParams;
use caribou_workloads::benchmarks::{all_benchmarks, Benchmark, InputSize};
use caribou_workloads::traces::{azure_trace, uniform_trace};

fn fast_config(regions: Vec<caribou_model::region::RegionId>) -> CaribouConfig {
    let mut config = CaribouConfig::new(regions, TransmissionScenario::BEST);
    config.mc = MonteCarloConfig {
        batch: 60,
        max_samples: 120,
        cv_threshold: 0.1,
    };
    config.hbss = HbssParams {
        max_iterations: 60,
        ..HbssParams::default()
    };
    config
}

fn deploy_benchmark(caribou: &mut Caribou<RegionalSource>, bench: &Benchmark) -> usize {
    let mut constraints = bench.constraints.clone();
    constraints.tolerances.latency = 0.15;
    constraints.tolerances.cost = 1.0;
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        home: caribou.cloud.region("us-east-1").unwrap(),
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
    };
    let manifest = DeploymentManifest::new(app.name.clone(), "1.0", "us-east-1");
    caribou
        .deploy(app, &manifest, constraints)
        .expect("deploys")
}

#[test]
fn every_benchmark_runs_through_the_framework() {
    for bench in all_benchmarks(InputSize::Small) {
        let cloud = SimCloud::aws(100);
        let carbon =
            RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(100))
                .unwrap();
        let regions = cloud.regions.evaluation_regions();
        let mut caribou = Caribou::new(cloud, carbon, fast_config(regions));
        let idx = deploy_benchmark(&mut caribou, &bench);
        let trace = uniform_trace(30.0, 6.0 * 3600.0, 800.0);
        let report = caribou.run_trace(idx, &trace);
        assert_eq!(report.samples.len(), trace.len(), "{}", bench.name);
        assert!(
            report.completion_rate() > 0.999,
            "{}: completion {}",
            bench.name,
            report.completion_rate()
        );
        assert!(report.workflow_carbon_g() > 0.0, "{}", bench.name);
        assert!(report.total_cost_usd() > 0.0, "{}", bench.name);
        assert!(report.mean_latency_s() > 0.0, "{}", bench.name);
    }
}

#[test]
fn compute_heavy_benchmark_shifts_and_saves_carbon() {
    let bench = caribou_workloads::benchmarks::video_analytics(InputSize::Small);
    let cloud = SimCloud::aws(101);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(101)).unwrap();
    let regions = cloud.regions.evaluation_regions();
    let mut caribou = Caribou::new(cloud, carbon, fast_config(regions));
    let idx = deploy_benchmark(&mut caribou, &bench);
    let trace = uniform_trace(30.0, 3.0 * 86_400.0, 1500.0);
    let report = caribou.run_trace(idx, &trace);
    assert!(!report.dp_generations.is_empty(), "plans were solved");

    let home = caribou.cloud.region("us-east-1").unwrap();
    let offloaded = report
        .samples
        .iter()
        .filter(|s| s.at_s > 2.0 * 86_400.0 && !s.benchmark_traffic)
        .filter(|s| s.majority_region != home)
        .count();
    assert!(offloaded > 0, "production traffic should shift regions");

    let early: Vec<f64> = report
        .samples
        .iter()
        .filter(|s| s.at_s < 6.0 * 3600.0 && !s.benchmark_traffic)
        .map(|s| s.carbon_g())
        .collect();
    let late: Vec<f64> = report
        .samples
        .iter()
        .filter(|s| s.at_s > 2.5 * 86_400.0 && !s.benchmark_traffic)
        .map(|s| s.carbon_g())
        .collect();
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&late) < mean(&early) * 0.6,
        "early {} late {}",
        mean(&early),
        mean(&late)
    );
}

#[test]
fn migrations_copy_images_and_create_topics() {
    let bench = caribou_workloads::benchmarks::text2speech_censoring(InputSize::Small);
    let cloud = SimCloud::aws(102);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(102)).unwrap();
    let regions = cloud.regions.evaluation_regions();
    let mut caribou = Caribou::new(cloud, carbon, fast_config(regions));
    let idx = deploy_benchmark(&mut caribou, &bench);
    let trace = uniform_trace(30.0, 2.0 * 86_400.0, 2000.0);
    let report = caribou.run_trace(idx, &trace);
    if report.dp_generations.is_empty() {
        panic!("expected at least one solve for a busy workflow");
    }
    // Some migration happened: image replicas exist beyond the home region.
    assert!(
        report.migration_egress_bytes > 0.0,
        "crane copies charged egress"
    );
    let ca = caribou.cloud.region("ca-central-1").unwrap();
    assert!(
        caribou
            .cloud
            .registry
            .has_replica("text2speech_censoring:1.0", ca),
        "image replicated to the clean region"
    );
    assert!(caribou.cloud.iam.role_exists("text2speech_censoring", ca));
}

#[test]
fn azure_trace_week_is_stable_for_large_inputs() {
    let bench = caribou_workloads::benchmarks::rag_data_ingestion(InputSize::Large);
    let cloud = SimCloud::aws(103);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(103)).unwrap();
    let regions = cloud.regions.evaluation_regions();
    let mut caribou = Caribou::new(cloud, carbon, fast_config(regions));
    let idx = deploy_benchmark(&mut caribou, &bench);
    let trace = azure_trace(30.0, 2.5 * 86_400.0, 600.0, &mut Pcg32::seed(103));
    let report = caribou.run_trace(idx, &trace);
    assert!(report.completion_rate() > 0.999);
    // Framework overhead must remain a small fraction of workflow carbon
    // (§5.2: net gains require overhead below savings).
    assert!(report.framework_carbon_g < 0.1 * report.workflow_carbon_g());
}

#[test]
fn run_is_deterministic_per_seed() {
    let run = || {
        let bench = caribou_workloads::benchmarks::dna_visualization(InputSize::Small);
        let cloud = SimCloud::aws(104);
        let carbon =
            RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(104))
                .unwrap();
        let regions = cloud.regions.evaluation_regions();
        let mut caribou = Caribou::new(cloud, carbon, fast_config(regions));
        let idx = deploy_benchmark(&mut caribou, &bench);
        let trace = uniform_trace(30.0, 86_400.0, 500.0);
        caribou.run_trace(idx, &trace)
    };
    let a = run();
    let b = run();
    assert_eq!(a.samples.len(), b.samples.len());
    assert_eq!(a.workflow_carbon_g(), b.workflow_carbon_g());
    assert_eq!(a.dp_generations, b.dp_generations);
}

#[test]
fn manager_cadence_relaxes_when_plans_stabilize() {
    let bench = caribou_workloads::benchmarks::text2speech_censoring(InputSize::Small);
    let cloud = SimCloud::aws(105);
    let carbon =
        RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(105)).unwrap();
    let regions = cloud.regions.evaluation_regions();
    let mut config = fast_config(regions);
    config.manager = ManagerConfig::default();
    let mut caribou = Caribou::new(cloud, carbon, config);
    let idx = deploy_benchmark(&mut caribou, &bench);
    let trace = uniform_trace(30.0, 7.0 * 86_400.0, 2000.0);
    let report = caribou.run_trace(idx, &trace);
    // The post-solve cadence is bounded below by one plan horizon (24 h):
    // no solve storms, regardless of how noisy the solved plans are. (The
    // stretch-on-stability behaviour is unit-tested on the manager and
    // visible in the full-resolution fig11 run.)
    let gens = &report.dp_generations;
    assert!(gens.len() >= 2, "at least the learning phase happened");
    assert!(gens.len() <= 8, "no more than daily solving: {gens:?}");
    for w in gens.windows(2) {
        assert!(
            w[1] - w[0] >= 86_400.0 - 1.0,
            "solves closer than the plan horizon: {gens:?}"
        );
    }
}
