//! Property-based integration tests (proptest) over randomly generated
//! workflows, plans, and traces.

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::logs::{InvocationLog, LogStore, NodeRecord};
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig, MonteCarloEstimator};
use caribou_model::dag::{Edge, NodeId, NodeMeta, WorkflowDag};
use caribou_model::dist::DistSpec;
use caribou_model::plan::DeploymentPlan;
use caribou_model::profile::{EdgeProfile, NodeProfile, WorkflowProfile};
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use proptest::prelude::*;

/// A randomly generated, always-valid workflow: node 0 is the unique
/// start; every later node gets one parent among its predecessors plus
/// optional extra parents (making it a synchronization node).
#[derive(Debug, Clone)]
struct RandomWorkflow {
    dag: WorkflowDag,
    profile: WorkflowProfile,
}

fn random_workflow() -> impl Strategy<Value = RandomWorkflow> {
    (2usize..8, any::<u64>()).prop_map(|(n, seed)| {
        let mut rng = Pcg32::seed(seed);
        let nodes: Vec<NodeMeta> = (0..n)
            .map(|i| NodeMeta {
                name: format!("n{i}"),
                source_function: format!("f{i}"),
            })
            .collect();
        let mut edges = Vec::new();
        for i in 1..n {
            let parent = rng.next_index(i);
            edges.push(Edge {
                from: NodeId(parent as u32),
                to: NodeId(i as u32),
                conditional: rng.chance(0.3),
            });
            // Occasionally add a second parent, creating a sync node.
            if i >= 2 && rng.chance(0.35) {
                let mut second = rng.next_index(i);
                if second == parent {
                    second = (second + 1) % i;
                }
                if second != parent {
                    edges.push(Edge {
                        from: NodeId(second as u32),
                        to: NodeId(i as u32),
                        conditional: rng.chance(0.3),
                    });
                }
            }
        }
        let dag = WorkflowDag::new("random", "0.1", nodes, edges).expect("constructed valid");
        let profile = WorkflowProfile {
            nodes: (0..n)
                .map(|_| NodeProfile {
                    memory_mb: [512, 1024, 1769][rng.next_index(3)],
                    exec_time: DistSpec::Constant {
                        value: rng.uniform(0.2, 5.0),
                    },
                    cpu_utilization: rng.uniform(0.3, 0.95),
                    external_data_bytes: if rng.chance(0.3) {
                        rng.uniform(1e4, 1e6)
                    } else {
                        0.0
                    },
                })
                .collect(),
            edges: dag
                .all_edges()
                .map(|e| EdgeProfile {
                    payload_bytes: DistSpec::Constant {
                        value: rng.uniform(1e3, 1e6),
                    },
                    probability: if dag.edge(e).conditional {
                        rng.uniform(0.1, 0.9)
                    } else {
                        1.0
                    },
                })
                .collect(),
            input_bytes: DistSpec::Constant {
                value: rng.uniform(1e3, 1e5),
            },
        };
        profile.validate(&dag).expect("constructed profile valid");
        RandomWorkflow { dag, profile }
    })
}

fn flat_carbon(cloud: &SimCloud) -> TableSource {
    let mut t = TableSource::new();
    for (id, _) in cloud.regions.iter() {
        t.insert(id, CarbonSeries::new(0, vec![200.0; 24]));
    }
    t
}

fn random_plan(dag: &WorkflowDag, regions: &[RegionId], seed: u64) -> DeploymentPlan {
    let mut rng = Pcg32::seed(seed ^ 0xdead);
    DeploymentPlan::new(
        (0..dag.node_count())
            .map(|_| regions[rng.next_index(regions.len())])
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The execution engine respects causality on every random workflow
    /// and random deployment plan: a node starts only after each taken
    /// predecessor finished, every node executes at most once, and the
    /// end-to-end latency equals the last finish time.
    #[test]
    fn engine_respects_causality(wf in random_workflow(), seed in any::<u64>()) {
        let mut cloud = SimCloud::aws(seed);
        cloud.compute.cold_start_prob = 0.0;
        let carbon = flat_carbon(&cloud);
        let regions = cloud.regions.evaluation_regions();
        let app = WorkflowApp {
            name: "random".into(),
            dag: wf.dag.clone(),
            profile: wf.profile.clone(),
            home: cloud.region("us-east-1").unwrap(),
        };
        let plan = random_plan(&wf.dag, &regions, seed);
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Caribou,
        };
        engine.provision(&mut cloud, &app, &plan);
        let out = engine.invoke(&mut cloud, &app, &plan, 1, 100.0, &mut Pcg32::seed(seed));
        prop_assert!(out.completed);

        // Each node at most once.
        let mut seen = std::collections::HashSet::new();
        for n in &out.log.nodes {
            prop_assert!(seen.insert(n.node), "node {} executed twice", n.node);
        }
        // Start node always executes.
        prop_assert!(seen.contains(&wf.dag.start().0));

        // Causality along taken edges.
        let rec = |id: u32| out.log.nodes.iter().find(|n| n.node == id);
        for e in &out.log.edges {
            if !e.taken {
                continue;
            }
            let from = wf.dag.edge(caribou_model::dag::EdgeId(e.edge)).from.0;
            let to = wf.dag.edge(caribou_model::dag::EdgeId(e.edge)).to.0;
            if let (Some(f), Some(t)) = (rec(from), rec(to)) {
                prop_assert!(
                    t.start_s >= f.start_s + f.duration_s - 1e-9,
                    "edge {}->{} violates causality", from, to
                );
            }
        }
        // e2e = last finish.
        let last_finish = out
            .log
            .nodes
            .iter()
            .map(|n| n.start_s + n.duration_s)
            .fold(0.0f64, f64::max);
        prop_assert!((out.e2e_latency_s - last_finish).abs() < 1e-9);
        // A node with no taken incoming edge must not execute.
        for n in &out.log.nodes {
            if NodeId(n.node) == wf.dag.start() {
                continue;
            }
            let any_taken = out.log.edges.iter().any(|e| {
                e.taken && wf.dag.edge(caribou_model::dag::EdgeId(e.edge)).to.0 == n.node
            });
            prop_assert!(any_taken, "node {} ran without a taken in-edge", n.node);
        }
    }

    /// The Monte Carlo estimator is finite, positive, and internally
    /// consistent on random workflows.
    #[test]
    fn monte_carlo_estimates_are_sane(wf in random_workflow(), seed in any::<u64>()) {
        let mut cloud = SimCloud::aws(seed);
        cloud.compute.cold_start_prob = 0.0;
        let carbon = flat_carbon(&cloud);
        let regions = cloud.regions.evaluation_regions();
        let home = cloud.region("us-east-1").unwrap();
        let plan = random_plan(&wf.dag, &regions, seed.wrapping_add(1));
        let models = DefaultModels {
            profile: &wf.profile,
            runtime: &cloud.compute,
            latency: &cloud.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let est = MonteCarloEstimator {
            dag: &wf.dag,
            profile: &wf.profile,
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&cloud.pricing),
            models: &models,
            home,
            config: MonteCarloConfig {
                batch: 50,
                max_samples: 100,
                cv_threshold: 0.1,
            },
        };
        let s = est.estimate(&plan, 0.5, &mut Pcg32::seed(seed));
        prop_assert!(s.latency.mean.is_finite() && s.latency.mean > 0.0);
        prop_assert!(s.cost.mean > 0.0);
        prop_assert!(s.carbon.mean > 0.0);
        prop_assert!(s.latency.p95 >= s.latency.mean * 0.5);
        // Carbon decomposes into execution + transmission.
        prop_assert!(
            (s.exec_carbon_mean + s.trans_carbon_mean - s.carbon.mean).abs()
                / s.carbon.mean < 0.05
        );
        // The critical path is at least the start node's execution time.
        let start_exec = wf.profile.nodes[wf.dag.start().index()].exec_time.mean();
        prop_assert!(s.latency.mean >= start_exec * 0.9);
    }

    /// Log retention never exceeds its cap nor its window.
    #[test]
    fn log_retention_invariants(cap in 1usize..50, count in 1usize..200, seed in any::<u64>()) {
        let mut store = LogStore::with_cap(cap);
        let mut rng = Pcg32::seed(seed);
        for i in 0..count {
            let at = i as f64 * rng.uniform(10.0, 100_000.0);
            store.record(InvocationLog {
                workflow: "wf".into(),
                at_s: at,
                benchmark_traffic: false,
                nodes: vec![NodeRecord {
                    node: 0,
                    region: RegionId(rng.next_bounded(5) as u16),
                    duration_s: 1.0,
                    cpu_total_time_s: 0.5,
                    memory_mb: 1024,
                    start_s: 0.0,
                }],
                edges: vec![],
                e2e_latency_s: 1.0,
                cost_usd: 0.0,
            });
            prop_assert!(store.len() <= cap.max(1));
        }
        if let (Some(first), Some(last)) = (
            store.logs().first().map(|l| l.at_s),
            store.logs().last().map(|l| l.at_s),
        ) {
            prop_assert!(last - first <= 30.0 * 86_400.0 + 1e-6);
        }
    }

    /// Deployment-plan diff/set round trips.
    #[test]
    fn plan_diff_set_round_trip(n in 1usize..12, seed in any::<u64>()) {
        let mut rng = Pcg32::seed(seed);
        let a = DeploymentPlan::new(
            (0..n).map(|_| RegionId(rng.next_bounded(6) as u16)).collect(),
        );
        let b = DeploymentPlan::new(
            (0..n).map(|_| RegionId(rng.next_bounded(6) as u16)).collect(),
        );
        let diff = a.diff(&b);
        // Applying b's assignments at the diff indices turns a into b.
        let mut c = a.clone();
        for node in &diff {
            c.set(*node, b.region_of(*node));
        }
        prop_assert_eq!(c, b.clone());
        // Diff is symmetric in size.
        prop_assert_eq!(diff.len(), b.diff(&a).len());
    }

    /// The synthetic carbon source is strictly positive and deterministic
    /// over arbitrary query times, including negative (pre-epoch) hours.
    #[test]
    fn synthetic_carbon_positive_everywhere(hour in -5000.0f64..5000.0, seed in any::<u64>()) {
        use caribou_carbon::synth::SyntheticCarbonSource;
        let s = SyntheticCarbonSource::aws_calibrated(seed);
        for zone in ["US-MIDA-PJM", "US-CAL-CISO", "US-NW-PACW", "CA-QC"] {
            let v = s.zone_intensity(zone, hour).unwrap();
            prop_assert!(v > 0.0 && v.is_finite());
            prop_assert_eq!(v, s.zone_intensity(zone, hour).unwrap());
        }
    }

    /// Holt-Winters forecasts have the requested horizon and stay finite
    /// and non-negative on arbitrary positive series.
    #[test]
    fn forecast_shape_invariants(seed in any::<u64>(), horizon in 1usize..200) {
        use caribou_carbon::forecast::HoltWinters;
        let mut rng = Pcg32::seed(seed);
        let data: Vec<f64> = (0..96)
            .map(|h| {
                200.0
                    + 50.0 * (std::f64::consts::TAU * (h % 24) as f64 / 24.0).cos()
                    + rng.normal(0.0, 10.0)
            })
            .collect();
        let hw = HoltWinters::fit(&data, 24);
        let f = hw.forecast(horizon);
        prop_assert_eq!(f.len(), horizon);
        prop_assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
