//! Solver regression suite for the deterministic parallel evaluation
//! engine: whatever the worker count, a solve is a pure function of its
//! seeds, and every cache hit is bit-equal to the fresh computation it
//! replaced.

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{
    DefaultModels, MonteCarloConfig, MonteCarloEstimator, MAX_LANES,
};
use caribou_model::builder::Workflow;
use caribou_model::constraints::{Objective, Tolerances};
use caribou_model::dist::DistSpec;
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::RegionCatalog;
use caribou_model::rng::Pcg32;
use caribou_simcloud::compute::LambdaRuntime;
use caribou_simcloud::latency::LatencyModel;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_simcloud::pricing::PricingCatalog;
use caribou_solver::context::SolverContext;
use caribou_solver::engine::EvalEngine;
use caribou_solver::hbss::HbssSolver;
use caribou_solver::hourly::solve_hourly_with;
use proptest::prelude::*;

/// Worker counts every invariant is checked across.
const WORKER_COUNTS: [usize; 3] = [1, 2, 8];

/// Builds a small diurnal two-node world and hands the solver context to
/// `f`. The context borrows a pile of locals, hence the closure shape.
fn with_ctx<R>(f: impl FnOnce(&SolverContext<'_, TableSource, DefaultModels<'_>>) -> R) -> R {
    let cat = RegionCatalog::aws_default();
    let pricing = PricingCatalog::aws_default(&cat);
    let mut runtime = LambdaRuntime::aws_default(&cat);
    runtime.cold_start_prob = 0.0;
    let latency = LatencyModel::from_catalog(&cat);
    let east = cat.id_of("us-east-1").unwrap();
    let west = cat.id_of("us-west-2").unwrap();
    let ca = cat.id_of("ca-central-1").unwrap();
    // Carbon with per-region diurnal structure so different hours pick
    // different winners and the solver has real work to do.
    let mut carbon = TableSource::new();
    for (id, _) in cat.iter() {
        let values: Vec<f64> = (0..24)
            .map(|h| {
                if id == west {
                    if h < 12 {
                        60.0
                    } else {
                        800.0
                    }
                } else if id == ca {
                    120.0 + 10.0 * (h % 6) as f64
                } else {
                    380.0
                }
            })
            .collect();
        carbon.insert(id, CarbonSeries::new(0, values));
    }
    let mut wf = Workflow::new("w", "0.1");
    let a = wf
        .serverless_function("A")
        .exec_time(DistSpec::Constant { value: 5.0 })
        .register();
    let b = wf
        .serverless_function("B")
        .exec_time(DistSpec::Uniform { lo: 4.0, hi: 8.0 })
        .register();
    wf.invoke(a, b, None)
        .payload(DistSpec::Constant { value: 8_000.0 });
    let (dag, profile, _) = wf.extract().unwrap();
    let permitted = vec![vec![east, west, ca], vec![east, west, ca]];
    let models = DefaultModels {
        profile: &profile,
        runtime: &runtime,
        latency: &latency,
        orchestrator: Orchestrator::Caribou,
    };
    let ctx = SolverContext {
        dag: &dag,
        profile: &profile,
        permitted: &permitted,
        home: east,
        objective: Objective::Carbon,
        tolerances: Tolerances {
            latency: 0.5,
            cost: 0.5,
            carbon: f64::INFINITY,
        },
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model: CostModel::new(&pricing),
        models: &models,
        mc_config: MonteCarloConfig {
            batch: 60,
            max_samples: 120,
            cv_threshold: 0.1,
        },
    };
    f(&ctx)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The HBSS-selected plan and its estimate summary are bit-identical
    /// at 1, 2 and 8 workers for any (engine seed, walk seed, hour).
    #[test]
    fn hbss_solve_is_worker_count_invariant(
        engine_seed in any::<u64>(),
        walk_seed in any::<u64>(),
        hour_idx in 0u8..24,
    ) {
        with_ctx(|ctx| {
            let hour = hour_idx as f64 + 0.5;
            let solver = HbssSolver::new();
            let solve_at = |workers: usize| {
                let engine = EvalEngine::new(engine_seed, workers);
                solver.solve_with(&engine, ctx, hour, &mut Pcg32::seed(walk_seed))
            };
            let base = solve_at(WORKER_COUNTS[0]);
            for &w in &WORKER_COUNTS[1..] {
                let other = solve_at(w);
                assert_eq!(base.best.assignment(), other.best.assignment());
                assert_eq!(base.best_estimate, other.best_estimate);
                assert_eq!(base.home_estimate, other.home_estimate);
                assert_eq!(base.evaluated, other.evaluated);
            }
        });
    }

    /// The full 24-hour schedule (the paper's per-solve unit, §5.1) is
    /// bit-identical at any worker count, and its shared cache is used.
    #[test]
    fn hourly_schedule_is_worker_count_invariant(
        engine_seed in any::<u64>(),
        walk_seed in any::<u64>(),
    ) {
        with_ctx(|ctx| {
            let solver = HbssSolver::new();
            let solve_at = |workers: usize| {
                let engine = EvalEngine::new(engine_seed, workers);
                let plans = solve_hourly_with(
                    &engine, &solver, ctx, 0.0, 0.0, 86_400.0,
                    &mut Pcg32::seed(walk_seed),
                );
                (plans, engine.hit_count())
            };
            let (base, base_hits) = solve_at(WORKER_COUNTS[0]);
            assert!(base_hits > 0, "estimate cache never hit");
            for &w in &WORKER_COUNTS[1..] {
                let (other, _) = solve_at(w);
                assert_eq!(&base, &other);
            }
        });
    }

    /// Cache soundness: a cached estimate is bit-equal to a fresh
    /// uncached evaluation on the same derived stream.
    #[test]
    fn cached_estimate_equals_fresh_run(
        engine_seed in any::<u64>(),
        region_picks in (0usize..3, 0usize..3),
        hour_idx in 0u8..24,
    ) {
        with_ctx(|ctx| {
            let hour = hour_idx as f64 + 0.5;
            let assignment = vec![
                ctx.permitted[0][region_picks.0],
                ctx.permitted[1][region_picks.1],
            ];
            let plan = DeploymentPlan::new(assignment);
            let engine = EvalEngine::new(engine_seed, 1);
            let first = engine.evaluate(ctx, &plan, hour);
            let cached = engine.evaluate(ctx, &plan, hour);
            assert_eq!(engine.miss_count(), 1);
            assert_eq!(engine.hit_count(), 1);
            // Fresh run outside the engine, on the same derived stream.
            let fresh = ctx.evaluate(&plan, hour, &mut engine.eval_rng(&plan, hour));
            assert_eq!(first, cached);
            assert_eq!(first, fresh);
        });
    }

    /// Lane-width invariance at the solver layer: the estimate the engine
    /// caches (batched at the default width) is bit-equal to the scalar
    /// reference path and to the batched path at widths 1/4/8/16 on the
    /// same derived stream — so every solve result (HBSS walks, 24-hour
    /// schedules) is independent of the batch width, at any worker count.
    #[test]
    fn solver_estimates_are_lane_width_invariant(
        engine_seed in any::<u64>(),
        region_picks in (0usize..3, 0usize..3),
        hour_idx in 0u8..24,
    ) {
        with_ctx(|ctx| {
            let hour = hour_idx as f64 + 0.5;
            let assignment = vec![
                ctx.permitted[0][region_picks.0],
                ctx.permitted[1][region_picks.1],
            ];
            let plan = DeploymentPlan::new(assignment);
            let engine = EvalEngine::new(engine_seed, 1);
            let cached = engine.evaluate(ctx, &plan, hour);
            let est = MonteCarloEstimator {
                dag: ctx.dag,
                profile: ctx.profile,
                carbon_source: ctx.carbon_source,
                carbon_model: ctx.carbon_model,
                cost_model: ctx.cost_model.clone(),
                models: ctx.models,
                home: ctx.home,
                config: ctx.mc_config,
            };
            let scalar =
                est.estimate_scalar(&plan, hour, &mut engine.eval_rng(&plan, hour));
            assert_eq!(cached, scalar);
            for lanes in [1usize, 4, 8, MAX_LANES] {
                let batched = est.estimate_batched(
                    &plan, hour, &mut engine.eval_rng(&plan, hour), lanes,
                );
                assert_eq!(cached, batched, "lane width {lanes} diverged");
            }
        });
    }
}

/// Cache misses check estimator scratch out of the engine's pool instead
/// of allocating node-state columns per `estimate()` call: across many
/// misses on one worker, exactly one column set is ever allocated.
#[test]
fn engine_scratch_pool_reuses_node_state_across_misses() {
    with_ctx(|ctx| {
        caribou_telemetry::enable(Box::new(caribou_telemetry::NullSink));
        let engine = EvalEngine::new(7, 1);
        let mut misses = 0;
        for i in 0..3 {
            for j in 0..3 {
                let plan = DeploymentPlan::new(vec![ctx.permitted[0][i], ctx.permitted[1][j]]);
                engine.evaluate(ctx, &plan, 6.5);
                misses += 1;
            }
        }
        let session = caribou_telemetry::finish().unwrap();
        assert_eq!(engine.miss_count(), misses);
        let allocs = session.recorder.counter("montecarlo.node_state_allocs");
        // 3 counts = one column set, from the first miss only.
        assert_eq!(allocs, 3, "allocs {allocs} across {misses} misses");
    });
}
