//! The per-invocation execution engine.
//!
//! Executes one workflow invocation end-to-end against the simulated
//! cloud: pub/sub hops between stages, KV-store intermediate data,
//! synchronization-node annotations with condition (4.1), conditional-edge
//! skip propagation, external-data anchoring at the home region, and full
//! usage metering. The engine is also used for the orchestration baselines
//! of §9.6 (Step Functions and raw SNS), which differ only in transition
//! mechanics.

use caribou_carbon::route::endpoint_average;
use caribou_carbon::source::CarbonDataSource;
use caribou_metrics::carbonmodel::CarbonModel;
use caribou_metrics::logs::{EdgeRecord, InvocationLog, NodeRecord};
use caribou_model::dag::{EdgeId, NodeId, WorkflowDag};
use caribou_model::intern::IStr;
use caribou_model::plan::DeploymentPlan;
use caribou_model::profile::WorkflowProfile;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;
use caribou_simcloud::clock::EventQueue;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::meter::UsageMeter;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_simcloud::pubsub::{Delivery, DeliveryStatus, TopicKey};

use std::fmt::Write as _;

use crate::outcome::ExecutionOutcome;

/// A deployable workflow application: DAG, profile, and home region.
#[derive(Debug, Clone)]
pub struct WorkflowApp {
    /// Workflow name (topic and table namespace). Interned: stamping it
    /// onto per-invocation logs is a refcount bump, not an allocation.
    pub name: IStr,
    /// The workflow DAG.
    pub dag: WorkflowDag,
    /// The workload resource profile.
    pub profile: WorkflowProfile,
    /// Home region.
    pub home: RegionId,
}

/// The execution engine, parameterized by the carbon data source used for
/// emission accounting.
#[derive(Debug, Clone)]
pub struct ExecutionEngine<'a, S: CarbonDataSource> {
    /// Carbon data used to account (not to decide) emissions.
    pub carbon_source: &'a S,
    /// Carbon model with the transmission scenario.
    pub carbon_model: CarbonModel,
    /// Orchestration mechanism.
    pub orchestrator: Orchestrator,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum EdgeState {
    Undecided,
    /// The edge's condition is decided: whether it fired, the simulation
    /// time the decision (annotation) completed, and the writer's region.
    Decided {
        taken: bool,
        at: f64,
        writer: RegionId,
    },
}

impl EdgeState {
    fn is_decided(&self) -> bool {
        !matches!(self, EdgeState::Undecided)
    }

    fn is_taken(&self) -> bool {
        matches!(self, EdgeState::Decided { taken: true, .. })
    }
}

/// Zero bytes backing simulated small-payload KV items: the engine only
/// models payload *sizes*, so every invocation can share one static
/// buffer instead of allocating a fresh `Vec` per intermediate write.
static ZERO_PAYLOAD: [u8; 4096] = [0u8; 4096];

/// Sync nodes with at most this many predecessors use pre-built static
/// annotation strings (beyond it the atomic update allocates as before).
const ANN_MAX: usize = 8;

/// Byte offset of the length-`len` block in [`ANN_TABLE`].
const fn ann_offset(len: usize) -> usize {
    let mut off = 0;
    let mut l = 1;
    while l < len {
        off += l * (1 << l);
        l += 1;
    }
    off
}

/// Every `'0'`/`'1'` string of length 1..=[`ANN_MAX`], flattened. The
/// synchronization-node annotation of §4 is such a string (one character
/// per decided in-edge), so the atomic read-modify-write can return a
/// `Bytes::from_static` slice into this table instead of allocating — the
/// value bytes are identical to the formerly heap-built string, which
/// matters because the value *length* feeds the KV operation's modeled
/// transfer latency.
static ANN_TABLE: [u8; ann_offset(ANN_MAX + 1)] = {
    let mut t = [0u8; ann_offset(ANN_MAX + 1)];
    let mut len = 1;
    while len <= ANN_MAX {
        let base = ann_offset(len);
        let mut bits = 0usize;
        while bits < (1 << len) {
            let mut i = 0;
            while i < len {
                // The first-written annotation is the most significant bit.
                t[base + bits * len + i] = b'0' + ((bits >> (len - 1 - i)) & 1) as u8;
                i += 1;
            }
            bits += 1;
        }
        len += 1;
    }
    t
};

/// The static annotation string for `bits` (MSB-first) of length `len`.
fn ann_static(len: usize, bits: usize) -> &'static [u8] {
    let base = ann_offset(len) + bits * len;
    &ANN_TABLE[base..base + len]
}

/// Reusable per-invocation buffers.
///
/// One invocation needs a handful of DAG-sized vectors, an event queue,
/// and scratch strings for topic names and KV keys. Allocating them fresh
/// for every invocation dominates the allocation profile under sustained
/// load (`caribou loadgen`), so callers that execute many invocations
/// hold one `InvocationScratch` and pass it to
/// [`ExecutionEngine::invoke_with_scratch`]; buffers are cleared, not
/// dropped, between invocations. [`ExecutionEngine::invoke`] builds a
/// throwaway scratch to keep the one-shot API unchanged.
#[derive(Debug)]
pub struct InvocationScratch {
    overrides: Vec<Option<RegionId>>,
    edge_state: Vec<EdgeState>,
    node_started: Vec<bool>,
    node_dead: Vec<bool>,
    finish: Vec<f64>,
    queue: EventQueue<NodeId>,
    batch: Vec<NodeId>,
    topic: TopicKey,
    key: String,
    table: String,
    allocs: u64,
    invocations: u64,
}

impl Default for InvocationScratch {
    fn default() -> Self {
        InvocationScratch {
            overrides: Vec::new(),
            edge_state: Vec::new(),
            node_started: Vec::new(),
            node_dead: Vec::new(),
            finish: Vec::new(),
            queue: EventQueue::new(),
            batch: Vec::new(),
            topic: TopicKey {
                workflow: String::new(),
                stage: String::new(),
                region: RegionId(0),
            },
            key: String::new(),
            table: String::new(),
            allocs: 0,
            invocations: 0,
        }
    }
}

impl InvocationScratch {
    /// Creates empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the buffers for a workflow of `nodes`/`edges` size and
    /// returns how many of the pooled vectors had to (re)allocate — zero
    /// once the scratch is warm for a workflow shape.
    fn prepare(&mut self, nodes: usize, edges: usize) -> u64 {
        fn refill<T: Clone>(v: &mut Vec<T>, len: usize, val: T, grew: &mut u64) {
            let cap = v.capacity();
            v.clear();
            v.resize(len, val);
            if v.capacity() != cap {
                *grew += 1;
            }
        }
        let mut grew = 0u64;
        refill(&mut self.overrides, nodes, None, &mut grew);
        refill(&mut self.edge_state, edges, EdgeState::Undecided, &mut grew);
        refill(&mut self.node_started, nodes, false, &mut grew);
        refill(&mut self.node_dead, nodes, false, &mut grew);
        refill(&mut self.finish, nodes, 0.0, &mut grew);
        self.queue.clear();
        self.batch.clear();
        self.invocations += 1;
        self.allocs += grew;
        grew
    }

    /// Pooled-buffer growth events since creation. Warm steady state
    /// grows nothing, so this stays at the first invocation's count.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Invocations served by this scratch.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }
}

struct InvocationCtx<'c, 'a, S: CarbonDataSource> {
    engine: &'c ExecutionEngine<'a, S>,
    cloud: &'c mut SimCloud,
    app: &'c WorkflowApp,
    plan: &'c DeploymentPlan,
    inv_id: u64,
    hour: f64,
    at_s: f64,
    rng: &'c mut Pcg32,
    meter: UsageMeter,
    exec_carbon: f64,
    trans_carbon: f64,
    /// Transmission carbon of the bytes that crossed a provider boundary
    /// (subset of `trans_carbon`; 0 on single-provider clouds).
    cross_cloud_carbon: f64,
    completed: bool,
    /// Number of nodes re-routed to the home deployment this invocation.
    failovers: u32,
    /// Number of nodes that executed with a cold start this invocation.
    cold_starts: u32,
    /// First region observed failing (outage, partition, or dead-letter
    /// target); feeds the router's per-region circuit breaker.
    failed_region: Option<RegionId>,
    /// Pooled buffers (region overrides, edge/node state, event queue,
    /// topic/key strings), prepared by the caller.
    scratch: &'c mut InvocationScratch,
    node_records: Vec<NodeRecord>,
    edge_records: Vec<EdgeRecord>,
}

impl<S: CarbonDataSource> ExecutionEngine<'_, S> {
    /// Ensures topics and tables exist for the regions a plan uses. The
    /// Deployment Utility/Migrator normally guarantees this (§6.1); tests
    /// and single-shot runs call it directly.
    pub fn provision(&self, cloud: &mut SimCloud, app: &WorkflowApp, plan: &DeploymentPlan) {
        for node in app.dag.all_nodes() {
            let region = plan.region_of(node);
            for r in [region, app.home] {
                // The home deployment always exists (§6.1): mid-flight
                // failover publishes to the home topic, so it is created
                // alongside the plan's even when the plan never uses home.
                cloud.pubsub.create_topic(TopicKey {
                    workflow: app.name.to_string(),
                    stage: app.dag.node(node).name.clone(),
                    region: r,
                });
                cloud.kv.create_table(format!("caribou-data@{}", r.0), r);
                cloud.kv.create_table(format!("caribou-sync@{}", r.0), r);
            }
        }
        cloud.kv.create_table("caribou-meta", app.home);
    }

    /// Executes one invocation under `plan` starting at simulation time
    /// `at_s`, returning the outcome and its log.
    ///
    /// Builds throwaway scratch buffers; callers running many invocations
    /// should hold an [`InvocationScratch`] and use
    /// [`ExecutionEngine::invoke_with_scratch`] instead.
    pub fn invoke(
        &self,
        cloud: &mut SimCloud,
        app: &WorkflowApp,
        plan: &DeploymentPlan,
        inv_id: u64,
        at_s: f64,
        rng: &mut Pcg32,
    ) -> ExecutionOutcome {
        let mut scratch = InvocationScratch::new();
        self.invoke_with_scratch(cloud, app, plan, inv_id, at_s, rng, &mut scratch)
    }

    /// [`ExecutionEngine::invoke`] with caller-pooled buffers: identical
    /// results, but the per-invocation vectors, event queue, and
    /// topic/key strings are reused across calls instead of reallocated.
    #[allow(clippy::too_many_arguments)]
    pub fn invoke_with_scratch(
        &self,
        cloud: &mut SimCloud,
        app: &WorkflowApp,
        plan: &DeploymentPlan,
        inv_id: u64,
        at_s: f64,
        rng: &mut Pcg32,
        scratch: &mut InvocationScratch,
    ) -> ExecutionOutcome {
        assert_eq!(
            plan.len(),
            app.dag.node_count(),
            "plan does not cover the workflow"
        );
        let hour = at_s / 3600.0;
        let n = app.dag.node_count();
        let grew = scratch.prepare(n, app.dag.edge_count());
        // Windowed faults (partitions, gray failures, throttles) are
        // evaluated at the invocation's start time.
        cloud.set_fault_now(at_s);
        let mut ctx = InvocationCtx {
            engine: self,
            cloud,
            app,
            plan,
            inv_id,
            hour,
            at_s,
            rng,
            meter: UsageMeter::new(),
            exec_carbon: 0.0,
            trans_carbon: 0.0,
            cross_cloud_carbon: 0.0,
            completed: true,
            failovers: 0,
            cold_starts: 0,
            failed_region: None,
            scratch,
            node_records: Vec::with_capacity(n),
            edge_records: Vec::with_capacity(app.dag.edge_count()),
        };
        ctx.run();
        let e2e = ctx
            .node_records
            .iter()
            .map(|r| r.start_s + r.duration_s)
            .fold(0.0f64, f64::max);
        let cost = ctx.meter.cost(&ctx.cloud.pricing);
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::event_at(at_s, "exec.invocation", &app.name, e2e);
            caribou_telemetry::span_at("invocation", &app.name, at_s, e2e, inv_id, "invocation");
            // The two log-record vectors are handed to the caller, so they
            // are inherently fresh; everything else comes from the scratch.
            caribou_telemetry::count("engine.scratch_allocs", grew);
            caribou_telemetry::gauge("engine.alloc_per_invocation", (grew + 2) as f64);
            // Per-phase breakdown of the same budget: the two log-record
            // vectors handed to the caller, plus pooled-buffer growth.
            caribou_telemetry::gauge("engine.alloc_per_invocation.log_records", 2.0);
            caribou_telemetry::gauge("engine.alloc_per_invocation.scratch", grew as f64);
            if !ctx.completed {
                caribou_telemetry::count("exec.incomplete", 1);
            }
            if ctx.failovers > 0 {
                caribou_telemetry::count("failover.invocations", 1);
            }
        }
        ctx.cloud.meter.merge(&ctx.meter);
        ExecutionOutcome {
            log: InvocationLog {
                workflow: app.name.clone(),
                at_s,
                benchmark_traffic: false,
                nodes: ctx.node_records,
                edges: ctx.edge_records,
                e2e_latency_s: e2e,
                cost_usd: cost,
            },
            e2e_latency_s: e2e,
            cost_usd: cost,
            exec_carbon_g: ctx.exec_carbon,
            trans_carbon_g: ctx.trans_carbon,
            cross_cloud_egress_bytes: ctx.meter.cross_provider_egress_bytes(&ctx.cloud.pricing),
            cross_cloud_cost_usd: ctx.meter.cross_provider_egress_cost(&ctx.cloud.pricing),
            cross_cloud_carbon_g: ctx.cross_cloud_carbon,
            meter: ctx.meter,
            completed: ctx.completed,
            failovers: ctx.failovers,
            cold_starts: ctx.cold_starts,
            failed_region: ctx.failed_region,
        }
    }
}

impl<S: CarbonDataSource> InvocationCtx<'_, '_, S> {
    /// Effective region of a node: the failover override when one was
    /// installed, otherwise the plan's assignment.
    fn region_of(&self, node: NodeId) -> RegionId {
        self.scratch.overrides[node.index()].unwrap_or_else(|| self.plan.region_of(node))
    }

    /// Rebuilds the pooled topic key for `node` in place: same value a
    /// fresh `TopicKey` would have, no workflow/stage string allocations.
    fn set_topic(&mut self, node: NodeId) {
        let region = self.region_of(node);
        let topic = &mut self.scratch.topic;
        topic.workflow.clear();
        topic.workflow.push_str(&self.app.name);
        topic.stage.clear();
        topic.stage.push_str(&self.app.dag.node(node).name);
        topic.region = region;
    }

    /// Publishes the invocation message for `node` from `from`, metering
    /// the publish (rejected topic-missing calls are not billed).
    fn publish_to(&mut self, node: NodeId, from: RegionId, payload_bytes: f64) -> Delivery {
        self.set_topic(node);
        let delivery = self.cloud.pubsub.publish(
            &self.scratch.topic,
            from,
            payload_bytes,
            &self.cloud.latency,
            self.rng,
        );
        if delivery.status != DeliveryStatus::TopicMissing {
            self.meter.record_sns(from);
        }
        delivery
    }

    /// §6.1 graceful degradation: re-routes `node` to the home deployment
    /// (which always exists) after its planned region failed, and
    /// re-publishes the invocation message to the home topic. Returns the
    /// failover delivery on success; `None` when the node already runs at
    /// home or the failover publish itself is lost — the caller then
    /// reports the invocation failed. Always records the failed region so
    /// the router's circuit breaker hears about it either way.
    fn fail_over_home(
        &mut self,
        node: NodeId,
        from: RegionId,
        failed: RegionId,
        payload_bytes: f64,
        t: f64,
    ) -> Option<Delivery> {
        self.failed_region.get_or_insert(failed);
        let home = self.app.home;
        if self.region_of(node) == home || self.cloud.faults.region_down(home, self.at_s + t) {
            return None;
        }
        self.scratch.overrides[node.index()] = Some(home);
        let delivery = self.publish_to(node, from, payload_bytes);
        if delivery.delivered() {
            self.failovers += 1;
            if caribou_telemetry::is_enabled() {
                caribou_telemetry::event_at(
                    self.at_s + t,
                    "failover.reroute",
                    format!("n{} r{}->r{}", node.0, failed.0, home.0),
                    delivery.latency_s,
                );
            }
            Some(delivery)
        } else {
            None
        }
    }

    fn route_intensity(&self, a: RegionId, b: RegionId) -> f64 {
        endpoint_average(self.engine.carbon_source, a, b, self.hour)
    }

    fn account_transfer(&mut self, from: RegionId, to: RegionId, bytes: f64) {
        self.meter.record_transfer(from, to, bytes);
        let intensity = self.route_intensity(from, to);
        let carbon = self
            .engine
            .carbon_model
            .transmission_carbon(bytes, intensity, from == to);
        self.trans_carbon += carbon;
        if from != to
            && self.cloud.regions.spec(from).provider != self.cloud.regions.spec(to).provider
        {
            self.cross_cloud_carbon += carbon;
        }
    }

    fn run(&mut self) {
        // Client → entry function: wrapper setup, deployment-plan fetch
        // (Caribou only), and the input payload's journey from the client
        // (anchored at the home region, §9.1).
        let start = self.app.dag.start();
        let start_region = self.plan.region_of(start);
        let input_bytes = self.app.profile.input_bytes.sample(self.rng);
        let mut t0 = self.engine.orchestrator.sample_setup_s(self.rng);

        let delivery = self.publish_to(start, self.app.home, input_bytes);
        self.account_transfer(self.app.home, start_region, input_bytes);
        if !delivery.delivered() {
            // The entry region is unreachable (outage, partition, or the
            // message dead-lettered): re-route the entry to the home
            // deployment — the client's payload is already at home.
            match self.fail_over_home(start, self.app.home, start_region, input_bytes, t0) {
                Some(fo) => t0 += delivery.latency_s + fo.latency_s,
                None => {
                    self.completed = false;
                    return;
                }
            }
        } else {
            t0 += delivery.latency_s;
        }
        let start_region = self.region_of(start);

        if self.engine.orchestrator == Orchestrator::Caribou {
            // Entry wrapper fetches the active deployment plan from the
            // home-region metadata table (§6.2: "the initial node ...
            // fetches the current DP from the distributed key-value
            // store"); downstream nodes receive it piggybacked.
            self.scratch.key.clear();
            let _ = write!(self.scratch.key, "plan:{}", self.app.name);
            let access = self.cloud.kv.get(
                "caribou-meta",
                &self.scratch.key,
                start_region,
                &self.cloud.latency,
                self.rng,
            );
            self.meter.record_kv(start_region, 1, 0);
            t0 += access.latency_s;
        }

        self.scratch.queue.push(t0, start);
        // Drain the queue a tick at a time: `pop_batch` hands back every
        // node scheduled at the earliest simulation time (in insertion
        // order, matching one-at-a-time pops), amortizing heap traffic
        // for fan-out stages that land on the same tick.
        let mut batch = std::mem::take(&mut self.scratch.batch);
        while let Some(t) = self.scratch.queue.pop_batch(&mut batch) {
            for &node in &batch {
                self.execute_node(node, t);
            }
        }
        self.scratch.batch = batch;
    }

    fn execute_node(&mut self, node: NodeId, mut t: f64) {
        if std::mem::replace(&mut self.scratch.node_started[node.index()], true) {
            return;
        }
        let mut region = self.region_of(node);
        if self.cloud.faults.region_down(region, self.at_s + t) {
            // Region outage mid-flight: the function never picks the
            // message up. The dead-letter redrive re-routes the node to
            // the home deployment (§6.1) — published from home, where the
            // framework's control plane lives.
            match self.fail_over_home(node, self.app.home, region, 2048.0, t) {
                Some(fo) => {
                    t += fo.latency_s;
                    region = self.region_of(node);
                }
                None => {
                    self.completed = false;
                    self.mark_node_dead_downstream(node, t);
                    return;
                }
            }
        }
        let p = &self.app.profile.nodes[node.index()];
        // Cold starts: a cold-start storm forces cold; otherwise stateful
        // when the warm pool is enabled (a freshly offloaded region starts
        // cold until traffic warms it), or the compute model's
        // probabilistic rate applies.
        let storm = self.cloud.faults.cold_storm(region, self.at_s + t);
        let cold = if self.cloud.warm.enabled {
            self.cloud
                .warm
                .check_and_touch(&self.app.name, node.0, region, self.at_s + t)
                || storm
        } else {
            let cold = storm || self.rng.chance(self.cloud.compute.cold_start_prob);
            if caribou_telemetry::is_enabled() {
                caribou_telemetry::count(
                    if cold {
                        "compute.cold_start"
                    } else {
                        "compute.warm_start"
                    },
                    1,
                );
            }
            cold
        };
        if cold {
            self.cold_starts += 1;
        }
        if storm && caribou_telemetry::is_enabled() {
            caribou_telemetry::count("fault.cold_storm", 1);
        }
        let record = self.cloud.compute.execute_forced(
            region,
            &p.exec_time,
            p.memory_mb,
            p.cpu_utilization,
            cold,
            self.rng,
        );
        let mut duration = record.duration_s;

        // External data stays at (or close to) the home region; offloaded
        // stages pay the round trip in latency, egress, and carbon (§9.1).
        if region != self.app.home && p.external_data_bytes > 0.0 {
            let half = p.external_data_bytes / 2.0;
            let lm = &self.cloud.latency;
            duration += lm.sample_transfer_seconds(region, self.app.home, half, self.rng)
                + lm.sample_transfer_seconds(self.app.home, region, half, self.rng);
            self.account_transfer(region, self.app.home, half);
            self.account_transfer(self.app.home, region, half);
        }

        self.meter.record_lambda(region, duration, p.memory_mb);
        let intensity = self.engine.carbon_source.intensity(region, self.hour);
        self.exec_carbon += self.engine.carbon_model.execution_carbon_params(
            p.memory_mb,
            duration,
            p.cpu_utilization,
            intensity,
        );
        self.scratch.finish[node.index()] = t + duration;
        self.node_records.push(NodeRecord {
            node: node.0,
            region,
            duration_s: duration,
            cpu_total_time_s: record.cpu_total_time_s,
            memory_mb: p.memory_mb,
            start_s: t,
        });
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::span_at(
                "exec",
                &self.app.dag.node(node).name,
                self.at_s + t,
                duration,
                self.inv_id,
                format!("node:{}@r{}", node.0, region.0),
            );
            caribou_telemetry::observe("exec.node_duration_s", duration);
        }

        // Decide and dispatch every outgoing edge.
        let finish = self.scratch.finish[node.index()];
        for i in 0..self.app.dag.out_edges(node).len() {
            let eid = self.app.dag.out_edges(node)[i];
            let conditional = self.app.dag.edge(eid).conditional;
            let prob = self.app.profile.edges[eid.index()].probability;
            let taken = if conditional {
                self.rng.chance(prob)
            } else {
                true
            };
            self.decide_edge(eid, taken, finish, region);
        }
    }

    /// Records an edge decision, dispatching the successor invocation or
    /// the skip propagation of §4.
    fn decide_edge(&mut self, eid: EdgeId, taken: bool, t: f64, decider_region: RegionId) {
        if self.scratch.edge_state[eid.index()].is_decided() {
            return;
        }
        let edge = *self.app.dag.edge(eid);
        let succ = edge.to;
        let succ_region = self.region_of(succ);
        let is_sync = self.app.dag.is_sync_node(succ);

        if taken {
            let payload = self.app.profile.edges[eid.index()]
                .payload_bytes
                .sample(self.rng);
            let from_region = self.region_of(edge.from);

            // Intermediate data goes to the successor region's storage:
            // the KV table for small payloads, the blob store (with a KV
            // reference) above the DynamoDB item limit (§4, Fig. 5).
            let write_latency = self.store_intermediate(eid, payload, from_region, succ_region);
            self.account_transfer(from_region, succ_region, payload);
            let transition = self.engine.orchestrator.sample_transition_s(self.rng);
            let after_write = t + transition + write_latency;

            if is_sync {
                // The annotation is the atomic read-modify-write of §4;
                // the invocation message is sent by whichever writer's
                // annotation lands last (handled in `check_sync`).
                let decision_t = self.sync_annotate(succ, true, after_write, from_region);
                self.scratch.edge_state[eid.index()] = EdgeState::Decided {
                    taken: true,
                    at: decision_t,
                    writer: from_region,
                };
                self.edge_records.push(EdgeRecord {
                    edge: eid.0,
                    taken: true,
                    from_region,
                    to_region: succ_region,
                    bytes: payload,
                    latency_s: decision_t - t,
                });
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::span_at(
                        "sync",
                        format!("annotate n{}", succ.0),
                        self.at_s + t,
                        decision_t - t,
                        self.inv_id,
                        format!("edge:{}", eid.0),
                    );
                }
                self.check_sync(succ);
                return;
            }

            let arrival = if self.engine.orchestrator == Orchestrator::StepFunctions {
                // First-party orchestration: direct state transition, no
                // SNS hop.
                after_write
                    + self.cloud.latency.sample_transfer_seconds(
                        from_region,
                        succ_region,
                        payload,
                        self.rng,
                    )
            } else {
                // The invocation message itself is small: the data went
                // through the KV store; the message carries the DP and
                // location header (§6.2 Traffic Routing).
                let delivery = self.publish_to(succ, from_region, 2048.0);
                if !delivery.delivered() {
                    // Dead-lettered: re-route the successor to the home
                    // deployment; it reads the intermediate data from the
                    // originally planned region's table.
                    match self.fail_over_home(succ, from_region, succ_region, 2048.0, after_write) {
                        Some(fo) => after_write + delivery.latency_s + fo.latency_s,
                        None => {
                            self.completed = false;
                            self.scratch.edge_state[eid.index()] = EdgeState::Decided {
                                taken: false,
                                at: t,
                                writer: from_region,
                            };
                            self.edge_records.push(EdgeRecord {
                                edge: eid.0,
                                taken: false,
                                from_region,
                                to_region: succ_region,
                                bytes: payload,
                                latency_s: 0.0,
                            });
                            self.mark_node_dead_downstream(succ, t);
                            return;
                        }
                    }
                } else {
                    after_write + delivery.latency_s
                }
            };

            let to_region = self.region_of(succ);
            self.scratch.edge_state[eid.index()] = EdgeState::Decided {
                taken: true,
                at: arrival,
                writer: from_region,
            };
            self.edge_records.push(EdgeRecord {
                edge: eid.0,
                taken: true,
                from_region,
                to_region,
                bytes: payload,
                latency_s: arrival - t,
            });
            if caribou_telemetry::is_enabled() {
                caribou_telemetry::span_at(
                    "hop",
                    format!("e{} r{}->r{}", eid.0, from_region.0, to_region.0),
                    self.at_s + t,
                    arrival - t,
                    self.inv_id,
                    format!("edge:{}", eid.0),
                );
            }
            // The successor's wrapper reads the intermediate data (stored
            // at the originally planned region even after a failover).
            let read_latency = self.load_intermediate(eid, succ_region, to_region);
            self.scratch.queue.push(arrival + read_latency, succ);
        } else {
            let from_region = self.region_of(edge.from);
            let decision_t = if is_sync {
                self.sync_annotate(succ, false, t, decider_region)
            } else {
                t
            };
            self.scratch.edge_state[eid.index()] = EdgeState::Decided {
                taken: false,
                at: decision_t,
                writer: decider_region,
            };
            self.edge_records.push(EdgeRecord {
                edge: eid.0,
                taken: false,
                from_region,
                to_region: succ_region,
                bytes: 0.0,
                latency_s: 0.0,
            });
            if is_sync {
                self.check_sync(succ);
            } else {
                // The successor has a single predecessor; it is dead.
                self.mark_node_dead_downstream(succ, t);
            }
        }
    }

    /// Stores one edge's intermediate payload in the successor region:
    /// small payloads as a KV item, large ones in the blob store with a
    /// KV reference (DynamoDB's item cap). Returns the write latency.
    fn store_intermediate(
        &mut self,
        eid: EdgeId,
        payload: f64,
        from: RegionId,
        succ_region: RegionId,
    ) -> f64 {
        self.scratch.key.clear();
        let _ = write!(self.scratch.key, "inv{}:e{}", self.inv_id, eid.0);
        self.scratch.table.clear();
        let _ = write!(self.scratch.table, "caribou-data@{}", succ_region.0);
        if payload > caribou_simcloud::blob::BLOB_THRESHOLD_BYTES {
            let blob = self.cloud.blob.put(
                succ_region,
                &self.scratch.key,
                payload,
                from,
                &self.cloud.latency,
                self.rng,
            );
            self.meter.record_blob(succ_region, 0, 1);
            let reference = self.cloud.kv.put(
                &self.scratch.table,
                &self.scratch.key,
                bytes::Bytes::from_static(b"blobref"),
                from,
                &self.cloud.latency,
                self.rng,
            );
            self.meter.record_kv(succ_region, 0, 1);
            blob.latency_s.max(reference.latency_s)
        } else {
            let write = self.cloud.kv.put(
                &self.scratch.table,
                &self.scratch.key,
                bytes::Bytes::from_static(&ZERO_PAYLOAD[..payload.min(4096.0) as usize]),
                from,
                &self.cloud.latency,
                self.rng,
            );
            self.meter.record_kv(succ_region, 0, 1);
            write.latency_s
        }
    }

    /// Loads one edge's intermediate payload, following the blob reference
    /// when present. `storage` is the region whose table/bucket holds the
    /// data (the successor's planned region); `reader` is where the
    /// successor actually runs — they differ after a failover, which then
    /// pays the cross-region read. Returns the read latency.
    fn load_intermediate(&mut self, eid: EdgeId, storage: RegionId, reader: RegionId) -> f64 {
        self.scratch.key.clear();
        let _ = write!(self.scratch.key, "inv{}:e{}", self.inv_id, eid.0);
        self.scratch.table.clear();
        let _ = write!(self.scratch.table, "caribou-data@{}", storage.0);
        if let Some(blob) = self.cloud.blob.get(
            storage,
            &self.scratch.key,
            reader,
            &self.cloud.latency,
            self.rng,
        ) {
            self.meter.record_blob(storage, 1, 0);
            // The wrapper first read the KV reference.
            self.meter.record_kv(storage, 1, 0);
            // Each intermediate is read exactly once; garbage-collect the
            // object and its reference (TTL-style, unbilled) so the
            // stores stay bounded under sustained load.
            self.cloud.blob.reclaim(storage, &self.scratch.key);
            self.cloud
                .kv
                .reclaim(&self.scratch.table, &self.scratch.key);
            return blob.latency_s;
        }
        let read = self.cloud.kv.get(
            &self.scratch.table,
            &self.scratch.key,
            reader,
            &self.cloud.latency,
            self.rng,
        );
        self.meter.record_kv(storage, 1, 0);
        self.cloud
            .kv
            .reclaim(&self.scratch.table, &self.scratch.key);
        read.latency_s
    }

    /// Performs the atomic annotation update of §4 against the sync
    /// node's regional table, returning the simulation time the update
    /// completed.
    fn sync_annotate(&mut self, succ: NodeId, taken: bool, t: f64, writer_region: RegionId) -> f64 {
        let succ_region = self.region_of(succ);
        self.scratch.table.clear();
        let _ = write!(self.scratch.table, "caribou-sync@{}", succ_region.0);
        self.scratch.key.clear();
        let _ = write!(self.scratch.key, "inv{}:n{}", self.inv_id, succ.0);
        let update = self.cloud.kv.atomic_update(
            &self.scratch.table,
            &self.scratch.key,
            writer_region,
            &self.cloud.latency,
            self.rng,
            |prev| {
                // Append this edge's '0'/'1' to the annotation string.
                // Small fan-ins return a slice of the static table —
                // byte-identical to the heap-built string, no allocation.
                let (len, bits) = match prev {
                    Some(b) => {
                        let mut bits = 0usize;
                        for &c in b.iter() {
                            bits = (bits << 1) | usize::from(c == b'1');
                        }
                        (b.len(), bits)
                    }
                    None => (0, 0),
                };
                if len < ANN_MAX {
                    let bits = (bits << 1) | usize::from(taken);
                    bytes::Bytes::from_static(ann_static(len + 1, bits))
                } else {
                    let mut s = prev
                        .map(|b| String::from_utf8_lossy(b).into_owned())
                        .unwrap_or_default();
                    s.push(if taken { '1' } else { '0' });
                    bytes::Bytes::from(s)
                }
            },
        );
        self.meter.record_kv(succ_region, 1, 1);
        t + update.latency_s
    }

    /// Evaluates condition (4.1) for a synchronization node: once every
    /// incoming edge is annotated, the node fires if at least one
    /// annotation is `taken`. The writer whose annotation landed last (in
    /// simulation time) performs the invocation — regardless of the order
    /// the engine processed the branches in.
    fn check_sync(&mut self, succ: NodeId) {
        let telemetry = caribou_telemetry::is_enabled();
        if telemetry {
            caribou_telemetry::count("sync.condition_eval", 1);
        }
        let in_edges = self.app.dag.in_edges(succ);
        if !in_edges
            .iter()
            .all(|e| self.scratch.edge_state[e.index()].is_decided())
        {
            if telemetry {
                caribou_telemetry::count("sync.condition_pending", 1);
            }
            return;
        }
        // Every annotation is in. The decision below reads only the
        // engine-side `edge_state` (the KV record is write-only past this
        // point), so the annotation item can be garbage-collected now —
        // recycling its key strings keeps the sync table allocation-free
        // in steady state.
        {
            let succ_region = self.region_of(succ);
            self.scratch.table.clear();
            let _ = write!(self.scratch.table, "caribou-sync@{}", succ_region.0);
            self.scratch.key.clear();
            let _ = write!(self.scratch.key, "inv{}:n{}", self.inv_id, succ.0);
            self.cloud
                .kv
                .reclaim(&self.scratch.table, &self.scratch.key);
        }
        let mut any_taken = false;
        let mut last_at = 0.0f64;
        let mut last_writer = self.region_of(succ);
        for e in in_edges {
            if let EdgeState::Decided { taken, at, writer } = self.scratch.edge_state[e.index()] {
                any_taken |= taken;
                if at >= last_at {
                    last_at = at;
                    last_writer = writer;
                }
            }
        }
        if !any_taken {
            if telemetry {
                caribou_telemetry::event("sync.not_fired", format!("n{}", succ.0), last_at);
            }
            self.mark_node_dead_downstream(succ, last_at);
            return;
        }
        if telemetry {
            caribou_telemetry::event("sync.fired", format!("n{}", succ.0), last_at);
        }
        let succ_region = self.region_of(succ);
        // The completing writer invokes the synchronization node with a
        // small message; the node then loads the intermediate data of
        // every taken predecessor from the KV store (§4, Fig. 5).
        let start_t = if self.engine.orchestrator == Orchestrator::StepFunctions {
            last_at + self.engine.orchestrator.sample_transition_s(self.rng)
        } else {
            let delivery = self.publish_to(succ, last_writer, 1024.0);
            if !delivery.delivered() {
                // The sync node's region is unreachable: fail over home.
                match self.fail_over_home(succ, last_writer, succ_region, 1024.0, last_at) {
                    Some(fo) => last_at + delivery.latency_s + fo.latency_s,
                    None => {
                        self.completed = false;
                        self.mark_node_dead_downstream(succ, last_at);
                        return;
                    }
                }
            } else {
                last_at + delivery.latency_s
            }
        };
        // Parallel reads of predecessors' intermediate data: latency is
        // the max of the sampled reads. Data sits in the planned region's
        // storage; after a failover the reads cross regions.
        let reader = self.region_of(succ);
        let mut read_latency: f64 = 0.0;
        for i in 0..self.app.dag.in_edges(succ).len() {
            let e = self.app.dag.in_edges(succ)[i];
            if self.scratch.edge_state[e.index()].is_taken() {
                read_latency = read_latency.max(self.load_intermediate(e, succ_region, reader));
            }
        }
        self.scratch.queue.push(start_t + read_latency, succ);
    }

    /// Cascades death: a node none of whose incoming edges fired marks all
    /// of its outgoing edges as not taken (the §4 skip-propagation rule),
    /// which may complete downstream synchronization conditions.
    fn mark_node_dead_downstream(&mut self, node: NodeId, t: f64) {
        if std::mem::replace(&mut self.scratch.node_dead[node.index()], true) {
            return;
        }
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::count("exec.skip_propagation", 1);
        }
        let region = self.region_of(node);
        for i in 0..self.app.dag.out_edges(node).len() {
            let eid = self.app.dag.out_edges(node)[i];
            self.decide_edge(eid, false, t, region);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_carbon::series::CarbonSeries;
    use caribou_carbon::source::TableSource;
    use caribou_metrics::carbonmodel::TransmissionScenario;
    use caribou_model::builder::Workflow;
    use caribou_model::dist::DistSpec;

    fn carbon_table(cloud: &SimCloud) -> TableSource {
        let mut t = TableSource::new();
        for (id, spec) in cloud.regions.iter() {
            let v = match spec.name.as_str() {
                "us-east-1" | "us-east-2" => 380.0,
                "ca-central-1" => 32.0,
                _ => 350.0,
            };
            t.insert(id, CarbonSeries::new(0, vec![v; 24 * 8]));
        }
        t
    }

    fn chain_app(cloud: &SimCloud) -> WorkflowApp {
        let mut wf = Workflow::new("chain", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 1.0 })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: 2.0 })
            .register();
        wf.invoke(a, b, None)
            .payload(DistSpec::Constant { value: 10_000.0 });
        wf.set_input(DistSpec::Constant { value: 1000.0 });
        let (dag, profile, _) = wf.extract().unwrap();
        WorkflowApp {
            name: "chain".into(),
            dag,
            profile,
            home: cloud.region("us-east-1").unwrap(),
        }
    }

    fn sync_app(cloud: &SimCloud, cond_prob: Option<f64>) -> WorkflowApp {
        let mut wf = Workflow::new("join", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 0.5 })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: 0.5 })
            .register();
        let c = wf
            .serverless_function("C")
            .exec_time(DistSpec::Constant { value: 3.0 })
            .register();
        let d = wf
            .serverless_function("D")
            .exec_time(DistSpec::Constant { value: 0.5 })
            .register();
        wf.invoke(a, b, cond_prob);
        wf.invoke(a, c, None);
        wf.invoke(b, d, None);
        wf.invoke(c, d, None);
        wf.get_predecessor_data(d);
        let (dag, profile, _) = wf.extract().unwrap();
        WorkflowApp {
            name: "join".into(),
            dag,
            profile,
            home: cloud.region("us-east-1").unwrap(),
        }
    }

    fn run(
        cloud: &mut SimCloud,
        app: &WorkflowApp,
        plan: &DeploymentPlan,
        seed: u64,
    ) -> ExecutionOutcome {
        let carbon = carbon_table(cloud);
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Caribou,
        };
        engine.provision(cloud, app, plan);
        engine.invoke(cloud, app, plan, seed, 100.0, &mut Pcg32::seed(seed))
    }

    #[test]
    fn chain_executes_both_stages() {
        let mut cloud = SimCloud::aws(1);
        cloud.compute.cold_start_prob = 0.0;
        cloud.compute.exec_sigma = 0.0;
        let app = chain_app(&cloud);
        let plan = DeploymentPlan::uniform(2, app.home);
        let out = run(&mut cloud, &app, &plan, 1);
        assert!(out.completed);
        assert_eq!(out.log.nodes.len(), 2);
        // ~3 s of compute plus hops.
        assert!(
            (3.0..3.8).contains(&out.e2e_latency_s),
            "{}",
            out.e2e_latency_s
        );
        assert!(out.cost_usd > 0.0);
        assert!(out.exec_carbon_g > 0.0);
    }

    #[test]
    fn offloaded_stage_runs_in_its_plan_region() {
        let mut cloud = SimCloud::aws(2);
        let app = chain_app(&cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        let mut plan = DeploymentPlan::uniform(2, app.home);
        plan.set(NodeId(1), ca);
        let out = run(&mut cloud, &app, &plan, 2);
        assert!(out.completed);
        let rec = out.log.nodes.iter().find(|r| r.node == 1).unwrap();
        assert_eq!(rec.region, ca);
        // Cross-region hop: latency exceeds the single-region case.
        assert!(out.e2e_latency_s > 3.0);
        assert!(out.meter.total_egress_bytes() > 0.0);
    }

    #[test]
    fn sync_node_fires_once_after_both_branches() {
        let mut cloud = SimCloud::aws(3);
        cloud.compute.cold_start_prob = 0.0;
        cloud.compute.exec_sigma = 0.0;
        let app = sync_app(&cloud, None);
        let plan = DeploymentPlan::uniform(4, app.home);
        let out = run(&mut cloud, &app, &plan, 3);
        assert!(out.completed);
        assert_eq!(out.log.nodes.len(), 4);
        let d = out.log.nodes.iter().find(|r| r.node == 3).unwrap();
        let c = out.log.nodes.iter().find(|r| r.node == 2).unwrap();
        // D starts only after the slow branch C finishes.
        assert!(d.start_s >= c.start_s + c.duration_s);
    }

    #[test]
    fn conditional_branch_skip_still_fires_sync() {
        let mut cloud = SimCloud::aws(4);
        cloud.compute.cold_start_prob = 0.0;
        // Probability 0: branch B never runs; D must still fire via C
        // thanks to the skip-propagation annotation.
        let app = sync_app(&cloud, Some(0.0));
        let plan = DeploymentPlan::uniform(4, app.home);
        let out = run(&mut cloud, &app, &plan, 4);
        assert!(out.completed);
        let executed: Vec<u32> = out.log.nodes.iter().map(|r| r.node).collect();
        assert!(!executed.contains(&1), "skipped branch must not run");
        assert!(executed.contains(&3), "sync node must still fire");
    }

    #[test]
    fn dead_cascade_kills_whole_subtree() {
        let mut cloud = SimCloud::aws(5);
        // A -> (cond 0) B -> C; B and C must both be skipped.
        let mut wf = Workflow::new("cascade", "0.1");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        let c = wf.serverless_function("C").register();
        wf.invoke(a, b, Some(0.0));
        wf.invoke(b, c, None);
        let (dag, profile, _) = wf.extract().unwrap();
        let app = WorkflowApp {
            name: "cascade".into(),
            dag,
            profile,
            home: cloud.region("us-east-1").unwrap(),
        };
        let plan = DeploymentPlan::uniform(3, app.home);
        let out = run(&mut cloud, &app, &plan, 5);
        assert!(out.completed);
        let executed: Vec<u32> = out.log.nodes.iter().map(|r| r.node).collect();
        assert_eq!(executed, vec![0]);
    }

    #[test]
    fn region_outage_fails_over_to_home() {
        let mut cloud = SimCloud::aws(6);
        let app = chain_app(&cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(caribou_simcloud::faults::FaultPlan::none().with_outage(ca, 0.0, 1e9));
        let mut plan = DeploymentPlan::uniform(2, app.home);
        plan.set(NodeId(1), ca);
        let out = run(&mut cloud, &app, &plan, 6);
        // §6.1 degradation: the offloaded stage re-routes to the home
        // deployment instead of killing the invocation.
        assert!(out.completed);
        assert!(out.failovers >= 1);
        assert_eq!(out.failed_region, Some(ca));
        assert_eq!(out.log.nodes.len(), 2, "both stages ran");
        let rec = out.log.nodes.iter().find(|r| r.node == 1).unwrap();
        assert_eq!(rec.region, app.home, "stage 1 fell back home");
    }

    #[test]
    fn home_outage_marks_invocation_failed() {
        let mut cloud = SimCloud::aws(24);
        let app = chain_app(&cloud);
        let home = app.home;
        cloud.set_faults(caribou_simcloud::faults::FaultPlan::none().with_outage(home, 0.0, 1e9));
        let plan = DeploymentPlan::uniform(2, app.home);
        let out = run(&mut cloud, &app, &plan, 24);
        // No fallback target exists: the invocation is reported failed,
        // with the failing region attributed.
        assert!(!out.completed);
        assert_eq!(out.failed_region, Some(home));
        assert_eq!(out.failovers, 0);
    }

    #[test]
    fn partition_mid_workflow_fails_over_to_home() {
        let mut cloud = SimCloud::aws(25);
        let app = chain_app(&cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        let home = app.home;
        // Home and ca cannot talk; ca itself is healthy. The A→B hop
        // dead-letters and B re-routes home.
        cloud.set_faults(
            caribou_simcloud::faults::FaultPlan::none().with_partition(home, ca, 0.0, 1e9),
        );
        let mut plan = DeploymentPlan::uniform(2, app.home);
        plan.set(NodeId(1), ca);
        let out = run(&mut cloud, &app, &plan, 25);
        assert!(out.completed);
        assert!(out.failovers >= 1);
        assert_eq!(out.failed_region, Some(ca));
        let rec = out.log.nodes.iter().find(|r| r.node == 1).unwrap();
        assert_eq!(rec.region, home);
        // The dead-letter retry tax is visible in the end-to-end latency:
        // five attempts with backoffs before the redrive.
        assert!(out.e2e_latency_s > 5.0, "{}", out.e2e_latency_s);
    }

    #[test]
    fn sync_node_fails_over_when_its_region_dies() {
        let mut cloud = SimCloud::aws(26);
        cloud.compute.cold_start_prob = 0.0;
        let app = sync_app(&cloud, None);
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(caribou_simcloud::faults::FaultPlan::none().with_outage(ca, 0.0, 1e9));
        let mut plan = DeploymentPlan::uniform(4, app.home);
        plan.set(NodeId(3), ca);
        let out = run(&mut cloud, &app, &plan, 26);
        assert!(out.completed);
        assert!(out.failovers >= 1);
        let d = out.log.nodes.iter().find(|r| r.node == 3).unwrap();
        assert_eq!(d.region, app.home, "sync node fell back home");
    }

    #[test]
    fn cold_storm_forces_cold_starts() {
        let mut cloud = SimCloud::aws(27);
        cloud.compute.cold_start_prob = 0.0;
        cloud.compute.exec_sigma = 0.0;
        let app = chain_app(&cloud);
        let plan = DeploymentPlan::uniform(2, app.home);
        let calm = run(&mut cloud, &app, &plan, 27);
        let mut stormy_cloud = SimCloud::aws(27);
        stormy_cloud.compute.cold_start_prob = 0.0;
        stormy_cloud.compute.exec_sigma = 0.0;
        stormy_cloud.set_faults(
            caribou_simcloud::faults::FaultPlan::none().with_cold_storm(app.home, 0.0, 1e9),
        );
        let stormy = run(&mut stormy_cloud, &app, &plan, 27);
        assert!(
            stormy.e2e_latency_s > calm.e2e_latency_s + 0.3,
            "calm {} stormy {}",
            calm.e2e_latency_s,
            stormy.e2e_latency_s
        );
    }

    #[test]
    fn caribou_slightly_slower_than_sns_much_less_than_step_functions_gap() {
        let mut cloud = SimCloud::aws(7);
        cloud.compute.cold_start_prob = 0.0;
        cloud.compute.exec_sigma = 0.0;
        let app = chain_app(&cloud);
        let plan = DeploymentPlan::uniform(2, app.home);
        let carbon = carbon_table(&cloud);
        let mut mean_latency = |orch: Orchestrator, seed: u64| -> f64 {
            let engine = ExecutionEngine {
                carbon_source: &carbon,
                carbon_model: CarbonModel::new(TransmissionScenario::BEST),
                orchestrator: orch,
            };
            engine.provision(&mut cloud, &app, &plan);
            let mut rng = Pcg32::seed(seed);
            let n = 200;
            (0..n)
                .map(|i| {
                    engine
                        .invoke(&mut cloud, &app, &plan, i, 100.0, &mut rng)
                        .e2e_latency_s
                })
                .sum::<f64>()
                / n as f64
        };
        let sf = mean_latency(Orchestrator::StepFunctions, 1);
        let sns = mean_latency(Orchestrator::Sns, 1);
        let cb = mean_latency(Orchestrator::Caribou, 1);
        assert!(sf < sns, "sf {sf} sns {sns}");
        assert!(cb > sns, "cb {cb} sns {sns}");
        // Caribou's overhead over SNS is small relative to SNS's overhead
        // over Step Functions (§9.6).
        assert!((cb - sns) < (sns - sf), "cb {cb} sns {sns} sf {sf}");
    }

    #[test]
    fn deterministic_per_seed() {
        let mut c1 = SimCloud::aws(8);
        let mut c2 = SimCloud::aws(8);
        let app1 = sync_app(&c1, Some(0.5));
        let app2 = sync_app(&c2, Some(0.5));
        let plan = DeploymentPlan::uniform(4, app1.home);
        let a = run(&mut c1, &app1, &plan, 11);
        let b = run(&mut c2, &app2, &plan, 11);
        assert_eq!(a.e2e_latency_s, b.e2e_latency_s);
        assert_eq!(a.cost_usd, b.cost_usd);
        assert_eq!(a.carbon_g(), b.carbon_g());
    }

    #[test]
    fn sns_orchestrator_supports_sync_via_the_kv_protocol() {
        // The "similar implementations in SNS" of §9.6 use the same
        // annotation trick; the engine must complete sync workflows under
        // the raw-SNS orchestrator too.
        let mut cloud = SimCloud::aws(19);
        let app = sync_app(&cloud, Some(0.5));
        let plan = DeploymentPlan::uniform(4, app.home);
        let carbon = carbon_table(&cloud);
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Sns,
        };
        engine.provision(&mut cloud, &app, &plan);
        let mut rng = Pcg32::seed(19);
        for i in 0..50 {
            let out = engine.invoke(&mut cloud, &app, &plan, i, 100.0, &mut rng);
            assert!(out.completed, "invocation {i}");
            assert!(out.log.nodes.iter().any(|n| n.node == 3), "sync node ran");
        }
    }

    #[test]
    fn step_functions_orchestrator_runs_sync_without_sns() {
        let mut cloud = SimCloud::aws(23);
        let app = sync_app(&cloud, None);
        let plan = DeploymentPlan::uniform(4, app.home);
        let carbon = carbon_table(&cloud);
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::StepFunctions,
        };
        engine.provision(&mut cloud, &app, &plan);
        let before = cloud.pubsub.total_published();
        let out = engine.invoke(&mut cloud, &app, &plan, 1, 100.0, &mut Pcg32::seed(23));
        assert!(out.completed);
        assert_eq!(out.log.nodes.len(), 4);
        // Step Functions performs direct transitions after the client's
        // entry publish: no further SNS messages.
        assert_eq!(cloud.pubsub.total_published() - before, 1);
    }

    #[test]
    fn large_payloads_go_through_the_blob_store() {
        let mut cloud = SimCloud::aws(20);
        let mut wf = Workflow::new("big", "0.1");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        // 5 MB payload: far above the DynamoDB item limit.
        wf.invoke(a, b, None)
            .payload(DistSpec::Constant { value: 5e6 });
        let (dag, profile, _) = wf.extract().unwrap();
        let app = WorkflowApp {
            name: "big".into(),
            dag,
            profile,
            home: cloud.region("us-east-1").unwrap(),
        };
        let plan = DeploymentPlan::uniform(2, app.home);
        let out = run(&mut cloud, &app, &plan, 20);
        assert!(out.completed);
        let home = app.home;
        assert_eq!(cloud.blob.ops(home).puts, 1, "payload stored as a blob");
        assert_eq!(cloud.blob.ops(home).gets, 1, "successor fetched it");
        assert_eq!(out.meter.blob_puts.get(&home), Some(&1));
    }

    #[test]
    fn small_payloads_stay_on_the_kv_path() {
        let mut cloud = SimCloud::aws(21);
        let app = chain_app(&cloud); // 10 KB payload
        let plan = DeploymentPlan::uniform(2, app.home);
        let out = run(&mut cloud, &app, &plan, 21);
        assert!(out.completed);
        assert_eq!(cloud.blob.ops(app.home).puts, 0);
        assert!(out.meter.blob_puts.is_empty());
    }

    #[test]
    fn warm_pool_makes_first_invocation_cold_then_warm() {
        let mut cloud = SimCloud::aws(22);
        cloud.compute.exec_sigma = 0.0;
        cloud.warm = caribou_simcloud::warm::WarmPool::enabled(600.0);
        let app = chain_app(&cloud);
        let plan = DeploymentPlan::uniform(2, app.home);
        let carbon = carbon_table(&cloud);
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Caribou,
        };
        engine.provision(&mut cloud, &app, &plan);
        let mut rng = Pcg32::seed(22);
        let first = engine.invoke(&mut cloud, &app, &plan, 1, 100.0, &mut rng);
        let second = engine.invoke(&mut cloud, &app, &plan, 2, 160.0, &mut rng);
        // The cold-start penalty shows in the first run only.
        assert!(
            first.e2e_latency_s > second.e2e_latency_s + 0.3,
            "first {} second {}",
            first.e2e_latency_s,
            second.e2e_latency_s
        );
        // After idling past the keep-alive, cold again.
        let third = engine.invoke(&mut cloud, &app, &plan, 3, 160.0 + 3600.0, &mut rng);
        assert!(
            third.e2e_latency_s > second.e2e_latency_s + 0.3,
            "second {} third {}",
            second.e2e_latency_s,
            third.e2e_latency_s
        );
    }

    #[test]
    fn single_provider_runs_meter_zero_cross_cloud_egress() {
        let mut cloud = SimCloud::aws(30);
        let app = chain_app(&cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        let mut plan = DeploymentPlan::uniform(2, app.home);
        plan.set(NodeId(1), ca);
        let out = run(&mut cloud, &app, &plan, 30);
        assert!(out.completed);
        assert!(out.meter.total_egress_bytes() > 0.0);
        assert_eq!(out.cross_cloud_egress_bytes, 0.0);
        assert_eq!(out.cross_cloud_cost_usd, 0.0);
        assert_eq!(out.cross_cloud_carbon_g, 0.0);
    }

    #[test]
    fn cross_provider_hop_meters_its_own_egress_line() {
        use caribou_model::region::{Provider, ProviderSet};
        let mut cloud =
            SimCloud::for_providers(ProviderSet::of(&[Provider::Aws, Provider::Gcp]), 31).unwrap();
        let app = chain_app(&cloud);
        let gcp_west = cloud.region("gcp:us-west1").unwrap();
        let mut plan = DeploymentPlan::uniform(2, app.home);
        plan.set(NodeId(1), gcp_west);
        let out = run(&mut cloud, &app, &plan, 31);
        assert!(out.completed);
        // The A→B payload crossed the provider boundary: the cross-cloud
        // line is non-zero and strictly a subset of the totals.
        assert!(out.cross_cloud_egress_bytes > 0.0);
        assert!(out.cross_cloud_egress_bytes <= out.meter.total_egress_bytes());
        assert!(out.cross_cloud_cost_usd > 0.0);
        assert!(out.cross_cloud_cost_usd < out.cost_usd);
        assert!(out.cross_cloud_carbon_g > 0.0);
        assert!(out.cross_cloud_carbon_g <= out.trans_carbon_g);
        // Cross-provider egress bills the internet-tier rate, which is
        // strictly pricier than the intra-provider inter-region rate.
        let intra = cloud.pricing.region(app.home).egress_inter_region_per_gb;
        let cross_rate = out.cross_cloud_cost_usd / (out.cross_cloud_egress_bytes / 1e9);
        assert!(cross_rate > intra, "cross {cross_rate} intra {intra}");
    }

    #[test]
    fn kv_annotations_written_for_sync_node() {
        let mut cloud = SimCloud::aws(9);
        let app = sync_app(&cloud, None);
        let plan = DeploymentPlan::uniform(4, app.home);
        let before = cloud.kv.total_ops();
        let out = run(&mut cloud, &app, &plan, 12);
        assert!(out.completed);
        let after = cloud.kv.total_ops();
        // Two predecessors each perform an atomic annotation update (a
        // read+write), plus data writes/reads and the plan fetch.
        assert!(after.writes - before.writes >= 2 + 3);
        assert!(after.reads - before.reads > 2);
    }

    #[test]
    fn pooled_scratch_matches_one_shot_invoke() {
        // Same seeds through the pooled and the one-shot entry points must
        // produce bit-identical outcomes: the loadgen's determinism (and
        // its 1-vs-N-worker diff) rests on this.
        let mut fresh_cloud = SimCloud::aws(11);
        let mut pooled_cloud = SimCloud::aws(11);
        let app = sync_app(&fresh_cloud, Some(0.5));
        let plan = DeploymentPlan::uniform(4, app.home);
        let carbon = carbon_table(&fresh_cloud);
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Caribou,
        };
        engine.provision(&mut fresh_cloud, &app, &plan);
        engine.provision(&mut pooled_cloud, &app, &plan);
        let mut scratch = InvocationScratch::new();
        for inv in 0..20u64 {
            let at = 50.0 + inv as f64 * 30.0;
            let a = engine.invoke(
                &mut fresh_cloud,
                &app,
                &plan,
                inv,
                at,
                &mut Pcg32::seed(inv ^ 0xC0FFEE),
            );
            let b = engine.invoke_with_scratch(
                &mut pooled_cloud,
                &app,
                &plan,
                inv,
                at,
                &mut Pcg32::seed(inv ^ 0xC0FFEE),
                &mut scratch,
            );
            assert_eq!(a.e2e_latency_s.to_bits(), b.e2e_latency_s.to_bits());
            assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
            assert_eq!(a.exec_carbon_g.to_bits(), b.exec_carbon_g.to_bits());
            assert_eq!(a.trans_carbon_g.to_bits(), b.trans_carbon_g.to_bits());
            assert_eq!(a.completed, b.completed);
            assert_eq!(a.log.nodes, b.log.nodes);
            assert_eq!(a.log.edges, b.log.edges);
        }
        assert_eq!(scratch.invocations(), 20);
    }

    #[test]
    fn warm_scratch_stops_growing_buffers() {
        let mut cloud = SimCloud::aws(12);
        let app = sync_app(&cloud, None);
        let plan = DeploymentPlan::uniform(4, app.home);
        let carbon = carbon_table(&cloud);
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Caribou,
        };
        engine.provision(&mut cloud, &app, &plan);
        let mut rng = Pcg32::seed(99);
        let mut scratch = InvocationScratch::new();
        engine.invoke_with_scratch(&mut cloud, &app, &plan, 0, 10.0, &mut rng, &mut scratch);
        let cold = scratch.allocs();
        assert!(cold >= 1, "first invocation must size the buffers");
        for inv in 1..50u64 {
            engine.invoke_with_scratch(
                &mut cloud,
                &app,
                &plan,
                inv,
                10.0 + inv as f64 * 20.0,
                &mut rng,
                &mut scratch,
            );
        }
        // Warm steady state reuses every pooled buffer.
        assert_eq!(scratch.allocs(), cold);
        assert_eq!(scratch.invocations(), 50);
    }

    #[test]
    fn alloc_gauge_reports_warm_steady_state() {
        caribou_telemetry::enable(Box::new(caribou_telemetry::NullSink));
        let mut cloud = SimCloud::aws(13);
        let app = chain_app(&cloud);
        let plan = DeploymentPlan::uniform(2, app.home);
        let carbon = carbon_table(&cloud);
        let engine = ExecutionEngine {
            carbon_source: &carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            orchestrator: Orchestrator::Caribou,
        };
        engine.provision(&mut cloud, &app, &plan);
        let mut rng = Pcg32::seed(7);
        let mut scratch = InvocationScratch::new();
        for inv in 0..10u64 {
            engine.invoke_with_scratch(
                &mut cloud,
                &app,
                &plan,
                inv,
                5.0 + inv as f64 * 15.0,
                &mut rng,
                &mut scratch,
            );
        }
        let finished = caribou_telemetry::finish().expect("session active");
        let rec = &finished.recorder;
        // The gauge holds the last invocation's value: warm steady state
        // allocates only the two caller-owned log-record vectors.
        assert_eq!(rec.gauges["engine.alloc_per_invocation"], 2.0);
        // Pooled-buffer growth all happened on the first invocation; the
        // counter stops moving once the scratch is warm.
        let cold_growth = rec.counter("engine.scratch_allocs");
        assert!(cold_growth >= 1, "first invocation must size the buffers");
        assert!(
            cold_growth <= 7,
            "warm invocations must not grow pooled buffers (saw {cold_growth})"
        );
    }
}
