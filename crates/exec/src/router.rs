//! Invocation routing: active plans, expiry fallback, the 10%
//! home-region benchmarking traffic (§6.2), and a per-region circuit
//! breaker.
//!
//! "The wrapper routes 10% of the workflow invocations to be fully
//! executed at the home region for performance benchmarking and metric
//! collection." The router also applies plan expiry (§5.2): when the
//! active plan set has expired, all traffic is routed home until a new
//! plan is activated.
//!
//! The circuit breaker stops repeated failures from paying the
//! dead-letter retry tax on every request: after
//! [`BreakerConfig::failure_threshold`] consecutive failures of a region,
//! its breaker opens and the router substitutes the home region for that
//! region's assignments. After [`BreakerConfig::cooldown_s`] the breaker
//! half-opens and lets a single probe through; a success closes it, a
//! failure re-opens it. The happy path (no breaker tripped) is a single
//! branch on a counter, so routing cost is unchanged when regions are
//! healthy.
//!
//! When a [`ContingencyTable`] is installed, a tripped breaker engages
//! *failover* instead of ad-hoc per-node home substitution: breaker
//! state is aggregated up to provider level (every plan-used region of a
//! provider blocked ⇒ the whole provider is treated as down) and the
//! router switches to the best precomputed fallback plan covering the
//! down set. Recovery is staged through the same half-open probes — once
//! the probes succeed and every breaker closes, traffic returns to the
//! primary plan and the time-to-recover is observed on the
//! `failover.time_to_recover_s` histogram.

use std::collections::HashMap;

use caribou_model::plan::{ContingencyEntry, ContingencyTable, DeploymentPlan, HourlyPlans};
use caribou_model::region::{Provider, RegionId};

/// Circuit-breaker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Whether the breaker participates in routing at all.
    pub enabled: bool,
    /// Consecutive failures of a region before its breaker opens.
    pub failure_threshold: u32,
    /// Seconds an open breaker blocks traffic before half-opening.
    pub cooldown_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            enabled: true,
            failure_threshold: 3,
            cooldown_s: 300.0,
        }
    }
}

/// Observable state of one region's breaker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: traffic flows to the region.
    Closed,
    /// Tripped: the region's assignments are substituted with home.
    Open,
    /// Cooled down: exactly one probe request is allowed through.
    HalfOpen,
}

#[derive(Debug, Clone, Copy)]
struct RegionBreaker {
    state: BreakerState,
    consecutive_failures: u32,
    opened_at_s: f64,
    /// Whether the half-open probe has been dispatched and is awaiting
    /// its outcome.
    probe_inflight: bool,
}

/// Routing decision for one invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// Plan the invocation executes under.
    pub plan: DeploymentPlan,
    /// Whether this is benchmarking traffic pinned to the home region.
    pub benchmark_traffic: bool,
    /// Whether the active plan set had expired (home fallback).
    pub plan_expired: bool,
    /// Whether an open circuit breaker substituted home for one or more
    /// of the plan's regions.
    pub breaker_rerouted: bool,
    /// Whether the invocation was routed on a precomputed contingency
    /// fallback plan instead of the primary.
    pub fallback: bool,
    /// Whether a half-open breaker admitted this request as its recovery
    /// probe. Probe requests deliberately sample a suspected-down path,
    /// so latency accounting can treat them as canary traffic.
    pub probed: bool,
}

/// Routes invocations of one workflow.
#[derive(Debug, Clone)]
pub struct InvocationRouter {
    home: RegionId,
    node_count: usize,
    active: Option<HourlyPlans>,
    counter: u64,
    /// Every `benchmark_every`-th invocation is pinned home (10 in the
    /// paper).
    pub benchmark_every: u64,
    /// Circuit-breaker configuration.
    pub breaker: BreakerConfig,
    breakers: HashMap<RegionId, RegionBreaker>,
    /// Number of breakers currently Open or HalfOpen. The routing happy
    /// path checks only this counter.
    tripped: u32,
    /// Precomputed fallback plans; when present, tripped breakers engage
    /// failover instead of per-node home substitution.
    contingency: Option<ContingencyTable>,
    /// Region → provider map used to aggregate breaker state up to
    /// provider level.
    topology: Vec<(RegionId, Provider)>,
    /// Index of the currently engaged fallback entry, if any.
    active_fallback: Option<usize>,
    /// Simulation time failover first engaged (for time-to-recover).
    engaged_at_s: f64,
}

impl InvocationRouter {
    /// Creates a router with no active plan (all traffic goes home).
    pub fn new(home: RegionId, node_count: usize) -> Self {
        InvocationRouter {
            home,
            node_count,
            active: None,
            counter: 0,
            benchmark_every: 10,
            breaker: BreakerConfig::default(),
            breakers: HashMap::new(),
            tripped: 0,
            contingency: None,
            topology: Vec::new(),
            active_fallback: None,
            engaged_at_s: 0.0,
        }
    }

    /// Installs a contingency table and the region → provider topology
    /// used for provider-level health aggregation. Tripped breakers will
    /// engage precomputed fallback plans instead of ad-hoc home
    /// substitution.
    pub fn set_contingency(
        &mut self,
        table: ContingencyTable,
        topology: Vec<(RegionId, Provider)>,
    ) {
        self.contingency = Some(table);
        self.topology = topology;
        self.active_fallback = None;
    }

    /// The installed contingency table, if any.
    pub fn contingency(&self) -> Option<&ContingencyTable> {
        self.contingency.as_ref()
    }

    /// The currently engaged fallback entry, if failover is active.
    pub fn active_fallback(&self) -> Option<&ContingencyEntry> {
        let idx = self.active_fallback?;
        Some(&self.contingency.as_ref()?.entries[idx])
    }

    /// Whether a contingency fallback is currently routing traffic. This
    /// sits on the routing happy path next to [`Self::breaker_engaged`];
    /// the bench suite guards the pair under the same 10 ns budget.
    #[inline]
    pub fn fallback_engaged(&self) -> bool {
        self.active_fallback.is_some()
    }

    /// Activates a new plan set (called by the Migrator once every
    /// function re-deployment succeeded, §6.1).
    pub fn activate(&mut self, plans: HourlyPlans) {
        self.active = Some(plans);
    }

    /// Clears the active plan set (rollback to home, §6.1).
    pub fn deactivate(&mut self) {
        self.active = None;
    }

    /// Whether a plan set is currently active (and unexpired) at `now`.
    pub fn has_active_plan(&self, now_s: f64) -> bool {
        self.active.as_ref().is_some_and(|p| !p.expired(now_s))
    }

    /// The currently installed plan set, if any (possibly expired).
    pub fn active_plans(&self) -> Option<&HourlyPlans> {
        self.active.as_ref()
    }

    /// The home-region uniform plan.
    pub fn home_plan(&self) -> DeploymentPlan {
        DeploymentPlan::uniform(self.node_count, self.home)
    }

    /// Whether any breaker is currently blocking a region. This is the
    /// exact check `route` performs on its happy path; the bench suite
    /// guards that it stays under 10 ns.
    #[inline]
    pub fn breaker_engaged(&self) -> bool {
        self.breaker.enabled && self.tripped > 0
    }

    /// Current breaker state for a region.
    pub fn breaker_state(&self, region: RegionId) -> BreakerState {
        self.breakers
            .get(&region)
            .map(|b| b.state)
            .unwrap_or(BreakerState::Closed)
    }

    /// Number of regions with a tripped (open or half-open) breaker.
    pub fn tripped_regions(&self) -> u32 {
        self.tripped
    }

    /// Routes the next invocation at simulation time `now_s`.
    pub fn route(&mut self, now_s: f64) -> RouteDecision {
        self.counter += 1;
        let benchmark =
            self.benchmark_every > 0 && self.counter.is_multiple_of(self.benchmark_every);
        if benchmark {
            // Benchmark traffic is pinned home by definition; no breaker
            // can reroute it further.
            return RouteDecision {
                plan: self.home_plan(),
                benchmark_traffic: true,
                plan_expired: false,
                breaker_rerouted: false,
                fallback: false,
                probed: false,
            };
        }
        let mut decision = match &self.active {
            Some(plans) if !plans.expired(now_s) => {
                let hour = ((now_s / 3600.0) as usize) % 24;
                RouteDecision {
                    plan: plans.plan_for_hour(hour).clone(),
                    benchmark_traffic: false,
                    plan_expired: false,
                    breaker_rerouted: false,
                    fallback: false,
                    probed: false,
                }
            }
            Some(_) => RouteDecision {
                plan: self.home_plan(),
                benchmark_traffic: false,
                plan_expired: true,
                breaker_rerouted: false,
                fallback: false,
                probed: false,
            },
            None => RouteDecision {
                plan: self.home_plan(),
                benchmark_traffic: false,
                plan_expired: false,
                breaker_rerouted: false,
                fallback: false,
                probed: false,
            },
        };
        if self.breaker_engaged() {
            if self.contingency.is_some() {
                self.apply_failover(&mut decision, now_s);
            } else {
                self.apply_breakers(&mut decision, now_s);
            }
        } else if self.active_fallback.is_some() {
            self.finish_recovery(now_s);
        }
        decision
    }

    /// Substitutes home for every plan assignment whose region is blocked
    /// by a tripped breaker. Only called when at least one breaker is
    /// tripped (the cold path). The block decision is made once per
    /// region per request, so a half-open probe admits the whole request
    /// rather than being consumed by its first node.
    fn apply_breakers(&mut self, decision: &mut RouteDecision, now_s: f64) {
        let mut verdicts: Vec<(RegionId, bool)> = Vec::new();
        for i in 0..decision.plan.len() {
            let node = caribou_model::dag::NodeId(i as u32);
            let region = decision.plan.region_of(node);
            if region == self.home {
                continue;
            }
            let blocked = match verdicts.iter().find(|(r, _)| *r == region) {
                Some((_, b)) => *b,
                None => {
                    let b = self.blocks(region, now_s);
                    if !b && self.breaker_state(region) != BreakerState::Closed {
                        // The region's half-open breaker admitted this
                        // request as its recovery probe.
                        decision.probed = true;
                    }
                    verdicts.push((region, b));
                    b
                }
            };
            if blocked {
                decision.plan.set(node, self.home);
                decision.breaker_rerouted = true;
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::count("breaker.reroute", 1);
                }
            }
        }
    }

    /// Contingency failover (cold path; at least one breaker tripped and
    /// a table is installed). Computes per-region block verdicts for
    /// every tripped breaker in sorted region order — the same staged
    /// half-open probe semantics as plain breaker mode — aggregates the
    /// blocked set up to provider level, and switches the decision to
    /// the best precomputed fallback plan covering it. When no fallback
    /// covers the down set, degrades to per-node home substitution.
    fn apply_failover(&mut self, decision: &mut RouteDecision, now_s: f64) {
        let mut tripped: Vec<RegionId> = self.breakers.keys().copied().collect();
        tripped.sort_unstable();
        let mut down: Vec<RegionId> = Vec::new();
        for region in tripped {
            if region == self.home {
                continue;
            }
            if self.blocks(region, now_s) {
                down.push(region);
            } else if self.breaker_state(region) != BreakerState::Closed {
                decision.probed = true;
            }
        }
        if down.is_empty() {
            // Every tripped breaker is admitting its half-open probe this
            // request: route the primary so the probes actually test it.
            // Failover stays engaged until the breakers really close.
            return;
        }

        // Provider-level aggregation: when every region of a provider the
        // primary plan set relies on is blocked, treat the whole provider
        // as down so provider-wide fallbacks match.
        let plan_regions: Vec<RegionId> = self
            .active
            .as_ref()
            .map(|p| p.regions_used())
            .unwrap_or_default();
        let provider_of = |r: RegionId, topo: &[(RegionId, Provider)]| {
            topo.iter().find(|(reg, _)| *reg == r).map(|(_, p)| *p)
        };
        let home_provider = provider_of(self.home, &self.topology);
        let mut effective = down.clone();
        for p in Provider::ALL {
            if Some(p) == home_provider {
                continue;
            }
            let used: Vec<RegionId> = plan_regions
                .iter()
                .copied()
                .filter(|&r| r != self.home && provider_of(r, &self.topology) == Some(p))
                .collect();
            if !used.is_empty() && used.iter().all(|r| down.contains(r)) {
                for &(r, rp) in &self.topology {
                    if rp == p && !effective.contains(&r) {
                        effective.push(r);
                    }
                }
            }
        }
        effective.sort_unstable();

        let table = self.contingency.as_ref().expect("checked by caller");
        let chosen = table.entries.iter().position(|e| {
            !e.plans.expired(now_s) && effective.iter().all(|r| e.excluded_regions.contains(r))
        });
        if let Some(idx) = chosen {
            let entry = &table.entries[idx];
            let hour = ((now_s / 3600.0) as usize) % 24;
            decision.plan = entry.plans.plan_for_hour(hour).clone();
            decision.fallback = true;
            if self.active_fallback != Some(idx) {
                if self.active_fallback.is_none() {
                    self.engaged_at_s = now_s;
                    if caribou_telemetry::is_enabled() {
                        caribou_telemetry::count("failover.engaged", 1);
                    }
                }
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::event_at(
                        now_s,
                        "failover.switch",
                        table.entries[idx].exclusion.label(),
                        effective.len() as f64,
                    );
                }
                self.active_fallback = Some(idx);
            }
            if caribou_telemetry::is_enabled() {
                caribou_telemetry::count("failover.rerouted", 1);
            }
            return;
        }

        // No precomputed fallback avoids the whole down set (e.g. home's
        // own provider degraded): substitute home per blocked node, the
        // pre-contingency behaviour.
        for i in 0..decision.plan.len() {
            let node = caribou_model::dag::NodeId(i as u32);
            if down.contains(&decision.plan.region_of(node)) {
                decision.plan.set(node, self.home);
                decision.breaker_rerouted = true;
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::count("breaker.reroute", 1);
                }
            }
        }
    }

    /// Ends an engaged failover: every breaker closed (or admitted its
    /// probe), traffic is back on the primary plan.
    fn finish_recovery(&mut self, now_s: f64) {
        if self.active_fallback.take().is_some() && caribou_telemetry::is_enabled() {
            // The recovery event also bumps the `failover.recovered` counter.
            caribou_telemetry::observe(
                "failover.time_to_recover_s",
                (now_s - self.engaged_at_s).max(0.0),
            );
            caribou_telemetry::event_at(now_s, "failover.recovered", "primary", 0.0);
        }
    }

    /// Whether the breaker currently blocks traffic to `region`,
    /// transitioning Open → HalfOpen after the cooldown and admitting a
    /// single probe in the half-open state.
    fn blocks(&mut self, region: RegionId, now_s: f64) -> bool {
        let Some(b) = self.breakers.get_mut(&region) else {
            return false;
        };
        match b.state {
            BreakerState::Closed => false,
            BreakerState::Open => {
                if now_s >= b.opened_at_s + self.breaker.cooldown_s {
                    b.state = BreakerState::HalfOpen;
                    b.probe_inflight = true;
                    if caribou_telemetry::is_enabled() {
                        caribou_telemetry::event_at(
                            now_s,
                            "breaker.half_open",
                            format!("r{}", region.0),
                            0.0,
                        );
                    }
                    false
                } else {
                    true
                }
            }
            BreakerState::HalfOpen => {
                if b.probe_inflight {
                    true
                } else {
                    b.probe_inflight = true;
                    false
                }
            }
        }
    }

    /// Records a failed request against `region`, opening its breaker
    /// after [`BreakerConfig::failure_threshold`] consecutive failures
    /// (or immediately when the half-open probe fails).
    pub fn record_failure(&mut self, region: RegionId, now_s: f64) {
        if !self.breaker.enabled {
            return;
        }
        let b = self.breakers.entry(region).or_insert(RegionBreaker {
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_at_s: 0.0,
            probe_inflight: false,
        });
        b.consecutive_failures += 1;
        b.probe_inflight = false;
        match b.state {
            BreakerState::HalfOpen => {
                b.state = BreakerState::Open;
                b.opened_at_s = now_s;
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::event_at(
                        now_s,
                        "breaker.reopen",
                        format!("r{}", region.0),
                        b.consecutive_failures as f64,
                    );
                }
            }
            BreakerState::Closed if b.consecutive_failures >= self.breaker.failure_threshold => {
                b.state = BreakerState::Open;
                b.opened_at_s = now_s;
                self.tripped += 1;
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::event_at(
                        now_s,
                        "breaker.open",
                        format!("r{}", region.0),
                        b.consecutive_failures as f64,
                    );
                }
            }
            _ => {}
        }
    }

    /// Records a successful request served by `region`, closing its
    /// breaker (a half-open probe that succeeds, or background recovery).
    pub fn record_success(&mut self, region: RegionId) {
        if !self.breaker.enabled {
            return;
        }
        if let Some(b) = self.breakers.remove(&region) {
            if b.state != BreakerState::Closed {
                self.tripped -= 1;
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::event("breaker.close", format!("r{}", region.0), 0.0);
                }
            }
        }
    }

    /// Feeds one invocation outcome back into the breaker: the failed
    /// region (when any) records a failure, every other region the plan
    /// actually used records a success.
    pub fn record_outcome(
        &mut self,
        plan: &DeploymentPlan,
        failed_region: Option<RegionId>,
        now_s: f64,
    ) {
        if !self.breaker.enabled {
            return;
        }
        if failed_region.is_none() && self.breakers.is_empty() {
            return;
        }
        if let Some(r) = failed_region {
            self.record_failure(r, now_s);
        }
        for region in plan.regions_used() {
            if Some(region) != failed_region {
                self.record_success(region);
            }
        }
    }

    /// Invocations routed so far.
    pub fn invocations(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hourly(region: RegionId, expires: f64) -> HourlyPlans {
        HourlyPlans::hourly(
            (0..24)
                .map(|_| DeploymentPlan::uniform(2, region))
                .collect(),
            0.0,
            expires,
        )
    }

    #[test]
    fn no_plan_routes_home() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        let d = r.route(0.0);
        assert_eq!(d.plan, r.home_plan());
        assert!(!d.benchmark_traffic);
        assert!(!d.plan_expired);
    }

    #[test]
    fn every_tenth_invocation_is_benchmark_traffic() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        let mut bench = 0;
        for _ in 0..100 {
            if r.route(10.0).benchmark_traffic {
                bench += 1;
            }
        }
        assert_eq!(bench, 10);
    }

    #[test]
    fn benchmark_traffic_pinned_home_despite_plan() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        let decisions: Vec<RouteDecision> = (0..10).map(|_| r.route(10.0)).collect();
        let last = &decisions[9];
        assert!(last.benchmark_traffic);
        assert_eq!(last.plan, r.home_plan());
        assert_eq!(decisions[0].plan, DeploymentPlan::uniform(2, RegionId(3)));
    }

    #[test]
    fn expired_plan_falls_back_home() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 100.0));
        assert!(r.has_active_plan(50.0));
        assert!(!r.has_active_plan(100.0));
        let d = r.route(200.0);
        assert!(d.plan_expired);
        assert_eq!(d.plan, r.home_plan());
    }

    #[test]
    fn hour_of_day_selects_plan() {
        let mut r = InvocationRouter::new(RegionId(0), 1);
        let mut plans: Vec<DeploymentPlan> = (0..24)
            .map(|_| DeploymentPlan::uniform(1, RegionId(0)))
            .collect();
        plans[5] = DeploymentPlan::uniform(1, RegionId(7));
        r.activate(HourlyPlans::hourly(plans, 0.0, 1e9));
        let at_5am = 5.5 * 3600.0;
        let d = r.route(at_5am);
        assert_eq!(d.plan, DeploymentPlan::uniform(1, RegionId(7)));
        let at_6am = 6.5 * 3600.0;
        let d = r.route(at_6am);
        assert_eq!(d.plan, DeploymentPlan::uniform(1, RegionId(0)));
    }

    #[test]
    fn deactivate_reverts_to_home() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        r.deactivate();
        assert!(!r.has_active_plan(0.0));
        assert_eq!(r.route(0.0).plan, r.home_plan());
    }

    #[test]
    fn breaker_opens_after_threshold_and_reroutes_home() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        // Below threshold: still closed, traffic still offloaded.
        r.record_failure(RegionId(3), 10.0);
        r.record_failure(RegionId(3), 20.0);
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::Closed);
        assert!(!r.route(30.0).breaker_rerouted);
        // Third consecutive failure: open.
        r.record_failure(RegionId(3), 40.0);
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::Open);
        assert!(r.breaker_engaged());
        let d = r.route(50.0);
        assert!(d.breaker_rerouted);
        assert_eq!(d.plan, r.home_plan());
    }

    #[test]
    fn breaker_half_opens_after_cooldown_single_probe() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        for _ in 0..3 {
            r.record_failure(RegionId(3), 100.0);
        }
        // Inside the cooldown: blocked.
        assert!(r.route(200.0).breaker_rerouted);
        // Past the cooldown: one probe goes through...
        let probe = r.route(500.0);
        assert!(!probe.breaker_rerouted);
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::HalfOpen);
        // ...but only one: the next request is still rerouted.
        assert!(r.route(501.0).breaker_rerouted);
        // Probe succeeds → closed; traffic flows again.
        r.record_success(RegionId(3));
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::Closed);
        assert!(!r.breaker_engaged());
        assert!(!r.route(502.0).breaker_rerouted);
    }

    #[test]
    fn failed_probe_reopens_breaker() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        for _ in 0..3 {
            r.record_failure(RegionId(3), 100.0);
        }
        let probe = r.route(500.0);
        assert!(!probe.breaker_rerouted);
        r.record_failure(RegionId(3), 500.0);
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::Open);
        // A fresh cooldown applies from the re-open.
        assert!(r.route(600.0).breaker_rerouted);
        assert!(!r.route(900.0).breaker_rerouted);
    }

    #[test]
    fn success_resets_consecutive_failures() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        r.record_failure(RegionId(3), 10.0);
        r.record_failure(RegionId(3), 20.0);
        r.record_success(RegionId(3));
        r.record_failure(RegionId(3), 30.0);
        r.record_failure(RegionId(3), 40.0);
        // Failures were not consecutive: still closed.
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::Closed);
    }

    #[test]
    fn disabled_breaker_never_reroutes() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.breaker.enabled = false;
        r.activate(hourly(RegionId(3), 1e9));
        for _ in 0..10 {
            r.record_failure(RegionId(3), 10.0);
        }
        assert!(!r.breaker_engaged());
        let d = r.route(20.0);
        assert!(!d.breaker_rerouted);
        assert_eq!(d.plan, DeploymentPlan::uniform(2, RegionId(3)));
    }

    #[test]
    fn record_outcome_feeds_failure_and_successes() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        let mut plan = DeploymentPlan::uniform(2, RegionId(0));
        plan.set(caribou_model::dag::NodeId(1), RegionId(3));
        for _ in 0..3 {
            r.record_outcome(&plan, Some(RegionId(3)), 10.0);
        }
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::Open);
        // A later clean outcome through region 3 (half-open probe) closes.
        let _ = r.route(1000.0);
        r.record_outcome(&plan, None, 1000.0);
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::Closed);
    }

    #[test]
    fn benchmark_traffic_ignores_breakers() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        for _ in 0..3 {
            r.record_failure(RegionId(3), 10.0);
        }
        for _ in 0..9 {
            let _ = r.route(20.0);
        }
        let d = r.route(20.0);
        assert!(d.benchmark_traffic);
        assert!(!d.breaker_rerouted);
    }

    use caribou_model::plan::{ContingencyEntry, ContingencyTable, Exclusion};

    fn entry(exclusion: Exclusion, excluded: Vec<RegionId>, region: RegionId) -> ContingencyEntry {
        ContingencyEntry {
            exclusion,
            excluded_regions: excluded,
            plans: hourly(region, 1e9),
            metric: 1.0,
        }
    }

    fn primary_plan() -> DeploymentPlan {
        let mut plan = DeploymentPlan::uniform(2, RegionId(3));
        plan.set(caribou_model::dag::NodeId(1), RegionId(4));
        plan
    }

    /// Home r0 (aws), primary splits across r3 and r4 (both gcp);
    /// fallback excluding r3 routes to r2 (aws), provider-level gcp
    /// exclusion to r1 (aws).
    fn failover_router() -> InvocationRouter {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(HourlyPlans::hourly(vec![primary_plan(); 24], 0.0, 1e9));
        r.set_contingency(
            ContingencyTable {
                entries: vec![
                    entry(
                        Exclusion::Region(RegionId(3)),
                        vec![RegionId(3)],
                        RegionId(2),
                    ),
                    entry(
                        Exclusion::Provider(Provider::Gcp),
                        vec![RegionId(3), RegionId(4)],
                        RegionId(1),
                    ),
                ],
            },
            vec![
                (RegionId(0), Provider::Aws),
                (RegionId(1), Provider::Aws),
                (RegionId(2), Provider::Aws),
                (RegionId(3), Provider::Gcp),
                (RegionId(4), Provider::Gcp),
            ],
        );
        r
    }

    #[test]
    fn failover_switches_to_precomputed_fallback() {
        let mut r = failover_router();
        // Only r3 blocked; the primary also relies on healthy r4, so the
        // down set stays region-level and the region entry wins.
        for _ in 0..3 {
            r.record_failure(RegionId(3), 10.0);
        }
        let d = r.route(20.0);
        assert!(d.fallback);
        assert!(!d.breaker_rerouted, "failover replaces home substitution");
        assert_eq!(d.plan, DeploymentPlan::uniform(2, RegionId(2)));
        assert!(r.fallback_engaged());
        assert_eq!(
            r.active_fallback().unwrap().exclusion,
            Exclusion::Region(RegionId(3))
        );
    }

    #[test]
    fn provider_level_aggregation_picks_provider_fallback() {
        let mut r = failover_router();
        // Every gcp region the primary relies on is blocked: the down set
        // aggregates to the whole provider and only the provider-level
        // entry covers it.
        for _ in 0..3 {
            r.record_failure(RegionId(3), 10.0);
            r.record_failure(RegionId(4), 10.0);
        }
        let d = r.route(20.0);
        assert!(d.fallback);
        assert_eq!(d.plan, DeploymentPlan::uniform(2, RegionId(1)));
        assert_eq!(
            r.active_fallback().unwrap().exclusion,
            Exclusion::Provider(Provider::Gcp)
        );
    }

    #[test]
    fn staged_recovery_returns_to_primary() {
        let mut r = failover_router();
        for _ in 0..3 {
            r.record_failure(RegionId(3), 100.0);
        }
        assert!(r.route(150.0).fallback);
        assert!(r.fallback_engaged());
        // Past the cooldown the half-open probe rides the primary plan.
        let probe = r.route(500.0);
        assert!(!probe.fallback);
        assert_eq!(probe.plan, primary_plan());
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::HalfOpen);
        // Only one probe: the next request is still on the fallback.
        assert!(r.route(501.0).fallback);
        // Probe succeeds → breaker closes → next route recovers.
        r.record_success(RegionId(3));
        let d = r.route(502.0);
        assert!(!d.fallback);
        assert_eq!(d.plan, primary_plan());
        assert!(!r.fallback_engaged());
    }

    #[test]
    fn failed_probe_stays_on_fallback() {
        let mut r = failover_router();
        for _ in 0..3 {
            r.record_failure(RegionId(3), 100.0);
        }
        assert!(r.route(150.0).fallback);
        let probe = r.route(500.0);
        assert!(!probe.fallback);
        r.record_failure(RegionId(3), 500.0);
        assert_eq!(r.breaker_state(RegionId(3)), BreakerState::Open);
        assert!(r.route(600.0).fallback);
        assert!(r.fallback_engaged());
    }

    #[test]
    fn uncovered_down_set_degrades_to_home_substitution() {
        let mut r = failover_router();
        // Trip an aws region no fallback excludes.
        for _ in 0..3 {
            r.record_failure(RegionId(2), 10.0);
        }
        // Primary uses r3/r4 (both healthy); nothing substituted.
        let d = r.route(20.0);
        assert!(!d.fallback);
        assert_eq!(d.plan, primary_plan());
        // Now also trip the primary's own regions: down = {r2, r3, r4};
        // no entry excludes r2, so blocked plan nodes substitute home.
        for _ in 0..3 {
            r.record_failure(RegionId(3), 30.0);
            r.record_failure(RegionId(4), 30.0);
        }
        let d = r.route(40.0);
        assert!(!d.fallback);
        assert!(d.breaker_rerouted);
        assert_eq!(d.plan, r.home_plan());
    }

    #[test]
    fn failover_telemetry_counts_engage_and_recover() {
        caribou_telemetry::enable(Box::new(caribou_telemetry::MemorySink::default()));
        let mut r = failover_router();
        for _ in 0..3 {
            r.record_failure(RegionId(3), 100.0);
        }
        assert!(r.route(150.0).fallback);
        assert!(r.route(160.0).fallback);
        let _probe = r.route(500.0);
        r.record_success(RegionId(3));
        let _ = r.route(502.0);
        let finished = caribou_telemetry::finish().expect("session active");
        assert_eq!(finished.recorder.counter("failover.engaged"), 1);
        assert_eq!(finished.recorder.counter("failover.rerouted"), 2);
        assert_eq!(finished.recorder.counter("failover.recovered"), 1);
        let ttr = &finished.recorder.histograms["failover.time_to_recover_s"];
        assert_eq!(ttr.count, 1);
        let sink = finished
            .sink
            .as_any()
            .downcast_ref::<caribou_telemetry::MemorySink>()
            .unwrap();
        assert!(sink.events.iter().any(|e| e.kind == "failover.switch"));
        assert!(sink.events.iter().any(|e| e.kind == "failover.recovered"));
    }
}
