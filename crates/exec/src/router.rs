//! Invocation routing: active plans, expiry fallback, and the 10%
//! home-region benchmarking traffic (§6.2).
//!
//! "The wrapper routes 10% of the workflow invocations to be fully
//! executed at the home region for performance benchmarking and metric
//! collection." The router also applies plan expiry (§5.2): when the
//! active plan set has expired, all traffic is routed home until a new
//! plan is activated.

use caribou_model::plan::{DeploymentPlan, HourlyPlans};
use caribou_model::region::RegionId;

/// Routing decision for one invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct RouteDecision {
    /// Plan the invocation executes under.
    pub plan: DeploymentPlan,
    /// Whether this is benchmarking traffic pinned to the home region.
    pub benchmark_traffic: bool,
    /// Whether the active plan set had expired (home fallback).
    pub plan_expired: bool,
}

/// Routes invocations of one workflow.
#[derive(Debug, Clone)]
pub struct InvocationRouter {
    home: RegionId,
    node_count: usize,
    active: Option<HourlyPlans>,
    counter: u64,
    /// Every `benchmark_every`-th invocation is pinned home (10 in the
    /// paper).
    pub benchmark_every: u64,
}

impl InvocationRouter {
    /// Creates a router with no active plan (all traffic goes home).
    pub fn new(home: RegionId, node_count: usize) -> Self {
        InvocationRouter {
            home,
            node_count,
            active: None,
            counter: 0,
            benchmark_every: 10,
        }
    }

    /// Activates a new plan set (called by the Migrator once every
    /// function re-deployment succeeded, §6.1).
    pub fn activate(&mut self, plans: HourlyPlans) {
        self.active = Some(plans);
    }

    /// Clears the active plan set (rollback to home, §6.1).
    pub fn deactivate(&mut self) {
        self.active = None;
    }

    /// Whether a plan set is currently active (and unexpired) at `now`.
    pub fn has_active_plan(&self, now_s: f64) -> bool {
        self.active.as_ref().is_some_and(|p| !p.expired(now_s))
    }

    /// The currently installed plan set, if any (possibly expired).
    pub fn active_plans(&self) -> Option<&HourlyPlans> {
        self.active.as_ref()
    }

    /// The home-region uniform plan.
    pub fn home_plan(&self) -> DeploymentPlan {
        DeploymentPlan::uniform(self.node_count, self.home)
    }

    /// Routes the next invocation at simulation time `now_s`.
    pub fn route(&mut self, now_s: f64) -> RouteDecision {
        self.counter += 1;
        let benchmark =
            self.benchmark_every > 0 && self.counter.is_multiple_of(self.benchmark_every);
        if benchmark {
            return RouteDecision {
                plan: self.home_plan(),
                benchmark_traffic: true,
                plan_expired: false,
            };
        }
        match &self.active {
            Some(plans) if !plans.expired(now_s) => {
                let hour = ((now_s / 3600.0) as usize) % 24;
                RouteDecision {
                    plan: plans.plan_for_hour(hour).clone(),
                    benchmark_traffic: false,
                    plan_expired: false,
                }
            }
            Some(_) => RouteDecision {
                plan: self.home_plan(),
                benchmark_traffic: false,
                plan_expired: true,
            },
            None => RouteDecision {
                plan: self.home_plan(),
                benchmark_traffic: false,
                plan_expired: false,
            },
        }
    }

    /// Invocations routed so far.
    pub fn invocations(&self) -> u64 {
        self.counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hourly(region: RegionId, expires: f64) -> HourlyPlans {
        HourlyPlans::hourly(
            (0..24)
                .map(|_| DeploymentPlan::uniform(2, region))
                .collect(),
            0.0,
            expires,
        )
    }

    #[test]
    fn no_plan_routes_home() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        let d = r.route(0.0);
        assert_eq!(d.plan, r.home_plan());
        assert!(!d.benchmark_traffic);
        assert!(!d.plan_expired);
    }

    #[test]
    fn every_tenth_invocation_is_benchmark_traffic() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        let mut bench = 0;
        for _ in 0..100 {
            if r.route(10.0).benchmark_traffic {
                bench += 1;
            }
        }
        assert_eq!(bench, 10);
    }

    #[test]
    fn benchmark_traffic_pinned_home_despite_plan() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        let decisions: Vec<RouteDecision> = (0..10).map(|_| r.route(10.0)).collect();
        let last = &decisions[9];
        assert!(last.benchmark_traffic);
        assert_eq!(last.plan, r.home_plan());
        assert_eq!(decisions[0].plan, DeploymentPlan::uniform(2, RegionId(3)));
    }

    #[test]
    fn expired_plan_falls_back_home() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 100.0));
        assert!(r.has_active_plan(50.0));
        assert!(!r.has_active_plan(100.0));
        let d = r.route(200.0);
        assert!(d.plan_expired);
        assert_eq!(d.plan, r.home_plan());
    }

    #[test]
    fn hour_of_day_selects_plan() {
        let mut r = InvocationRouter::new(RegionId(0), 1);
        let mut plans: Vec<DeploymentPlan> = (0..24)
            .map(|_| DeploymentPlan::uniform(1, RegionId(0)))
            .collect();
        plans[5] = DeploymentPlan::uniform(1, RegionId(7));
        r.activate(HourlyPlans::hourly(plans, 0.0, 1e9));
        let at_5am = 5.5 * 3600.0;
        let d = r.route(at_5am);
        assert_eq!(d.plan, DeploymentPlan::uniform(1, RegionId(7)));
        let at_6am = 6.5 * 3600.0;
        let d = r.route(at_6am);
        assert_eq!(d.plan, DeploymentPlan::uniform(1, RegionId(0)));
    }

    #[test]
    fn deactivate_reverts_to_home() {
        let mut r = InvocationRouter::new(RegionId(0), 2);
        r.activate(hourly(RegionId(3), 1e9));
        r.deactivate();
        assert!(!r.has_active_plan(0.0));
        assert_eq!(r.route(0.0).plan, r.home_plan());
    }
}
