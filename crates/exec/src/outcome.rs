//! Execution outcome records.

use caribou_metrics::logs::InvocationLog;
use caribou_model::region::RegionId;
use caribou_simcloud::meter::UsageMeter;

/// Exactly-one-of classification of an invocation under faults: the
/// chaos harness's "no invocation lost" invariant requires every request
/// to land in exactly one of these buckets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvocationStatus {
    /// Ran to completion on the planned deployment.
    Completed,
    /// Ran to completion, but one or more nodes re-routed to the home
    /// deployment mid-flight (§6.1 fallback).
    FellBackHome,
    /// Could not complete; [`ExecutionOutcome::failed_region`] names the
    /// region that failed.
    Failed,
}

/// The result of one end-to-end workflow invocation.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// The invocation log the Metrics Manager learns from.
    pub log: InvocationLog,
    /// End-to-end service time, seconds (first function received → last
    /// function finished, §9.1).
    pub e2e_latency_s: f64,
    /// Cost of the invocation, USD.
    pub cost_usd: f64,
    /// Execution carbon, gCO₂eq.
    pub exec_carbon_g: f64,
    /// Transmission carbon, gCO₂eq.
    pub trans_carbon_g: f64,
    /// Bytes that crossed a provider boundary (its own billing line in
    /// cross-provider plans; always 0 on single-provider clouds).
    pub cross_cloud_egress_bytes: f64,
    /// Egress cost of the cross-provider bytes, USD (a subset of
    /// [`ExecutionOutcome::cost_usd`]).
    pub cross_cloud_cost_usd: f64,
    /// Transmission carbon of the cross-provider bytes, gCO₂eq (a subset
    /// of [`ExecutionOutcome::trans_carbon_g`]).
    pub cross_cloud_carbon_g: f64,
    /// Billable usage of this invocation.
    pub meter: UsageMeter,
    /// Whether every required message was delivered (false when a pub/sub
    /// message was dead-lettered or a region was down).
    pub completed: bool,
    /// Number of nodes re-routed to the home deployment mid-flight.
    pub failovers: u32,
    /// Number of nodes that paid a cold start (stateful warm-pool misses
    /// when the pool is enabled, probabilistic draws otherwise). Carried
    /// on the outcome so callers running the engine on worker threads —
    /// where telemetry sessions are inactive — still get exact counts.
    pub cold_starts: u32,
    /// First region observed failing during the invocation, when any —
    /// set even when the failover succeeded, so the router's circuit
    /// breaker learns about flaky regions behind successful requests.
    pub failed_region: Option<RegionId>,
}

impl ExecutionOutcome {
    /// Total operational carbon, gCO₂eq.
    pub fn carbon_g(&self) -> f64 {
        self.exec_carbon_g + self.trans_carbon_g
    }

    /// The exactly-one-of classification of this invocation.
    pub fn status(&self) -> InvocationStatus {
        if !self.completed {
            InvocationStatus::Failed
        } else if self.failovers > 0 {
            InvocationStatus::FellBackHome
        } else {
            InvocationStatus::Completed
        }
    }

    /// Whether the invocation completed via the home-region fallback.
    pub fn fell_back_home(&self) -> bool {
        self.status() == InvocationStatus::FellBackHome
    }
}
