//! Execution outcome records.

use caribou_metrics::logs::InvocationLog;
use caribou_simcloud::meter::UsageMeter;

/// The result of one end-to-end workflow invocation.
#[derive(Debug, Clone)]
pub struct ExecutionOutcome {
    /// The invocation log the Metrics Manager learns from.
    pub log: InvocationLog,
    /// End-to-end service time, seconds (first function received → last
    /// function finished, §9.1).
    pub e2e_latency_s: f64,
    /// Cost of the invocation, USD.
    pub cost_usd: f64,
    /// Execution carbon, gCO₂eq.
    pub exec_carbon_g: f64,
    /// Transmission carbon, gCO₂eq.
    pub trans_carbon_g: f64,
    /// Billable usage of this invocation.
    pub meter: UsageMeter,
    /// Whether every required message was delivered (false when a pub/sub
    /// message was dead-lettered or a region was down).
    pub completed: bool,
}

impl ExecutionOutcome {
    /// Total operational carbon, gCO₂eq.
    pub fn carbon_g(&self) -> f64 {
        self.exec_carbon_g + self.trans_carbon_g
    }
}
