//! Cross-regional workflow execution (§6.2 and the runtime side of §4).
//!
//! This crate is Caribou's data plane: it executes one workflow invocation
//! against the simulated cloud under a deployment plan, exercising the
//! exact mechanisms the paper describes —
//!
//! * the function wrapper that fetches the active deployment plan at the
//!   entry node and piggybacks it (plus the successor's DAG location) on
//!   every downstream invocation;
//! * pub/sub messaging as the cross-region "offloading glue", including
//!   at-least-once delivery and retries;
//! * the synchronization-node protocol: predecessors atomically update a
//!   per-invocation annotation in the distributed KV store, and the writer
//!   that completes condition (4.1) — every incoming edge annotated, at
//!   least one taken — performs the invocation;
//! * conditional-edge skip propagation: a predecessor that decides not to
//!   take an edge marks it, and fully-dead downstream nodes cascade their
//!   own annotations so synchronization nodes are never left waiting;
//! * the 10% home-region benchmarking traffic of §6.2.

pub mod engine;
pub mod outcome;
pub mod router;

pub use engine::{ExecutionEngine, WorkflowApp};
pub use outcome::ExecutionOutcome;
pub use router::InvocationRouter;
