//! Operational carbon model (Eqs. 7.1 and 7.5).
//!
//! Execution carbon: `Carbon_ex = I_grid × (E_proc + E_mem) × PUE`.
//! Transmission carbon: `Carbon_tran = I_route × EF_trans × S`.
//!
//! Following §7.1, embodied carbon is excluded (sunk cost under capacity
//! availability), the grid signal is the average carbon intensity (ACI),
//! and the transmission energy factor `EF_trans` is swept between a
//! best-case scenario (0.001 kWh/GB everywhere) and a worst-case one
//! (0.005 kWh/GB inter-region, free intra-region).

use caribou_simcloud::compute::ExecutionRecord;
use serde::{Deserialize, Serialize};

use crate::energy;

/// Transmission energy factor scenario (kWh/GB).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TransmissionScenario {
    /// Factor applied to data crossing region boundaries.
    pub inter_region_kwh_per_gb: f64,
    /// Factor applied to data staying within a region.
    pub intra_region_kwh_per_gb: f64,
}

impl TransmissionScenario {
    /// The paper's best case for offloading: 0.001 kWh/GB for any
    /// transmission.
    pub const BEST: TransmissionScenario = TransmissionScenario {
        inter_region_kwh_per_gb: 0.001,
        intra_region_kwh_per_gb: 0.001,
    };

    /// The paper's worst case for offloading: 0.005 kWh/GB inter-region,
    /// free intra-region.
    pub const WORST: TransmissionScenario = TransmissionScenario {
        inter_region_kwh_per_gb: 0.005,
        intra_region_kwh_per_gb: 0.0,
    };

    /// A custom scenario with equal intra/inter factors (the left
    /// sub-figure of Fig. 9).
    pub fn equal(factor: f64) -> Self {
        TransmissionScenario {
            inter_region_kwh_per_gb: factor,
            intra_region_kwh_per_gb: factor,
        }
    }

    /// A custom scenario with free intra-region transfer (the right
    /// sub-figure of Fig. 9).
    pub fn free_intra(inter_factor: f64) -> Self {
        TransmissionScenario {
            inter_region_kwh_per_gb: inter_factor,
            intra_region_kwh_per_gb: 0.0,
        }
    }

    /// The factor for a transfer.
    pub fn factor(&self, intra_region: bool) -> f64 {
        if intra_region {
            self.intra_region_kwh_per_gb
        } else {
            self.inter_region_kwh_per_gb
        }
    }
}

/// The operational carbon model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CarbonModel {
    /// Transmission energy scenario.
    pub scenario: TransmissionScenario,
}

impl CarbonModel {
    /// Creates the model for a scenario.
    pub fn new(scenario: TransmissionScenario) -> Self {
        CarbonModel { scenario }
    }

    /// Execution carbon of a recorded execution, gCO₂eq (Eq. 7.1; the PUE
    /// is applied inside the energy model).
    pub fn execution_carbon(&self, record: &ExecutionRecord, grid_intensity: f64) -> f64 {
        grid_intensity * energy::execution_energy_kwh(record)
    }

    /// Execution carbon from profile parameters, gCO₂eq.
    pub fn execution_carbon_params(
        &self,
        memory_mb: u32,
        duration_s: f64,
        utilization: f64,
        grid_intensity: f64,
    ) -> f64 {
        grid_intensity * energy::expected_energy_kwh(memory_mb, duration_s, utilization)
    }

    /// Transmission carbon of moving `bytes` along a route with intensity
    /// `route_intensity`, gCO₂eq (Eq. 7.5).
    pub fn transmission_carbon(&self, bytes: f64, route_intensity: f64, intra_region: bool) -> f64 {
        let gb = bytes.max(0.0) / 1.0e9;
        route_intensity * self.scenario.factor(intra_region) * gb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(duration_s: f64, memory_mb: u32, util: f64) -> ExecutionRecord {
        ExecutionRecord {
            duration_s,
            cpu_total_time_s: duration_s * util * (memory_mb as f64 / 1769.0),
            memory_mb,
            cold_start: false,
            cold_start_s: 0.0,
        }
    }

    #[test]
    fn execution_carbon_scales_with_intensity() {
        let m = CarbonModel::new(TransmissionScenario::BEST);
        let r = record(10.0, 1769, 0.7);
        let low = m.execution_carbon(&r, 30.0);
        let high = m.execution_carbon(&r, 380.0);
        assert!((high / low - 380.0 / 30.0).abs() < 1e-9);
    }

    #[test]
    fn transmission_carbon_formula() {
        let m = CarbonModel::new(TransmissionScenario::BEST);
        // 1 GB at 100 g/kWh × 0.001 kWh/GB = 0.1 g.
        let c = m.transmission_carbon(1.0e9, 100.0, false);
        assert!((c - 0.1).abs() < 1e-12);
    }

    #[test]
    fn worst_case_intra_region_free() {
        let m = CarbonModel::new(TransmissionScenario::WORST);
        assert_eq!(m.transmission_carbon(1.0e9, 100.0, true), 0.0);
        let inter = m.transmission_carbon(1.0e9, 100.0, false);
        assert!((inter - 0.5).abs() < 1e-12);
    }

    #[test]
    fn scenario_constructors() {
        let eq = TransmissionScenario::equal(0.002);
        assert_eq!(eq.factor(true), 0.002);
        assert_eq!(eq.factor(false), 0.002);
        let fi = TransmissionScenario::free_intra(0.004);
        assert_eq!(fi.factor(true), 0.0);
        assert_eq!(fi.factor(false), 0.004);
    }

    #[test]
    fn params_matches_record_based() {
        let m = CarbonModel::new(TransmissionScenario::BEST);
        let r = record(8.0, 1024, 0.6);
        let a = m.execution_carbon(&r, 200.0);
        let b = m.execution_carbon_params(1024, 8.0, r.avg_utilization(), 200.0);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_check_compute_vs_transmission() {
        // A 10 s single-vCPU execution on the PJM grid (~380 g/kWh) emits
        // a few milligrams; moving ~1 MB in the best case emits far less,
        // moving ~1 GB far more — the compute-to-transmission balance that
        // drives Fig. 8.
        let m = CarbonModel::new(TransmissionScenario::BEST);
        let exec = m.execution_carbon_params(1769, 10.0, 0.7, 380.0);
        let small_tx = m.transmission_carbon(1.0e6, 380.0, false);
        let big_tx = m.transmission_carbon(1.0e9, 380.0, false);
        assert!(exec > small_tx, "exec {exec} small_tx {small_tx}");
        assert!(exec < big_tx, "exec {exec} big_tx {big_tx}");
    }
}
