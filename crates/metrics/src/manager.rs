//! The Metrics Manager (§7.1, §7.2).
//!
//! Retrieves/models per-node and per-edge metrics and combines them into
//! workflow-level metrics for the solver. Learned data takes priority:
//! execution times come from logged executions in the target region,
//! falling back to the home region's observed distribution, falling back
//! to the profile model; transmission latencies come from logged
//! region-pair observations, falling back to the CloudPing-style latency
//! model. Conditional-edge probabilities are re-estimated from logs.

use std::collections::HashMap;

use caribou_model::dag::WorkflowDag;
use caribou_model::profile::WorkflowProfile;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;
use caribou_simcloud::compute::LambdaRuntime;
use caribou_simcloud::latency::LatencyModel;
use caribou_simcloud::orchestration::Orchestrator;

use crate::logs::{InvocationLog, LogStore};
use crate::montecarlo::StageModels;

/// Minimum observations before a learned distribution replaces the model.
const MIN_SAMPLES: usize = 5;

/// The Metrics Manager for one workflow.
#[derive(Debug, Default)]
pub struct MetricsManager {
    store: LogStore,
}

impl MetricsManager {
    /// Creates a manager with the default retention policy.
    pub fn new() -> Self {
        MetricsManager {
            store: LogStore::new(),
        }
    }

    /// Records one invocation log.
    pub fn record(&mut self, log: InvocationLog) {
        self.store.record(log);
    }

    /// Read access to the retained logs.
    pub fn store(&self) -> &LogStore {
        &self.store
    }

    /// Mutable access (tests, retention tuning).
    pub fn store_mut(&mut self) -> &mut LogStore {
        &mut self.store
    }

    /// Invocation count over the window `[from_s, to_s)` — the signal the
    /// token-bucket controller budgets from (§5.2).
    pub fn invocations_between(&self, from_s: f64, to_s: f64) -> usize {
        self.store.count_between(from_s, to_s)
    }

    /// Mean observed per-invocation total execution seconds (all stages).
    pub fn mean_total_exec_s(&self) -> Option<f64> {
        if self.store.is_empty() {
            return None;
        }
        let total: f64 = self
            .store
            .logs()
            .iter()
            .map(|l| l.nodes.iter().map(|n| n.duration_s).sum::<f64>())
            .sum();
        Some(total / self.store.len() as f64)
    }

    /// Learned edge probabilities: fraction of taken among observed, per
    /// edge; `None` where too few observations exist.
    pub fn edge_probabilities(&self, dag: &WorkflowDag) -> Vec<Option<f64>> {
        let mut taken = vec![0usize; dag.edge_count()];
        let mut seen = vec![0usize; dag.edge_count()];
        for log in self.store.logs() {
            for e in &log.edges {
                let i = e.edge as usize;
                if i < seen.len() {
                    seen[i] += 1;
                    if e.taken {
                        taken[i] += 1;
                    }
                }
            }
        }
        (0..dag.edge_count())
            .map(|i| {
                if seen[i] >= MIN_SAMPLES {
                    Some(taken[i] as f64 / seen[i] as f64)
                } else {
                    None
                }
            })
            .collect()
    }

    /// Returns a profile with edge probabilities refreshed from logs —
    /// how the framework "captures distribution shifts by learning from
    /// the most recent invocations" (§9.1).
    pub fn refreshed_profile(&self, dag: &WorkflowDag, base: &WorkflowProfile) -> WorkflowProfile {
        let mut profile = base.clone();
        for (i, p) in self.edge_probabilities(dag).into_iter().enumerate() {
            if let Some(p) = p {
                if dag.edge(caribou_model::dag::EdgeId(i as u32)).conditional {
                    profile.edges[i].probability = p;
                }
            }
        }
        profile
    }

    /// Builds learned stage models over the model-based fallbacks.
    pub fn learned_models<'a>(
        &self,
        profile: &'a WorkflowProfile,
        runtime: &'a LambdaRuntime,
        latency: &'a LatencyModel,
        orchestrator: Orchestrator,
        home: RegionId,
    ) -> LearnedModels<'a> {
        let mut exec: HashMap<(usize, RegionId), Vec<f64>> = HashMap::new();
        let mut transfer: HashMap<(RegionId, RegionId), Vec<f64>> = HashMap::new();
        for log in self.store.logs() {
            for n in &log.nodes {
                exec.entry((n.node as usize, n.region))
                    .or_default()
                    .push(n.duration_s);
            }
            for e in &log.edges {
                if e.taken && e.latency_s > 0.0 {
                    transfer
                        .entry((e.from_region, e.to_region))
                        .or_default()
                        .push(e.latency_s);
                }
            }
        }
        exec.retain(|_, v| v.len() >= MIN_SAMPLES);
        transfer.retain(|_, v| v.len() >= MIN_SAMPLES);
        LearnedModels {
            exec,
            transfer,
            profile,
            runtime,
            latency,
            orchestrator,
            home,
        }
    }
}

/// Stage models combining learned empirical data with model fallbacks
/// (§7.1 Latency: home-region fallback for execution, CloudPing fallback
/// for transmission).
#[derive(Debug)]
pub struct LearnedModels<'a> {
    exec: HashMap<(usize, RegionId), Vec<f64>>,
    transfer: HashMap<(RegionId, RegionId), Vec<f64>>,
    profile: &'a WorkflowProfile,
    runtime: &'a LambdaRuntime,
    latency: &'a LatencyModel,
    orchestrator: Orchestrator,
    home: RegionId,
}

impl LearnedModels<'_> {
    /// Whether a learned execution distribution exists for `(node, region)`.
    pub fn has_exec_data(&self, node: usize, region: RegionId) -> bool {
        self.exec.contains_key(&(node, region))
    }

    /// Whether a learned transmission distribution exists for the pair.
    pub fn has_transfer_data(&self, from: RegionId, to: RegionId) -> bool {
        self.transfer.contains_key(&(from, to))
    }
}

impl StageModels for LearnedModels<'_> {
    fn sample_exec(&self, node: usize, region: RegionId, rng: &mut Pcg32) -> f64 {
        // Learned distribution for the exact region first.
        if let Some(samples) = self.exec.get(&(node, region)) {
            return *rng.choose(samples).expect("non-empty retained samples");
        }
        // Fall back to the home region's learned distribution, scaled by
        // the relative performance factor (§7.1: "MM defaults to using the
        // home region's execution time distribution").
        if let Some(samples) = self.exec.get(&(node, self.home)) {
            let base = *rng.choose(samples).expect("non-empty retained samples");
            let scale = self.runtime.perf_factor(region) / self.runtime.perf_factor(self.home);
            return base * scale;
        }
        // Finally the profile model.
        let p = &self.profile.nodes[node];
        self.runtime
            .execute(region, &p.exec_time, p.memory_mb, p.cpu_utilization, rng)
            .duration_s
    }

    fn sample_transfer(&self, from: RegionId, to: RegionId, bytes: f64, rng: &mut Pcg32) -> f64 {
        if let Some(samples) = self.transfer.get(&(from, to)) {
            return *rng.choose(samples).expect("non-empty retained samples");
        }
        self.latency.sample_transfer_seconds(from, to, bytes, rng)
    }

    fn sample_transition(&self, rng: &mut Pcg32) -> f64 {
        self.orchestrator.sample_transition_s(rng)
    }

    fn sample_setup(&self, rng: &mut Pcg32) -> f64 {
        self.orchestrator.sample_setup_s(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logs::{EdgeRecord, NodeRecord};
    use caribou_model::builder::Workflow;
    use caribou_model::dist::DistSpec;
    use caribou_model::region::RegionCatalog;

    fn dag_and_profile() -> (WorkflowDag, WorkflowProfile) {
        let mut wf = Workflow::new("wf", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 1.0 })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: 1.0 })
            .register();
        wf.invoke(a, b, Some(0.5));
        let (dag, profile, _) = wf.extract().unwrap();
        (dag, profile)
    }

    fn make_log(at: f64, node_dur: f64, region: RegionId, taken: bool) -> InvocationLog {
        InvocationLog {
            workflow: "wf".into(),
            at_s: at,
            benchmark_traffic: false,
            nodes: vec![NodeRecord {
                node: 0,
                region,
                duration_s: node_dur,
                cpu_total_time_s: node_dur * 0.7,
                memory_mb: 1769,
                start_s: 0.0,
            }],
            edges: vec![EdgeRecord {
                edge: 0,
                taken,
                from_region: region,
                to_region: region,
                bytes: 100.0,
                latency_s: if taken { 0.05 } else { 0.0 },
            }],
            e2e_latency_s: node_dur,
            cost_usd: 1e-5,
        }
    }

    #[test]
    fn edge_probability_learned_from_logs() {
        let (dag, _) = dag_and_profile();
        let mut mm = MetricsManager::new();
        for i in 0..20 {
            mm.record(make_log(i as f64, 1.0, RegionId(0), i % 4 == 0));
        }
        let probs = mm.edge_probabilities(&dag);
        assert!((probs[0].unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn too_few_observations_gives_none() {
        let (dag, _) = dag_and_profile();
        let mut mm = MetricsManager::new();
        mm.record(make_log(0.0, 1.0, RegionId(0), true));
        assert_eq!(mm.edge_probabilities(&dag)[0], None);
    }

    #[test]
    fn refreshed_profile_updates_conditional_probability() {
        let (dag, profile) = dag_and_profile();
        let mut mm = MetricsManager::new();
        for i in 0..20 {
            mm.record(make_log(i as f64, 1.0, RegionId(0), i % 2 == 0));
        }
        let refreshed = mm.refreshed_profile(&dag, &profile);
        assert!((refreshed.edges[0].probability - 0.5).abs() < 1e-9);
    }

    #[test]
    fn learned_exec_distribution_overrides_model() {
        let cat = RegionCatalog::aws_default();
        let (_, profile) = dag_and_profile();
        let runtime = LambdaRuntime::aws_default(&cat);
        let latency = LatencyModel::from_catalog(&cat);
        let home = cat.id_of("us-east-1").unwrap();
        let mut mm = MetricsManager::new();
        // Log node 0 running 9 s in the home region, far from the 1 s
        // profile model.
        for i in 0..10 {
            mm.record(make_log(i as f64, 9.0, home, true));
        }
        let lm = mm.learned_models(&profile, &runtime, &latency, Orchestrator::Caribou, home);
        assert!(lm.has_exec_data(0, home));
        let mut rng = Pcg32::seed(1);
        let s = lm.sample_exec(0, home, &mut rng);
        assert!((s - 9.0).abs() < 1e-9);
    }

    #[test]
    fn home_fallback_scales_by_perf_factor() {
        let cat = RegionCatalog::aws_default();
        let (_, profile) = dag_and_profile();
        let mut runtime = LambdaRuntime::aws_default(&cat);
        let latency = LatencyModel::from_catalog(&cat);
        let home = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-1").unwrap();
        runtime.set_perf_factor(west, 2.0);
        runtime.set_perf_factor(home, 1.0);
        let mut mm = MetricsManager::new();
        for i in 0..10 {
            mm.record(make_log(i as f64, 4.0, home, true));
        }
        let lm = mm.learned_models(&profile, &runtime, &latency, Orchestrator::Caribou, home);
        assert!(!lm.has_exec_data(0, west));
        let mut rng = Pcg32::seed(2);
        let s = lm.sample_exec(0, west, &mut rng);
        assert!((s - 8.0).abs() < 1e-9, "sample {s}");
    }

    #[test]
    fn transfer_fallback_uses_latency_model() {
        let cat = RegionCatalog::aws_default();
        let (_, profile) = dag_and_profile();
        let runtime = LambdaRuntime::aws_default(&cat);
        let latency = LatencyModel::from_catalog(&cat);
        let home = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        let mm = MetricsManager::new();
        let lm = mm.learned_models(&profile, &runtime, &latency, Orchestrator::Caribou, home);
        assert!(!lm.has_transfer_data(home, west));
        let mut rng = Pcg32::seed(3);
        let s = lm.sample_transfer(home, west, 1e6, &mut rng);
        assert!(s > 0.0);
    }

    #[test]
    fn learned_transfer_distribution_is_sampled() {
        let cat = RegionCatalog::aws_default();
        let (_, profile) = dag_and_profile();
        let runtime = LambdaRuntime::aws_default(&cat);
        let latency = LatencyModel::from_catalog(&cat);
        let home = cat.id_of("us-east-1").unwrap();
        let mut mm = MetricsManager::new();
        for i in 0..10 {
            let mut log = make_log(i as f64, 1.0, home, true);
            log.edges[0].latency_s = 0.125; // a fixed observed latency
            mm.record(log);
        }
        let lm = mm.learned_models(&profile, &runtime, &latency, Orchestrator::Caribou, home);
        assert!(lm.has_transfer_data(home, home));
        let mut rng = Pcg32::seed(7);
        for _ in 0..20 {
            assert!((lm.sample_transfer(home, home, 1e6, &mut rng) - 0.125).abs() < 1e-12);
        }
    }

    #[test]
    fn mean_total_exec_reflects_logs() {
        let mut mm = MetricsManager::new();
        assert_eq!(mm.mean_total_exec_s(), None);
        mm.record(make_log(0.0, 2.0, RegionId(0), true));
        mm.record(make_log(1.0, 4.0, RegionId(0), true));
        assert!((mm.mean_total_exec_s().unwrap() - 3.0).abs() < 1e-12);
    }
}
