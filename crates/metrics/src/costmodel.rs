//! Per-invocation cost model (§7.1 Cost).
//!
//! Execution cost is Lambda's duration × memory × GB-s rate plus the
//! per-invocation fee; transmission cost covers SNS messaging (the
//! framework's orchestration channel) and inter-region egress; the
//! framework's own DynamoDB accesses (deployment-plan fetch and
//! synchronization annotations) are charged too. The AWS free tier is not
//! modeled.

use caribou_model::region::RegionId;
use caribou_simcloud::pricing::PricingCatalog;

/// Cost model over a pricing catalog.
#[derive(Debug, Clone)]
pub struct CostModel<'a> {
    pricing: &'a PricingCatalog,
}

impl<'a> CostModel<'a> {
    /// Creates the model.
    pub fn new(pricing: &'a PricingCatalog) -> Self {
        CostModel { pricing }
    }

    /// The underlying pricing catalog.
    pub fn pricing(&self) -> &PricingCatalog {
        self.pricing
    }

    /// Execution cost of one stage run.
    pub fn execution_cost(&self, region: RegionId, duration_s: f64, memory_mb: u32) -> f64 {
        self.pricing.lambda_cost(region, duration_s, memory_mb)
    }

    /// Cost of one inter-stage invocation: an SNS publish in the source
    /// region plus egress for the payload when it crosses regions.
    pub fn invocation_cost(&self, from: RegionId, to: RegionId, payload_bytes: f64) -> f64 {
        self.pricing.sns_cost(from, 1) + self.pricing.egress_cost(from, to, payload_bytes)
    }

    /// Cost of moving external data between a stage's region and the
    /// home-region storage (egress charged at the sending side; we charge
    /// half the bytes each way).
    pub fn external_data_cost(&self, stage: RegionId, home: RegionId, bytes: f64) -> f64 {
        if stage == home {
            return 0.0;
        }
        self.pricing.egress_cost(stage, home, bytes / 2.0)
            + self.pricing.egress_cost(home, stage, bytes / 2.0)
    }

    /// Framework KV accesses attributed to one invocation (§7.1:
    /// "additional DynamoDB accesses introduced by Caribou").
    pub fn kv_cost(&self, region: RegionId, reads: u64, writes: u64) -> f64 {
        self.pricing.dynamodb_cost(region, reads, writes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    fn setup() -> (RegionCatalog, PricingCatalog) {
        let cat = RegionCatalog::aws_default();
        let pc = PricingCatalog::aws_default(&cat);
        (cat, pc)
    }

    #[test]
    fn invocation_cost_local_has_no_egress() {
        let (cat, pc) = setup();
        let m = CostModel::new(&pc);
        let r = cat.id_of("us-east-1").unwrap();
        let c = m.invocation_cost(r, r, 1e9);
        assert!((c - 0.50 / 1e6).abs() < 1e-12, "cost {c}");
    }

    #[test]
    fn invocation_cost_remote_charges_egress() {
        let (cat, pc) = setup();
        let m = CostModel::new(&pc);
        let a = cat.id_of("us-east-1").unwrap();
        let b = cat.id_of("us-west-2").unwrap();
        let c = m.invocation_cost(a, b, 1e9);
        assert!(c > 0.019, "cost {c}");
    }

    #[test]
    fn external_data_free_at_home() {
        let (cat, pc) = setup();
        let m = CostModel::new(&pc);
        let r = cat.id_of("us-east-1").unwrap();
        assert_eq!(m.external_data_cost(r, r, 1e9), 0.0);
    }

    #[test]
    fn external_data_charged_both_directions() {
        let (cat, pc) = setup();
        let m = CostModel::new(&pc);
        let home = cat.id_of("us-east-1").unwrap();
        let stage = cat.id_of("ca-central-1").unwrap();
        let c = m.external_data_cost(stage, home, 2e9);
        // 1 GB each way at the two regions' inter-region rates.
        assert!(c > 0.039, "cost {c}");
    }

    #[test]
    fn execution_cost_delegates_to_lambda_pricing() {
        let (cat, pc) = setup();
        let m = CostModel::new(&pc);
        let r = cat.id_of("us-east-1").unwrap();
        assert_eq!(m.execution_cost(r, 1.0, 1024), pc.lambda_cost(r, 1.0, 1024));
    }
}
