//! Workflow metrics and models (§7 of the paper).
//!
//! * [`summary`] — distribution summaries (mean = "average case", p95 =
//!   "tail case", coefficient of variation for the Monte Carlo stopping
//!   rule);
//! * [`energy`] — the serverless energy model of Eqs. 7.2–7.4 (memory
//!   power, utilization-based linear vCPU power, PUE);
//! * [`carbonmodel`] — operational execution and transmission carbon
//!   (Eqs. 7.1 and 7.5) with the best-/worst-case transmission energy
//!   factor scenarios of §7.1;
//! * [`costmodel`] — per-invocation cost (Lambda + SNS + DynamoDB +
//!   egress, §7.1 Cost);
//! * [`montecarlo`] — the end-to-end Monte Carlo estimator (§7.1
//!   End-To-End Metric Estimation): batches of 200 samples until the
//!   relative standard error of every metric drops below 0.05 or 2,000
//!   samples are reached;
//! * [`logs`] — invocation-log records and the 30-day / 5,000-entry
//!   retention with selective forgetting (§7.2);
//! * [`manager`] — the Metrics Manager assembling learned distributions
//!   with model fallbacks (§7.1 Latency: home-region execution fallback,
//!   CloudPing transmission fallback).

pub mod carbonmodel;
pub mod costmodel;
pub mod energy;
pub mod logs;
pub mod manager;
pub mod montecarlo;
pub mod summary;

pub use carbonmodel::{CarbonModel, TransmissionScenario};
pub use costmodel::CostModel;
pub use logs::{InvocationLog, LogStore};
pub use manager::MetricsManager;
pub use montecarlo::{EstimateSummary, MonteCarloEstimator, StageModels};
pub use summary::DistSummary;
