//! End-to-end Monte Carlo metric estimation (§7.1).
//!
//! Estimating latency, cost, and carbon of conditional DAGs analytically is
//! intractable; following the paper (and the prior work it cites), the
//! estimator samples complete workflow executions: each sample draws the
//! conditional-edge outcomes, per-stage execution times, and transmission
//! latencies, then computes the critical path ("the moment the request is
//! first received by the first function to the end time of the last
//! function", §9.1), the invocation cost, and the operational carbon.
//!
//! Samples are drawn in batches of 200 until the relative standard error
//! of every metric's mean drops below 0.05 or 2,000 samples are reached.
//!
//! Two paths produce the same result:
//!
//! * [`MonteCarloEstimator::estimate_scalar`] — the reference path: one
//!   straight-line sample at a time, convergence via
//!   [`DistSummary::from_samples`] on the growing prefix. Slow, obviously
//!   correct.
//! * [`MonteCarloEstimator::estimate_batched`] — the fast path: all
//!   per-(plan, hour) invariants (grid intensities, route averages, KV and
//!   SNS constants, log-normal log-space locations, energy and billing
//!   coefficients) are computed once per call, samples are drawn into
//!   fixed-width lanes over structure-of-arrays node-state columns, and
//!   convergence uses running sums instead of per-batch sort passes.
//!   Because lanes are filled and folded in ascending lane order — which
//!   is exactly sample order on the single Pcg32 stream — every draw, every
//!   floating-point operation, and therefore every output bit matches the
//!   scalar path at *any* lane width.
//!
//! [`MonteCarloEstimator::estimate`] dispatches to the batched path when
//! the stage models expose concrete model handles (see
//! [`StageModels::batchable`]) and falls back to the scalar path otherwise.

use caribou_model::dag::WorkflowDag;
use caribou_model::dist::PreparedDist;
use caribou_model::plan::DeploymentPlan;
use caribou_model::profile::WorkflowProfile;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;
use caribou_simcloud::compute::{vcpus, LambdaRuntime};
use caribou_simcloud::latency::LatencyModel;
use caribou_simcloud::orchestration::{Orchestrator, OVERHEAD_SIGMA};
use serde::{Deserialize, Serialize};

use caribou_carbon::route::endpoint_average;
use caribou_carbon::source::CarbonDataSource;

use crate::carbonmodel::CarbonModel;
use crate::costmodel::CostModel;
use crate::energy;
use crate::summary::{percentile_sorted, DistSummary};

/// Maximum lane width of the batched path.
pub const MAX_LANES: usize = 16;
/// Lane width used when the caller does not pick one.
pub const DEFAULT_LANES: usize = 8;

/// Sampling interfaces the estimator draws stage behaviour from.
///
/// The default implementation combines the workload profile with the
/// simulator's runtime and latency models; the Metrics Manager substitutes
/// learned empirical distributions where history exists (§7.1).
pub trait StageModels {
    /// Samples the execution duration (seconds) of `node` in `region`.
    fn sample_exec(&self, node: usize, region: RegionId, rng: &mut Pcg32) -> f64;
    /// Samples a one-way transfer latency (seconds) for `bytes` between
    /// regions.
    fn sample_transfer(&self, from: RegionId, to: RegionId, bytes: f64, rng: &mut Pcg32) -> f64;
    /// Samples the per-transition orchestration overhead (seconds).
    fn sample_transition(&self, rng: &mut Pcg32) -> f64;
    /// Samples the per-invocation setup overhead (seconds).
    fn sample_setup(&self, rng: &mut Pcg32) -> f64;
    /// Concrete model handles for the batched fast path, when this
    /// implementation is exactly the profile-plus-simulator combination the
    /// prepared sampler can reproduce draw-for-draw. Models with opaque
    /// sampling (e.g. learned empirical mixtures) keep the default `None`
    /// and estimate through the scalar path.
    fn batchable(&self) -> Option<DefaultModels<'_>> {
        None
    }
}

/// Model-based sampling from the workload profile plus simulator models.
#[derive(Debug, Clone)]
pub struct DefaultModels<'a> {
    /// Workload profile providing reference execution distributions.
    pub profile: &'a WorkflowProfile,
    /// Region performance factors and execution noise.
    pub runtime: &'a LambdaRuntime,
    /// Transmission latency model (the CloudPing fallback of §7.1).
    pub latency: &'a LatencyModel,
    /// Orchestration mechanism in use.
    pub orchestrator: Orchestrator,
}

impl StageModels for DefaultModels<'_> {
    fn sample_exec(&self, node: usize, region: RegionId, rng: &mut Pcg32) -> f64 {
        let p = &self.profile.nodes[node];
        self.runtime
            .execute(region, &p.exec_time, p.memory_mb, p.cpu_utilization, rng)
            .duration_s
    }

    fn sample_transfer(&self, from: RegionId, to: RegionId, bytes: f64, rng: &mut Pcg32) -> f64 {
        self.latency.sample_transfer_seconds(from, to, bytes, rng)
    }

    fn sample_transition(&self, rng: &mut Pcg32) -> f64 {
        self.orchestrator.sample_transition_s(rng)
    }

    fn sample_setup(&self, rng: &mut Pcg32) -> f64 {
        self.orchestrator.sample_setup_s(rng)
    }

    fn batchable(&self) -> Option<DefaultModels<'_>> {
        Some(self.clone())
    }
}

/// Stopping-rule configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Samples per batch (paper: 200).
    pub batch: usize,
    /// Maximum total samples (paper: 2,000).
    pub max_samples: usize,
    /// Relative-standard-error threshold (paper: 0.05).
    pub cv_threshold: f64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            batch: 200,
            max_samples: 2000,
            cv_threshold: 0.05,
        }
    }
}

/// Estimation result: one summary per metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimateSummary {
    /// End-to-end service time, seconds.
    pub latency: DistSummary,
    /// Cost per invocation, USD.
    pub cost: DistSummary,
    /// Operational carbon per invocation, gCO₂eq.
    pub carbon: DistSummary,
    /// Execution-only carbon component (mean), gCO₂eq; with the
    /// transmission component this gives the Fig. 8 ratio.
    pub exec_carbon_mean: f64,
    /// Transmission-only carbon component (mean), gCO₂eq.
    pub trans_carbon_mean: f64,
    /// Samples drawn.
    pub samples: usize,
}

impl EstimateSummary {
    /// Metric mean by objective, for deployment ordering.
    pub fn mean_of(&self, objective: caribou_model::constraints::Objective) -> f64 {
        use caribou_model::constraints::Objective;
        match objective {
            Objective::Carbon => self.carbon.mean,
            Objective::Cost => self.cost.mean,
            Objective::Latency => self.latency.mean,
        }
    }
}

/// The Monte Carlo end-to-end estimator.
pub struct MonteCarloEstimator<'a, S: CarbonDataSource, M: StageModels> {
    /// Workflow DAG.
    pub dag: &'a WorkflowDag,
    /// Workload profile.
    pub profile: &'a WorkflowProfile,
    /// Carbon data (actual or forecast).
    pub carbon_source: &'a S,
    /// Carbon model with the transmission scenario.
    pub carbon_model: CarbonModel,
    /// Cost model.
    pub cost_model: CostModel<'a>,
    /// Stage behaviour models.
    pub models: &'a M,
    /// Home region (client location and external-data anchor).
    pub home: RegionId,
    /// Stopping rule.
    pub config: MonteCarloConfig,
}

/// One sampled end-to-end execution.
#[derive(Debug, Clone, Copy)]
struct SamplePoint {
    latency: f64,
    cost: f64,
    carbon: f64,
    exec_carbon: f64,
    trans_carbon: f64,
}

/// Reusable estimator scratch: structure-of-arrays node-state columns plus
/// the per-metric sample columns and the sort buffer of the final summary.
///
/// An estimate draws up to `max_samples` (2,000 by default) executions;
/// allocating node state inside the sample loop dominated the allocator
/// profile of a solve, and allocating it per `estimate` call still
/// dominates a cache-miss-heavy solve. Long-lived callers (the solver's
/// `EvalEngine`) keep one `EstimateScratch` per worker and pass it to
/// [`MonteCarloEstimator::estimate_with`]; the columns then persist across
/// candidate evaluations. The `montecarlo.node_state_allocs` telemetry
/// counter increments by 3 (one per node-state column) only when the
/// columns actually (re)grow.
#[derive(Debug, Default)]
pub struct EstimateScratch {
    // Node state, `node_count × lanes` slots, lane-minor.
    executed: Vec<bool>,
    finish: Vec<f64>,
    start: Vec<f64>,
    // Per-sample metric columns, in sample order.
    lat: Vec<f64>,
    cost: Vec<f64>,
    carb: Vec<f64>,
    // Sort buffer for the final percentile pass.
    sort: Vec<f64>,
}

impl EstimateScratch {
    /// An empty scratch; columns are sized on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures the node-state columns hold `slots` entries, counting the
    /// (re)allocation in telemetry so reuse is observable.
    fn ensure_state(&mut self, slots: usize) {
        if self.executed.len() < slots {
            if caribou_telemetry::is_enabled() {
                // One increment per backing column, comparable with the old
                // 3-allocations-per-call SampleBuffers behaviour.
                caribou_telemetry::count("montecarlo.node_state_allocs", 3);
            }
            self.executed.resize(slots, false);
            self.finish.resize(slots, 0.0);
            self.start.resize(slots, f64::NEG_INFINITY);
        }
    }

    fn clear_columns(&mut self) {
        self.lat.clear();
        self.cost.clear();
        self.carb.clear();
    }

    fn reset_state(&mut self, slots: usize) {
        self.executed[..slots].fill(false);
        self.finish[..slots].fill(0.0);
        self.start[..slots].fill(f64::NEG_INFINITY);
    }
}

/// Entry (client → start node) invariants of one (plan, hour).
struct EntryPrep<'a> {
    input: PreparedDist<'a>,
    /// `(mu, sigma)` of the setup overhead; `None` draws nothing, exactly
    /// like [`Orchestrator::sample_setup_s`] with a zero median.
    setup: Option<(f64, f64)>,
    ow: f64,
    bw: f64,
    /// Route intensity × scenario factor; multiplied by GB per sample.
    trans_k: f64,
    same: bool,
    egress_rate: f64,
    kv: f64,
}

/// Per-edge invariants of one (plan, hour).
struct EdgePrep<'a> {
    from: usize,
    prob: f64,
    payload: PreparedDist<'a>,
    ow: f64,
    bw: f64,
    trans_k: f64,
    sns: f64,
    same: bool,
    egress_rate: f64,
    kv_from_w: f64,
    kv_to_r: f64,
    kv_sync: f64,
}

/// Execution-model invariants of one node.
struct ExecPrep<'a> {
    cold_prob: f64,
    pf: f64,
    sigma: f64,
    base: PreparedDist<'a>,
    cold: PreparedDist<'a>,
}

/// External-data round-trip invariants (only present when the node runs
/// away from home with a positive external byte count).
struct ExtPrep {
    half: f64,
    ow_out: f64,
    bw_out: f64,
    ow_in: f64,
    bw_in: f64,
    trans_c: f64,
    cost: f64,
}

/// Per-node invariants of one (plan, hour).
struct NodePrep<'a> {
    exec: ExecPrep<'a>,
    ext: Option<ExtPrep>,
    /// `memory_mb / 1024`, the GB factor of Lambda billing.
    mem_gb: f64,
    gb_second: f64,
    per_request: f64,
    /// `vcpu_power_kw(util) × vcpus(mem)` (Eq. 7.3 × 7.4 coefficients).
    vpvc: f64,
    /// `P_MEM_KW_PER_GB × mem_gb` (Eq. 7.2 coefficient).
    pmem: f64,
    intensity: f64,
    sync: bool,
}

/// All per-(plan, hour) invariant tables of the batched path. Built once
/// per estimate call; every entry is produced by the same model functions
/// the scalar path calls per sample, so reusing them changes no bits.
struct PlanPrep<'a> {
    entry: EntryPrep<'a>,
    edges: Vec<EdgePrep<'a>>,
    nodes: Vec<NodePrep<'a>>,
    jitter: f64,
    transition_mu: f64,
}

impl<S: CarbonDataSource, M: StageModels> MonteCarloEstimator<'_, S, M> {
    /// Runs the estimator for a deployment plan at a given hour.
    ///
    /// Dispatches to the batched fast path when the stage models are
    /// batchable and to the scalar reference path otherwise; the two are
    /// bit-identical, so callers never observe the difference.
    pub fn estimate(&self, plan: &DeploymentPlan, hour: f64, rng: &mut Pcg32) -> EstimateSummary {
        let mut scratch = EstimateScratch::new();
        self.estimate_with(plan, hour, rng, &mut scratch)
    }

    /// Like [`MonteCarloEstimator::estimate`], reusing caller-owned
    /// scratch so repeated estimates allocate nothing for node state or
    /// sample columns.
    pub fn estimate_with(
        &self,
        plan: &DeploymentPlan,
        hour: f64,
        rng: &mut Pcg32,
        scratch: &mut EstimateScratch,
    ) -> EstimateSummary {
        match self.models.batchable() {
            Some(m) => self.estimate_batched_impl(&m, plan, hour, rng, scratch, DEFAULT_LANES),
            None => self.estimate_scalar_with(plan, hour, rng, scratch),
        }
    }

    /// The scalar reference path: today's stream-per-candidate semantics,
    /// one sample at a time, convergence via full [`DistSummary`] passes.
    pub fn estimate_scalar(
        &self,
        plan: &DeploymentPlan,
        hour: f64,
        rng: &mut Pcg32,
    ) -> EstimateSummary {
        let mut scratch = EstimateScratch::new();
        self.estimate_scalar_with(plan, hour, rng, &mut scratch)
    }

    /// The batched fast path at an explicit lane width (clamped to
    /// `1..=MAX_LANES`). Falls back to the scalar path when the models are
    /// not batchable. Bit-identical to [`MonteCarloEstimator::estimate_scalar`]
    /// at every width.
    pub fn estimate_batched(
        &self,
        plan: &DeploymentPlan,
        hour: f64,
        rng: &mut Pcg32,
        lanes: usize,
    ) -> EstimateSummary {
        let mut scratch = EstimateScratch::new();
        match self.models.batchable() {
            Some(m) => self.estimate_batched_impl(&m, plan, hour, rng, &mut scratch, lanes),
            None => self.estimate_scalar_with(plan, hour, rng, &mut scratch),
        }
    }

    fn estimate_scalar_with(
        &self,
        plan: &DeploymentPlan,
        hour: f64,
        rng: &mut Pcg32,
        scratch: &mut EstimateScratch,
    ) -> EstimateSummary {
        let n_nodes = self.dag.node_count();
        scratch.ensure_state(n_nodes);
        scratch.clear_columns();
        let mut exec_sum = 0.0;
        let mut trans_sum = 0.0;

        loop {
            for _ in 0..self.config.batch {
                let s = self.sample_once(plan, hour, rng, scratch);
                scratch.lat.push(s.latency);
                scratch.cost.push(s.cost);
                scratch.carb.push(s.carbon);
                exec_sum += s.exec_carbon;
                trans_sum += s.trans_carbon;
            }
            let latency = DistSummary::from_samples(&scratch.lat);
            let cost = DistSummary::from_samples(&scratch.cost);
            let carbon = DistSummary::from_samples(&scratch.carb);
            let converged = latency.rel_std_error() < self.config.cv_threshold
                && cost.rel_std_error() < self.config.cv_threshold
                && carbon.rel_std_error() < self.config.cv_threshold;
            if converged || scratch.lat.len() >= self.config.max_samples {
                let n = scratch.lat.len();
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::count("montecarlo.batches", (n / self.config.batch) as u64);
                    caribou_telemetry::count("montecarlo.samples", n as u64);
                    let cv_at_stop = latency
                        .rel_std_error()
                        .max(cost.rel_std_error())
                        .max(carbon.rel_std_error());
                    caribou_telemetry::observe("montecarlo.cv_at_stop", cv_at_stop);
                    if !converged {
                        caribou_telemetry::count("montecarlo.sample_cap_hit", 1);
                    }
                }
                return EstimateSummary {
                    latency,
                    cost,
                    carbon,
                    exec_carbon_mean: exec_sum / n as f64,
                    trans_carbon_mean: trans_sum / n as f64,
                    samples: n,
                };
            }
        }
    }

    /// Simulates one complete workflow execution (scalar path).
    fn sample_once(
        &self,
        plan: &DeploymentPlan,
        hour: f64,
        rng: &mut Pcg32,
        bufs: &mut EstimateScratch,
    ) -> SamplePoint {
        let dag = self.dag;
        let n_nodes = dag.node_count();
        bufs.reset_state(n_nodes);
        let EstimateScratch {
            executed,
            finish,
            start: start_time,
            ..
        } = bufs;
        let mut cost = 0.0;
        let mut exec_carbon = 0.0;
        let mut trans_carbon = 0.0;

        // Client delivers the input to the start node from the home region.
        let start_node = dag.start();
        let start_region = plan.region_of(start_node);
        let input_bytes = self.profile.input_bytes.sample(rng);
        let mut t0 = self.models.sample_setup(rng);
        t0 += self
            .models
            .sample_transfer(self.home, start_region, input_bytes, rng);
        trans_carbon += self.carbon_model.transmission_carbon(
            input_bytes,
            endpoint_average(self.carbon_source, self.home, start_region, hour),
            self.home == start_region,
        );
        cost += self
            .cost_model
            .pricing()
            .egress_cost(self.home, start_region, input_bytes);
        // Entry wrapper fetches the deployment plan once.
        cost += self.cost_model.kv_cost(start_region, 1, 0);

        start_time[start_node.index()] = t0;
        executed[start_node.index()] = true;

        for &node in dag.topo_order() {
            let ni = node.index();
            if node != start_node {
                // Determine whether and when this node starts.
                let mut any_taken = false;
                let mut ready_at: f64 = 0.0;
                for &eid in dag.in_edges(node) {
                    let e = dag.edge(eid);
                    if !executed[e.from.index()] {
                        continue;
                    }
                    let taken = rng.chance(self.profile.edges[eid.index()].probability);
                    if !taken {
                        // Skip propagation: the predecessor writes the
                        // C=0 annotation; for sync nodes this is one
                        // atomic KV update.
                        if dag.is_sync_node(node) {
                            cost += self.cost_model.kv_cost(plan.region_of(e.from), 1, 1);
                        }
                        continue;
                    }
                    any_taken = true;
                    let payload = self.profile.edges[eid.index()].payload_bytes.sample(rng);
                    let from_r = plan.region_of(e.from);
                    let to_r = plan.region_of(node);
                    let arrive = finish[e.from.index()]
                        + self.models.sample_transition(rng)
                        + self.models.sample_transfer(from_r, to_r, payload, rng);
                    ready_at = ready_at.max(arrive);
                    // Invocation cost: SNS publish + payload egress.
                    cost += self.cost_model.invocation_cost(from_r, to_r, payload);
                    // Intermediate data passes through the KV store: one
                    // write by the predecessor, one read by the successor;
                    // sync nodes add the atomic annotation update.
                    cost += self.cost_model.kv_cost(from_r, 0, 1);
                    cost += self.cost_model.kv_cost(to_r, 1, 0);
                    if dag.is_sync_node(node) {
                        cost += self.cost_model.kv_cost(from_r, 1, 1);
                    }
                    trans_carbon += self.carbon_model.transmission_carbon(
                        payload,
                        endpoint_average(self.carbon_source, from_r, to_r, hour),
                        from_r == to_r,
                    );
                }
                if !any_taken {
                    continue;
                }
                start_time[ni] = ready_at;
                executed[ni] = true;
            }

            // Execute the node.
            let region = plan.region_of(node);
            let p = &self.profile.nodes[ni];
            let mut duration = self.models.sample_exec(ni, region, rng);
            // External data stays at the home region; offloaded stages pay
            // the round trip (§9.1).
            if region != self.home && p.external_data_bytes > 0.0 {
                let half = p.external_data_bytes / 2.0;
                duration += self.models.sample_transfer(region, self.home, half, rng)
                    + self.models.sample_transfer(self.home, region, half, rng);
                trans_carbon += self.carbon_model.transmission_carbon(
                    p.external_data_bytes,
                    endpoint_average(self.carbon_source, region, self.home, hour),
                    false,
                );
                cost +=
                    self.cost_model
                        .external_data_cost(region, self.home, p.external_data_bytes);
            }
            finish[ni] = start_time[ni] + duration;
            cost += self
                .cost_model
                .execution_cost(region, duration, p.memory_mb);
            exec_carbon += self.carbon_model.execution_carbon_params(
                p.memory_mb,
                duration,
                p.cpu_utilization,
                self.carbon_source.intensity(region, hour),
            );
        }

        let latency = dag
            .all_nodes()
            .filter(|nd| executed[nd.index()])
            .map(|nd| finish[nd.index()])
            .fold(0.0f64, f64::max);
        SamplePoint {
            latency,
            cost,
            carbon: exec_carbon + trans_carbon,
            exec_carbon,
            trans_carbon,
        }
    }

    /// Builds the per-(plan, hour) invariant tables. Every constant is
    /// produced by the same pure model functions the scalar path calls
    /// inside the sample loop, evaluated once.
    fn build_prep<'p>(
        &'p self,
        m: &DefaultModels<'p>,
        plan: &DeploymentPlan,
        hour: f64,
    ) -> PlanPrep<'p> {
        let dag = self.dag;
        let pricing = self.cost_model.pricing();
        let scenario = self.carbon_model.scenario;

        let start_node = dag.start();
        let start_region = plan.region_of(start_node);
        let setup_median = m.orchestrator.invocation_setup_median_s();
        let entry = EntryPrep {
            input: self.profile.input_bytes.prepare(),
            setup: if setup_median == 0.0 {
                None
            } else {
                Some((setup_median.ln(), OVERHEAD_SIGMA))
            },
            ow: m.latency.one_way(self.home, start_region),
            bw: m.latency.bandwidth_bps(self.home, start_region),
            trans_k: endpoint_average(self.carbon_source, self.home, start_region, hour)
                * scenario.factor(self.home == start_region),
            same: self.home == start_region,
            egress_rate: pricing.egress_rate_per_gb(self.home, start_region),
            kv: self.cost_model.kv_cost(start_region, 1, 0),
        };

        let edges = (0..dag.edge_count())
            .map(|ei| {
                let eid = caribou_model::dag::EdgeId(ei as u32);
                let e = dag.edge(eid);
                let from_r = plan.region_of(e.from);
                let to_r = plan.region_of(e.to);
                let pe = &self.profile.edges[ei];
                EdgePrep {
                    from: e.from.index(),
                    prob: pe.probability,
                    payload: pe.payload_bytes.prepare(),
                    ow: m.latency.one_way(from_r, to_r),
                    bw: m.latency.bandwidth_bps(from_r, to_r),
                    trans_k: endpoint_average(self.carbon_source, from_r, to_r, hour)
                        * scenario.factor(from_r == to_r),
                    sns: pricing.sns_cost(from_r, 1),
                    same: from_r == to_r,
                    egress_rate: pricing.egress_rate_per_gb(from_r, to_r),
                    kv_from_w: self.cost_model.kv_cost(from_r, 0, 1),
                    kv_to_r: self.cost_model.kv_cost(to_r, 1, 0),
                    kv_sync: self.cost_model.kv_cost(from_r, 1, 1),
                }
            })
            .collect();

        let nodes = dag
            .all_nodes()
            .map(|node| {
                let ni = node.index();
                let region = plan.region_of(node);
                let p = &self.profile.nodes[ni];
                let mp = &m.profile.nodes[ni];
                let ext = if region != self.home && p.external_data_bytes > 0.0 {
                    let half = p.external_data_bytes / 2.0;
                    Some(ExtPrep {
                        half,
                        ow_out: m.latency.one_way(region, self.home),
                        bw_out: m.latency.bandwidth_bps(region, self.home),
                        ow_in: m.latency.one_way(self.home, region),
                        bw_in: m.latency.bandwidth_bps(self.home, region),
                        trans_c: self.carbon_model.transmission_carbon(
                            p.external_data_bytes,
                            endpoint_average(self.carbon_source, region, self.home, hour),
                            false,
                        ),
                        cost: self.cost_model.external_data_cost(
                            region,
                            self.home,
                            p.external_data_bytes,
                        ),
                    })
                } else {
                    None
                };
                let rp = pricing.region(region);
                NodePrep {
                    exec: ExecPrep {
                        cold_prob: m.runtime.cold_start_prob,
                        pf: m.runtime.perf_factor(region),
                        sigma: m.runtime.exec_sigma,
                        base: mp.exec_time.prepare(),
                        cold: m.runtime.cold_start_for(region).prepare(),
                    },
                    ext,
                    mem_gb: p.memory_mb as f64 / 1024.0,
                    gb_second: rp.lambda_gb_second,
                    per_request: rp.lambda_per_request,
                    vpvc: energy::vcpu_power_kw(p.cpu_utilization) * vcpus(p.memory_mb),
                    pmem: energy::P_MEM_KW_PER_GB * (p.memory_mb as f64 / 1024.0),
                    intensity: self.carbon_source.intensity(region, hour),
                    sync: dag.is_sync_node(node),
                }
            })
            .collect();

        PlanPrep {
            entry,
            edges,
            nodes,
            jitter: m.latency.jitter_sigma,
            transition_mu: m.orchestrator.transition_overhead_median_s().ln(),
        }
    }

    fn estimate_batched_impl(
        &self,
        m: &DefaultModels<'_>,
        plan: &DeploymentPlan,
        hour: f64,
        rng: &mut Pcg32,
        scratch: &mut EstimateScratch,
        lanes: usize,
    ) -> EstimateSummary {
        let lanes = lanes.clamp(1, MAX_LANES);
        let n_nodes = self.dag.node_count();
        scratch.ensure_state(n_nodes * lanes);
        scratch.clear_columns();
        let prep = self.build_prep(m, plan, hour);

        // Running left-fold sums; adding each sample in push order yields
        // exactly `samples.iter().sum::<f64>()` over any prefix.
        let mut lat_sum = 0.0;
        let mut cost_sum = 0.0;
        let mut carb_sum = 0.0;
        let mut exec_sum = 0.0;
        let mut trans_sum = 0.0;
        let mut lane_cost = [0.0f64; MAX_LANES];
        let mut lane_exec = [0.0f64; MAX_LANES];
        let mut lane_trans = [0.0f64; MAX_LANES];

        loop {
            let mut drawn = 0;
            while drawn < self.config.batch {
                let group = lanes.min(self.config.batch - drawn);
                scratch.reset_state(n_nodes * lanes);
                // Lane l of this group is sample `n + l`: lanes are filled
                // in ascending order on the single rng stream…
                for lane in 0..group {
                    let (c, ec, tc) = self.sample_lane(&prep, rng, scratch, lane, lanes);
                    lane_cost[lane] = c;
                    lane_exec[lane] = ec;
                    lane_trans[lane] = tc;
                }
                // …and folded in the same ascending order, so the metric
                // columns are in exact sample order at any lane width.
                for lane in 0..group {
                    let mut lat = 0.0f64;
                    for ni in 0..n_nodes {
                        let slot = ni * lanes + lane;
                        if scratch.executed[slot] {
                            lat = f64::max(lat, scratch.finish[slot]);
                        }
                    }
                    let cost = lane_cost[lane];
                    let exec_c = lane_exec[lane];
                    let trans_c = lane_trans[lane];
                    let carb = exec_c + trans_c;
                    scratch.lat.push(lat);
                    scratch.cost.push(cost);
                    scratch.carb.push(carb);
                    lat_sum += lat;
                    cost_sum += cost;
                    carb_sum += carb;
                    exec_sum += exec_c;
                    trans_sum += trans_c;
                }
                drawn += group;
            }

            let n = scratch.lat.len();
            let nf = n as f64;
            // Mean and variance exactly as DistSummary::from_samples
            // computes them, without the per-batch clone + sort.
            let stat = |col: &[f64], sum: f64| -> (f64, f64) {
                let mean = sum / nf;
                let var = col.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / nf;
                (mean, var)
            };
            let (lat_mean, lat_var) = stat(&scratch.lat, lat_sum);
            let (cost_mean, cost_var) = stat(&scratch.cost, cost_sum);
            let (carb_mean, carb_var) = stat(&scratch.carb, carb_sum);
            let rse = |mean: f64, var: f64| -> f64 {
                if mean.abs() < 1e-30 {
                    0.0
                } else {
                    var.sqrt() / (mean.abs() * nf.sqrt())
                }
            };
            let lat_rse = rse(lat_mean, lat_var);
            let cost_rse = rse(cost_mean, cost_var);
            let carb_rse = rse(carb_mean, carb_var);
            let converged = lat_rse < self.config.cv_threshold
                && cost_rse < self.config.cv_threshold
                && carb_rse < self.config.cv_threshold;
            if converged || n >= self.config.max_samples {
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::count("montecarlo.batches", (n / self.config.batch) as u64);
                    caribou_telemetry::count("montecarlo.samples", n as u64);
                    caribou_telemetry::observe(
                        "montecarlo.cv_at_stop",
                        lat_rse.max(cost_rse).max(carb_rse),
                    );
                    if !converged {
                        caribou_telemetry::count("montecarlo.sample_cap_hit", 1);
                    }
                }
                let mut summarize = |col: &[f64], mean: f64, var: f64| -> DistSummary {
                    scratch.sort.clear();
                    scratch.sort.extend_from_slice(col);
                    scratch.sort.sort_by(f64::total_cmp);
                    DistSummary {
                        mean,
                        p95: percentile_sorted(&scratch.sort, 0.95),
                        std_dev: var.sqrt(),
                        n,
                    }
                };
                // The columns live in `scratch` next to `sort`; split the
                // borrows manually.
                let (lat_col, cost_col, carb_col) = (
                    std::mem::take(&mut scratch.lat),
                    std::mem::take(&mut scratch.cost),
                    std::mem::take(&mut scratch.carb),
                );
                let latency = summarize(&lat_col, lat_mean, lat_var);
                let cost = summarize(&cost_col, cost_mean, cost_var);
                let carbon = summarize(&carb_col, carb_mean, carb_var);
                scratch.lat = lat_col;
                scratch.cost = cost_col;
                scratch.carb = carb_col;
                return EstimateSummary {
                    latency,
                    cost,
                    carbon,
                    exec_carbon_mean: exec_sum / nf,
                    trans_carbon_mean: trans_sum / nf,
                    samples: n,
                };
            }
        }
    }

    /// Draws one complete execution into lane `lane` of the SoA node-state
    /// columns, mirroring [`MonteCarloEstimator::sample_once`] operation
    /// for operation (same draws, same arithmetic, same order) with the
    /// per-(plan, hour) invariants read from `prep`. Returns
    /// `(cost, exec_carbon, trans_carbon)`; the latency fold happens in the
    /// group fold loop.
    fn sample_lane(
        &self,
        prep: &PlanPrep<'_>,
        rng: &mut Pcg32,
        scratch: &mut EstimateScratch,
        lane: usize,
        lanes: usize,
    ) -> (f64, f64, f64) {
        let dag = self.dag;
        let EstimateScratch {
            executed,
            finish,
            start: start_time,
            ..
        } = scratch;
        let mut cost = 0.0;
        let mut exec_carbon = 0.0;
        let mut trans_carbon = 0.0;

        let start_node = dag.start();
        let e = &prep.entry;
        let input_bytes = e.input.sample(rng);
        let mut t0 = match e.setup {
            None => 0.0,
            Some((mu, sigma)) => rng.lognormal(mu, sigma),
        };
        t0 += (e.ow + input_bytes.max(0.0) / e.bw) * rng.lognormal(0.0, prep.jitter);
        trans_carbon += e.trans_k * (input_bytes.max(0.0) / 1.0e9);
        cost += if e.same {
            0.0
        } else {
            (input_bytes.max(0.0) / 1.0e9) * e.egress_rate
        };
        cost += e.kv;

        start_time[start_node.index() * lanes + lane] = t0;
        executed[start_node.index() * lanes + lane] = true;

        for &node in dag.topo_order() {
            let ni = node.index();
            let np = &prep.nodes[ni];
            if node != start_node {
                let mut any_taken = false;
                let mut ready_at: f64 = 0.0;
                for &eid in dag.in_edges(node) {
                    let ep = &prep.edges[eid.index()];
                    if !executed[ep.from * lanes + lane] {
                        continue;
                    }
                    let taken = rng.chance(ep.prob);
                    if !taken {
                        if np.sync {
                            cost += ep.kv_sync;
                        }
                        continue;
                    }
                    any_taken = true;
                    let payload = ep.payload.sample(rng);
                    let arrive = finish[ep.from * lanes + lane]
                        + rng.lognormal(prep.transition_mu, OVERHEAD_SIGMA)
                        + (ep.ow + payload.max(0.0) / ep.bw) * rng.lognormal(0.0, prep.jitter);
                    ready_at = ready_at.max(arrive);
                    cost += ep.sns
                        + if ep.same {
                            0.0
                        } else {
                            (payload.max(0.0) / 1.0e9) * ep.egress_rate
                        };
                    cost += ep.kv_from_w;
                    cost += ep.kv_to_r;
                    if np.sync {
                        cost += ep.kv_sync;
                    }
                    trans_carbon += ep.trans_k * (payload.max(0.0) / 1.0e9);
                }
                if !any_taken {
                    continue;
                }
                start_time[ni * lanes + lane] = ready_at;
                executed[ni * lanes + lane] = true;
            }

            // Execute the node: same draw order as LambdaRuntime::execute.
            let x = &np.exec;
            let cold = rng.chance(x.cold_prob);
            let base = x.base.sample(rng).max(0.0);
            let noise = rng.lognormal(0.0, x.sigma);
            let compute_s = base * x.pf * noise;
            let cold_s = if cold {
                x.cold.sample(rng).max(0.0)
            } else {
                0.0
            };
            let mut duration = compute_s + cold_s;
            if let Some(ext) = &np.ext {
                duration += (ext.ow_out + ext.half.max(0.0) / ext.bw_out)
                    * rng.lognormal(0.0, prep.jitter)
                    + (ext.ow_in + ext.half.max(0.0) / ext.bw_in) * rng.lognormal(0.0, prep.jitter);
                trans_carbon += ext.trans_c;
                cost += ext.cost;
            }
            finish[ni * lanes + lane] = start_time[ni * lanes + lane] + duration;
            // Lambda billing, ceil to the next millisecond (lambda_cost).
            let billed = (duration * 1000.0).ceil() / 1000.0;
            cost += billed * np.mem_gb * np.gb_second + np.per_request;
            // Execution carbon (Eqs. 7.1–7.4 with per-draw-invariant
            // coefficients hoisted).
            let proc = np.vpvc * duration / 3600.0;
            let memv = np.pmem * duration / 3600.0;
            exec_carbon += np.intensity * ((proc + memv) * energy::PUE);
        }

        (cost, exec_carbon, trans_carbon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carbonmodel::TransmissionScenario;
    use caribou_carbon::series::CarbonSeries;
    use caribou_carbon::source::TableSource;
    use caribou_model::builder::Workflow;
    use caribou_model::dist::DistSpec;
    use caribou_model::region::RegionCatalog;
    use caribou_simcloud::pricing::PricingCatalog;

    struct Fixture {
        cat: RegionCatalog,
        pricing: PricingCatalog,
        runtime: LambdaRuntime,
        latency: LatencyModel,
        carbon: TableSource,
    }

    fn fixture() -> Fixture {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let mut runtime = LambdaRuntime::aws_default(&cat);
        runtime.cold_start_prob = 0.0;
        runtime.exec_sigma = 0.0;
        let latency = LatencyModel::from_catalog(&cat);
        let mut carbon = TableSource::new();
        for (id, spec) in cat.iter() {
            let v = match spec.name.as_str() {
                "us-east-1" | "us-east-2" => 380.0,
                "ca-central-1" => 32.0,
                _ => 300.0,
            };
            carbon.insert(id, CarbonSeries::new(0, vec![v; 24]));
        }
        Fixture {
            cat,
            pricing,
            runtime,
            latency,
            carbon,
        }
    }

    /// A fixture with the stochastic execution knobs left on, so the
    /// batched path must reproduce cold starts and execution noise too.
    fn noisy_fixture() -> Fixture {
        let mut fx = fixture();
        fx.runtime = LambdaRuntime::aws_default(&fx.cat);
        fx
    }

    fn chain_workflow(exec_s: f64) -> (caribou_model::WorkflowDag, WorkflowProfile) {
        let mut wf = Workflow::new("chain", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: exec_s })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: exec_s })
            .register();
        wf.invoke(a, b, None)
            .payload(DistSpec::Constant { value: 10_000.0 });
        wf.set_input(DistSpec::Constant { value: 1000.0 });
        let (dag, profile, _) = wf.extract().unwrap();
        (dag, profile)
    }

    fn estimate(
        fx: &Fixture,
        dag: &caribou_model::WorkflowDag,
        profile: &WorkflowProfile,
        plan: &DeploymentPlan,
        seed: u64,
    ) -> EstimateSummary {
        let models = DefaultModels {
            profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let est = MonteCarloEstimator {
            dag,
            profile,
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            home: fx.cat.id_of("us-east-1").unwrap(),
            config: MonteCarloConfig::default(),
        };
        est.estimate(plan, 0.5, &mut Pcg32::seed(seed))
    }

    fn assert_bits_eq(a: &EstimateSummary, b: &EstimateSummary) {
        let d = |x: &DistSummary, y: &DistSummary| {
            assert_eq!(x.mean.to_bits(), y.mean.to_bits(), "mean");
            assert_eq!(x.p95.to_bits(), y.p95.to_bits(), "p95");
            assert_eq!(x.std_dev.to_bits(), y.std_dev.to_bits(), "std_dev");
            assert_eq!(x.n, y.n, "n");
        };
        d(&a.latency, &b.latency);
        d(&a.cost, &b.cost);
        d(&a.carbon, &b.carbon);
        assert_eq!(a.exec_carbon_mean.to_bits(), b.exec_carbon_mean.to_bits());
        assert_eq!(a.trans_carbon_mean.to_bits(), b.trans_carbon_mean.to_bits());
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn chain_latency_close_to_sum_of_stages() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(2.0);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let plan = DeploymentPlan::uniform(2, home);
        let s = estimate(&fx, &dag, &profile, &plan, 1);
        // Two 2 s stages plus small overheads.
        assert!(
            (4.0..4.6).contains(&s.latency.mean),
            "latency {}",
            s.latency.mean
        );
        assert!(s.samples >= 200);
    }

    #[test]
    fn offloading_to_clean_region_cuts_carbon() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(5.0);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let ca = fx.cat.id_of("ca-central-1").unwrap();
        let home_plan = DeploymentPlan::uniform(2, home);
        let ca_plan = DeploymentPlan::uniform(2, ca);
        let s_home = estimate(&fx, &dag, &profile, &home_plan, 2);
        let s_ca = estimate(&fx, &dag, &profile, &ca_plan, 3);
        assert!(
            s_ca.carbon.mean < s_home.carbon.mean * 0.3,
            "home {} ca {}",
            s_home.carbon.mean,
            s_ca.carbon.mean
        );
        // But latency grows (cross-region hops).
        assert!(s_ca.latency.mean > s_home.latency.mean);
    }

    #[test]
    fn conditional_edge_reduces_mean_latency() {
        let fx = fixture();
        let build = |prob: Option<f64>| {
            let mut wf = Workflow::new("cond", "0.1");
            let a = wf
                .serverless_function("A")
                .exec_time(DistSpec::Constant { value: 1.0 })
                .register();
            let b = wf
                .serverless_function("B")
                .exec_time(DistSpec::Constant { value: 4.0 })
                .register();
            wf.invoke(a, b, prob);
            let (dag, profile, _) = wf.extract().unwrap();
            (dag, profile)
        };
        let home = fx.cat.id_of("us-east-1").unwrap();
        let plan = DeploymentPlan::uniform(2, home);
        let (dag_always, prof_always) = build(None);
        let (dag_rare, prof_rare) = build(Some(0.1));
        let s_always = estimate(&fx, &dag_always, &prof_always, &plan, 4);
        let s_rare = estimate(&fx, &dag_rare, &prof_rare, &plan, 5);
        assert!(
            s_rare.latency.mean < s_always.latency.mean - 2.0,
            "rare {} always {}",
            s_rare.latency.mean,
            s_always.latency.mean
        );
        assert!(s_rare.cost.mean < s_always.cost.mean);
    }

    #[test]
    fn sync_node_waits_for_slowest_branch() {
        let fx = fixture();
        let mut wf = Workflow::new("join", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 0.5 })
            .register();
        let fast = wf
            .serverless_function("Fast")
            .exec_time(DistSpec::Constant { value: 0.5 })
            .register();
        let slow = wf
            .serverless_function("Slow")
            .exec_time(DistSpec::Constant { value: 5.0 })
            .register();
        let join = wf
            .serverless_function("Join")
            .exec_time(DistSpec::Constant { value: 0.5 })
            .register();
        wf.invoke(a, fast, None);
        wf.invoke(a, slow, None);
        wf.invoke(fast, join, None);
        wf.invoke(slow, join, None);
        wf.get_predecessor_data(join);
        let (dag, profile, _) = wf.extract().unwrap();
        let home = fx.cat.id_of("us-east-1").unwrap();
        let plan = DeploymentPlan::uniform(4, home);
        let s = estimate(&fx, &dag, &profile, &plan, 6);
        // Critical path = 0.5 + 5.0 + 0.5 plus overheads; the fast branch
        // must not shorten it.
        assert!(s.latency.mean > 5.9, "latency {}", s.latency.mean);
        assert!(s.latency.mean < 6.8, "latency {}", s.latency.mean);
    }

    #[test]
    fn transmission_carbon_separated_from_execution() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let west = fx.cat.id_of("us-west-2").unwrap();
        let mut plan = DeploymentPlan::uniform(2, home);
        plan.set(caribou_model::dag::NodeId(1), west);
        let s = estimate(&fx, &dag, &profile, &plan, 7);
        assert!(s.exec_carbon_mean > 0.0);
        assert!(s.trans_carbon_mean > 0.0);
        assert!(
            (s.exec_carbon_mean + s.trans_carbon_mean - s.carbon.mean).abs() / s.carbon.mean < 0.05
        );
    }

    #[test]
    fn estimator_is_deterministic_per_seed() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let plan = DeploymentPlan::uniform(2, fx.cat.id_of("us-east-1").unwrap());
        let a = estimate(&fx, &dag, &profile, &plan, 42);
        let b = estimate(&fx, &dag, &profile, &plan, 42);
        assert_eq!(a.latency.mean, b.latency.mean);
        assert_eq!(a.carbon.mean, b.carbon.mean);
    }

    #[test]
    fn stopping_rule_caps_at_max_samples() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let plan = DeploymentPlan::uniform(2, fx.cat.id_of("us-east-1").unwrap());
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let est = MonteCarloEstimator {
            dag: &dag,
            profile: &profile,
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            home: fx.cat.id_of("us-east-1").unwrap(),
            config: MonteCarloConfig {
                batch: 100,
                max_samples: 300,
                cv_threshold: 0.0, // never converges
            },
        };
        let s = est.estimate(&plan, 0.5, &mut Pcg32::seed(1));
        assert_eq!(s.samples, 300);
    }

    #[test]
    fn node_state_buffers_reused_across_samples() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let plan = DeploymentPlan::uniform(2, fx.cat.id_of("us-east-1").unwrap());
        caribou_telemetry::enable(Box::new(caribou_telemetry::NullSink));
        let s = estimate(&fx, &dag, &profile, &plan, 8);
        let session = caribou_telemetry::finish().unwrap();
        let allocs = session.recorder.counter("montecarlo.node_state_allocs");
        let samples = session.recorder.counter("montecarlo.samples");
        assert!(samples >= 200, "samples {samples}");
        assert_eq!(s.samples as u64, samples);
        // One buffer set per estimate call — not 3 allocations per sample
        // as before the hoist.
        assert_eq!(allocs, 3, "allocs {allocs} for {samples} samples");
    }

    #[test]
    fn buffer_reuse_preserves_per_seed_results() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.5);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let west = fx.cat.id_of("us-west-2").unwrap();
        let mut plan = DeploymentPlan::uniform(2, home);
        plan.set(caribou_model::dag::NodeId(1), west);
        // Conditional skips leave stale state in naive buffer reuse; two
        // runs from the same seed must still agree bit for bit.
        let a = estimate(&fx, &dag, &profile, &plan, 21);
        let b = estimate(&fx, &dag, &profile, &plan, 21);
        assert_eq!(a, b);
    }

    /// Builds a branchy workflow exercising conditional edges, sync nodes,
    /// external data, empirical and log-normal distributions — every code
    /// path the prepared sampler must reproduce.
    fn gnarly_workflow() -> (caribou_model::WorkflowDag, WorkflowProfile) {
        let mut wf = Workflow::new("gnarly", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::LogNormal {
                median: 0.4,
                sigma: 0.3,
            })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Empirical {
                samples: vec![0.2, 0.5, 0.9, 1.4],
            })
            .external_data_bytes(2.0e6)
            .register();
        let c = wf
            .serverless_function("C")
            .exec_time(DistSpec::Uniform { lo: 0.1, hi: 0.6 })
            .register();
        let join = wf
            .serverless_function("Join")
            .exec_time(DistSpec::Normal {
                mean: 0.3,
                std_dev: 0.2,
            })
            .register();
        wf.invoke(a, b, Some(0.7)).payload(DistSpec::LogNormal {
            median: 40_000.0,
            sigma: 0.5,
        });
        wf.invoke(a, c, Some(0.8));
        wf.invoke(b, join, None);
        wf.invoke(c, join, None);
        wf.get_predecessor_data(join);
        wf.set_input(DistSpec::Uniform {
            lo: 500.0,
            hi: 5_000.0,
        });
        let (dag, profile, _) = wf.extract().unwrap();
        (dag, profile)
    }

    #[test]
    fn batched_bit_identical_to_scalar_at_every_lane_width() {
        let fx = noisy_fixture();
        let (dag, profile) = gnarly_workflow();
        let home = fx.cat.id_of("us-east-1").unwrap();
        let west = fx.cat.id_of("us-west-2").unwrap();
        let ca = fx.cat.id_of("ca-central-1").unwrap();
        let mut plan = DeploymentPlan::uniform(dag.node_count(), home);
        plan.set(caribou_model::dag::NodeId(1), west);
        plan.set(caribou_model::dag::NodeId(2), ca);
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let est = MonteCarloEstimator {
            dag: &dag,
            profile: &profile,
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::WORST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            home,
            config: MonteCarloConfig::default(),
        };
        for seed in [1u64, 7, 42] {
            let scalar = est.estimate_scalar(&plan, 12.5, &mut Pcg32::seed(seed));
            for lanes in [1usize, 4, 8, 16] {
                let batched = est.estimate_batched(&plan, 12.5, &mut Pcg32::seed(seed), lanes);
                assert_bits_eq(&scalar, &batched);
            }
            // The dispatching entry point takes the batched path here and
            // must agree too.
            let dispatched = est.estimate(&plan, 12.5, &mut Pcg32::seed(seed));
            assert_bits_eq(&scalar, &dispatched);
        }
    }

    #[test]
    fn batched_handles_ragged_tail_batches() {
        let fx = noisy_fixture();
        let (dag, profile) = gnarly_workflow();
        let home = fx.cat.id_of("us-east-1").unwrap();
        let plan = DeploymentPlan::uniform(dag.node_count(), home);
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        // 50 % 16 = 2: the final lane group of every batch is ragged.
        let est = MonteCarloEstimator {
            dag: &dag,
            profile: &profile,
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            home,
            config: MonteCarloConfig {
                batch: 50,
                max_samples: 250,
                cv_threshold: 0.0,
            },
        };
        let scalar = est.estimate_scalar(&plan, 3.25, &mut Pcg32::seed(9));
        assert_eq!(scalar.samples, 250);
        for lanes in [4usize, 8, 16] {
            let batched = est.estimate_batched(&plan, 3.25, &mut Pcg32::seed(9), lanes);
            assert_bits_eq(&scalar, &batched);
        }
    }

    #[test]
    fn scratch_reuse_allocates_node_state_once() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let plan = DeploymentPlan::uniform(2, home);
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let est = MonteCarloEstimator {
            dag: &dag,
            profile: &profile,
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            home,
            config: MonteCarloConfig::default(),
        };
        caribou_telemetry::enable(Box::new(caribou_telemetry::NullSink));
        let mut scratch = EstimateScratch::new();
        let mut fresh = est.estimate(&plan, 0.5, &mut Pcg32::seed(11));
        for _ in 0..5 {
            let reused = est.estimate_with(&plan, 0.5, &mut Pcg32::seed(11), &mut scratch);
            assert_bits_eq(&fresh, &reused);
            fresh = reused;
        }
        let session = caribou_telemetry::finish().unwrap();
        let allocs = session.recorder.counter("montecarlo.node_state_allocs");
        // One set for the fresh call, one for the reused scratch's first
        // use; the five reuses add nothing.
        assert_eq!(allocs, 6, "allocs {allocs}");
    }

    #[test]
    fn non_batchable_models_fall_back_to_scalar() {
        struct Flat;
        impl StageModels for Flat {
            fn sample_exec(&self, _: usize, _: RegionId, rng: &mut Pcg32) -> f64 {
                rng.uniform(0.5, 1.5)
            }
            fn sample_transfer(&self, _: RegionId, _: RegionId, _: f64, rng: &mut Pcg32) -> f64 {
                rng.uniform(0.001, 0.01)
            }
            fn sample_transition(&self, rng: &mut Pcg32) -> f64 {
                rng.uniform(0.0, 0.001)
            }
            fn sample_setup(&self, _: &mut Pcg32) -> f64 {
                0.0
            }
        }
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let plan = DeploymentPlan::uniform(2, home);
        let est = MonteCarloEstimator {
            dag: &dag,
            profile: &profile,
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &Flat,
            home,
            config: MonteCarloConfig::default(),
        };
        let scalar = est.estimate_scalar(&plan, 0.5, &mut Pcg32::seed(3));
        let dispatched = est.estimate(&plan, 0.5, &mut Pcg32::seed(3));
        let batched = est.estimate_batched(&plan, 0.5, &mut Pcg32::seed(3), 8);
        assert_bits_eq(&scalar, &dispatched);
        assert_bits_eq(&scalar, &batched);
    }
}
