//! End-to-end Monte Carlo metric estimation (§7.1).
//!
//! Estimating latency, cost, and carbon of conditional DAGs analytically is
//! intractable; following the paper (and the prior work it cites), the
//! estimator samples complete workflow executions: each sample draws the
//! conditional-edge outcomes, per-stage execution times, and transmission
//! latencies, then computes the critical path ("the moment the request is
//! first received by the first function to the end time of the last
//! function", §9.1), the invocation cost, and the operational carbon.
//!
//! Samples are drawn in batches of 200 until the relative standard error
//! of every metric's mean drops below 0.05 or 2,000 samples are reached.

use caribou_model::dag::WorkflowDag;
use caribou_model::plan::DeploymentPlan;
use caribou_model::profile::WorkflowProfile;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;
use caribou_simcloud::compute::LambdaRuntime;
use caribou_simcloud::latency::LatencyModel;
use caribou_simcloud::orchestration::Orchestrator;
use serde::{Deserialize, Serialize};

use caribou_carbon::route::endpoint_average;
use caribou_carbon::source::CarbonDataSource;

use crate::carbonmodel::CarbonModel;
use crate::costmodel::CostModel;
use crate::summary::DistSummary;

/// Sampling interfaces the estimator draws stage behaviour from.
///
/// The default implementation combines the workload profile with the
/// simulator's runtime and latency models; the Metrics Manager substitutes
/// learned empirical distributions where history exists (§7.1).
pub trait StageModels {
    /// Samples the execution duration (seconds) of `node` in `region`.
    fn sample_exec(&self, node: usize, region: RegionId, rng: &mut Pcg32) -> f64;
    /// Samples a one-way transfer latency (seconds) for `bytes` between
    /// regions.
    fn sample_transfer(&self, from: RegionId, to: RegionId, bytes: f64, rng: &mut Pcg32) -> f64;
    /// Samples the per-transition orchestration overhead (seconds).
    fn sample_transition(&self, rng: &mut Pcg32) -> f64;
    /// Samples the per-invocation setup overhead (seconds).
    fn sample_setup(&self, rng: &mut Pcg32) -> f64;
}

/// Model-based sampling from the workload profile plus simulator models.
#[derive(Debug, Clone)]
pub struct DefaultModels<'a> {
    /// Workload profile providing reference execution distributions.
    pub profile: &'a WorkflowProfile,
    /// Region performance factors and execution noise.
    pub runtime: &'a LambdaRuntime,
    /// Transmission latency model (the CloudPing fallback of §7.1).
    pub latency: &'a LatencyModel,
    /// Orchestration mechanism in use.
    pub orchestrator: Orchestrator,
}

impl StageModels for DefaultModels<'_> {
    fn sample_exec(&self, node: usize, region: RegionId, rng: &mut Pcg32) -> f64 {
        let p = &self.profile.nodes[node];
        self.runtime
            .execute(region, &p.exec_time, p.memory_mb, p.cpu_utilization, rng)
            .duration_s
    }

    fn sample_transfer(&self, from: RegionId, to: RegionId, bytes: f64, rng: &mut Pcg32) -> f64 {
        self.latency.sample_transfer_seconds(from, to, bytes, rng)
    }

    fn sample_transition(&self, rng: &mut Pcg32) -> f64 {
        self.orchestrator.sample_transition_s(rng)
    }

    fn sample_setup(&self, rng: &mut Pcg32) -> f64 {
        self.orchestrator.sample_setup_s(rng)
    }
}

/// Stopping-rule configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloConfig {
    /// Samples per batch (paper: 200).
    pub batch: usize,
    /// Maximum total samples (paper: 2,000).
    pub max_samples: usize,
    /// Relative-standard-error threshold (paper: 0.05).
    pub cv_threshold: f64,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            batch: 200,
            max_samples: 2000,
            cv_threshold: 0.05,
        }
    }
}

/// Estimation result: one summary per metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EstimateSummary {
    /// End-to-end service time, seconds.
    pub latency: DistSummary,
    /// Cost per invocation, USD.
    pub cost: DistSummary,
    /// Operational carbon per invocation, gCO₂eq.
    pub carbon: DistSummary,
    /// Execution-only carbon component (mean), gCO₂eq; with the
    /// transmission component this gives the Fig. 8 ratio.
    pub exec_carbon_mean: f64,
    /// Transmission-only carbon component (mean), gCO₂eq.
    pub trans_carbon_mean: f64,
    /// Samples drawn.
    pub samples: usize,
}

impl EstimateSummary {
    /// Metric mean by objective, for deployment ordering.
    pub fn mean_of(&self, objective: caribou_model::constraints::Objective) -> f64 {
        use caribou_model::constraints::Objective;
        match objective {
            Objective::Carbon => self.carbon.mean,
            Objective::Cost => self.cost.mean,
            Objective::Latency => self.latency.mean,
        }
    }
}

/// The Monte Carlo end-to-end estimator.
pub struct MonteCarloEstimator<'a, S: CarbonDataSource, M: StageModels> {
    /// Workflow DAG.
    pub dag: &'a WorkflowDag,
    /// Workload profile.
    pub profile: &'a WorkflowProfile,
    /// Carbon data (actual or forecast).
    pub carbon_source: &'a S,
    /// Carbon model with the transmission scenario.
    pub carbon_model: CarbonModel,
    /// Cost model.
    pub cost_model: CostModel<'a>,
    /// Stage behaviour models.
    pub models: &'a M,
    /// Home region (client location and external-data anchor).
    pub home: RegionId,
    /// Stopping rule.
    pub config: MonteCarloConfig,
}

/// One sampled end-to-end execution.
#[derive(Debug, Clone, Copy)]
struct SamplePoint {
    latency: f64,
    cost: f64,
    carbon: f64,
    exec_carbon: f64,
    trans_carbon: f64,
}

/// Per-sample node-state scratch, allocated once per [`estimate`] call and
/// reset between samples. An estimate draws up to `max_samples` (2,000 by
/// default) executions; allocating these three vectors inside the sample
/// loop dominated the allocator profile of a solve.
///
/// [`estimate`]: MonteCarloEstimator::estimate
struct SampleBuffers {
    executed: Vec<bool>,
    finish: Vec<f64>,
    start_time: Vec<f64>,
}

impl SampleBuffers {
    fn new(n: usize) -> Self {
        if caribou_telemetry::is_enabled() {
            // One increment per backing vector, so the counter is
            // comparable with the old 3-allocations-per-sample behaviour.
            caribou_telemetry::count("montecarlo.node_state_allocs", 3);
        }
        SampleBuffers {
            executed: vec![false; n],
            finish: vec![0.0; n],
            start_time: vec![f64::NEG_INFINITY; n],
        }
    }

    fn reset(&mut self) {
        self.executed.fill(false);
        self.finish.fill(0.0);
        self.start_time.fill(f64::NEG_INFINITY);
    }
}

impl<S: CarbonDataSource, M: StageModels> MonteCarloEstimator<'_, S, M> {
    /// Runs the estimator for a deployment plan at a given hour.
    pub fn estimate(&self, plan: &DeploymentPlan, hour: f64, rng: &mut Pcg32) -> EstimateSummary {
        let mut latencies = Vec::with_capacity(self.config.max_samples);
        let mut costs = Vec::with_capacity(self.config.max_samples);
        let mut carbons = Vec::with_capacity(self.config.max_samples);
        let mut exec_sum = 0.0;
        let mut trans_sum = 0.0;
        let mut bufs = SampleBuffers::new(self.dag.node_count());

        loop {
            for _ in 0..self.config.batch {
                let s = self.sample_once(plan, hour, rng, &mut bufs);
                latencies.push(s.latency);
                costs.push(s.cost);
                carbons.push(s.carbon);
                exec_sum += s.exec_carbon;
                trans_sum += s.trans_carbon;
            }
            let latency = DistSummary::from_samples(&latencies);
            let cost = DistSummary::from_samples(&costs);
            let carbon = DistSummary::from_samples(&carbons);
            let converged = latency.rel_std_error() < self.config.cv_threshold
                && cost.rel_std_error() < self.config.cv_threshold
                && carbon.rel_std_error() < self.config.cv_threshold;
            if converged || latencies.len() >= self.config.max_samples {
                let n = latencies.len();
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::count("montecarlo.batches", (n / self.config.batch) as u64);
                    caribou_telemetry::count("montecarlo.samples", n as u64);
                    let cv_at_stop = latency
                        .rel_std_error()
                        .max(cost.rel_std_error())
                        .max(carbon.rel_std_error());
                    caribou_telemetry::observe("montecarlo.cv_at_stop", cv_at_stop);
                    if !converged {
                        caribou_telemetry::count("montecarlo.sample_cap_hit", 1);
                    }
                }
                return EstimateSummary {
                    latency,
                    cost,
                    carbon,
                    exec_carbon_mean: exec_sum / n as f64,
                    trans_carbon_mean: trans_sum / n as f64,
                    samples: n,
                };
            }
        }
    }

    /// Simulates one complete workflow execution.
    fn sample_once(
        &self,
        plan: &DeploymentPlan,
        hour: f64,
        rng: &mut Pcg32,
        bufs: &mut SampleBuffers,
    ) -> SamplePoint {
        let dag = self.dag;
        bufs.reset();
        let SampleBuffers {
            executed,
            finish,
            start_time,
        } = bufs;
        let mut cost = 0.0;
        let mut exec_carbon = 0.0;
        let mut trans_carbon = 0.0;

        // Client delivers the input to the start node from the home region.
        let start_node = dag.start();
        let start_region = plan.region_of(start_node);
        let input_bytes = self.profile.input_bytes.sample(rng);
        let mut t0 = self.models.sample_setup(rng);
        t0 += self
            .models
            .sample_transfer(self.home, start_region, input_bytes, rng);
        trans_carbon += self.carbon_model.transmission_carbon(
            input_bytes,
            endpoint_average(self.carbon_source, self.home, start_region, hour),
            self.home == start_region,
        );
        cost += self
            .cost_model
            .pricing()
            .egress_cost(self.home, start_region, input_bytes);
        // Entry wrapper fetches the deployment plan once.
        cost += self.cost_model.kv_cost(start_region, 1, 0);

        start_time[start_node.index()] = t0;
        executed[start_node.index()] = true;

        for &node in dag.topo_order() {
            let ni = node.index();
            if node != start_node {
                // Determine whether and when this node starts.
                let mut any_taken = false;
                let mut ready_at: f64 = 0.0;
                for &eid in dag.in_edges(node) {
                    let e = dag.edge(eid);
                    if !executed[e.from.index()] {
                        continue;
                    }
                    let taken = rng.chance(self.profile.edges[eid.index()].probability);
                    if !taken {
                        // Skip propagation: the predecessor writes the
                        // C=0 annotation; for sync nodes this is one
                        // atomic KV update.
                        if dag.is_sync_node(node) {
                            cost += self.cost_model.kv_cost(plan.region_of(e.from), 1, 1);
                        }
                        continue;
                    }
                    any_taken = true;
                    let payload = self.profile.edges[eid.index()].payload_bytes.sample(rng);
                    let from_r = plan.region_of(e.from);
                    let to_r = plan.region_of(node);
                    let arrive = finish[e.from.index()]
                        + self.models.sample_transition(rng)
                        + self.models.sample_transfer(from_r, to_r, payload, rng);
                    ready_at = ready_at.max(arrive);
                    // Invocation cost: SNS publish + payload egress.
                    cost += self.cost_model.invocation_cost(from_r, to_r, payload);
                    // Intermediate data passes through the KV store: one
                    // write by the predecessor, one read by the successor;
                    // sync nodes add the atomic annotation update.
                    cost += self.cost_model.kv_cost(from_r, 0, 1);
                    cost += self.cost_model.kv_cost(to_r, 1, 0);
                    if dag.is_sync_node(node) {
                        cost += self.cost_model.kv_cost(from_r, 1, 1);
                    }
                    trans_carbon += self.carbon_model.transmission_carbon(
                        payload,
                        endpoint_average(self.carbon_source, from_r, to_r, hour),
                        from_r == to_r,
                    );
                }
                if !any_taken {
                    continue;
                }
                start_time[ni] = ready_at;
                executed[ni] = true;
            }

            // Execute the node.
            let region = plan.region_of(node);
            let p = &self.profile.nodes[ni];
            let mut duration = self.models.sample_exec(ni, region, rng);
            // External data stays at the home region; offloaded stages pay
            // the round trip (§9.1).
            if region != self.home && p.external_data_bytes > 0.0 {
                let half = p.external_data_bytes / 2.0;
                duration += self.models.sample_transfer(region, self.home, half, rng)
                    + self.models.sample_transfer(self.home, region, half, rng);
                trans_carbon += self.carbon_model.transmission_carbon(
                    p.external_data_bytes,
                    endpoint_average(self.carbon_source, region, self.home, hour),
                    false,
                );
                cost +=
                    self.cost_model
                        .external_data_cost(region, self.home, p.external_data_bytes);
            }
            finish[ni] = start_time[ni] + duration;
            cost += self
                .cost_model
                .execution_cost(region, duration, p.memory_mb);
            exec_carbon += self.carbon_model.execution_carbon_params(
                p.memory_mb,
                duration,
                p.cpu_utilization,
                self.carbon_source.intensity(region, hour),
            );
        }

        let latency = dag
            .all_nodes()
            .filter(|nd| executed[nd.index()])
            .map(|nd| finish[nd.index()])
            .fold(0.0f64, f64::max);
        SamplePoint {
            latency,
            cost,
            carbon: exec_carbon + trans_carbon,
            exec_carbon,
            trans_carbon,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::carbonmodel::TransmissionScenario;
    use caribou_carbon::series::CarbonSeries;
    use caribou_carbon::source::TableSource;
    use caribou_model::builder::Workflow;
    use caribou_model::dist::DistSpec;
    use caribou_model::region::RegionCatalog;
    use caribou_simcloud::pricing::PricingCatalog;

    struct Fixture {
        cat: RegionCatalog,
        pricing: PricingCatalog,
        runtime: LambdaRuntime,
        latency: LatencyModel,
        carbon: TableSource,
    }

    fn fixture() -> Fixture {
        let cat = RegionCatalog::aws_default();
        let pricing = PricingCatalog::aws_default(&cat);
        let mut runtime = LambdaRuntime::aws_default(&cat);
        runtime.cold_start_prob = 0.0;
        runtime.exec_sigma = 0.0;
        let latency = LatencyModel::from_catalog(&cat);
        let mut carbon = TableSource::new();
        for (id, spec) in cat.iter() {
            let v = match spec.name.as_str() {
                "us-east-1" | "us-east-2" => 380.0,
                "ca-central-1" => 32.0,
                _ => 300.0,
            };
            carbon.insert(id, CarbonSeries::new(0, vec![v; 24]));
        }
        Fixture {
            cat,
            pricing,
            runtime,
            latency,
            carbon,
        }
    }

    fn chain_workflow(exec_s: f64) -> (caribou_model::WorkflowDag, WorkflowProfile) {
        let mut wf = Workflow::new("chain", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: exec_s })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: exec_s })
            .register();
        wf.invoke(a, b, None)
            .payload(DistSpec::Constant { value: 10_000.0 });
        wf.set_input(DistSpec::Constant { value: 1000.0 });
        let (dag, profile, _) = wf.extract().unwrap();
        (dag, profile)
    }

    fn estimate(
        fx: &Fixture,
        dag: &caribou_model::WorkflowDag,
        profile: &WorkflowProfile,
        plan: &DeploymentPlan,
        seed: u64,
    ) -> EstimateSummary {
        let models = DefaultModels {
            profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let est = MonteCarloEstimator {
            dag,
            profile,
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            home: fx.cat.id_of("us-east-1").unwrap(),
            config: MonteCarloConfig::default(),
        };
        est.estimate(plan, 0.5, &mut Pcg32::seed(seed))
    }

    #[test]
    fn chain_latency_close_to_sum_of_stages() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(2.0);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let plan = DeploymentPlan::uniform(2, home);
        let s = estimate(&fx, &dag, &profile, &plan, 1);
        // Two 2 s stages plus small overheads.
        assert!(
            (4.0..4.6).contains(&s.latency.mean),
            "latency {}",
            s.latency.mean
        );
        assert!(s.samples >= 200);
    }

    #[test]
    fn offloading_to_clean_region_cuts_carbon() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(5.0);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let ca = fx.cat.id_of("ca-central-1").unwrap();
        let home_plan = DeploymentPlan::uniform(2, home);
        let ca_plan = DeploymentPlan::uniform(2, ca);
        let s_home = estimate(&fx, &dag, &profile, &home_plan, 2);
        let s_ca = estimate(&fx, &dag, &profile, &ca_plan, 3);
        assert!(
            s_ca.carbon.mean < s_home.carbon.mean * 0.3,
            "home {} ca {}",
            s_home.carbon.mean,
            s_ca.carbon.mean
        );
        // But latency grows (cross-region hops).
        assert!(s_ca.latency.mean > s_home.latency.mean);
    }

    #[test]
    fn conditional_edge_reduces_mean_latency() {
        let fx = fixture();
        let build = |prob: Option<f64>| {
            let mut wf = Workflow::new("cond", "0.1");
            let a = wf
                .serverless_function("A")
                .exec_time(DistSpec::Constant { value: 1.0 })
                .register();
            let b = wf
                .serverless_function("B")
                .exec_time(DistSpec::Constant { value: 4.0 })
                .register();
            wf.invoke(a, b, prob);
            let (dag, profile, _) = wf.extract().unwrap();
            (dag, profile)
        };
        let home = fx.cat.id_of("us-east-1").unwrap();
        let plan = DeploymentPlan::uniform(2, home);
        let (dag_always, prof_always) = build(None);
        let (dag_rare, prof_rare) = build(Some(0.1));
        let s_always = estimate(&fx, &dag_always, &prof_always, &plan, 4);
        let s_rare = estimate(&fx, &dag_rare, &prof_rare, &plan, 5);
        assert!(
            s_rare.latency.mean < s_always.latency.mean - 2.0,
            "rare {} always {}",
            s_rare.latency.mean,
            s_always.latency.mean
        );
        assert!(s_rare.cost.mean < s_always.cost.mean);
    }

    #[test]
    fn sync_node_waits_for_slowest_branch() {
        let fx = fixture();
        let mut wf = Workflow::new("join", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 0.5 })
            .register();
        let fast = wf
            .serverless_function("Fast")
            .exec_time(DistSpec::Constant { value: 0.5 })
            .register();
        let slow = wf
            .serverless_function("Slow")
            .exec_time(DistSpec::Constant { value: 5.0 })
            .register();
        let join = wf
            .serverless_function("Join")
            .exec_time(DistSpec::Constant { value: 0.5 })
            .register();
        wf.invoke(a, fast, None);
        wf.invoke(a, slow, None);
        wf.invoke(fast, join, None);
        wf.invoke(slow, join, None);
        wf.get_predecessor_data(join);
        let (dag, profile, _) = wf.extract().unwrap();
        let home = fx.cat.id_of("us-east-1").unwrap();
        let plan = DeploymentPlan::uniform(4, home);
        let s = estimate(&fx, &dag, &profile, &plan, 6);
        // Critical path = 0.5 + 5.0 + 0.5 plus overheads; the fast branch
        // must not shorten it.
        assert!(s.latency.mean > 5.9, "latency {}", s.latency.mean);
        assert!(s.latency.mean < 6.8, "latency {}", s.latency.mean);
    }

    #[test]
    fn transmission_carbon_separated_from_execution() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let west = fx.cat.id_of("us-west-2").unwrap();
        let mut plan = DeploymentPlan::uniform(2, home);
        plan.set(caribou_model::dag::NodeId(1), west);
        let s = estimate(&fx, &dag, &profile, &plan, 7);
        assert!(s.exec_carbon_mean > 0.0);
        assert!(s.trans_carbon_mean > 0.0);
        assert!(
            (s.exec_carbon_mean + s.trans_carbon_mean - s.carbon.mean).abs() / s.carbon.mean < 0.05
        );
    }

    #[test]
    fn estimator_is_deterministic_per_seed() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let plan = DeploymentPlan::uniform(2, fx.cat.id_of("us-east-1").unwrap());
        let a = estimate(&fx, &dag, &profile, &plan, 42);
        let b = estimate(&fx, &dag, &profile, &plan, 42);
        assert_eq!(a.latency.mean, b.latency.mean);
        assert_eq!(a.carbon.mean, b.carbon.mean);
    }

    #[test]
    fn stopping_rule_caps_at_max_samples() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let plan = DeploymentPlan::uniform(2, fx.cat.id_of("us-east-1").unwrap());
        let models = DefaultModels {
            profile: &profile,
            runtime: &fx.runtime,
            latency: &fx.latency,
            orchestrator: Orchestrator::Caribou,
        };
        let est = MonteCarloEstimator {
            dag: &dag,
            profile: &profile,
            carbon_source: &fx.carbon,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&fx.pricing),
            models: &models,
            home: fx.cat.id_of("us-east-1").unwrap(),
            config: MonteCarloConfig {
                batch: 100,
                max_samples: 300,
                cv_threshold: 0.0, // never converges
            },
        };
        let s = est.estimate(&plan, 0.5, &mut Pcg32::seed(1));
        assert_eq!(s.samples, 300);
    }

    #[test]
    fn node_state_buffers_reused_across_samples() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.0);
        let plan = DeploymentPlan::uniform(2, fx.cat.id_of("us-east-1").unwrap());
        caribou_telemetry::enable(Box::new(caribou_telemetry::NullSink));
        let s = estimate(&fx, &dag, &profile, &plan, 8);
        let session = caribou_telemetry::finish().unwrap();
        let allocs = session.recorder.counter("montecarlo.node_state_allocs");
        let samples = session.recorder.counter("montecarlo.samples");
        assert!(samples >= 200, "samples {samples}");
        assert_eq!(s.samples as u64, samples);
        // One buffer set per estimate call — not 3 allocations per sample
        // as before the hoist.
        assert_eq!(allocs, 3, "allocs {allocs} for {samples} samples");
    }

    #[test]
    fn buffer_reuse_preserves_per_seed_results() {
        let fx = fixture();
        let (dag, profile) = chain_workflow(1.5);
        let home = fx.cat.id_of("us-east-1").unwrap();
        let west = fx.cat.id_of("us-west-2").unwrap();
        let mut plan = DeploymentPlan::uniform(2, home);
        plan.set(caribou_model::dag::NodeId(1), west);
        // Conditional skips leave stale state in naive buffer reuse; two
        // runs from the same seed must still agree bit for bit.
        let a = estimate(&fx, &dag, &profile, &plan, 21);
        let b = estimate(&fx, &dag, &profile, &plan, 21);
        assert_eq!(a, b);
    }
}
