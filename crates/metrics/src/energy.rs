//! The serverless energy model of §7.1 (Eqs. 7.2–7.4).
//!
//! * Memory energy: `E_mem = P_mem × (mem/1024) × t/3600` with
//!   `P_mem = 3.725e-4 kW/GB`.
//! * vCPU power: linear in utilization between `P_min = 7.5e-4 kW` and
//!   `P_max = 3.5e-3 kW` per core (Eq. 7.3).
//! * Processor energy: `E_proc = P_vcpu × n_vcpu × t/3600` (Eq. 7.4).
//!
//! All energies are in kWh.

use caribou_simcloud::compute::{vcpus, ExecutionRecord};

/// Memory power per GB, kW (§7.1).
pub const P_MEM_KW_PER_GB: f64 = 3.725e-4;
/// Idle power per vCPU, kW (§7.1, estimate for AWS datacenters).
pub const P_MIN_KW: f64 = 7.5e-4;
/// Fully-utilized power per vCPU, kW.
pub const P_MAX_KW: f64 = 3.5e-3;
/// Power usage effectiveness used by the paper: mid-point of the reported
/// 1.07–1.15 AWS range.
pub const PUE: f64 = 1.11;

/// Memory energy of an execution, kWh (Eq. 7.2).
pub fn memory_energy_kwh(memory_mb: u32, duration_s: f64) -> f64 {
    P_MEM_KW_PER_GB * (memory_mb as f64 / 1024.0) * duration_s / 3600.0
}

/// Per-vCPU power from average utilization, kW (Eq. 7.3).
pub fn vcpu_power_kw(utilization: f64) -> f64 {
    P_MIN_KW + utilization.clamp(0.0, 1.0) * (P_MAX_KW - P_MIN_KW)
}

/// Processor energy of an execution, kWh (Eq. 7.4).
pub fn processor_energy_kwh(memory_mb: u32, duration_s: f64, utilization: f64) -> f64 {
    vcpu_power_kw(utilization) * vcpus(memory_mb) * duration_s / 3600.0
}

/// Total facility-level energy of an execution (processor + memory, PUE
/// applied), kWh.
pub fn execution_energy_kwh(record: &ExecutionRecord) -> f64 {
    let util = record.avg_utilization();
    (processor_energy_kwh(record.memory_mb, record.duration_s, util)
        + memory_energy_kwh(record.memory_mb, record.duration_s))
        * PUE
}

/// Expected execution energy from profile parameters (used by the Monte
/// Carlo estimator without materializing an [`ExecutionRecord`]), kWh.
pub fn expected_energy_kwh(memory_mb: u32, duration_s: f64, utilization: f64) -> f64 {
    (processor_energy_kwh(memory_mb, duration_s, utilization)
        + memory_energy_kwh(memory_mb, duration_s))
        * PUE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_energy_matches_formula() {
        // 1024 MB for 3600 s = 1 GB-h → P_MEM kWh.
        let e = memory_energy_kwh(1024, 3600.0);
        assert!((e - P_MEM_KW_PER_GB).abs() < 1e-15);
    }

    #[test]
    fn vcpu_power_bounds() {
        assert!((vcpu_power_kw(0.0) - P_MIN_KW).abs() < 1e-15);
        assert!((vcpu_power_kw(1.0) - P_MAX_KW).abs() < 1e-15);
        assert!((vcpu_power_kw(0.5) - 0.5 * (P_MIN_KW + P_MAX_KW)).abs() < 1e-12);
        // Clamped outside [0, 1].
        assert!((vcpu_power_kw(2.0) - P_MAX_KW).abs() < 1e-12);
        assert!((vcpu_power_kw(-1.0) - P_MIN_KW).abs() < 1e-12);
    }

    #[test]
    fn processor_energy_one_vcpu_hour() {
        // 1769 MB (one vCPU) fully utilized for one hour → P_MAX kWh.
        let e = processor_energy_kwh(1769, 3600.0, 1.0);
        assert!((e - P_MAX_KW).abs() < 1e-12);
    }

    #[test]
    fn execution_energy_applies_pue() {
        let record = ExecutionRecord {
            duration_s: 3600.0,
            cpu_total_time_s: 3600.0, // utilization 1.0 at 1 vCPU
            memory_mb: 1769,
            cold_start: false,
            cold_start_s: 0.0,
        };
        let raw = P_MAX_KW + P_MEM_KW_PER_GB * (1769.0 / 1024.0);
        let e = execution_energy_kwh(&record);
        assert!((e - raw * PUE).abs() < 1e-12, "e {e}");
    }

    #[test]
    fn expected_matches_record_based() {
        let record = ExecutionRecord {
            duration_s: 10.0,
            cpu_total_time_s: 10.0 * 0.7 * vcpus(1024),
            memory_mb: 1024,
            cold_start: false,
            cold_start_s: 0.0,
        };
        let a = execution_energy_kwh(&record);
        let b = expected_energy_kwh(1024, 10.0, 0.7);
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn energy_scale_sanity() {
        // A 10 s, 1769 MB, 70%-utilized execution sits in the µWh–mWh
        // range — the scale that makes the paper's transmission factors
        // (1e-3 kWh/GB) comparable for MB-scale payloads.
        let e = expected_energy_kwh(1769, 10.0, 0.7);
        assert!((1e-6..1e-4).contains(&e), "energy {e} kWh");
    }
}
