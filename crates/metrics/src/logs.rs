//! Invocation logs and their retention policy (§7.2).
//!
//! The Metrics Manager keeps the daily invocations of every workflow for
//! the last thirty days and at most the 5,000 latest executions. Beyond
//! the cap it *selectively forgets*: only invocations representing DAG
//! information (e.g. a region-to-region latency observation) not present
//! in newer data are maintained; others are removed in FIFO order.

use std::collections::HashSet;

use caribou_model::intern::IStr;
use caribou_model::region::RegionId;
use serde::{Deserialize, Serialize};

/// Per-stage execution record inside one invocation log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeRecord {
    /// Node index in the workflow DAG.
    pub node: u32,
    /// Region the stage executed in.
    pub region: RegionId,
    /// Wall-clock duration, seconds.
    pub duration_s: f64,
    /// Lambda-Insights `cpu_total_time`, seconds.
    pub cpu_total_time_s: f64,
    /// Configured memory, MB.
    pub memory_mb: u32,
    /// Start offset within the invocation, seconds.
    pub start_s: f64,
}

/// Per-edge transmission record inside one invocation log.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdgeRecord {
    /// Edge index in the workflow DAG.
    pub edge: u32,
    /// Whether the (conditional) edge fired.
    pub taken: bool,
    /// Source region.
    pub from_region: RegionId,
    /// Destination region.
    pub to_region: RegionId,
    /// Payload bytes moved.
    pub bytes: f64,
    /// Observed transmission latency, seconds (0 when not taken).
    pub latency_s: f64,
}

/// One complete workflow invocation record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationLog {
    /// Workflow name (interned: cloning a log does not copy the name).
    pub workflow: IStr,
    /// Simulation time of the invocation, seconds since epoch.
    pub at_s: f64,
    /// Whether this invocation was part of the 10% home-region
    /// benchmarking traffic (§6.2).
    pub benchmark_traffic: bool,
    /// Per-stage records.
    pub nodes: Vec<NodeRecord>,
    /// Per-edge records.
    pub edges: Vec<EdgeRecord>,
    /// End-to-end service time, seconds.
    pub e2e_latency_s: f64,
    /// Cost of the invocation, USD.
    pub cost_usd: f64,
}

impl InvocationLog {
    /// The DAG-information keys this log contributes: per-stage
    /// `(node, region)` execution observations and per-edge
    /// `(edge, from, to)` transmission observations.
    fn info_keys(&self) -> impl Iterator<Item = InfoKey> + '_ {
        let nodes = self.nodes.iter().map(|n| InfoKey::Exec(n.node, n.region));
        let edges = self
            .edges
            .iter()
            .filter(|e| e.taken)
            .map(|e| InfoKey::Transfer(e.edge, e.from_region, e.to_region));
        nodes.chain(edges)
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum InfoKey {
    Exec(u32, RegionId),
    Transfer(u32, RegionId, RegionId),
}

/// Retention window, seconds (30 days).
pub const RETENTION_S: f64 = 30.0 * 86_400.0;
/// Retention cap, invocations.
pub const RETENTION_CAP: usize = 5_000;

/// Stores invocation logs with the paper's retention policy.
///
/// # Examples
///
/// ```
/// use caribou_metrics::logs::{InvocationLog, LogStore};
///
/// let mut store = LogStore::with_cap(100);
/// store.record(InvocationLog {
///     workflow: "wf".into(),
///     at_s: 0.0,
///     benchmark_traffic: false,
///     nodes: vec![],
///     edges: vec![],
///     e2e_latency_s: 1.2,
///     cost_usd: 1e-5,
/// });
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogStore {
    /// Logs in arrival order (oldest first).
    logs: Vec<InvocationLog>,
    /// Maximum retained logs (5,000 in the paper; configurable for tests).
    pub cap: usize,
    /// Retention window in seconds.
    pub window_s: f64,
}

impl LogStore {
    /// Creates a store with the paper's retention parameters.
    pub fn new() -> Self {
        LogStore {
            logs: Vec::new(),
            cap: RETENTION_CAP,
            window_s: RETENTION_S,
        }
    }

    /// Creates a store with a custom cap (tests, small deployments).
    pub fn with_cap(cap: usize) -> Self {
        LogStore { cap, ..Self::new() }
    }

    /// Appends a log and applies retention relative to the log's time.
    pub fn record(&mut self, log: InvocationLog) {
        let now = log.at_s;
        self.logs.push(log);
        self.prune(now);
    }

    /// Applies retention at time `now`: drops logs older than the window,
    /// then enforces the cap with selective forgetting.
    pub fn prune(&mut self, now: f64) {
        let cutoff = now - self.window_s;
        self.logs.retain(|l| l.at_s >= cutoff);
        if self.logs.len() <= self.cap {
            return;
        }
        // Selective forgetting: walk oldest-first; a log is droppable when
        // every info key it carries also appears in some *newer* log.
        // Build the key multiset from newest to oldest so "newer
        // occurrences" can be checked incrementally.
        let mut keys_in_newer: Vec<HashSet<InfoKey>> = Vec::with_capacity(self.logs.len());
        let mut acc: HashSet<InfoKey> = HashSet::new();
        for log in self.logs.iter().rev() {
            keys_in_newer.push(acc.clone());
            for k in log.info_keys() {
                acc.insert(k);
            }
        }
        keys_in_newer.reverse(); // keys_in_newer[i] = keys in logs[i+1..]

        let excess = self.logs.len() - self.cap;
        let mut dropped = 0usize;
        let mut keep: Vec<bool> = vec![true; self.logs.len()];
        for i in 0..self.logs.len() {
            if dropped == excess {
                break;
            }
            let representable = self.logs[i]
                .info_keys()
                .all(|k| keys_in_newer[i].contains(&k));
            if representable {
                keep[i] = false;
                dropped += 1;
            }
        }
        // If unique-information logs alone exceed the cap, fall back to
        // plain FIFO for the remainder so the store stays bounded.
        if dropped < excess {
            for k in keep.iter_mut() {
                if dropped == excess {
                    break;
                }
                if *k {
                    *k = false;
                    dropped += 1;
                }
            }
        }
        let mut idx = 0;
        self.logs.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// All retained logs, oldest first.
    pub fn logs(&self) -> &[InvocationLog] {
        &self.logs
    }

    /// Number of retained logs.
    pub fn len(&self) -> usize {
        self.logs.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.logs.is_empty()
    }

    /// Invocations in the window `[from_s, to_s)`.
    pub fn count_between(&self, from_s: f64, to_s: f64) -> usize {
        self.logs
            .iter()
            .filter(|l| l.at_s >= from_s && l.at_s < to_s)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(at_s: f64, node_region: RegionId) -> InvocationLog {
        InvocationLog {
            workflow: "wf".into(),
            at_s,
            benchmark_traffic: false,
            nodes: vec![NodeRecord {
                node: 0,
                region: node_region,
                duration_s: 1.0,
                cpu_total_time_s: 0.7,
                memory_mb: 1024,
                start_s: 0.0,
            }],
            edges: vec![],
            e2e_latency_s: 1.0,
            cost_usd: 0.0001,
        }
    }

    #[test]
    fn window_pruning_drops_old_logs() {
        let mut s = LogStore::new();
        s.record(log(0.0, RegionId(0)));
        s.record(log(31.0 * 86_400.0, RegionId(0)));
        assert_eq!(s.len(), 1);
        assert_eq!(s.logs()[0].at_s, 31.0 * 86_400.0);
    }

    #[test]
    fn cap_enforced_fifo_when_same_information() {
        let mut s = LogStore::with_cap(10);
        for i in 0..25 {
            s.record(log(i as f64, RegionId(0)));
        }
        assert_eq!(s.len(), 10);
        // The oldest redundant ones were dropped.
        assert_eq!(s.logs()[0].at_s, 15.0);
    }

    #[test]
    fn unique_information_survives_cap() {
        let mut s = LogStore::with_cap(5);
        // One old log with unique region information...
        s.record(log(0.0, RegionId(9)));
        // ...then many newer logs in a different region.
        for i in 1..20 {
            s.record(log(i as f64, RegionId(0)));
        }
        assert_eq!(s.len(), 5);
        assert!(
            s.logs().iter().any(|l| l.nodes[0].region == RegionId(9)),
            "unique-region log must be retained"
        );
    }

    #[test]
    fn all_unique_falls_back_to_fifo() {
        let mut s = LogStore::with_cap(3);
        for i in 0..6 {
            s.record(log(i as f64, RegionId(i as u16)));
        }
        assert_eq!(s.len(), 3);
        // Oldest unique ones dropped as a last resort.
        assert_eq!(s.logs()[0].nodes[0].region, RegionId(3));
    }

    #[test]
    fn count_between_filters_by_time() {
        let mut s = LogStore::new();
        for i in 0..10 {
            s.record(log(i as f64 * 100.0, RegionId(0)));
        }
        assert_eq!(s.count_between(200.0, 500.0), 3);
        assert_eq!(s.count_between(0.0, 1e9), 10);
        assert_eq!(s.count_between(901.0, 1000.0), 0);
    }

    #[test]
    fn edge_information_counts_for_uniqueness() {
        let mut s = LogStore::with_cap(4);
        let mut with_edge = log(0.0, RegionId(0));
        with_edge.edges.push(EdgeRecord {
            edge: 0,
            taken: true,
            from_region: RegionId(0),
            to_region: RegionId(7),
            bytes: 10.0,
            latency_s: 0.1,
        });
        s.record(with_edge);
        for i in 1..12 {
            s.record(log(i as f64, RegionId(0)));
        }
        assert_eq!(s.len(), 4);
        assert!(s.logs().iter().any(|l| !l.edges.is_empty()));
    }
}
