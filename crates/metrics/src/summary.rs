//! Distribution summaries for end-to-end metric estimation.
//!
//! The Monte Carlo estimator reports each metric as a distribution whose
//! mean is the "average case" used for ordering deployment plans and whose
//! 95th percentile is the "tail case" used for tolerance checks (§7.1).

use serde::{Deserialize, Serialize};

/// Summary statistics of a sampled metric distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DistSummary {
    /// Sample mean ("average case").
    pub mean: f64,
    /// 95th percentile ("tail case").
    pub p95: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Number of samples.
    pub n: usize,
}

impl DistSummary {
    /// Builds the summary from raw samples.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample set.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "no samples");
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        DistSummary {
            mean,
            p95: percentile_sorted(&sorted, 0.95),
            std_dev: var.sqrt(),
            n,
        }
    }

    /// Relative standard error of the sample mean; the Monte Carlo loop
    /// stops when this drops below its threshold for every metric.
    pub fn rel_std_error(&self) -> f64 {
        if self.mean.abs() < 1e-30 {
            return 0.0;
        }
        self.std_dev / (self.mean.abs() * (self.n as f64).sqrt())
    }
}

/// Linear-interpolated percentile of an ascending-sorted slice.
pub fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "no samples");
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant_samples() {
        let s = DistSummary::from_samples(&[3.0; 100]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.p95, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.rel_std_error(), 0.0);
    }

    #[test]
    fn percentile_of_uniform_grid() {
        let v: Vec<f64> = (0..=100).map(|i| i as f64).collect();
        assert_eq!(percentile_sorted(&v, 0.95), 95.0);
        assert_eq!(percentile_sorted(&v, 0.0), 0.0);
        assert_eq!(percentile_sorted(&v, 1.0), 100.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = vec![0.0, 10.0];
        assert!((percentile_sorted(&v, 0.5) - 5.0).abs() < 1e-12);
        assert!((percentile_sorted(&v, 0.95) - 9.5).abs() < 1e-9);
    }

    #[test]
    fn rel_std_error_shrinks_with_n() {
        use caribou_model::rng::Pcg32;
        let mut rng = Pcg32::seed(1);
        let small: Vec<f64> = (0..100).map(|_| rng.normal(10.0, 2.0)).collect();
        let big: Vec<f64> = (0..10_000).map(|_| rng.normal(10.0, 2.0)).collect();
        let s = DistSummary::from_samples(&small);
        let b = DistSummary::from_samples(&big);
        assert!(b.rel_std_error() < s.rel_std_error());
    }

    #[test]
    fn p95_above_mean_for_skewed_samples() {
        use caribou_model::rng::Pcg32;
        let mut rng = Pcg32::seed(2);
        let v: Vec<f64> = (0..5000).map(|_| rng.lognormal(0.0, 0.8)).collect();
        let s = DistSummary::from_samples(&v);
        assert!(s.p95 > s.mean);
    }

    #[test]
    #[should_panic]
    fn empty_samples_panic() {
        DistSummary::from_samples(&[]);
    }
}
