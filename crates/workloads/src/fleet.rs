//! Seeded heterogeneous fleet generation for multi-tenant solving.
//!
//! [`generate_fleet`] draws N applications from a small discrete palette
//! of DAG shapes, execution tiers, data volumes, home regions,
//! constraints, and tolerances. Two deliberate properties:
//!
//! * **Heterogeneity** — shape × tier × volume × home spans ~100 distinct
//!   structural species, so a fleet of any realistic size mixes chains,
//!   fan-outs, and sync-join diamonds with different resource profiles.
//! * **Structural collisions** — the palette is discrete, so a large
//!   fleet contains many apps that are *bit-identical in structure*
//!   (same DAG, profile, and home). Each species carries a stable
//!   [`FleetApp::fingerprint`]; the fleet subsystem keys the shared
//!   estimate cache on it, so structurally identical apps share Monte
//!   Carlo estimates no matter which app computed them first.
//!
//! Constraints (permitted region sets) and QoS tolerances vary *within*
//! a species and are excluded from the fingerprint: they change which
//! candidates a solve may pick, never what a candidate's estimate is.

use caribou_model::builder::Workflow;
use caribou_model::constraints::Tolerances;
use caribou_model::dag::WorkflowDag;
use caribou_model::dist::DistSpec;
use caribou_model::profile::WorkflowProfile;
use caribou_model::region::RegionId;
use caribou_model::rng::SeedSplitter;

/// Domain-separation label for fleet app draws.
const FLEET_APP_DOMAIN: u64 = 0xca1b_f1ee_7a44_0001;
/// Domain-separation label for species fingerprints.
const FLEET_SPECIES_DOMAIN: u64 = 0xca1b_f1ee_7a44_0002;

/// DAG shapes in the palette.
const SHAPES: [FleetShape; 4] = [
    FleetShape::Chain2,
    FleetShape::Chain3,
    FleetShape::FanOut3,
    FleetShape::Diamond,
];

/// Execution tiers: (median seconds, memory MB, cpu utilization).
const EXEC_TIERS: [(f64, u32, f64); 3] = [(1.0, 512, 0.6), (2.5, 1024, 0.7), (6.0, 1769, 0.8)];

/// Data-volume tiers: (edge payload bytes, external data bytes).
const DATA_TIERS: [(f64, f64); 3] = [(8e3, 50e3), (128e3, 800e3), (512e3, 3.0e6)];

/// Latency-tolerance palette (vs the home baseline, §7.1).
const LATENCY_TOLS: [f64; 3] = [0.25, 0.5, 1.0];

/// A DAG shape in the generator's palette.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetShape {
    /// Two-node chain.
    Chain2,
    /// Three-node chain.
    Chain3,
    /// One node fanning out to three independent branches.
    FanOut3,
    /// Split → two branches → synchronizing join.
    Diamond,
}

impl FleetShape {
    /// Node count of the shape.
    pub fn node_count(self) -> usize {
        match self {
            FleetShape::Chain2 => 2,
            FleetShape::Chain3 => 3,
            FleetShape::FanOut3 => 4,
            FleetShape::Diamond => 4,
        }
    }

    /// Stable label for fingerprints and names.
    fn label(self) -> (&'static str, u64) {
        match self {
            FleetShape::Chain2 => ("chain2", 0),
            FleetShape::Chain3 => ("chain3", 1),
            FleetShape::FanOut3 => ("fanout3", 2),
            FleetShape::Diamond => ("diamond", 3),
        }
    }
}

/// One application of a generated fleet.
#[derive(Debug, Clone)]
pub struct FleetApp {
    /// `app-<index>`.
    pub name: String,
    /// Position in the fleet (stable across worker counts).
    pub index: usize,
    /// Structural species id: equal fingerprints guarantee bit-identical
    /// `(dag, profile, home)` and thus bit-identical estimates for any
    /// `(plan, hour)` under the fleet's shared models. Never 0 (reserved
    /// for single-app engines).
    pub fingerprint: u64,
    /// DAG shape drawn for this app.
    pub shape: FleetShape,
    /// Validated DAG.
    pub dag: WorkflowDag,
    /// Resource profile.
    pub profile: WorkflowProfile,
    /// Home region (baseline and external-data anchor).
    pub home: RegionId,
    /// Permitted regions per node (home always included, sets sorted).
    pub permitted: Vec<Vec<RegionId>>,
    /// QoS tolerances vs the home baseline.
    pub tolerances: Tolerances,
}

impl FleetApp {
    /// The regions this app's solve reads from the carbon forecast at the
    /// solve hour: HBSS ranks every permitted region, and estimates read
    /// only assigned regions plus home (a subset). This is the app's row
    /// in the fleet's forecast dependency index.
    pub fn forecast_reads(&self) -> Vec<RegionId> {
        let mut reads: Vec<RegionId> = self.permitted.iter().flatten().copied().collect();
        reads.sort_unstable();
        reads.dedup();
        reads
    }
}

/// Generates a seeded fleet of `apps` applications over `universe` (the
/// candidate regions; the first entries are favoured as homes).
///
/// Pure function of `(seed, apps, universe)`: app `i` is drawn from a
/// [`SeedSplitter`]-derived stream labelled by `i`, so the fleet is
/// independent of iteration order and any worker count downstream.
///
/// The universe is provider-agnostic: ids from a multi-provider
/// [`RegionCatalog`](caribou_model::region::RegionCatalog) (e.g.
/// `multi_cloud()`) work unchanged, and homes/permitted sets then span
/// providers. Draws index into `universe` positionally, so the fleet is
/// a function of the id *list*, not of provider labels — widening the
/// universe re-draws homes, which is why the fleet CLI keys its cache
/// streams on the universe's provider bits.
///
/// # Panics
///
/// Panics when `universe` is empty.
pub fn generate_fleet(seed: u64, apps: usize, universe: &[RegionId]) -> Vec<FleetApp> {
    assert!(!universe.is_empty(), "fleet universe must be non-empty");
    (0..apps).map(|i| generate_app(seed, i, universe)).collect()
}

/// Generates app `index` of the fleet — see [`generate_fleet`].
pub fn generate_app(seed: u64, index: usize, universe: &[RegionId]) -> FleetApp {
    let mut rng = SeedSplitter::new(seed)
        .absorb(FLEET_APP_DOMAIN)
        .absorb(index as u64)
        .rng();

    // Structural draws (committed to by the fingerprint).
    let shape = SHAPES[rng.next_index(SHAPES.len())];
    let exec_tier = rng.next_index(EXEC_TIERS.len());
    let data_tier = rng.next_index(DATA_TIERS.len());
    let home_pick = rng.next_index(universe.len());
    let home = universe[home_pick];

    // Constraint draws (excluded from the fingerprint: they narrow the
    // search, not the estimates).
    let extra_regions = rng.next_index(universe.len()); // 0..universe-1 extras
    let latency_tol = LATENCY_TOLS[rng.next_index(LATENCY_TOLS.len())];

    let (shape_name, shape_tag) = shape.label();
    let fingerprint = SeedSplitter::new(FLEET_SPECIES_DOMAIN)
        .absorb(shape_tag)
        .absorb(exec_tier as u64)
        .absorb(data_tier as u64)
        .absorb(home.index() as u64)
        .seed()
        .max(1);

    let (dag, profile) = build_workflow(shape, shape_name, exec_tier, data_tier);

    // Permitted set: home plus `extra_regions` distinct others, drawn
    // without replacement in rng order, then sorted (constraints keep
    // permitted sets sorted ascending).
    let mut others: Vec<RegionId> = universe.iter().copied().filter(|r| *r != home).collect();
    rng.shuffle(&mut others);
    let mut set: Vec<RegionId> = std::iter::once(home)
        .chain(others.into_iter().take(extra_regions))
        .collect();
    set.sort_unstable();
    let permitted = vec![set; dag.node_count()];

    FleetApp {
        name: format!("app-{index}"),
        index,
        fingerprint,
        shape,
        dag,
        profile,
        home,
        permitted,
        tolerances: Tolerances {
            latency: latency_tol,
            cost: 1.0,
            carbon: f64::INFINITY,
        },
    }
}

fn exec_dist(median_s: f64) -> DistSpec {
    DistSpec::LogNormal {
        median: median_s,
        sigma: 0.10,
    }
}

fn payload_dist(bytes: f64) -> DistSpec {
    DistSpec::LogNormal {
        median: bytes,
        sigma: 0.05,
    }
}

/// Builds the workflow for one species. Deterministic in its arguments —
/// two apps of the same species get bit-identical DAGs and profiles (the
/// workflow name is the species label, not the app name, so extracted
/// structures compare equal across apps).
fn build_workflow(
    shape: FleetShape,
    shape_name: &str,
    exec_tier: usize,
    data_tier: usize,
) -> (WorkflowDag, WorkflowProfile) {
    let (median_s, memory_mb, cpu) = EXEC_TIERS[exec_tier];
    let (payload_b, external_b) = DATA_TIERS[data_tier];
    let mut wf = Workflow::new(format!("{shape_name}_e{exec_tier}_d{data_tier}"), "1.0");
    let node = |wf: &mut Workflow, name: &str, scale: f64| {
        wf.serverless_function(name)
            .memory_mb(memory_mb)
            .exec_time(exec_dist(median_s * scale))
            .cpu_utilization(cpu)
            .register()
    };
    match shape {
        FleetShape::Chain2 | FleetShape::Chain3 => {
            let n = shape.node_count();
            let mut prev = wf
                .serverless_function("F0")
                .memory_mb(memory_mb)
                .exec_time(exec_dist(median_s))
                .cpu_utilization(cpu)
                // The input is fetched from, and the result returned to,
                // home-region storage.
                .external_data_bytes(external_b)
                .register();
            for i in 1..n {
                let next = node(&mut wf, &format!("F{i}"), 1.0);
                wf.invoke(prev, next, None).payload(payload_dist(payload_b));
                prev = next;
            }
        }
        FleetShape::FanOut3 => {
            let prepare = wf
                .serverless_function("Prepare")
                .memory_mb(memory_mb)
                .exec_time(exec_dist(median_s * 0.5))
                .cpu_utilization(cpu)
                .external_data_bytes(external_b)
                .register();
            for i in 0..3 {
                let branch = node(&mut wf, &format!("Branch{i}"), 1.0);
                wf.invoke(prepare, branch, None)
                    .payload(payload_dist(payload_b));
            }
        }
        FleetShape::Diamond => {
            let split = wf
                .serverless_function("Split")
                .memory_mb(memory_mb)
                .exec_time(exec_dist(median_s * 0.5))
                .cpu_utilization(cpu)
                .external_data_bytes(external_b)
                .register();
            let left = node(&mut wf, "Left", 1.0);
            let right = node(&mut wf, "Right", 1.0);
            let join = node(&mut wf, "Join", 0.5);
            wf.invoke(split, left, None)
                .payload(payload_dist(payload_b));
            wf.invoke(split, right, None)
                .payload(payload_dist(payload_b));
            wf.invoke(left, join, None).payload(payload_dist(payload_b));
            wf.invoke(right, join, None)
                .payload(payload_dist(payload_b));
            // The join waits for both branches: a synchronization node.
            wf.get_predecessor_data(join);
        }
    }
    wf.set_input(payload_dist(4e3));
    let (dag, profile, _) = wf
        .extract()
        .expect("fleet species are structurally valid by construction");
    (dag, profile)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn universe() -> Vec<RegionId> {
        (0..4u16).map(RegionId).collect()
    }

    #[test]
    fn generation_is_deterministic_and_order_free() {
        let fleet = generate_fleet(42, 32, &universe());
        assert_eq!(fleet.len(), 32);
        for (i, app) in fleet.iter().enumerate() {
            assert_eq!(app.index, i);
            // Per-app regeneration matches the batch draw: apps are pure
            // functions of (seed, index, universe).
            let solo = generate_app(42, i, &universe());
            assert_eq!(solo.fingerprint, app.fingerprint);
            assert_eq!(solo.home, app.home);
            assert_eq!(solo.permitted, app.permitted);
            assert_eq!(solo.profile, app.profile);
        }
    }

    #[test]
    fn species_collide_and_share_fingerprints() {
        let fleet = generate_fleet(7, 200, &universe());
        let mut by_fp: std::collections::HashMap<u64, Vec<usize>> = Default::default();
        for app in &fleet {
            by_fp.entry(app.fingerprint).or_default().push(app.index);
        }
        assert!(
            by_fp.len() < fleet.len(),
            "a 200-app fleet over a ~144-species palette must collide"
        );
        // Same fingerprint ⇒ bit-identical structure, profile, and home.
        for apps in by_fp.values().filter(|v| v.len() > 1) {
            let first = &fleet[apps[0]];
            for &i in &apps[1..] {
                let other = &fleet[i];
                assert_eq!(first.home, other.home);
                assert_eq!(first.profile, other.profile);
                assert_eq!(first.dag.node_count(), other.dag.node_count());
                assert_eq!(first.dag.edge_count(), other.dag.edge_count());
            }
        }
    }

    #[test]
    fn permitted_sets_vary_and_always_include_home() {
        let fleet = generate_fleet(3, 64, &universe());
        let mut sizes: std::collections::HashSet<usize> = Default::default();
        for app in &fleet {
            for set in &app.permitted {
                assert!(set.contains(&app.home));
                assert!(set.windows(2).all(|w| w[0] < w[1]), "sets sorted, unique");
                sizes.insert(set.len());
            }
            let reads = app.forecast_reads();
            assert!(reads.contains(&app.home));
        }
        assert!(sizes.len() > 1, "constraint heterogeneity expected");
    }

    #[test]
    fn multi_provider_universe_draws_cross_provider_homes() {
        use caribou_model::region::{Provider, RegionCatalog};
        let cat = RegionCatalog::multi_cloud();
        let universe: Vec<RegionId> = (0..cat.len() as u16).map(RegionId).collect();
        let fleet = generate_fleet(42, 64, &universe);
        let mut providers: std::collections::HashSet<Provider> = Default::default();
        for app in &fleet {
            providers.insert(cat.spec(app.home).provider);
            // Permitted sets may mix providers; every id must resolve.
            for set in &app.permitted {
                for r in set {
                    assert!((r.index()) < cat.len());
                }
            }
        }
        assert!(
            providers.contains(&Provider::Aws) && providers.contains(&Provider::Gcp),
            "a 64-app fleet over the multi-cloud catalog must draw homes \
             from both providers, got {providers:?}"
        );
    }

    #[test]
    fn diamond_has_sync_join_and_chains_do_not() {
        let fleet = generate_fleet(11, 64, &universe());
        for app in &fleet {
            match app.shape {
                FleetShape::Diamond => assert!(app.dag.has_sync_nodes()),
                _ => assert!(!app.dag.has_sync_nodes()),
            }
            assert_eq!(app.dag.node_count(), app.shape.node_count());
        }
    }
}
