//! Open-loop arrival processes for the sustained-load generator.
//!
//! `caribou loadgen` drives a benchmark DAG with a fixed number of
//! invocations whose arrival times come from one of three seeded
//! processes:
//!
//! * [`ArrivalProcess::Poisson`] — memoryless arrivals at a constant
//!   rate, the classic open-loop load model;
//! * [`ArrivalProcess::Diurnal`] — a non-homogeneous Poisson process
//!   whose rate follows the Azure-Functions-2021-shaped diurnal curve of
//!   [`crate::traces`] (business-hours peak, overnight trough, ~3:1);
//! * [`ArrivalProcess::Bursty`] — a square-wave spike profile: baseline
//!   Poisson traffic with periodic windows at a multiple of the base
//!   rate, exercising same-tick batching and buffer-pool reuse.
//!
//! All three generate by Lewis thinning: candidate gaps are exponential
//! at the process's peak rate and kept with probability `rate(t)/peak`,
//! so the sequence is sorted, deterministic in the RNG, and independent
//! of how the consumer later shards it across workers.

use caribou_model::rng::Pcg32;

use crate::traces::diurnal_rate;

/// Spike multiplier applied to the base rate inside a bursty window.
pub const BURST_FACTOR: f64 = 8.0;
/// Period of the bursty square wave, seconds.
pub const BURST_PERIOD_S: f64 = 600.0;
/// Fraction of each period spent inside the spike.
pub const BURST_DUTY: f64 = 0.05;

/// A seeded open-loop arrival process with a configured mean rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Homogeneous Poisson arrivals at `rate_per_s`.
    Poisson {
        /// Mean arrival rate, invocations per second.
        rate_per_s: f64,
    },
    /// Poisson arrivals whose rate is diurnally modulated around
    /// `rate_per_s` (mean multiplier 1.0 over a day).
    Diurnal {
        /// Mean arrival rate, invocations per second.
        rate_per_s: f64,
    },
    /// Baseline Poisson at `rate_per_s` with periodic spikes at
    /// [`BURST_FACTOR`] times the base rate.
    Bursty {
        /// Baseline arrival rate, invocations per second.
        rate_per_s: f64,
    },
}

impl ArrivalProcess {
    /// Parses a process name from the CLI (`poisson`, `diurnal`,
    /// `bursty`).
    pub fn parse(name: &str, rate_per_s: f64) -> Result<Self, String> {
        if !(rate_per_s.is_finite() && rate_per_s > 0.0) {
            return Err(format!("arrival rate must be positive, got {rate_per_s}"));
        }
        match name {
            "poisson" => Ok(ArrivalProcess::Poisson { rate_per_s }),
            "diurnal" => Ok(ArrivalProcess::Diurnal { rate_per_s }),
            "bursty" => Ok(ArrivalProcess::Bursty { rate_per_s }),
            other => Err(format!(
                "unknown arrival process `{other}` (expected poisson, diurnal, or bursty)"
            )),
        }
    }

    /// Instantaneous arrival rate at simulation time `t` seconds.
    pub fn rate_at(&self, t: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            ArrivalProcess::Diurnal { rate_per_s } => {
                rate_per_s * diurnal_rate((t / 3600.0) % 24.0)
            }
            ArrivalProcess::Bursty { rate_per_s } => {
                let phase = (t / BURST_PERIOD_S).fract();
                if phase < BURST_DUTY {
                    rate_per_s * BURST_FACTOR
                } else {
                    rate_per_s
                }
            }
        }
    }

    /// The rate the thinning envelope must dominate.
    fn peak_rate(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_per_s } => rate_per_s,
            // diurnal_rate maxes just below 1.0 + 0.55 + 0.12.
            ArrivalProcess::Diurnal { rate_per_s } => rate_per_s * 1.7,
            ArrivalProcess::Bursty { rate_per_s } => rate_per_s * BURST_FACTOR,
        }
    }

    /// Generates the first `n` arrival times (seconds from 0, sorted) by
    /// Lewis thinning. Deterministic in `rng`.
    pub fn generate(&self, n: usize, rng: &mut Pcg32) -> Vec<f64> {
        let mut gen = ArrivalGen::new(*self, rng.clone());
        let mut out = Vec::with_capacity(n);
        gen.fill(&mut out, n);
        *rng = gen.rng;
        out
    }

    /// A streaming generator over this process: yields the same sequence
    /// as [`ArrivalProcess::generate`] without materializing it, so a
    /// consumer's memory stays independent of the invocation count.
    pub fn stream(&self, rng: Pcg32) -> ArrivalGen {
        ArrivalGen::new(*self, rng)
    }
}

/// Streaming Lewis-thinning arrival generator. Produces exactly the
/// sequence [`ArrivalProcess::generate`] would, one arrival at a time:
/// the thinning state is one running timestamp plus the RNG, so callers
/// can pull arrivals round by round with O(round) memory.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    rng: Pcg32,
    peak: f64,
    t: f64,
}

impl ArrivalGen {
    /// Starts the stream at t = 0 with the given generator.
    pub fn new(process: ArrivalProcess, rng: Pcg32) -> Self {
        ArrivalGen {
            peak: process.peak_rate(),
            process,
            rng,
            t: 0.0,
        }
    }

    /// The next arrival time, seconds from 0 (monotonically increasing).
    pub fn next_arrival(&mut self) -> f64 {
        loop {
            self.t += self.rng.exponential(self.peak);
            if self.rng.next_f64() * self.peak <= self.process.rate_at(self.t) {
                return self.t;
            }
        }
    }

    /// Appends the next `n` arrivals to `buf`.
    pub fn fill(&mut self, buf: &mut Vec<f64>, n: usize) {
        buf.reserve(n);
        for _ in 0..n {
            let t = self.next_arrival();
            buf.push(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_three_processes() {
        assert_eq!(
            ArrivalProcess::parse("poisson", 2.0).unwrap(),
            ArrivalProcess::Poisson { rate_per_s: 2.0 }
        );
        assert!(matches!(
            ArrivalProcess::parse("diurnal", 1.0).unwrap(),
            ArrivalProcess::Diurnal { .. }
        ));
        assert!(matches!(
            ArrivalProcess::parse("bursty", 1.0).unwrap(),
            ArrivalProcess::Bursty { .. }
        ));
        assert!(ArrivalProcess::parse("weibull", 1.0).is_err());
        assert!(ArrivalProcess::parse("poisson", 0.0).is_err());
        assert!(ArrivalProcess::parse("poisson", f64::NAN).is_err());
    }

    #[test]
    fn arrivals_are_sorted_and_deterministic() {
        for p in [
            ArrivalProcess::Poisson { rate_per_s: 5.0 },
            ArrivalProcess::Diurnal { rate_per_s: 5.0 },
            ArrivalProcess::Bursty { rate_per_s: 5.0 },
        ] {
            let a = p.generate(2000, &mut Pcg32::seed(42));
            let b = p.generate(2000, &mut Pcg32::seed(42));
            assert_eq!(a, b);
            assert_eq!(a.len(), 2000);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{p:?} unsorted");
            assert!(a.iter().all(|t| t.is_finite() && *t > 0.0));
        }
    }

    #[test]
    fn stream_matches_batch_generation() {
        for p in [
            ArrivalProcess::Poisson { rate_per_s: 5.0 },
            ArrivalProcess::Diurnal { rate_per_s: 5.0 },
            ArrivalProcess::Bursty { rate_per_s: 5.0 },
        ] {
            let batch = p.generate(1000, &mut Pcg32::seed(42));
            let mut gen = p.stream(Pcg32::seed(42));
            // Pull in uneven pieces: the stream state carries across fills.
            let mut streamed = Vec::new();
            gen.fill(&mut streamed, 7);
            gen.fill(&mut streamed, 500);
            for _ in 0..493 {
                streamed.push(gen.next_arrival());
            }
            assert_eq!(batch, streamed, "{p:?}");
        }
    }

    #[test]
    fn poisson_hits_the_configured_rate() {
        let p = ArrivalProcess::Poisson { rate_per_s: 10.0 };
        let a = p.generate(20_000, &mut Pcg32::seed(7));
        let measured = a.len() as f64 / a.last().unwrap();
        assert!((measured / 10.0 - 1.0).abs() < 0.05, "rate {measured}");
    }

    #[test]
    fn diurnal_arrivals_are_modulated() {
        // High volume over several days; peak hours must outdraw trough
        // hours by well over the homogeneous ratio.
        let p = ArrivalProcess::Diurnal { rate_per_s: 2.0 };
        let a = p.generate(300_000, &mut Pcg32::seed(11));
        let count_in = |from_h: f64, to_h: f64| {
            a.iter()
                .filter(|t| {
                    let hod = (**t / 3600.0) % 24.0;
                    hod >= from_h && hod < to_h
                })
                .count()
        };
        let peak = count_in(13.0, 17.0);
        let trough = count_in(1.0, 5.0);
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak {peak} trough {trough}"
        );
    }

    #[test]
    fn bursty_spike_windows_are_denser() {
        let p = ArrivalProcess::Bursty { rate_per_s: 2.0 };
        let a = p.generate(100_000, &mut Pcg32::seed(13));
        let in_spike = a
            .iter()
            .filter(|t| (**t / BURST_PERIOD_S).fract() < BURST_DUTY)
            .count();
        let spike_share = in_spike as f64 / a.len() as f64;
        // Spikes cover 5% of wall time at 8x rate: expected share
        // 0.4/(0.4+0.95) ~ 0.30.
        assert!(
            (0.2..0.4).contains(&spike_share),
            "spike share {spike_share}"
        );
    }
}
