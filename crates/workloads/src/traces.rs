//! Invocation-trace generators (§9.1 Workload Invocation and Traffic).
//!
//! * [`uniform_trace`] — the uniform pattern used for the trade-off and
//!   high-level studies;
//! * [`azure_trace`] — an Azure-Functions-2021-shaped trace: a diurnal
//!   rate curve (business-hours peak, overnight trough) with Poisson
//!   arrivals, defaulting to the ~1.6K average daily invocations of the
//!   5th-percentile DAG the paper uses for §9.7.

use caribou_model::rng::Pcg32;

/// Generates evenly spaced invocation times over `[start_s, end_s)` at
/// `per_day` invocations per day.
///
/// # Examples
///
/// ```
/// use caribou_workloads::traces::uniform_trace;
///
/// let day = uniform_trace(0.0, 86_400.0, 288.0); // one per 5 minutes
/// assert_eq!(day.len(), 288);
/// ```
pub fn uniform_trace(start_s: f64, end_s: f64, per_day: f64) -> Vec<f64> {
    assert!(end_s > start_s, "empty window");
    assert!(per_day > 0.0, "rate must be positive");
    let interval = 86_400.0 / per_day;
    let mut out = Vec::new();
    let mut t = start_s + interval / 2.0;
    while t < end_s {
        out.push(t);
        t += interval;
    }
    out
}

/// Relative diurnal rate multiplier (mean 1.0 over a day) shaped like the
/// Azure Functions 2021 trace: peak in business hours, trough overnight.
pub fn diurnal_rate(hour_of_day: f64) -> f64 {
    // Two-harmonic fit; constants chosen to give a ~3:1 peak-to-trough
    // ratio with the peak near 15:00 UTC.
    let w = std::f64::consts::TAU / 24.0;
    let v = 1.0
        + 0.55 * (w * (hour_of_day - 15.0)).cos()
        + 0.12 * (2.0 * w * (hour_of_day - 9.0)).cos();
    v.max(0.05)
}

/// Generates Poisson arrivals over `[start_s, end_s)` whose rate follows
/// the Azure-shaped diurnal curve, averaging `per_day` invocations per
/// day. Deterministic in `rng`.
pub fn azure_trace(start_s: f64, end_s: f64, per_day: f64, rng: &mut Pcg32) -> Vec<f64> {
    assert!(end_s > start_s, "empty window");
    assert!(per_day > 0.0, "rate must be positive");
    // Thinning over hourly buckets: draw a Poisson count per hour at the
    // modulated rate, then spread arrivals uniformly within the hour.
    let mut out = Vec::new();
    let mut t = start_s;
    while t < end_s {
        let hod = (t / 3600.0) % 24.0;
        let hour_len = (end_s - t).min(3600.0);
        let expected = per_day / 24.0 * diurnal_rate(hod) * (hour_len / 3600.0);
        let count = rng.poisson(expected);
        for _ in 0..count {
            out.push(t + rng.next_f64() * hour_len);
        }
        t += hour_len;
    }
    out.sort_by(f64::total_cmp);
    out
}

/// Parses an invocation trace from CSV: one arrival time (seconds since
/// the epoch) per line, optionally with a `seconds` header. Times must be
/// non-decreasing.
pub fn trace_from_csv(csv: &str) -> Result<Vec<f64>, String> {
    let mut out: Vec<f64> = Vec::new();
    for (lineno, line) in csv.lines().enumerate() {
        let line = line.trim();
        if line.is_empty()
            || (lineno == 0 && line.chars().next().is_some_and(|c| c.is_alphabetic()))
        {
            continue;
        }
        let t: f64 = line
            .parse()
            .map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if !t.is_finite() || t < 0.0 {
            return Err(format!("line {}: invalid time {t}", lineno + 1));
        }
        if let Some(prev) = out.last() {
            if t < *prev {
                return Err(format!(
                    "line {}: times must be non-decreasing ({t} after {prev})",
                    lineno + 1
                ));
            }
        }
        out.push(t);
    }
    if out.is_empty() {
        return Err("empty trace".to_string());
    }
    Ok(out)
}

/// Serializes a trace to the CSV format read by [`trace_from_csv`].
pub fn trace_to_csv(trace: &[f64]) -> String {
    let mut s = String::from("seconds\n");
    for t in trace {
        s.push_str(&format!("{t}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_csv_round_trip() {
        let t = vec![1.5, 20.0, 300.25];
        let csv = trace_to_csv(&t);
        assert_eq!(trace_from_csv(&csv).unwrap(), t);
    }

    #[test]
    fn trace_csv_rejects_bad_input() {
        assert!(trace_from_csv("").is_err());
        assert!(trace_from_csv("seconds\n").is_err());
        assert!(trace_from_csv("seconds\n5\n3\n").is_err(), "decreasing");
        assert!(trace_from_csv("seconds\n-1\n").is_err(), "negative");
        assert!(trace_from_csv("seconds\nabc\n").is_err(), "garbage");
    }

    #[test]
    fn uniform_trace_rate_and_spacing() {
        let t = uniform_trace(0.0, 86_400.0, 1440.0); // one per minute
        assert_eq!(t.len(), 1440);
        let d0 = t[1] - t[0];
        for w in t.windows(2) {
            assert!((w[1] - w[0] - d0).abs() < 1e-9);
        }
    }

    #[test]
    fn uniform_trace_respects_window() {
        let t = uniform_trace(100.0, 200.0, 86_400.0); // one per second
        assert!(t.first().copied().unwrap() >= 100.0);
        assert!(t.last().copied().unwrap() < 200.0);
        assert_eq!(t.len(), 100);
    }

    #[test]
    fn azure_trace_hits_daily_volume() {
        let mut rng = Pcg32::seed(1);
        let days = 7.0;
        let t = azure_trace(0.0, days * 86_400.0, 1600.0, &mut rng);
        let per_day = t.len() as f64 / days;
        assert!((per_day / 1600.0 - 1.0).abs() < 0.05, "per_day {per_day}");
    }

    #[test]
    fn azure_trace_is_diurnal() {
        let mut rng = Pcg32::seed(2);
        let t = azure_trace(0.0, 14.0 * 86_400.0, 2000.0, &mut rng);
        let count_in = |from_h: f64, to_h: f64| -> usize {
            t.iter()
                .filter(|x| {
                    let hod = (**x / 3600.0) % 24.0;
                    hod >= from_h && hod < to_h
                })
                .count()
        };
        let peak = count_in(13.0, 17.0);
        let trough = count_in(1.0, 5.0);
        assert!(
            peak as f64 > 2.0 * trough as f64,
            "peak {peak} trough {trough}"
        );
    }

    #[test]
    fn azure_trace_sorted_and_in_window() {
        let mut rng = Pcg32::seed(3);
        let t = azure_trace(1000.0, 90_000.0, 500.0, &mut rng);
        for w in t.windows(2) {
            assert!(w[0] <= w[1]);
        }
        assert!(t.iter().all(|x| (1000.0..90_000.0).contains(x)));
    }

    #[test]
    fn azure_trace_deterministic() {
        let a = azure_trace(0.0, 86_400.0, 1000.0, &mut Pcg32::seed(9));
        let b = azure_trace(0.0, 86_400.0, 1000.0, &mut Pcg32::seed(9));
        assert_eq!(a, b);
    }

    #[test]
    fn diurnal_rate_averages_to_one() {
        let mean: f64 = (0..2400)
            .map(|i| diurnal_rate(i as f64 / 100.0))
            .sum::<f64>()
            / 2400.0;
        assert!((mean - 1.0).abs() < 0.02, "mean {mean}");
    }
}
