//! The five benchmark workloads of §9.1 and invocation-trace generators.
//!
//! Each benchmark is a resource-model replica of the corresponding real
//! application: the same DAG structure (Table 1), with per-stage execution
//! times, memory sizes, payload sizes, and home-anchored external data
//! calibrated so that each workload's execution-to-transmission carbon
//! ratio lands where Fig. 8 places it:
//!
//! | Benchmark | DAG | Sync | Cond | Inputs |
//! |---|---|---|---|---|
//! | DNA Visualization | single node | ✗ | ✗ | 69 KB / 1.1 MB |
//! | RAG Data Ingestion | 2-stage chain | ✗ | ✗ | 33 / 115 pages |
//! | Image Processing | 1 → 4 fan-out | ✗ | ✗ | 222 KB / 2.4 MB |
//! | Text2Speech Censoring | parallel + join | ✓ | ✓ | 1 KB / 12 KB |
//! | Video Analytics | split → 4 → join | ✓ | ✗ | 206 KB / 2.4 MB |
//!
//! [`traces`] provides the uniform invocation pattern used for the
//! trade-off studies and an Azure-Functions-2021-shaped diurnal trace used
//! for the continuous evaluations (§9.1 Workload Invocation and Traffic).
//! [`arrivals`] provides the seeded open-loop arrival processes (Poisson,
//! diurnal, bursty) behind the `caribou loadgen` sustained-load harness.
//! [`fleet`] provides the seeded heterogeneous multi-app generator behind
//! the `caribou fleet` multi-tenant solving subsystem.

pub mod arrivals;
pub mod benchmarks;
pub mod fleet;
pub mod traces;

pub use arrivals::ArrivalProcess;
pub use benchmarks::{
    all_benchmarks, dna_visualization, image_processing, rag_data_ingestion, text2speech_censoring,
    video_analytics, Benchmark, InputSize,
};
pub use fleet::{generate_fleet, FleetApp, FleetShape};
pub use traces::{azure_trace, trace_from_csv, trace_to_csv, uniform_trace};
