//! Benchmark workload definitions.

use caribou_model::builder::Workflow;
use caribou_model::constraints::Constraints;
use caribou_model::dag::WorkflowDag;
use caribou_model::dist::DistSpec;
use caribou_model::profile::WorkflowProfile;

/// Input size class used in the evaluation (§9.1: "We use small and large
/// input sizes to show the sensitivity of our results to input
/// variability").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InputSize {
    /// The paper's small input (e.g. 69 KB DNA file, 33-page PDF, 1 KB
    /// text).
    Small,
    /// The paper's large input (e.g. 1.1 MB DNA file, 115-page PDF, 12 KB
    /// text).
    Large,
}

impl InputSize {
    /// Both sizes, for sweeps.
    pub const ALL: [InputSize; 2] = [InputSize::Small, InputSize::Large];

    /// Lower-case label used in experiment output.
    pub fn label(self) -> &'static str {
        match self {
            InputSize::Small => "small",
            InputSize::Large => "large",
        }
    }
}

/// A fully-specified benchmark workload.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name as used in the paper's figures.
    pub name: &'static str,
    /// Input size this instance is parameterized for.
    pub input: InputSize,
    /// Validated DAG.
    pub dag: WorkflowDag,
    /// Calibrated resource profile.
    pub profile: WorkflowProfile,
    /// Declared constraints (unconstrained by default; experiments attach
    /// compliance/tolerance settings themselves).
    pub constraints: Constraints,
}

fn exec(median_s: f64) -> DistSpec {
    DistSpec::LogNormal {
        median: median_s,
        sigma: 0.10,
    }
}

fn payload(bytes: f64) -> DistSpec {
    DistSpec::LogNormal {
        median: bytes,
        sigma: 0.05,
    }
}

fn finish(wf: Workflow, name: &'static str, input: InputSize) -> Benchmark {
    let (dag, profile, constraints) = wf
        .extract()
        .expect("benchmark definitions are structurally valid");
    Benchmark {
        name,
        input,
        dag,
        profile,
        constraints,
    }
}

/// DNA Visualization: a single-step workflow generating a visualization
/// from a DNA sequence file (SeBS). Compute-heavy relative to its small
/// payloads — the top-right of Fig. 8.
pub fn dna_visualization(input: InputSize) -> Benchmark {
    let (input_b, exec_s, output_b) = match input {
        InputSize::Small => (69e3, 6.0, 2.0e6),
        InputSize::Large => (1.1e6, 22.0, 24.0e6),
    };
    let mut wf = Workflow::new("dna_visualization", "1.0");
    wf.serverless_function("Visualize")
        .memory_mb(1769)
        .exec_time(exec(exec_s))
        .cpu_utilization(0.8)
        // The sequence comes from, and the visualization returns to,
        // home-region storage.
        .external_data_bytes(input_b + output_b)
        .register();
    wf.set_input(payload(2e3)); // request metadata only
    finish(wf, "DNA Visualization", input)
}

/// RAG Data Ingestion: a two-stage pipeline extracting document metadata
/// and generating embeddings for a document-chat application.
pub fn rag_data_ingestion(input: InputSize) -> Benchmark {
    let (pdf_b, extract_s, embed_s, text_b, emb_b) = match input {
        InputSize::Small => (1.3e6, 2.5, 7.0, 150e3, 1.2e6),
        InputSize::Large => (4.6e6, 8.0, 22.0, 1.5e6, 4.0e6),
    };
    let mut wf = Workflow::new("rag_data_ingestion", "1.0");
    let extract = wf
        .serverless_function("ExtractMetadata")
        .memory_mb(1024)
        .exec_time(exec(extract_s))
        .cpu_utilization(0.7)
        .external_data_bytes(pdf_b) // reads the PDF from home storage
        .register();
    let embed = wf
        .serverless_function("GenerateEmbeddings")
        .memory_mb(1769)
        .exec_time(exec(embed_s))
        .cpu_utilization(0.85)
        .external_data_bytes(emb_b) // writes embeddings to the home vector store
        .register();
    wf.invoke(extract, embed, None).payload(payload(text_b));
    wf.set_input(payload(4e3)); // ingestion request
    finish(wf, "RAG Data Ingestion", input)
}

/// Image Processing: a fan-out applying four transformations in parallel
/// (FunctionBench). Short executions moving the full image everywhere —
/// the transmission-heavy bottom-left of Fig. 8.
pub fn image_processing(input: InputSize) -> Benchmark {
    let (img_b, prep_s, tf_s) = match input {
        InputSize::Small => (222e3, 0.20, 0.12),
        InputSize::Large => (2.4e6, 0.7, 0.5),
    };
    let mut wf = Workflow::new("image_processing", "1.0");
    let prepare = wf
        .serverless_function("Prepare")
        .memory_mb(1024)
        .exec_time(exec(prep_s))
        .cpu_utilization(0.65)
        .register();
    for name in ["Flip", "Rotate", "Blur", "Grayscale"] {
        let tf = wf
            .serverless_function(name)
            .memory_mb(512)
            .exec_time(exec(tf_s))
            .cpu_utilization(0.7)
            // Each transform writes its result image back to home storage.
            .external_data_bytes(img_b)
            .register();
        wf.invoke(prepare, tf, None).payload(payload(img_b));
    }
    wf.set_input(payload(img_b));
    finish(wf, "Image Processing", input)
}

/// Text2Speech Censoring (§2.4, Fig. 3): text upload fans out to the
/// critical text-to-speech/conversion path and an off-critical-path
/// profanity detector; a synchronization node censors the audio. The
/// profanity→censor edge is conditional (censoring work only when
/// profanity was found). Tiny inputs, real compute — high Fig. 8 ratio.
pub fn text2speech_censoring(input: InputSize) -> Benchmark {
    let (text_b, t2s_s, conv_s, prof_s, censor_s, audio_b) = match input {
        InputSize::Small => (1e3, 8.0, 2.5, 1.5, 1.5, 2.5e6),
        InputSize::Large => (12e3, 16.0, 5.0, 3.0, 3.5, 14.0e6),
    };
    let mut wf = Workflow::new("text2speech_censoring", "1.0");
    let upload = wf
        .serverless_function("Upload")
        .memory_mb(512)
        .exec_time(exec(0.3))
        .cpu_utilization(0.5)
        .register();
    let t2s = wf
        .serverless_function("Text2Speech")
        .memory_mb(1769)
        .exec_time(exec(t2s_s))
        .cpu_utilization(0.85)
        .register();
    let conv = wf
        .serverless_function("Conversion")
        .memory_mb(1024)
        .exec_time(exec(conv_s))
        .cpu_utilization(0.75)
        .register();
    let prof = wf
        .serverless_function("ProfanityDetection")
        .memory_mb(1024)
        .exec_time(exec(prof_s))
        .cpu_utilization(0.7)
        .register();
    let censor = wf
        .serverless_function("Censor")
        .memory_mb(1769)
        .exec_time(exec(censor_s))
        .cpu_utilization(0.75)
        // Final audio is written back to home storage.
        .external_data_bytes(audio_b)
        .register();
    wf.invoke(upload, t2s, None).payload(payload(text_b));
    wf.invoke(upload, prof, None).payload(payload(text_b));
    wf.invoke(t2s, conv, None).payload(payload(audio_b));
    wf.invoke(conv, censor, None).payload(payload(audio_b));
    // Conditional: profanity present in roughly half the inputs.
    wf.invoke(prof, censor, Some(0.5)).payload(payload(2e3));
    wf.get_predecessor_data(censor);
    wf.set_input(payload(text_b));
    finish(wf, "Text2Speech Censoring", input)
}

/// Video Analytics: splits a video into chunks, recognizes objects in
/// parallel, and joins the results (vSwarm; INO dataset inputs).
/// Compute-dominated per byte moved — strong offloading candidate.
pub fn video_analytics(input: InputSize) -> Benchmark {
    let (video_b, split_s, recog_s, join_s, annot_b) = match input {
        InputSize::Small => (206e3, 1.5, 6.0, 1.0, 1.2e6),
        InputSize::Large => (2.4e6, 4.0, 15.0, 2.0, 4.5e6),
    };
    let mut wf = Workflow::new("video_analytics", "1.0");
    let split = wf
        .serverless_function("Split")
        .memory_mb(1769)
        .exec_time(exec(split_s))
        .cpu_utilization(0.75)
        .external_data_bytes(video_b) // reads the video from home storage
        .register();
    let mut chunks = Vec::new();
    for i in 0..4 {
        let c = wf
            .serverless_function(format!("Recognize_{i}"))
            .stage_of("recognize")
            .memory_mb(1769)
            .exec_time(exec(recog_s))
            .cpu_utilization(0.9)
            // Annotated output frames are written back to home storage.
            .external_data_bytes(annot_b)
            .register();
        wf.invoke(split, c, None).payload(payload(video_b / 4.0));
        chunks.push(c);
    }
    let join = wf
        .serverless_function("Join")
        .memory_mb(1024)
        .exec_time(exec(join_s))
        .cpu_utilization(0.6)
        .external_data_bytes(60e3) // writes recognized objects home
        .register();
    for c in chunks {
        wf.invoke(c, join, None).payload(payload(25e3));
    }
    wf.get_predecessor_data(join);
    wf.set_input(payload(4e3));
    finish(wf, "Video Analytics", input)
}

/// All five benchmarks at one input size, in the paper's Fig. 7 order.
pub fn all_benchmarks(input: InputSize) -> Vec<Benchmark> {
    vec![
        dna_visualization(input),
        rag_data_ingestion(input),
        image_processing(input),
        text2speech_censoring(input),
        video_analytics(input),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_validate() {
        for input in InputSize::ALL {
            for b in all_benchmarks(input) {
                b.profile
                    .validate(&b.dag)
                    .unwrap_or_else(|e| panic!("{} invalid: {e}", b.name));
            }
        }
    }

    #[test]
    fn table1_structural_features() {
        let dna = dna_visualization(InputSize::Small);
        assert_eq!(dna.dag.node_count(), 1);
        assert!(!dna.dag.has_sync_nodes());
        assert!(!dna.dag.has_conditional_edges());

        let rag = rag_data_ingestion(InputSize::Small);
        assert_eq!(rag.dag.node_count(), 2);
        assert!(!rag.dag.has_sync_nodes());

        let img = image_processing(InputSize::Small);
        assert_eq!(img.dag.node_count(), 5);
        assert!(!img.dag.has_sync_nodes());
        assert_eq!(img.dag.sinks().len(), 4);

        let t2s = text2speech_censoring(InputSize::Small);
        assert!(t2s.dag.has_sync_nodes());
        assert!(t2s.dag.has_conditional_edges());

        let va = video_analytics(InputSize::Small);
        assert!(va.dag.has_sync_nodes());
        assert!(!va.dag.has_conditional_edges());
        assert_eq!(va.dag.node_count(), 6);
    }

    #[test]
    fn large_inputs_cost_more_compute_and_bytes() {
        for (mk, _name) in [
            (dna_visualization as fn(InputSize) -> Benchmark, "dna"),
            (rag_data_ingestion, "rag"),
            (image_processing, "img"),
            (text2speech_censoring, "t2s"),
            (video_analytics, "va"),
        ] {
            let s = mk(InputSize::Small);
            let l = mk(InputSize::Large);
            let exec_s: f64 = s.profile.nodes.iter().map(|n| n.exec_time.mean()).sum();
            let exec_l: f64 = l.profile.nodes.iter().map(|n| n.exec_time.mean()).sum();
            assert!(exec_l > exec_s, "{}: exec", s.name);
            let bytes = |b: &Benchmark| -> f64 {
                b.profile
                    .edges
                    .iter()
                    .map(|e| e.payload_bytes.mean())
                    .sum::<f64>()
                    + b.profile
                        .nodes
                        .iter()
                        .map(|n| n.external_data_bytes)
                        .sum::<f64>()
            };
            assert!(bytes(&l) > bytes(&s), "{}: bytes", s.name);
        }
    }

    #[test]
    fn compute_to_transmission_spectrum_matches_fig8_ordering() {
        // Rough Fig. 8 proxy: mean exec seconds (per vCPU-weighted) versus
        // total bytes moved. Image Processing must be the most
        // transmission-heavy; Text2Speech the most compute-heavy relative
        // to bytes.
        let ratio = |b: &Benchmark| -> f64 {
            let exec: f64 = b
                .profile
                .nodes
                .iter()
                .map(|n| n.exec_time.mean() * (n.memory_mb as f64 / 1769.0))
                .sum();
            let bytes: f64 = b
                .profile
                .edges
                .iter()
                .map(|e| e.payload_bytes.mean())
                .sum::<f64>()
                + b.profile
                    .nodes
                    .iter()
                    .map(|n| n.external_data_bytes)
                    .sum::<f64>();
            exec / (bytes / 1e6)
        };
        let t2s = ratio(&text2speech_censoring(InputSize::Small));
        let img = ratio(&image_processing(InputSize::Large));
        let va = ratio(&video_analytics(InputSize::Small));
        assert!(t2s > 10.0 * img, "t2s {t2s} img {img}");
        assert!(va > img, "va {va} img {img}");
    }

    #[test]
    fn conditional_probability_declared() {
        let t2s = text2speech_censoring(InputSize::Small);
        let cond: Vec<&caribou_model::profile::EdgeProfile> = t2s
            .dag
            .all_edges()
            .filter(|e| t2s.dag.edge(*e).conditional)
            .map(|e| &t2s.profile.edges[e.index()])
            .collect();
        assert_eq!(cond.len(), 1);
        assert!((cond[0].probability - 0.5).abs() < 1e-12);
    }
}
