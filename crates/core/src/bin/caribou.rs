//! The `caribou` command-line utility — the Rust analogue of the paper's
//! Deployment Utility CLI (§6.1, §8).
//!
//! ```text
//! caribou manifest validate <file.json>     # validate a deployment manifest
//! caribou manifest example                  # print a starter manifest
//! caribou carbon <region> [--hours N]       # dump grid carbon intensity
//! caribou plan <benchmark> [--input small|large] [--hour H]
//!                                           # solve a deployment plan
//! caribou simulate <benchmark> [--days D] [--per-day N] [--worst-case]
//!                  [--telemetry out.jsonl]  # run the full framework loop
//! caribou chaos [--seed N] [--requests N]   # seeded fault campaign with
//!               [--correlated]              # invariant checking; correlated
//!                                           # fault classes + failover
//! caribou fleet [--apps N] [--hours H]      # multi-tenant fleet re-plan
//!               [--perturb SPEC]            # with incremental re-solve
//! caribou trace <journal.jsonl> [--limit N] # replay a telemetry journal
//! caribou benchmarks                        # list available benchmarks
//! ```
//!
//! Argument parsing is hand-rolled to keep the dependency surface at the
//! workspace's approved set.

use std::process::ExitCode;

use caribou_carbon::error::CarbonError;
use caribou_carbon::source::{CarbonDataSource, ForecastingSource, RegionalSource};
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_core::framework::{Caribou, CaribouConfig};
use caribou_core::loadgen::{run_loadgen, LoadgenConfig, LoadgenMode};
use caribou_exec::engine::WorkflowApp;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
use caribou_model::constraints::Objective;
use caribou_model::manifest::DeploymentManifest;
use caribou_model::region::ProviderSet;
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::contingency::solve_hourly_with_contingency;
use caribou_solver::engine::EvalEngine;
use caribou_solver::hbss::HbssSolver;
use caribou_solver::hourly::solve_hourly_with;
use caribou_solver::pool;
use caribou_workloads::arrivals::ArrivalProcess;
use caribou_workloads::benchmarks::{all_benchmarks, Benchmark, InputSize};
use caribou_workloads::traces::uniform_trace;

const USAGE: &str = "\
caribou — carbon-aware geospatial shifting of serverless workflows

USAGE:
    caribou benchmarks
    caribou manifest validate <file.json>
    caribou manifest example
    caribou carbon <region> [--hours N]
    caribou carbon --zone <grid-zone> [--hours N]
    caribou plan <benchmark> [--input small|large] [--hour H] [--worst-case]
                 [--hourly [--contingency K]] [--workers N]
                 [--providers aws[,gcp]]
    caribou simulate <benchmark> [--input small|large] [--days D] [--per-day N] [--worst-case]
                     [--telemetry <out.jsonl>] [--workers N] [--json]
                     [--providers aws[,gcp]]
    caribou loadgen <benchmark> [--invocations N] [--seed S] [--workers N]
                    [--arrival poisson|diurnal|bursty] [--rate PER_S]
                    [--shards N] [--chunked] [--no-warm-pool] [--keep-alive-s S]
                    [--input small|large] [--worst-case] [--telemetry <out.jsonl>]
    caribou chaos [--seed N] [--requests N] [--duration-s S] [--drop P]
                  [--no-breaker] [--seeds K] [--workers N] [--json]
                  [--correlated [--contingency K] [--scenario provider-outage]]
                  [--providers aws[,gcp]]
    caribou fleet [--apps N] [--hours H] [--workers K] [--seed S]
                  [--capacity C] [--perturb <spec>] [--verify]
                  [--telemetry <out.jsonl>] [--providers aws[,gcp]]
    caribou trace <journal.jsonl> [--limit N]

PROVIDERS:
    --providers takes a comma-separated provider list (aws, gcp). The
    default `aws` replays the single-provider substrate byte-for-byte;
    `aws,gcp` widens the candidate universe with the GCP backend's
    regions so plans may split one DAG across providers. Regions can be
    provider-qualified anywhere a region name is accepted
    (`aws:us-east-1`, `gcp:us-west1`).

FLEET PERTURBATION SPEC:
    Comma-separated forecast revisions: h<HOUR>[:<region>](*FACTOR|+DELTA|-DELTA)
    e.g. `h7*1.5` (hour 7, all regions, intensity x1.5),
         `h7:us-west-2+120,h3:ca-central-1-40` (per-region shifts in gCO2eq/kWh).
    With --perturb, the fleet is first solved on the base forecast, then
    incrementally re-solved against the revision: only apps whose permitted
    regions read the revised inputs re-enter the solver. --verify diffs the
    incremental result against a from-scratch solve (exit 1 on mismatch).
";

const FLEET_USAGE: &str = "\
caribou fleet — multi-tenant fleet re-plan with incremental re-solve

USAGE:
    caribou fleet [--apps N] [--hours H] [--workers K] [--seed S]
                  [--capacity C] [--perturb <spec>] [--verify]
                  [--telemetry <out.jsonl>] [--providers aws[,gcp]]

OPTIONS:
    --apps N             fleet size (default 24): seeded heterogeneous DAG
                         apps drawn from the species palette
    --hours H            simulated hours to re-plan each app for (default 24)
    --workers K          worker threads; results are bit-identical at any K
    --seed S             master seed for generation, evaluation and walks
    --capacity C         shared cross-app estimate-cache capacity (entries)
    --perturb <spec>     after the full solve, apply forecast revisions and
                         incrementally re-solve only the invalidated apps
    --verify             also re-solve the revised fleet from scratch and
                         fail (exit 1) unless the incremental schedule is
                         bit-identical
    --telemetry <path>   record fleet.* / solver.cache.* telemetry to JSONL
    --providers LIST     provider backends whose regions join the candidate
                         universe (default `aws`; `aws,gcp` for cross-cloud)

PERTURBATION SPEC (comma-separated terms):
    h<HOUR>[:<region>](*FACTOR|+DELTA|-DELTA)
    h7*1.5               hour 7, all regions, carbon intensity x1.5
    h7:us-west-2+120     hour 7, us-west-2 only, +120 gCO2eq/kWh
    h3:ca-central-1*2,h18-40
                         several revisions at once; a trailing -DELTA is
                         parsed after the hyphenated region name

Deterministic results (schedule digest, cell counts, carbon totals,
per-hour invalidation counts) print to stdout; wall-clock throughput
(app-hours/s) and cache statistics print to stderr.
";

/// A CLI failure: a one-line message plus the process exit code.
///
/// Bad input data (unknown regions or grid zones, unreadable carbon CSVs)
/// exits 2, distinguishing it from usage errors and simulation failures
/// (exit 1) so scripts can react differently.
struct CliError {
    message: String,
    exit: u8,
}

impl From<String> for CliError {
    fn from(message: String) -> Self {
        CliError { message, exit: 1 }
    }
}

impl From<&str> for CliError {
    fn from(message: &str) -> Self {
        CliError {
            message: message.to_string(),
            exit: 1,
        }
    }
}

impl From<CarbonError> for CliError {
    fn from(e: CarbonError) -> Self {
        CliError {
            message: e.to_string(),
            exit: 2,
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("benchmarks") => cmd_benchmarks(),
        Some("manifest") => cmd_manifest(&args[1..]),
        Some("carbon") => cmd_carbon(&args[1..]),
        Some("plan") => cmd_plan(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        Some("fleet") => cmd_fleet(&args[1..]),
        Some("trace") => cmd_trace(&args[1..]),
        Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {}", e.message);
            ExitCode::from(e.exit)
        }
    }
}

/// Parses `--key value` style flags from the tail of an argument list.
fn flag<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

/// Parses `--workers N` (default 1); results never depend on the value.
fn workers(args: &[String]) -> Result<usize, String> {
    match flag(args, "--workers") {
        None => Ok(1),
        Some(v) => match v.parse() {
            Ok(n) if n >= 1 => Ok(n),
            Ok(_) => Err("--workers: must be at least 1".into()),
            Err(e) => Err(format!("--workers: {e}")),
        },
    }
}

/// Parses `--providers aws[,gcp]` (default AWS-only, the legacy substrate).
fn providers(args: &[String]) -> Result<ProviderSet, String> {
    match flag(args, "--providers") {
        None => Ok(ProviderSet::aws_only()),
        Some(spec) => ProviderSet::parse(spec).map_err(|e| format!("--providers: {e}")),
    }
}

/// Builds the simulated cloud and candidate-region universe for a
/// provider set. The AWS-only default goes through the legacy
/// constructor (byte-identical output); wider sets assemble the cloud
/// from the trait backends and union their evaluation regions.
fn cloud_for(
    set: ProviderSet,
    seed: u64,
) -> Result<(SimCloud, Vec<caribou_model::region::RegionId>), String> {
    if set.is_aws_only() {
        let cloud = SimCloud::aws(seed);
        let regions = cloud.regions.evaluation_regions();
        return Ok((cloud, regions));
    }
    let cloud = SimCloud::for_providers(set, seed).map_err(|e| e.to_string())?;
    let regions = SimCloud::evaluation_universe(set)
        .iter()
        .map(|n| cloud.regions.resolve(n).map_err(|e| e.to_string()))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((cloud, regions))
}

/// Renders a region for output: bare name on single-provider runs (the
/// legacy format the goldens pin), `provider:name` on cross-provider runs.
fn region_label(cloud: &SimCloud, set: ProviderSet, id: caribou_model::region::RegionId) -> String {
    if set.is_aws_only() {
        cloud.regions.name(id).to_string()
    } else {
        cloud.regions.qualified(id).to_string()
    }
}

fn input_size(args: &[String]) -> Result<InputSize, String> {
    match flag(args, "--input") {
        None | Some("small") => Ok(InputSize::Small),
        Some("large") => Ok(InputSize::Large),
        Some(other) => Err(format!("unknown input size `{other}` (small|large)")),
    }
}

fn scenario(args: &[String]) -> TransmissionScenario {
    if has_flag(args, "--worst-case") {
        TransmissionScenario::WORST
    } else {
        TransmissionScenario::BEST
    }
}

fn find_benchmark(name: &str, input: InputSize) -> Result<Benchmark, String> {
    let key = name.to_lowercase().replace(['-', '_'], "");
    all_benchmarks(input)
        .into_iter()
        .find(|b| {
            b.name
                .to_lowercase()
                .replace([' ', '-', '_'], "")
                .contains(&key)
                || b.dag.name().replace('_', "").contains(&key)
        })
        .ok_or_else(|| format!("unknown benchmark `{name}` (try `caribou benchmarks`)"))
}

fn cmd_benchmarks() -> Result<(), CliError> {
    println!(
        "{:<24}{:<24}{:>7}{:>7}{:>6}{:>6}",
        "name", "id", "nodes", "edges", "sync", "cond"
    );
    for b in all_benchmarks(InputSize::Small) {
        println!(
            "{:<24}{:<24}{:>7}{:>7}{:>6}{:>6}",
            b.name,
            b.dag.name(),
            b.dag.node_count(),
            b.dag.edge_count(),
            if b.dag.has_sync_nodes() { "yes" } else { "no" },
            if b.dag.has_conditional_edges() {
                "yes"
            } else {
                "no"
            },
        );
    }
    Ok(())
}

fn cmd_manifest(args: &[String]) -> Result<(), CliError> {
    match args.first().map(String::as_str) {
        Some("example") => {
            println!(
                "{}",
                DeploymentManifest::new("my_workflow", "1.0", "us-east-1").to_json()
            );
            Ok(())
        }
        Some("validate") => {
            let path = args
                .get(1)
                .ok_or("usage: caribou manifest validate <file.json>")?;
            let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
            let manifest = DeploymentManifest::from_json(&json).map_err(|e| e.to_string())?;
            let catalog = caribou_model::region::RegionCatalog::aws_default();
            manifest.validate(&catalog).map_err(|e| e.to_string())?;
            println!(
                "ok: workflow `{}` v{} targeting {}",
                manifest.workflow_name, manifest.version, manifest.home_region
            );
            Ok(())
        }
        _ => Err("usage: caribou manifest <validate|example>".into()),
    }
}

fn cmd_carbon(args: &[String]) -> Result<(), CliError> {
    let hours: usize = flag(args, "--hours")
        .map(|v| v.parse().map_err(|e| format!("--hours: {e}")))
        .transpose()?
        .unwrap_or(48);
    let synth = SyntheticCarbonSource::aws_calibrated(20231015);
    if let Some(zone) = flag(args, "--zone") {
        println!("hour  gCO2eq/kWh   (grid zone {zone})");
        for h in 0..hours {
            let v = synth.zone_intensity(zone, h as f64 + 0.5)?;
            let bar = "#".repeat((v / 12.0) as usize);
            println!("{h:>4}  {v:>10.1}   {bar}");
        }
        return Ok(());
    }
    let region_name = args
        .first()
        .filter(|a| !a.starts_with("--"))
        .ok_or("usage: caribou carbon <region> [--hours N], or --zone <grid-zone>")?;
    let catalog = caribou_model::region::RegionCatalog::multi_cloud();
    let region = catalog.resolve(region_name).map_err(|e| CliError {
        message: e.to_string(),
        exit: 2,
    })?;
    let source = RegionalSource::new(&catalog, synth)?;
    println!(
        "hour  gCO2eq/kWh   ({}: grid {})",
        region_name,
        catalog.spec(region).grid_zone
    );
    for h in 0..hours {
        let v = source.intensity(region, h as f64 + 0.5);
        let bar = "#".repeat((v / 12.0) as usize);
        println!("{h:>4}  {v:>10.1}   {bar}");
    }
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), CliError> {
    let name = args
        .first()
        .ok_or("usage: caribou plan <benchmark> [...]")?;
    let input = input_size(args)?;
    let hour: f64 = flag(args, "--hour")
        .map(|v| v.parse().map_err(|e| format!("--hour: {e}")))
        .transpose()?
        .unwrap_or(12.5);
    let bench = find_benchmark(name, input)?;

    let pset = providers(args)?;
    let (cloud, regions) = cloud_for(pset, 7)?;
    let carbon = RegionalSource::new(
        &cloud.regions,
        SyntheticCarbonSource::aws_calibrated(20231015),
    )?;
    let home = cloud.region("us-east-1").map_err(|e| e.to_string())?;
    let mut constraints = bench.constraints.clone();
    constraints.tolerances.latency = 0.10;
    constraints.tolerances.cost = 1.0;
    let permitted = constraints
        .permitted_regions(&bench.dag, &regions, &cloud.regions, home)
        .map_err(|e| e.to_string())?;
    let day_start = (hour / 24.0).floor() * 24.0;
    let forecast = ForecastingSource::fit(&carbon, &regions, day_start, 48);
    let models = DefaultModels {
        profile: &bench.profile,
        runtime: &cloud.compute,
        latency: &cloud.latency,
        orchestrator: Orchestrator::Caribou,
    };
    let ctx = SolverContext {
        dag: &bench.dag,
        profile: &bench.profile,
        permitted: &permitted,
        home,
        objective: Objective::Carbon,
        tolerances: constraints.tolerances,
        carbon_source: &forecast,
        carbon_model: CarbonModel::new(scenario(args)),
        cost_model: CostModel::new(&cloud.pricing),
        models: &models,
        mc_config: MonteCarloConfig::default(),
    };
    if has_flag(args, "--hourly") {
        // Full 24-hour schedule through the deterministic evaluation
        // engine: stdout is bit-identical at any --workers value (pool and
        // cache statistics go to stderr), which scripts/check.sh exploits
        // to smoke-test solver determinism. With --contingency K the
        // schedule prefix stays byte-identical (the primary solve consumes
        // the same RNG prefix) and K ranked fallback entries are appended.
        let k: usize = flag(args, "--contingency")
            .map(|v| v.parse().map_err(|e| format!("--contingency: {e}")))
            .transpose()?
            .unwrap_or(0);
        let engine = EvalEngine::new(7, workers(args)?);
        let solver = HbssSolver::new();
        let mut rng = Pcg32::seed(7);
        let (plans, table) = if k > 0 {
            let topology: Vec<_> = regions
                .iter()
                .map(|&r| (r, cloud.regions.spec(r).provider))
                .collect();
            let (plans, table) = solve_hourly_with_contingency(
                &engine, &solver, &ctx, &topology, day_start, 0.0, 86_400.0, &mut rng, 7, k,
            );
            (plans, Some(table))
        } else {
            let plans =
                solve_hourly_with(&engine, &solver, &ctx, day_start, 0.0, 86_400.0, &mut rng);
            (plans, None)
        };
        println!(
            "hourly deployment schedule for `{}` ({} input), day starting hour {day_start}:",
            bench.name,
            input.label()
        );
        for h in 0..24 {
            let plan = plans.plan_for_hour(h);
            let assignment: Vec<String> = bench
                .dag
                .all_nodes()
                .map(|n| region_label(&cloud, pset, plan.region_of(n)))
                .collect();
            println!("  hour {h:>2}: {}", assignment.join(", "));
        }
        if let Some(table) = table {
            println!(
                "contingency table ({} fallback entries, coverage-first):",
                table.len()
            );
            for (i, e) in table.entries.iter().enumerate() {
                let fallback: Vec<String> = e
                    .plans
                    .regions_used()
                    .into_iter()
                    .map(|r| region_label(&cloud, pset, r))
                    .collect();
                let excluded = match e.exclusion {
                    caribou_model::plan::Exclusion::Region(r) => {
                        format!("region:{}", region_label(&cloud, pset, r))
                    }
                    caribou_model::plan::Exclusion::Provider(p) => format!("provider:{p}"),
                };
                println!(
                    "  {}. {:<28} metric {:.3e}  fallback uses {}",
                    i + 1,
                    excluded,
                    e.metric,
                    fallback.join(", ")
                );
            }
        }
        eprintln!(
            "cache: {} hits / {} misses over {} distinct plans",
            engine.hit_count(),
            engine.miss_count(),
            engine.cache_len()
        );
        return Ok(());
    }
    let outcome = HbssSolver::new().solve(&ctx, hour, &mut Pcg32::seed(7));
    println!(
        "deployment plan for `{}` ({} input) at hour {hour}:",
        bench.name,
        input.label()
    );
    for node in bench.dag.all_nodes() {
        println!(
            "  {:<20} -> {}",
            bench.dag.node(node).name,
            region_label(&cloud, pset, outcome.best.region_of(node))
        );
    }
    let best = ctx.metric_of(&outcome.best_estimate);
    let home_m = ctx.metric_of(&outcome.home_estimate);
    println!(
        "estimated: {best:.3e} g/invocation vs {home_m:.3e} at home ({:+.1}%)",
        (best / home_m - 1.0) * 100.0
    );
    println!(
        "latency: {:.2} s mean / {:.2} s p95 (home {:.2} / {:.2})",
        outcome.best_estimate.latency.mean,
        outcome.best_estimate.latency.p95,
        outcome.home_estimate.latency.mean,
        outcome.home_estimate.latency.p95,
    );
    println!("evaluated {} candidate deployments", outcome.evaluated);
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), CliError> {
    let name = args
        .first()
        .ok_or("usage: caribou simulate <benchmark> [...]")?;
    let input = input_size(args)?;
    let days: f64 = flag(args, "--days")
        .map(|v| v.parse().map_err(|e| format!("--days: {e}")))
        .transpose()?
        .unwrap_or(2.0);
    let per_day: f64 = flag(args, "--per-day")
        .map(|v| v.parse().map_err(|e| format!("--per-day: {e}")))
        .transpose()?
        .unwrap_or(1500.0);
    let bench = find_benchmark(name, input)?;

    let pset = providers(args)?;
    let (cloud, regions) = cloud_for(pset, 7)?;
    let carbon = RegionalSource::new(
        &cloud.regions,
        SyntheticCarbonSource::aws_calibrated(20231015),
    )?;
    let mut config = CaribouConfig::new(regions, scenario(args));
    if flag(args, "--workers").is_some() {
        config.workers = workers(args)?;
    }
    let mut caribou = Caribou::new(cloud, carbon, config);
    let mut constraints = bench.constraints.clone();
    constraints.tolerances.latency = 0.10;
    constraints.tolerances.cost = 1.0;
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        home: caribou
            .cloud
            .region("us-east-1")
            .map_err(|e| e.to_string())?,
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
    };
    let manifest = DeploymentManifest::new(app.name.clone(), "1.0", "us-east-1");
    let idx = caribou
        .deploy(app, &manifest, constraints)
        .map_err(|e| e.to_string())?;
    let telemetry_path = flag(args, "--telemetry");
    if let Some(path) = telemetry_path {
        let sink = caribou_telemetry::JsonlSink::create(path)
            .map_err(|e| format!("--telemetry {path}: {e}"))?;
        caribou_telemetry::enable(Box::new(sink));
    }
    let trace = uniform_trace(30.0, days * 86_400.0, per_day);
    eprintln!(
        "simulating {} invocations over {days} day(s)...",
        trace.len()
    );
    let report = caribou.run_trace(idx, &trace);
    if let Some(path) = telemetry_path {
        if let Some(finished) = caribou_telemetry::finish() {
            let r = &finished.recorder;
            eprintln!(
                "telemetry: {} event kinds, {} journal entries ({} dropped) -> {path}",
                r.counters.len(),
                r.journal.len(),
                r.journal.dropped()
            );
        }
    }

    println!("invocations:       {}", report.samples.len());
    println!(
        "completed:         {:.2}%",
        report.completion_rate() * 100.0
    );
    println!(
        "workflow carbon:   {:.3} g total",
        report.workflow_carbon_g()
    );
    println!(
        "framework carbon:  {:.4} g total",
        report.framework_carbon_g
    );
    println!("cost:              ${:.4}", report.total_cost_usd());
    println!(
        "latency:           {:.2} s mean / {:.2} s p95",
        report.mean_latency_s(),
        report.p95_latency_s()
    );
    println!(
        "plan generations:  {:?} (hours)",
        report
            .dp_generations
            .iter()
            .map(|t| (t / 3600.0).round())
            .collect::<Vec<_>>()
    );
    let by_region = {
        let mut counts: Vec<(String, usize)> = Vec::new();
        for s in &report.samples {
            let n = region_label(&caribou.cloud, pset, s.majority_region);
            match counts.iter_mut().find(|(r, _)| *r == n) {
                Some((_, c)) => *c += 1,
                None => counts.push((n, 1)),
            }
        }
        counts.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
        counts
    };
    println!("majority regions:  {by_region:?}");
    if has_flag(args, "--json") {
        println!(
            "{}",
            serde_json::to_string_pretty(&report.summary_json()).expect("summary serializes")
        );
    }
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> Result<(), CliError> {
    let name = args
        .first()
        .ok_or("usage: caribou loadgen <benchmark> [...]")?;
    let input = input_size(args)?;
    let bench = find_benchmark(name, input)?;
    let invocations: usize = flag(args, "--invocations")
        .map(|v| v.parse().map_err(|e| format!("--invocations: {e}")))
        .transpose()?
        .unwrap_or(100_000);
    if invocations == 0 {
        return Err("--invocations: must be at least 1".into());
    }
    let seed: u64 = flag(args, "--seed")
        .map(|v| v.parse().map_err(|e| format!("--seed: {e}")))
        .transpose()?
        .unwrap_or(42);
    let rate: f64 = flag(args, "--rate")
        .map(|v| v.parse().map_err(|e| format!("--rate: {e}")))
        .transpose()?
        .unwrap_or(100.0);
    let arrivals = ArrivalProcess::parse(flag(args, "--arrival").unwrap_or("poisson"), rate)?;
    let shards: usize = flag(args, "--shards")
        .map(|v| v.parse().map_err(|e| format!("--shards: {e}")))
        .transpose()?
        .unwrap_or(caribou_core::loadgen::DEFAULT_SHARDS);
    if shards == 0 {
        return Err("--shards: must be at least 1".into());
    }
    let keep_alive_s: f64 = flag(args, "--keep-alive-s")
        .map(|v| v.parse().map_err(|e| format!("--keep-alive-s: {e}")))
        .transpose()?
        .unwrap_or(caribou_simcloud::warm::DEFAULT_KEEP_ALIVE_S);
    let mode = if has_flag(args, "--chunked") {
        LoadgenMode::Chunked
    } else {
        LoadgenMode::Persistent
    };
    let config = LoadgenConfig {
        invocations,
        seed,
        workers: workers(args)?,
        shards,
        arrivals,
        scenario: scenario(args),
        mode,
        warm_pool: !has_flag(args, "--no-warm-pool"),
        keep_alive_s,
        capture_latencies: false,
    };
    let telemetry_path = flag(args, "--telemetry");
    if let Some(path) = telemetry_path {
        let sink = caribou_telemetry::JsonlSink::create(path)
            .map_err(|e| format!("--telemetry {path}: {e}"))?;
        caribou_telemetry::enable(Box::new(sink));
    }
    eprintln!(
        "loadgen: {} x {invocations} invocations, seed {seed}, {} worker(s)...",
        bench.dag.name(),
        config.workers
    );
    let wall = std::time::Instant::now();
    let report = run_loadgen(&bench, &config)?;
    let wall_s = wall.elapsed().as_secs_f64();
    if telemetry_path.is_some() {
        caribou_telemetry::finish();
    }

    // The deterministic summary goes to stdout: identical at any worker
    // count, so CI can diff a 1-worker run against an N-worker run.
    println!("benchmark:    {}", bench.dag.name());
    println!("arrival:      {:?}", config.arrivals);
    match config.mode {
        LoadgenMode::Persistent => println!(
            "mode:         persistent ({} shards, {} chunks)",
            report.shards, report.chunks
        ),
        LoadgenMode::Chunked => println!("mode:         chunked ({} chunks)", report.chunks),
    }
    println!("invocations:  {}", report.invocations());
    println!(
        "completed:    {} ({:.2}%)",
        report.completed,
        report.completed as f64 / report.invocations() as f64 * 100.0
    );
    println!("failovers:    {}", report.failovers);
    println!(
        "cold starts:  {} ({:.4}% of {} executions)",
        report.cold_starts,
        report.cold_start_rate() * 100.0,
        report.cold_starts + report.warm_starts
    );
    println!("sim span:     {:.1} s", report.span_s);
    println!(
        "latency:      {:.4} s mean / {:.4} s p50 / {:.4} s p95 / {:.4} s p99 / {:.4} s max",
        report.mean_latency_s(),
        report.latency_quantile(0.50),
        report.latency_quantile(0.95),
        report.latency_quantile(0.99),
        report.latency.max()
    );
    println!(
        "carbon:       {:.3} g exec + {:.3} g transmission",
        report.exec_carbon_g, report.trans_carbon_g
    );
    println!("cost:         ${:.4}", report.cost_usd);

    // Perf goes to stderr: wall-clock dependent, excluded from the diff.
    let throughput = report.invocations() as f64 / wall_s;
    eprintln!(
        "wall: {wall_s:.2} s, throughput: {throughput:.0} inv/s, pool utilization: {:.0}%",
        report.pool.utilization() * 100.0
    );
    match peak_rss_kb() {
        Some(kb) => eprintln!("peak rss: {:.1} MB", kb as f64 / 1024.0),
        None => eprintln!("peak rss: unavailable"),
    }
    Ok(())
}

/// Peak resident set size of this process in KiB, from /proc (Linux).
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn cmd_chaos(args: &[String]) -> Result<(), CliError> {
    let mut config = caribou_core::ChaosConfig::default();
    if let Some(v) = flag(args, "--seed") {
        config.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    if let Some(v) = flag(args, "--requests") {
        config.requests = v.parse().map_err(|e| format!("--requests: {e}"))?;
    }
    if let Some(v) = flag(args, "--duration-s") {
        config.duration_s = v.parse().map_err(|e| format!("--duration-s: {e}"))?;
    }
    if let Some(v) = flag(args, "--drop") {
        config.drop_prob = v.parse().map_err(|e| format!("--drop: {e}"))?;
        if !(0.0..=1.0).contains(&config.drop_prob) {
            return Err("--drop: probability must be in [0, 1]".into());
        }
    }
    config.breaker_enabled = !has_flag(args, "--no-breaker");
    config.providers = providers(args)?;
    if has_flag(args, "--correlated") {
        return cmd_chaos_correlated(args, config);
    }
    let sweep: usize = flag(args, "--seeds")
        .map(|v| v.parse().map_err(|e| format!("--seeds: {e}")))
        .transpose()?
        .unwrap_or(1);
    if sweep == 0 {
        return Err("--seeds: must be at least 1".into());
    }
    if sweep > 1 {
        return cmd_chaos_sweep(args, config, sweep);
    }

    eprintln!(
        "chaos campaign: seed {} · {} requests over {:.0} s · drop {} · breaker {} · providers {}",
        config.seed,
        config.requests,
        config.duration_s,
        config.drop_prob,
        if config.breaker_enabled { "on" } else { "off" },
        config.providers,
    );
    let report = caribou_core::chaos::run_campaign(&config);

    println!(
        "faults injected:   {} outage(s), {} partition(s), {} gray failure(s), {} KV throttle(s), {} cold storm(s)",
        report.faults.outages,
        report.faults.partitions,
        report.faults.gray_failures,
        report.faults.kv_throttles,
        report.faults.cold_storms,
    );
    println!("requests:          {}", report.requests);
    println!("completed clean:   {}", report.completed_clean);
    println!("fell back home:    {}", report.fell_back_home);
    println!("reported failed:   {}", report.failed);
    println!("breaker reroutes:  {}", report.breaker_reroutes);
    println!(
        "latency:           {:.2} s p50 / {:.2} s p99 / {:.2} s mean",
        report.p50_latency_s, report.p99_latency_s, report.mean_latency_s
    );
    if has_flag(args, "--json") {
        println!(
            "{}",
            serde_json::json!({
                "seed": config.seed,
                "requests": report.requests,
                "completed_clean": report.completed_clean,
                "fell_back_home": report.fell_back_home,
                "failed": report.failed,
                "breaker_reroutes": report.breaker_reroutes,
                "p50_latency_s": report.p50_latency_s,
                "p99_latency_s": report.p99_latency_s,
                "mean_latency_s": report.mean_latency_s,
                "violations": report.violations,
            })
        );
    }
    if report.ok() {
        println!("invariants:        all upheld");
        Ok(())
    } else {
        for v in &report.violations {
            eprintln!("VIOLATION: {v}");
        }
        Err(format!(
            "{} invariant violation(s) detected",
            report.violations.len()
        )
        .into())
    }
}

/// `caribou chaos --correlated`: campaign under correlated fault classes
/// (provider-wide outages, shared failure domains, carbon-data outages)
/// with optional precomputed-contingency failover. `--contingency K`
/// arms a K-entry fallback table and appends a paired comparison against
/// the re-route-home baseline (same seed, same faults, no table).
/// `--scenario provider-outage` swaps the randomized fault plan for the
/// pinned seeded provider-wide outage (EXPERIMENTS.md "Contingency").
fn cmd_chaos_correlated(
    args: &[String],
    mut config: caribou_core::ChaosConfig,
) -> Result<(), CliError> {
    config.contingency = flag(args, "--contingency")
        .map(|v| v.parse().map_err(|e| format!("--contingency: {e}")))
        .transpose()?
        .unwrap_or(0);
    config.workers = workers(args)?;
    let scenario = match flag(args, "--scenario") {
        None => false,
        Some("provider-outage") => true,
        Some(s) => {
            return Err(format!("--scenario: unknown scenario `{s}` (try provider-outage)").into())
        }
    };
    let run = |c: &caribou_core::ChaosConfig| {
        if scenario {
            caribou_core::chaos::run_provider_outage_scenario(c)
        } else {
            caribou_core::chaos::run_correlated_campaign(c)
        }
    };

    eprintln!(
        "correlated chaos: seed {} · {} requests over {:.0} s · contingency {} · providers {} · {} worker(s)",
        config.seed,
        config.requests,
        config.duration_s,
        config.contingency,
        config.providers,
        config.workers.max(1),
    );
    let report = run(&config);

    println!(
        "correlated faults: {} provider outage(s), {} failure domain(s), {} carbon-data outage(s)",
        report.correlated.provider_outages,
        report.correlated.failure_domains,
        report.correlated.carbon_outages,
    );
    println!(
        "contingency table: {} fallback entries",
        report.contingency_entries
    );
    println!("requests:          {}", report.base.requests);
    println!("completed clean:   {}", report.base.completed_clean);
    println!("fell back home:    {}", report.base.fell_back_home);
    println!("reported failed:   {}", report.base.failed);
    println!("breaker reroutes:  {}", report.base.breaker_reroutes);
    println!("fallback routed:   {}", report.fallback_routed);
    println!("recovery probes:   {}", report.probe_requests);
    println!(
        "latency:           {:.2} s p50 / {:.2} s p99 / {:.2} s mean",
        report.base.p50_latency_s, report.base.p99_latency_s, report.base.mean_latency_s
    );
    println!("carbon:            {:.3} g total", report.total_carbon_g);
    let (fresh, lkg, yearly) = report.stale_queries;
    println!("carbon queries:    {fresh} fresh / {lkg} last-known-good / {yearly} yearly-average");

    if config.contingency > 0 {
        let mut base_cfg = config;
        base_cfg.contingency = 0;
        let baseline = run(&base_cfg);
        println!(
            "vs re-route-home:  p99 {:.2} s -> {:.2} s · carbon {:.3} g -> {:.3} g",
            baseline.base.p99_latency_s,
            report.base.p99_latency_s,
            baseline.total_carbon_g,
            report.total_carbon_g,
        );
    }

    if report.base.ok() {
        println!("invariants:        all upheld");
        Ok(())
    } else {
        for v in &report.base.violations {
            eprintln!("VIOLATION: {v}");
        }
        Err(format!(
            "{} invariant violation(s) detected",
            report.base.violations.len()
        )
        .into())
    }
}

/// `caribou chaos --seeds K`: K independent campaigns on consecutive
/// seeds, fanned across the worker pool. Each campaign is a pure function
/// of its config, so the sweep's output is identical at any `--workers`.
fn cmd_chaos_sweep(
    args: &[String],
    base: caribou_core::ChaosConfig,
    sweep: usize,
) -> Result<(), CliError> {
    let w = workers(args)?;
    eprintln!(
        "chaos sweep: seeds {}..{} · {} requests over {:.0} s each · {} worker(s)",
        base.seed,
        base.seed + sweep as u64 - 1,
        base.requests,
        base.duration_s,
        w,
    );
    let (reports, _stats) = pool::map_indexed(w, sweep, |i| {
        let mut config = base;
        config.seed = base.seed + i as u64;
        caribou_core::chaos::run_campaign(&config)
    });

    println!(
        "{:<8}{:>10}{:>8}{:>10}{:>8}{:>10}{:>10}{:>12}",
        "seed", "requests", "clean", "fallback", "failed", "reroutes", "p50 (s)", "p99 (s)"
    );
    let mut violations: Vec<String> = Vec::new();
    for (i, r) in reports.iter().enumerate() {
        let seed = base.seed + i as u64;
        println!(
            "{:<8}{:>10}{:>8}{:>10}{:>8}{:>10}{:>10.2}{:>12.2}",
            seed,
            r.requests,
            r.completed_clean,
            r.fell_back_home,
            r.failed,
            r.breaker_reroutes,
            r.p50_latency_s,
            r.p99_latency_s,
        );
        violations.extend(r.violations.iter().map(|v| format!("seed {seed}: {v}")));
    }
    let total_requests: u64 = reports.iter().map(|r| u64::from(r.requests)).sum();
    let total_failed: u64 = reports.iter().map(|r| u64::from(r.failed)).sum();
    println!(
        "total:             {} requests, {} reported failed across {} campaigns",
        total_requests, total_failed, sweep
    );
    if has_flag(args, "--json") {
        let per_seed: Vec<serde_json::Value> = reports
            .iter()
            .enumerate()
            .map(|(i, r)| {
                serde_json::json!({
                    "seed": base.seed + i as u64,
                    "requests": r.requests,
                    "completed_clean": r.completed_clean,
                    "fell_back_home": r.fell_back_home,
                    "failed": r.failed,
                    "breaker_reroutes": r.breaker_reroutes,
                    "p50_latency_s": r.p50_latency_s,
                    "p99_latency_s": r.p99_latency_s,
                    "violations": r.violations,
                })
            })
            .collect();
        println!(
            "{}",
            serde_json::to_string_pretty(&serde_json::json!({ "campaigns": per_seed }))
                .expect("sweep serializes")
        );
    }
    if violations.is_empty() {
        println!("invariants:        all upheld in every campaign");
        Ok(())
    } else {
        for v in &violations {
            eprintln!("VIOLATION: {v}");
        }
        Err(format!(
            "{} invariant violation(s) detected across the sweep",
            violations.len()
        )
        .into())
    }
}

/// `caribou fleet`: the multi-tenant fleet re-plan campaign.
///
/// Solves `--apps` heterogeneous DAG apps for `--hours` simulated hours
/// through one shared cross-app estimate cache. Deterministic results
/// (schedule digest, cell counts, carbon totals) go to stdout — identical
/// at any `--workers` value, so CI diffs a 1-worker run against a
/// K-worker run. Wall-clock throughput and (slightly racy under parallel
/// misses) cache tallies go to stderr.
fn cmd_fleet(args: &[String]) -> Result<(), CliError> {
    use caribou_core::fleet::{
        parse_perturb, replan_incremental, solve_fleet, FleetConfig, FleetEnv,
    };
    use caribou_solver::engine::EstimateCache;
    use caribou_workloads::fleet::generate_fleet;

    if has_flag(args, "--help") || has_flag(args, "-h") {
        print!("{FLEET_USAGE}");
        return Ok(());
    }
    let mut cfg = FleetConfig {
        workers: workers(args)?,
        ..FleetConfig::default()
    };
    if let Some(v) = flag(args, "--apps") {
        cfg.apps = v.parse().map_err(|e| format!("--apps: {e}"))?;
    }
    if let Some(v) = flag(args, "--hours") {
        cfg.hours = v.parse().map_err(|e| format!("--hours: {e}"))?;
    }
    if let Some(v) = flag(args, "--seed") {
        cfg.seed = v.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    if let Some(v) = flag(args, "--capacity") {
        cfg.cache_capacity = v.parse().map_err(|e| format!("--capacity: {e}"))?;
    }
    if cfg.apps == 0 || cfg.hours == 0 {
        return Err("--apps and --hours must be at least 1".into());
    }
    let telemetry_path = flag(args, "--telemetry");
    if let Some(path) = telemetry_path {
        let sink = caribou_telemetry::JsonlSink::create(path)
            .map_err(|e| format!("--telemetry {path}: {e}"))?;
        caribou_telemetry::enable(Box::new(sink));
    }

    let pset = providers(args)?;
    let env = FleetEnv::for_providers(cfg.seed, cfg.hours, pset).map_err(|e| e.to_string())?;
    let apps = generate_fleet(cfg.seed, cfg.apps, &env.universe);
    let perturbs = flag(args, "--perturb")
        .map(|spec| parse_perturb(spec, &env.cloud.regions, &env.universe, cfg.hours))
        .transpose()?;

    eprintln!(
        "fleet: {} apps x {} hours, seed {}, {} worker(s), cache capacity {}...",
        cfg.apps, cfg.hours, cfg.seed, cfg.workers, cfg.cache_capacity
    );
    let cache = EstimateCache::shared(cfg.cache_capacity);
    let wall = std::time::Instant::now();
    let full = solve_fleet(&apps, &env, &cfg, &cache);
    let wall_s = wall.elapsed().as_secs_f64();

    println!("fleet:             {} apps x {} hours", cfg.apps, cfg.hours);
    println!("schedule digest:   {:016x}", full.schedule.digest());
    println!(
        "cells solved:      {} ({} reused)",
        full.solved_cells, full.reused_cells
    );
    println!(
        "schedule carbon:   {:.3} g/invocation-hour (fleet sum)",
        full.schedule.total_carbon_mean()
    );
    println!("solve footprint:   {:.4} g modeled", full.solve_carbon_g);
    let hits = cache.hit_count();
    let misses = cache.miss_count();
    eprintln!(
        "wall: {wall_s:.2} s, throughput: {:.0} app-hours/s",
        full.solved_cells as f64 / wall_s
    );
    eprintln!(
        "cache: {hits} hits / {misses} misses ({:.1}% hit rate), {} entries, {} evicted",
        hits as f64 / (hits + misses).max(1) as f64 * 100.0,
        cache.len(),
        cache.eviction_count()
    );

    if let Some(perturbs) = perturbs {
        let mut revised =
            FleetEnv::for_providers(cfg.seed, cfg.hours, pset).map_err(|e| e.to_string())?;
        revised.apply_perturbations(&perturbs);
        let wall = std::time::Instant::now();
        let inc = replan_incremental(&apps, &revised, &cfg, &cache, &full.schedule, &perturbs);
        let inc_wall_s = wall.elapsed().as_secs_f64();

        println!("-- incremental re-solve after forecast revision --");
        println!("revisions:         {}", perturbs.len());
        println!("apps invalidated:  {} of {}", inc.dirty_apps, cfg.apps);
        let index = caribou_core::fleet::DependencyIndex::build(&apps);
        for (h, n) in &index.dirty_cells(&revised.universe, &perturbs).per_hour {
            println!("  hour {h:>2}: {n} app(s) re-planned");
        }
        println!(
            "cells re-solved:   {} ({} reused verbatim)",
            inc.solved_cells, inc.reused_cells
        );
        println!(
            "cache invalidated: {} entries",
            inc.cache_entries_invalidated
        );
        println!("schedule digest:   {:016x}", inc.schedule.digest());
        println!(
            "solve footprint:   {:.4} g modeled ({:.4} g saved vs full re-plan)",
            inc.solve_carbon_g, inc.saved_solve_carbon_g
        );
        eprintln!(
            "incremental wall: {inc_wall_s:.2} s, throughput: {:.0} app-hours/s",
            inc.solved_cells.max(1) as f64 / inc_wall_s
        );

        if has_flag(args, "--verify") {
            let scratch_cache = EstimateCache::shared(cfg.cache_capacity);
            let scratch = solve_fleet(&apps, &revised, &cfg, &scratch_cache);
            if scratch.schedule == inc.schedule {
                println!("verify:            incremental == from-scratch (bit-identical)");
            } else {
                if telemetry_path.is_some() {
                    caribou_telemetry::finish();
                }
                return Err(format!(
                    "verify FAILED: incremental digest {:016x} != from-scratch {:016x}",
                    inc.schedule.digest(),
                    scratch.schedule.digest()
                )
                .into());
            }
        }
    }
    if telemetry_path.is_some() {
        caribou_telemetry::finish();
    }
    Ok(())
}

fn cmd_trace(args: &[String]) -> Result<(), CliError> {
    let path = args
        .first()
        .ok_or("usage: caribou trace <journal.jsonl> [--limit N]")?;
    let limit: usize = flag(args, "--limit")
        .map(|v| v.parse().map_err(|e| format!("--limit: {e}")))
        .transpose()?
        .unwrap_or(60);
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let lines = caribou_telemetry::replay::parse_journal(&text);
    if lines.is_empty() {
        return Err(format!("{path}: no telemetry records found").into());
    }
    print!(
        "{}",
        caribou_telemetry::replay::render_timeline(&lines, limit)
    );
    println!();
    print!("{}", caribou_telemetry::replay::render_summary(&lines));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn flag_parsing() {
        let a = args(&["plan", "dna", "--hour", "12", "--worst-case"]);
        assert_eq!(flag(&a, "--hour"), Some("12"));
        assert_eq!(flag(&a, "--days"), None);
        assert!(has_flag(&a, "--worst-case"));
        assert!(!has_flag(&a, "--json"));
        // A flag at the end without a value yields None.
        let b = args(&["plan", "--hour"]);
        assert_eq!(flag(&b, "--hour"), None);
    }

    #[test]
    fn input_size_parsing() {
        assert_eq!(input_size(&args(&[])).unwrap(), InputSize::Small);
        assert_eq!(
            input_size(&args(&["--input", "large"])).unwrap(),
            InputSize::Large
        );
        assert!(input_size(&args(&["--input", "huge"])).is_err());
    }

    #[test]
    fn benchmark_lookup_is_fuzzy() {
        assert_eq!(
            find_benchmark("dna", InputSize::Small).unwrap().name,
            "DNA Visualization"
        );
        assert_eq!(
            find_benchmark("text2speech", InputSize::Small)
                .unwrap()
                .name,
            "Text2Speech Censoring"
        );
        assert_eq!(
            find_benchmark("video-analytics", InputSize::Large)
                .unwrap()
                .name,
            "Video Analytics"
        );
        assert!(find_benchmark("pacman", InputSize::Small).is_err());
    }

    #[test]
    fn scenario_parsing() {
        assert_eq!(
            scenario(&args(&["--worst-case"])),
            TransmissionScenario::WORST
        );
        assert_eq!(scenario(&args(&[])), TransmissionScenario::BEST);
    }
}
