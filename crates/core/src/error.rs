//! Framework error types.

use std::fmt;

use caribou_model::error::ModelError;
use caribou_model::region::RegionId;

use crate::migrator::MigrationReport;

/// Errors raised by the deployment control plane.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A model-layer validation failed.
    Model(ModelError),
    /// A function re-deployment to a region failed (the Migrator rolls
    /// back to the home deployment, §6.1).
    DeploymentFailed {
        /// Region the deployment failed in.
        region: RegionId,
        /// Stage that failed.
        stage: String,
        /// What the attempt accomplished before failing: regions already
        /// deployed (and registered in `active_regions`, so a retry skips
        /// them) and the egress those crane copies were billed.
        partial: Box<MigrationReport>,
    },
    /// A rollout target region is inside a *known* active outage window,
    /// so the Migrator refuses to start the rollout rather than waste
    /// crane copies on a region that cannot come up. The plan set is
    /// retained in `pending` for retry once the window closes.
    RegionUnavailable {
        /// Region the fault plan marks as down.
        region: RegionId,
        /// When the outage window is known to end, seconds (the latest
        /// end across all active windows covering the region).
        until_s: f64,
    },
    /// A crane image copy failed because the source image is missing.
    ImageMissing {
        /// Image reference.
        image: String,
    },
    /// The workflow was never initially deployed.
    NotDeployed {
        /// Workflow name.
        workflow: String,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Model(e) => write!(f, "model error: {e}"),
            CoreError::DeploymentFailed {
                region,
                stage,
                partial,
            } => {
                write!(
                    f,
                    "deployment of `{stage}` to {region} failed ({} region(s) already deployed)",
                    partial.newly_deployed.len()
                )
            }
            CoreError::RegionUnavailable { region, until_s } => {
                write!(
                    f,
                    "rollout refused: {region} is in a known outage until t={until_s}s"
                )
            }
            CoreError::ImageMissing { image } => write!(f, "image `{image}` missing"),
            CoreError::NotDeployed { workflow } => {
                write!(f, "workflow `{workflow}` is not deployed")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<ModelError> for CoreError {
    fn from(e: ModelError) -> Self {
        CoreError::Model(e)
    }
}
