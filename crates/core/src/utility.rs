//! The Deployment Utility: initial deployment (§6.1).
//!
//! Packages the workflow into a container image, deploys it to the
//! developer-defined home region, and uploads the framework metadata:
//!
//! 1. static analysis extracts the workflow DAG (done by the builder's
//!    [`caribou_model::builder::Workflow::extract`]);
//! 2. IAM roles are created, the image is pushed to the home-region
//!    registry, and one pub/sub topic per function is created;
//! 3. metadata (the active plan — initially the home plan) is uploaded to
//!    the distributed key-value store.

use std::collections::HashSet;

use caribou_exec::engine::WorkflowApp;
use caribou_exec::router::InvocationRouter;
use caribou_model::manifest::DeploymentManifest;
use caribou_model::plan::HourlyPlans;
use caribou_model::region::RegionId;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::pubsub::TopicKey;

use crate::error::CoreError;

/// Default packaged image size: a Python Lambda image with scientific
/// dependencies is a few hundred MB.
pub const DEFAULT_IMAGE_BYTES: f64 = 280e6;

/// A deployed workflow's control-plane state.
#[derive(Debug)]
pub struct DeployedWorkflow {
    /// The application (DAG, profile, home region).
    pub app: WorkflowApp,
    /// Container image reference.
    pub image: String,
    /// Regions with a complete deployment (roles + image + topics).
    pub active_regions: HashSet<RegionId>,
    /// Traffic router (active plan set + benchmarking traffic).
    pub router: InvocationRouter,
    /// A solved plan set awaiting (re-)rollout: the Migrator "periodically
    /// retries the rollout of any non-activated DP until it is replaced by
    /// a new one" (§6.1).
    pub pending: Option<HourlyPlans>,
}

/// The Deployment Utility.
#[derive(Debug, Default)]
pub struct DeploymentUtility;

impl DeploymentUtility {
    /// Deploys a workflow for the first time to its home region.
    pub fn deploy_initial(
        cloud: &mut SimCloud,
        app: WorkflowApp,
        manifest: &DeploymentManifest,
    ) -> Result<DeployedWorkflow, CoreError> {
        manifest.validate(&cloud.regions)?;
        let home = manifest.resolve_home(&cloud.regions)?;
        assert_eq!(
            home, app.home,
            "manifest home region must match the application's"
        );
        let image = format!("{}:{}", app.name, app.dag.version());

        // Step 2: IAM role, image push, one topic per function, and the
        // framework tables.
        cloud
            .iam
            .put_role(app.name.clone(), home, manifest.iam_policy.clone());
        let push = cloud
            .registry
            .push(image.clone(), DEFAULT_IMAGE_BYTES, home);
        cloud.clock.advance_by(push.duration_s);
        for node in app.dag.all_nodes() {
            cloud.pubsub.create_topic(TopicKey {
                workflow: app.name.to_string(),
                stage: app.dag.node(node).name.clone(),
                region: home,
            });
        }
        cloud
            .kv
            .create_table(format!("caribou-data@{}", home.0), home);
        cloud
            .kv
            .create_table(format!("caribou-sync@{}", home.0), home);
        cloud.kv.create_table("caribou-meta", home);

        // Step 3: upload metadata — the initial (home) plan.
        let router = InvocationRouter::new(home, app.dag.node_count());
        let plan_json =
            serde_json::to_vec(&router.home_plan()).expect("plan serialization is infallible");
        cloud.kv.put_if_absent(
            "caribou-meta",
            &format!("plan:{}", app.name),
            bytes::Bytes::from(plan_json),
            home,
        );

        let mut active_regions = HashSet::new();
        active_regions.insert(home);
        Ok(DeployedWorkflow {
            app,
            image,
            active_regions,
            router,
            pending: None,
        })
    }

    /// Tears a workflow down completely: topics, IAM roles, and image
    /// replicas in every active region, the KV metadata, and any warm
    /// containers. Consumes the control-plane state so the workflow can
    /// no longer be routed to.
    pub fn undeploy(cloud: &mut SimCloud, workflow: DeployedWorkflow) {
        for region in &workflow.active_regions {
            for node in workflow.app.dag.all_nodes() {
                cloud.pubsub.delete_topic(&TopicKey {
                    workflow: workflow.app.name.to_string(),
                    stage: workflow.app.dag.node(node).name.clone(),
                    region: *region,
                });
            }
            cloud.iam.delete_role(&workflow.app.name, *region);
            cloud.registry.remove_replica(&workflow.image, *region);
        }
        cloud.kv.delete(
            "caribou-meta",
            &format!("plan:{}", workflow.app.name),
            workflow.app.home,
        );
        cloud.warm.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::builder::Workflow;

    fn app(cloud: &SimCloud) -> WorkflowApp {
        let mut wf = Workflow::new("wf", "0.1");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        wf.invoke(a, b, None);
        let (dag, profile, _) = wf.extract().unwrap();
        WorkflowApp {
            name: "wf".into(),
            dag,
            profile,
            home: cloud.region("us-east-1").unwrap(),
        }
    }

    #[test]
    fn initial_deploy_creates_all_resources() {
        let mut cloud = SimCloud::aws(1);
        let app = app(&cloud);
        let home = app.home;
        let manifest = DeploymentManifest::new("wf", "0.1", "us-east-1");
        let dep = DeploymentUtility::deploy_initial(&mut cloud, app, &manifest).unwrap();

        assert!(cloud.iam.role_exists("wf", home));
        assert!(cloud.registry.has_replica("wf:0.1", home));
        for stage in ["A", "B"] {
            assert!(cloud.pubsub.topic_exists(&TopicKey {
                workflow: "wf".into(),
                stage: stage.into(),
                region: home,
            }));
        }
        assert!(cloud.kv.peek("caribou-meta", "plan:wf").is_some());
        assert!(dep.active_regions.contains(&home));
        assert!(dep.pending.is_none());
        assert!(cloud.clock.now() > 0.0, "image push takes time");
    }

    #[test]
    fn bad_manifest_rejected() {
        let mut cloud = SimCloud::aws(2);
        let app = app(&cloud);
        let manifest = DeploymentManifest::new("wf", "0.1", "narnia-1");
        assert!(DeploymentUtility::deploy_initial(&mut cloud, app, &manifest).is_err());
    }

    #[test]
    fn undeploy_removes_all_resources() {
        let mut cloud = SimCloud::aws(4);
        let app = app(&cloud);
        let home = app.home;
        let manifest = DeploymentManifest::new("wf", "0.1", "us-east-1");
        let dep = DeploymentUtility::deploy_initial(&mut cloud, app, &manifest).unwrap();
        DeploymentUtility::undeploy(&mut cloud, dep);
        assert!(!cloud.iam.role_exists("wf", home));
        assert!(!cloud.registry.has_replica("wf:0.1", home));
        for stage in ["A", "B"] {
            assert!(!cloud.pubsub.topic_exists(&TopicKey {
                workflow: "wf".into(),
                stage: stage.into(),
                region: home,
            }));
        }
        assert!(cloud.kv.peek("caribou-meta", "plan:wf").is_none());
    }

    #[test]
    fn router_starts_with_home_plan() {
        let mut cloud = SimCloud::aws(3);
        let app = app(&cloud);
        let home = app.home;
        let manifest = DeploymentManifest::new("wf", "0.1", "us-east-1");
        let mut dep = DeploymentUtility::deploy_initial(&mut cloud, app, &manifest).unwrap();
        let d = dep.router.route(0.0);
        assert!(d.plan.is_single_region());
        assert_eq!(d.plan.region_of(caribou_model::dag::NodeId(0)), home);
    }
}
