//! Caribou: a framework for carbon-aware geospatial shifting of serverless
//! workflows.
//!
//! This crate is the control plane tying the workspace together, mirroring
//! the component architecture of Fig. 4 of the paper:
//!
//! * [`utility`] — the Deployment Utility: initial deployment of a
//!   declared workflow to its home region (DAG extraction, IAM roles,
//!   image push, topic creation, metadata upload — §6.1);
//! * [`migrator`] — the Deployment Migrator: crane-style image copies to
//!   new regions, all-or-nothing plan activation with home-region
//!   fallback, and periodic retry of non-activated plans (§6.1);
//! * [`tokens`] — the token-bucket self-regulation of deployment-plan
//!   generation: tokens represent the carbon budget earned from potential
//!   savings; solves consume budget proportional to DAG complexity; the
//!   next check time is sigmoid-smoothed onto the invocation rate (§5.2);
//! * [`manager`] — the Deployment Manager orchestrating the Fig. 6 loop;
//! * [`framework`] — the top-level [`framework::Caribou`] runtime that
//!   executes invocation traces end-to-end against the simulated cloud,
//!   learning, solving, migrating, and accounting as it goes;
//! * [`chaos`] — a seeded randomized fault-campaign harness checking the
//!   framework's robustness invariants (no invocation lost, routing stays
//!   deployable, metering stays honest) under composed fault classes;
//! * [`loadgen`] — the sustained-load harness driving a benchmark DAG
//!   with seeded open-loop arrivals, sharded across the worker pool with
//!   bit-identical results at any worker count;
//! * [`fleet`] — multi-tenant solving: a seeded fleet of heterogeneous
//!   DAG apps re-planned every simulated hour through one shared,
//!   cross-app estimate cache, with dependency-indexed incremental
//!   re-solve after forecast revisions.
//!
//! # Quickstart
//!
//! See `examples/quickstart.rs` for a complete end-to-end run; the crate
//! root re-exports the types needed for typical use.

pub mod chaos;
pub mod error;
pub mod fleet;
pub mod framework;
pub mod loadgen;
pub mod manager;
pub mod migrator;
pub mod tokens;
pub mod utility;

pub use chaos::{ChaosConfig, ChaosReport};
pub use error::CoreError;
pub use fleet::{
    replan_incremental, solve_fleet, FleetConfig, FleetEnv, FleetReport, FleetSchedule,
};
pub use framework::{Caribou, CaribouConfig, RunReport};
pub use loadgen::{run_loadgen, LoadReport, LoadgenConfig, LoadgenMode};
pub use manager::DeploymentManager;
pub use migrator::{MigrationReport, Migrator};
pub use tokens::TokenBucket;
pub use utility::{DeployedWorkflow, DeploymentUtility};
