//! The sustained-load harness behind `caribou loadgen`.
//!
//! Drives a benchmark DAG with N open-loop invocations end-to-end through
//! the simulated cloud and the execution engine. Two modes:
//!
//! * **Persistent** (default): a fixed set of [`LoadgenConfig::shards`]
//!   long-lived simulation shards — each a full [`SimCloud`] keeping its
//!   warm pools, KV/blob contents, meters, and breaker state for the
//!   whole run. Chunks of [`CHUNK_INVOCATIONS`] arrivals are dealt to
//!   shards round-robin; one round of chunks is a *tick*. At every tick
//!   boundary the shards exchange their journaled warm-pool touches in
//!   fixed shard order ([`caribou_simcloud::warm::WarmPool::drain_touches`]
//!   sorts by deployment key) and max-merge them, so container state
//!   converges across shards with at most one tick of visibility lag.
//! * **Chunked** (legacy): a fresh cloud per chunk — the pre-shard
//!   behavior, kept to measure exactly what the chunk-boundary state
//!   resets cost (every chunk re-pays cold starts it shouldn't).
//!
//! Results are bit-identical at any worker count in both modes:
//!
//! * arrival times are generated once, up front, from the seeded
//!   [`ArrivalProcess`] — they are data, not per-worker state;
//! * chunk boundaries and the chunk→shard assignment depend only on N
//!   and the shard count, never on the worker count;
//! * every seed is derived from the run seed through
//!   [`SeedSplitter`] label chains (salt + index), so no two streams
//!   collide and no derivation depends on execution order;
//! * within a round each shard is touched by exactly one pool task, and
//!   chunk results are folded in chunk order (f64 summation order is
//!   part of the contract), as are the tick-boundary touch exchanges.
//!
//! Latencies are folded into a mergeable [`QuantileSketch`] — memory is
//! O(buckets), independent of N — instead of an exact per-invocation
//! vector; [`LoadgenConfig::capture_latencies`] re-enables the exact
//! vector for tests that validate the sketch against sorted-vector
//! quantiles.
//!
//! Each shard (or chunk) reuses one [`InvocationScratch`] across its
//! invocations, so the steady-state data plane allocates only the
//! per-invocation log records (see `engine.alloc_per_invocation`).

use std::sync::Mutex;

use caribou_carbon::source::RegionalSource;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_carbon::CarbonError;
use caribou_exec::engine::{ExecutionEngine, InvocationScratch, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::SeedSplitter;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_simcloud::warm::{WarmPool, WarmTouch, DEFAULT_KEEP_ALIVE_S};
use caribou_solver::pool::{self, PoolStats};
use caribou_telemetry::QuantileSketch;
use caribou_workloads::arrivals::{ArrivalGen, ArrivalProcess};
use caribou_workloads::benchmarks::Benchmark;

/// Fixed chunk size: chunk boundaries (and therefore results) depend only
/// on the invocation count, never on the worker count. One round of
/// chunks across the shards is the exchange tick.
pub const CHUNK_INVOCATIONS: usize = 8192;

/// Default number of persistent simulation shards. The shard count is
/// part of the result contract (it fixes the chunk→shard assignment and
/// per-shard seeds), so it defaults to a constant rather than the
/// machine's core count.
pub const DEFAULT_SHARDS: usize = 8;

/// Seed-derivation salts: every RNG stream hangs off the run seed via
/// `SeedSplitter::new(seed).absorb(SALT).absorb(index)`, so streams can
/// never collide the way the old `seed ^ chunk * constant` xor mix could.
const SALT_ARRIVALS: u64 = 0xA11;
const SALT_INVOCATION: u64 = 0x117;
const SALT_CHUNK_CLOUD: u64 = 0xC417;
const SALT_SHARD_CLOUD: u64 = 0x54A2D;

/// How the harness manages simulation state across chunk boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadgenMode {
    /// Long-lived shards with tick-boundary warm-state exchange.
    Persistent,
    /// A fresh cloud per chunk (legacy): warm pools, KV contents and
    /// breaker state silently reset every [`CHUNK_INVOCATIONS`].
    Chunked,
}

/// Configuration for one sustained-load run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Number of invocations to run.
    pub invocations: usize,
    /// Root seed: arrivals, shard clouds, and per-invocation RNG streams
    /// all derive from it via [`SeedSplitter`].
    pub seed: u64,
    /// Worker threads for chunk execution (1 = inline).
    pub workers: usize,
    /// Persistent shard count (capped at the chunk count). Changing it
    /// changes the result — it is simulation structure, not parallelism.
    pub shards: usize,
    /// Open-loop arrival process.
    pub arrivals: ArrivalProcess,
    /// Transmission scenario for carbon accounting.
    pub scenario: TransmissionScenario,
    /// Chunk-boundary state handling.
    pub mode: LoadgenMode,
    /// Drive cold starts from the stateful warm pool (`true`, default)
    /// or the compute model's probabilistic rate (`false`).
    pub warm_pool: bool,
    /// Warm-container keep-alive window, seconds.
    pub keep_alive_s: f64,
    /// Also collect the exact per-invocation latency vector (O(N)
    /// memory) — for tests validating the sketch, not for big runs.
    pub capture_latencies: bool,
}

impl Default for LoadgenConfig {
    fn default() -> Self {
        LoadgenConfig {
            invocations: 0,
            seed: 0,
            workers: 1,
            shards: DEFAULT_SHARDS,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 100.0 },
            scenario: TransmissionScenario::BEST,
            mode: LoadgenMode::Persistent,
            warm_pool: true,
            keep_alive_s: DEFAULT_KEEP_ALIVE_S,
            capture_latencies: false,
        }
    }
}

/// Per-run results: streaming latency aggregates (O(buckets) memory)
/// plus folded totals.
#[derive(Debug)]
pub struct LoadReport {
    /// Mergeable latency sketch: quantiles to one bucket's relative
    /// error (~6%), exact count/mean/variance via running moments.
    pub latency: QuantileSketch,
    /// Exact per-invocation latencies in arrival order, only when
    /// [`LoadgenConfig::capture_latencies`] was set.
    pub exact_latencies_s: Option<Vec<f64>>,
    /// Invocations that completed every live node.
    pub completed: u64,
    /// Total mid-flight failovers.
    pub failovers: u64,
    /// Function executions that paid a cold start.
    pub cold_starts: u64,
    /// Function executions served by a warm container.
    pub warm_starts: u64,
    /// Total execution carbon, grams.
    pub exec_carbon_g: f64,
    /// Total transmission carbon, grams.
    pub trans_carbon_g: f64,
    /// Total request cost, USD.
    pub cost_usd: f64,
    /// Sim-time span of the arrival sequence, seconds.
    pub span_s: f64,
    /// Pooled-buffer growth events summed over all shards (steady-state
    /// allocation telemetry; one small constant per shard).
    pub scratch_allocs: u64,
    /// Chunks executed.
    pub chunks: u64,
    /// Persistent shards used (1 per chunk in chunked mode).
    pub shards: u64,
    /// Worker-pool statistics accumulated over all rounds.
    pub pool: PoolStats,
}

impl LoadReport {
    /// Nearest-rank quantile of the latency distribution, `q` in [0, 1].
    ///
    /// Finite `q` outside the range is clamped; a non-finite `q` returns
    /// NaN instead of silently mapping to an extreme rank. An empty
    /// report returns 0.0, consistent with [`LoadReport::mean_latency_s`].
    pub fn latency_quantile(&self, q: f64) -> f64 {
        self.latency.quantile(q)
    }

    /// Mean end-to-end latency, seconds (0.0 on an empty report).
    pub fn mean_latency_s(&self) -> f64 {
        self.latency.mean()
    }

    /// Invocations observed.
    pub fn invocations(&self) -> u64 {
        self.latency.count()
    }

    /// Fraction of function executions that paid a cold start.
    pub fn cold_start_rate(&self) -> f64 {
        let total = self.cold_starts + self.warm_starts;
        if total == 0 {
            0.0
        } else {
            self.cold_starts as f64 / total as f64
        }
    }
}

/// One chunk's fold-ready output, plus the warm touches it journaled
/// (persistent mode only) for the tick-boundary exchange.
#[derive(Debug, Default)]
struct ChunkOut {
    sketch: QuantileSketch,
    exact: Vec<f64>,
    completed: u64,
    failovers: u64,
    cold_starts: u64,
    warm_starts: u64,
    exec_carbon_g: f64,
    trans_carbon_g: f64,
    cost_usd: f64,
    scratch_allocs: u64,
    touches: Vec<WarmTouch>,
}

/// A long-lived simulation shard: one full cloud plus its reusable
/// invocation scratch. Wrapped in a `Mutex` only so the worker pool can
/// reach it through a shared reference — within a round each shard index
/// is handed to exactly one task, so the lock is never contended.
struct Shard {
    cloud: SimCloud,
    scratch: InvocationScratch,
}

/// Immutable per-run context shared by every chunk execution.
struct RunCtx<'a> {
    engine: &'a ExecutionEngine<'a, RegionalSource>,
    app: &'a WorkflowApp,
    plan: &'a DeploymentPlan,
    config: &'a LoadgenConfig,
}

fn run_range(
    ctx: &RunCtx<'_>,
    cloud: &mut SimCloud,
    scratch: &mut InvocationScratch,
    arrivals: &[f64],
    g0: usize,
) -> ChunkOut {
    let config = ctx.config;
    let mut out = ChunkOut::default();
    if config.capture_latencies {
        out.exact.reserve(arrivals.len());
    }
    for (k, &arrival) in arrivals.iter().enumerate() {
        // The invocation stream is keyed by the *global* invocation
        // index, independent of chunking and sharding.
        let g = g0 + k;
        let mut rng = SeedSplitter::new(config.seed)
            .absorb(SALT_INVOCATION)
            .absorb(g as u64)
            .rng();
        let o = ctx.engine.invoke_with_scratch(
            cloud, ctx.app, ctx.plan, g as u64, arrival, &mut rng, scratch,
        );
        out.sketch.observe(o.e2e_latency_s);
        if config.capture_latencies {
            out.exact.push(o.e2e_latency_s);
        }
        out.completed += u64::from(o.completed);
        out.failovers += u64::from(o.failovers);
        out.cold_starts += u64::from(o.cold_starts);
        out.warm_starts += o.log.nodes.len() as u64 - u64::from(o.cold_starts);
        out.exec_carbon_g += o.exec_carbon_g;
        out.trans_carbon_g += o.trans_carbon_g;
        out.cost_usd += o.cost_usd;
    }
    out
}

fn fold(report: &mut LoadReport, c: ChunkOut) {
    report.latency.merge(&c.sketch);
    if let Some(exact) = report.exact_latencies_s.as_mut() {
        exact.extend_from_slice(&c.exact);
    }
    report.completed += c.completed;
    report.failovers += c.failovers;
    report.cold_starts += c.cold_starts;
    report.warm_starts += c.warm_starts;
    report.exec_carbon_g += c.exec_carbon_g;
    report.trans_carbon_g += c.trans_carbon_g;
    report.cost_usd += c.cost_usd;
    report.scratch_allocs += c.scratch_allocs;
}

fn accumulate_pool_stats(total: &mut PoolStats, round: PoolStats) {
    total.workers = total.workers.max(round.workers);
    total.tasks += round.tasks;
    total.wall_s += round.wall_s;
    if total.busy_s.len() < round.busy_s.len() {
        total.busy_s.resize(round.busy_s.len(), 0.0);
        total
            .tasks_per_worker
            .resize(round.tasks_per_worker.len(), 0);
    }
    for (a, b) in total.busy_s.iter_mut().zip(round.busy_s.iter()) {
        *a += b;
    }
    for (a, b) in total
        .tasks_per_worker
        .iter_mut()
        .zip(round.tasks_per_worker.iter())
    {
        *a += b;
    }
}

/// Runs the sustained-load harness and returns the merged report.
///
/// The report is a pure function of everything in `config` except
/// `workers` — the worker count changes only wall-clock time, never a
/// single bit of the result.
pub fn run_loadgen(bench: &Benchmark, config: &LoadgenConfig) -> Result<LoadReport, CarbonError> {
    // One template cloud resolves the home region and validates the
    // carbon calibration once; shard clouds share its catalog shape.
    let template = SimCloud::aws(config.seed);
    let home = template
        .region("us-east-1")
        .expect("the default catalog includes us-east-1");
    let carbon = RegionalSource::new(
        &template.regions,
        SyntheticCarbonSource::aws_calibrated(20231015),
    )?;
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
        home,
    };
    let plan = DeploymentPlan::uniform(app.dag.node_count(), home);
    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(config.scenario),
        orchestrator: Orchestrator::Caribou,
    };

    let n = config.invocations;
    let chunks = n.div_ceil(CHUNK_INVOCATIONS);

    let mut report = LoadReport {
        latency: QuantileSketch::new(),
        exact_latencies_s: config.capture_latencies.then(|| Vec::with_capacity(n)),
        completed: 0,
        failovers: 0,
        cold_starts: 0,
        warm_starts: 0,
        exec_carbon_g: 0.0,
        trans_carbon_g: 0.0,
        cost_usd: 0.0,
        span_s: 0.0,
        scratch_allocs: 0,
        chunks: chunks as u64,
        shards: 0,
        pool: PoolStats::default(),
    };

    // Arrivals stream from one seeded generator: data, not per-worker
    // state. Persistent mode pulls them one round at a time (O(round)
    // memory); chunked mode materializes all N up front, which is part
    // of why it doesn't scale.
    let gen = config
        .arrivals
        .stream(SeedSplitter::new(config.seed).absorb(SALT_ARRIVALS).rng());

    let ctx = RunCtx {
        engine: &engine,
        app: &app,
        plan: &plan,
        config,
    };
    match config.mode {
        LoadgenMode::Persistent => run_persistent(&ctx, gen, chunks, &mut report),
        LoadgenMode::Chunked => run_chunked(&ctx, gen, chunks, &mut report),
    }

    if caribou_telemetry::is_enabled() {
        caribou_telemetry::count("loadgen.invocations", report.invocations());
        caribou_telemetry::count("loadgen.chunks", chunks as u64);
        caribou_telemetry::count("loadgen.shards", report.shards);
        caribou_telemetry::count("loadgen.cold_starts", report.cold_starts);
        caribou_telemetry::count("loadgen.warm_starts", report.warm_starts);
    }
    Ok(report)
}

/// Persistent mode: rounds of chunks over long-lived shards with a
/// deterministic warm-touch exchange at every round (tick) boundary.
fn run_persistent(ctx: &RunCtx<'_>, mut gen: ArrivalGen, chunks: usize, report: &mut LoadReport) {
    let config = ctx.config;
    let n = config.invocations;
    let shard_count = config.shards.max(1).min(chunks.max(1));
    report.shards = shard_count as u64;
    let shards: Vec<Mutex<Shard>> = (0..shard_count)
        .map(|s| {
            let seed = SeedSplitter::new(config.seed)
                .absorb(SALT_SHARD_CLOUD)
                .absorb(s as u64)
                .seed();
            let mut cloud = SimCloud::aws(seed);
            ctx.engine.provision(&mut cloud, ctx.app, ctx.plan);
            if config.warm_pool {
                cloud.warm = WarmPool::enabled(config.keep_alive_s);
                cloud.warm.set_journaling(true);
            }
            Mutex::new(Shard {
                cloud,
                scratch: InvocationScratch::new(),
            })
        })
        .collect();

    let rounds = chunks.div_ceil(shard_count);
    // One round's arrivals at a time: the buffer is reused, so arrival
    // storage is O(shards × CHUNK_INVOCATIONS) no matter how large N is.
    let mut round_arrivals: Vec<f64> = Vec::with_capacity(shard_count * CHUNK_INVOCATIONS);
    for round in 0..rounds {
        let base = round * shard_count;
        let round_len = shard_count.min(chunks - base);
        let round_lo = base * CHUNK_INVOCATIONS;
        let round_hi = (round_lo + round_len * CHUNK_INVOCATIONS).min(n);
        round_arrivals.clear();
        gen.fill(&mut round_arrivals, round_hi - round_lo);
        report.span_s = round_arrivals.last().copied().unwrap_or(report.span_s);
        let round_arrivals = &round_arrivals;
        let (outs, stats) = pool::map_indexed(config.workers, round_len, |i| {
            let lo = i * CHUNK_INVOCATIONS;
            let hi = (lo + CHUNK_INVOCATIONS).min(round_arrivals.len());
            // Each shard index appears exactly once per round, so this
            // lock is uncontended — it exists to satisfy the pool's
            // shared-reference closure bound.
            let mut shard = shards[i].lock().expect("shard lock");
            let shard = &mut *shard;
            let mut out = run_range(
                ctx,
                &mut shard.cloud,
                &mut shard.scratch,
                &round_arrivals[lo..hi],
                round_lo + lo,
            );
            // Drain this tick's touches while the shard is held so the
            // exchange below needs no second locking pass.
            out.touches = shard.cloud.warm.drain_touches();
            out
        });
        accumulate_pool_stats(&mut report.pool, stats);

        // Tick boundary: broadcast every shard's touches to every shard,
        // in fixed (shard, key) order. absorb_touch max-merges, so
        // re-absorbing a shard's own touches is a no-op and the fold
        // order only matters for determinism, which the fixed iteration
        // order provides.
        if config.warm_pool && round + 1 < rounds {
            let all_touches: Vec<&WarmTouch> = outs.iter().flat_map(|o| o.touches.iter()).collect();
            for shard in &shards {
                let mut shard = shard.lock().expect("shard lock");
                for touch in &all_touches {
                    shard.cloud.warm.absorb_touch(touch);
                }
            }
        }

        // Fold in chunk order: f64 summation order is part of the
        // bit-reproducibility contract.
        for out in outs {
            fold(report, out);
        }
    }

    for shard in shards {
        let shard = shard.into_inner().expect("shard lock");
        report.scratch_allocs += shard.scratch.allocs();
    }
    if caribou_telemetry::is_enabled() {
        caribou_telemetry::count("loadgen.rounds", rounds as u64);
    }
}

/// Chunked (legacy) mode: a fresh cloud per chunk. Kept so the cost of
/// the chunk-boundary state resets stays measurable.
fn run_chunked(ctx: &RunCtx<'_>, mut gen: ArrivalGen, chunks: usize, report: &mut LoadReport) {
    let config = ctx.config;
    let n = config.invocations;
    report.shards = chunks as u64;
    let mut arrivals = Vec::with_capacity(n);
    gen.fill(&mut arrivals, n);
    report.span_s = arrivals.last().copied().unwrap_or(0.0);
    let arrivals = &arrivals;
    let (outs, stats) = pool::map_indexed(config.workers, chunks, |chunk| {
        let lo = chunk * CHUNK_INVOCATIONS;
        let hi = (lo + CHUNK_INVOCATIONS).min(n);
        let seed = SeedSplitter::new(config.seed)
            .absorb(SALT_CHUNK_CLOUD)
            .absorb(chunk as u64)
            .seed();
        let mut cloud = SimCloud::aws(seed);
        ctx.engine.provision(&mut cloud, ctx.app, ctx.plan);
        if config.warm_pool {
            // The warm pool starts empty every chunk — this is the state
            // reset the persistent mode exists to remove.
            cloud.warm = WarmPool::enabled(config.keep_alive_s);
        }
        let mut scratch = InvocationScratch::new();
        let mut out = run_range(ctx, &mut cloud, &mut scratch, &arrivals[lo..hi], lo);
        out.scratch_allocs = scratch.allocs();
        out
    });
    accumulate_pool_stats(&mut report.pool, stats);
    for out in outs {
        fold(report, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};

    fn config(n: usize, workers: usize) -> LoadgenConfig {
        LoadgenConfig {
            invocations: n,
            seed: 42,
            workers,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 5.0 },
            ..LoadgenConfig::default()
        }
    }

    #[test]
    fn report_is_worker_count_invariant() {
        let bench = text2speech_censoring(InputSize::Small);
        let a = run_loadgen(&bench, &config(300, 1)).unwrap();
        let b = run_loadgen(&bench, &config(300, 3)).unwrap();
        assert_eq!(a.invocations(), 300);
        assert_eq!(
            a.latency.quantile(0.99).to_bits(),
            b.latency.quantile(0.99).to_bits()
        );
        assert_eq!(a.mean_latency_s().to_bits(), b.mean_latency_s().to_bits());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.failovers, b.failovers);
        assert_eq!(a.cold_starts, b.cold_starts);
        assert_eq!(a.warm_starts, b.warm_starts);
        assert_eq!(a.exec_carbon_g.to_bits(), b.exec_carbon_g.to_bits());
        assert_eq!(a.trans_carbon_g.to_bits(), b.trans_carbon_g.to_bits());
        assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
    }

    #[test]
    fn quantiles_reject_bad_q_and_empty_reports_are_zero() {
        let bench = text2speech_censoring(InputSize::Small);
        let r = run_loadgen(&bench, &config(40, 1)).unwrap();
        assert!(r.latency_quantile(f64::NAN).is_nan());
        assert!(r.latency_quantile(f64::INFINITY).is_nan());
        assert_eq!(
            r.latency_quantile(-1.0).to_bits(),
            r.latency_quantile(0.0).to_bits()
        );
        assert_eq!(
            r.latency_quantile(2.0).to_bits(),
            r.latency_quantile(1.0).to_bits()
        );
        let empty = run_loadgen(&bench, &config(0, 1)).unwrap();
        assert_eq!(empty.latency_quantile(0.5), 0.0);
        assert_eq!(empty.mean_latency_s(), 0.0);
        assert_eq!(empty.invocations(), 0);
    }

    #[test]
    fn loadgen_counts_invocations_in_telemetry() {
        caribou_telemetry::enable(Box::new(caribou_telemetry::NullSink));
        let bench = text2speech_censoring(InputSize::Small);
        run_loadgen(&bench, &config(50, 1)).unwrap();
        let finished = caribou_telemetry::finish().expect("session active");
        assert_eq!(finished.recorder.counter("loadgen.invocations"), 50);
        assert_eq!(finished.recorder.counter("loadgen.chunks"), 1);
        assert_eq!(finished.recorder.counter("loadgen.shards"), 1);
        // The pooled engine path ran: warm steady state allocates only the
        // caller-owned log records.
        assert_eq!(finished.recorder.gauges["engine.alloc_per_invocation"], 2.0);
    }

    #[test]
    fn chunked_mode_still_merges_deterministically() {
        let bench = text2speech_censoring(InputSize::Small);
        let mk = |workers| LoadgenConfig {
            mode: LoadgenMode::Chunked,
            ..config(300, workers)
        };
        let a = run_loadgen(&bench, &mk(1)).unwrap();
        let b = run_loadgen(&bench, &mk(4)).unwrap();
        assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.cold_starts, b.cold_starts);
    }
}
