//! The sustained-load harness behind `caribou loadgen`.
//!
//! Drives a benchmark DAG with N open-loop invocations end-to-end through
//! the simulated cloud and the execution engine, sharded across the
//! worker pool in fixed-size chunks so the merged result is bit-identical
//! at any worker count:
//!
//! * arrival times are generated once, up front, from the seeded
//!   [`ArrivalProcess`] — they are data, not per-worker state;
//! * invocations are split into [`CHUNK_INVOCATIONS`]-sized chunks; the
//!   chunk boundaries depend only on N, never on the worker count;
//! * each chunk runs against its own freshly seeded [`SimCloud`] (seed
//!   derived from the run seed and the chunk index) with a chunk-local
//!   RNG stream per invocation, so a chunk's outcomes are a pure function
//!   of `(seed, chunk index)`;
//! * chunk results are concatenated and folded in chunk order.
//!
//! Each chunk reuses one [`InvocationScratch`] across its invocations, so
//! the steady-state data plane allocates only the per-invocation log
//! records (see `engine.alloc_per_invocation`).

use caribou_carbon::source::RegionalSource;
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_carbon::CarbonError;
use caribou_exec::engine::{ExecutionEngine, InvocationScratch, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_model::plan::DeploymentPlan;
use caribou_model::rng::{mix64, Pcg32};
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::pool::{self, PoolStats};
use caribou_workloads::arrivals::ArrivalProcess;
use caribou_workloads::benchmarks::Benchmark;

/// Fixed shard size: chunk boundaries (and therefore results) depend only
/// on the invocation count, never on the worker count.
pub const CHUNK_INVOCATIONS: usize = 8192;

/// Configuration for one sustained-load run.
#[derive(Debug, Clone)]
pub struct LoadgenConfig {
    /// Number of invocations to run.
    pub invocations: usize,
    /// Root seed: arrivals, per-chunk clouds, and per-invocation RNG
    /// streams all derive from it.
    pub seed: u64,
    /// Worker threads for chunk execution (1 = inline).
    pub workers: usize,
    /// Open-loop arrival process.
    pub arrivals: ArrivalProcess,
    /// Transmission scenario for carbon accounting.
    pub scenario: TransmissionScenario,
}

/// Per-run results: per-invocation sim-time latencies (invocation order)
/// plus folded aggregates.
#[derive(Debug)]
pub struct LoadReport {
    /// End-to-end sim-time latency of each invocation, in invocation
    /// (arrival) order.
    pub latencies_s: Vec<f64>,
    /// Invocations that completed every live node.
    pub completed: u64,
    /// Total mid-flight failovers.
    pub failovers: u64,
    /// Total execution carbon, grams.
    pub exec_carbon_g: f64,
    /// Total transmission carbon, grams.
    pub trans_carbon_g: f64,
    /// Total request cost, USD.
    pub cost_usd: f64,
    /// Sim-time span of the arrival sequence, seconds.
    pub span_s: f64,
    /// Pooled-buffer growth events summed over all chunks (the
    /// steady-state allocation telemetry; one small constant per chunk).
    pub scratch_allocs: u64,
    /// Worker-pool statistics for the chunk map.
    pub pool: PoolStats,
}

impl LoadReport {
    /// Nearest-rank quantile of the latency distribution, `q` in [0, 1].
    pub fn latency_quantile(&self, sorted: &[f64], q: f64) -> f64 {
        if sorted.is_empty() {
            return 0.0;
        }
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// Latencies sorted ascending, for quantile queries.
    pub fn sorted_latencies(&self) -> Vec<f64> {
        let mut v = self.latencies_s.clone();
        v.sort_by(f64::total_cmp);
        v
    }

    /// Mean end-to-end latency, seconds.
    pub fn mean_latency_s(&self) -> f64 {
        if self.latencies_s.is_empty() {
            return 0.0;
        }
        self.latencies_s.iter().sum::<f64>() / self.latencies_s.len() as f64
    }
}

#[derive(Debug, Default)]
struct ChunkOut {
    latencies_s: Vec<f64>,
    completed: u64,
    failovers: u64,
    exec_carbon_g: f64,
    trans_carbon_g: f64,
    cost_usd: f64,
    scratch_allocs: u64,
}

/// Runs the sustained-load harness and returns the merged report.
///
/// The report is a pure function of `(config.invocations, config.seed,
/// config.arrivals, config.scenario, bench)` — the worker count changes
/// only wall-clock time, never a single bit of the result.
pub fn run_loadgen(bench: &Benchmark, config: &LoadgenConfig) -> Result<LoadReport, CarbonError> {
    // One template cloud resolves the home region and validates the
    // carbon calibration once; per-chunk clouds share its catalog shape.
    let template = SimCloud::aws(config.seed);
    let home = template
        .region("us-east-1")
        .expect("the default catalog includes us-east-1");
    let carbon = RegionalSource::new(
        &template.regions,
        SyntheticCarbonSource::aws_calibrated(20231015),
    )?;
    let app = WorkflowApp {
        name: bench.dag.name().into(),
        dag: bench.dag.clone(),
        profile: bench.profile.clone(),
        home,
    };
    let plan = DeploymentPlan::uniform(app.dag.node_count(), home);
    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(config.scenario),
        orchestrator: Orchestrator::Caribou,
    };

    let n = config.invocations;
    let arrivals = config
        .arrivals
        .generate(n, &mut Pcg32::seed_stream(config.seed, 0xA11));
    let span_s = arrivals.last().copied().unwrap_or(0.0);

    let chunks = n.div_ceil(CHUNK_INVOCATIONS);
    let run_chunk = |chunk: usize| -> ChunkOut {
        let lo = chunk * CHUNK_INVOCATIONS;
        let hi = (lo + CHUNK_INVOCATIONS).min(n);
        // The chunk's cloud seed depends only on (run seed, chunk index):
        // worker threads never share mutable simulation state.
        let mut cloud = SimCloud::aws(mix64(config.seed ^ (chunk as u64).wrapping_mul(0x9E37)));
        engine.provision(&mut cloud, &app, &plan);
        let mut scratch = InvocationScratch::new();
        let mut out = ChunkOut {
            latencies_s: Vec::with_capacity(hi - lo),
            ..ChunkOut::default()
        };
        for (g, &arrival) in arrivals.iter().enumerate().take(hi).skip(lo) {
            let mut rng = Pcg32::seed_stream(config.seed, 1 + g as u64);
            let o = engine.invoke_with_scratch(
                &mut cloud,
                &app,
                &plan,
                g as u64,
                arrival,
                &mut rng,
                &mut scratch,
            );
            out.latencies_s.push(o.e2e_latency_s);
            out.completed += u64::from(o.completed);
            out.failovers += u64::from(o.failovers);
            out.exec_carbon_g += o.exec_carbon_g;
            out.trans_carbon_g += o.trans_carbon_g;
            out.cost_usd += o.cost_usd;
        }
        out.scratch_allocs = scratch.allocs();
        out
    };

    let (outs, stats) = pool::map_indexed(config.workers, chunks, run_chunk);

    let mut report = LoadReport {
        latencies_s: Vec::with_capacity(n),
        completed: 0,
        failovers: 0,
        exec_carbon_g: 0.0,
        trans_carbon_g: 0.0,
        cost_usd: 0.0,
        span_s,
        scratch_allocs: 0,
        pool: stats,
    };
    // Fold in chunk order: f64 summation order is part of the
    // bit-reproducibility contract.
    for c in outs {
        report.latencies_s.extend_from_slice(&c.latencies_s);
        report.completed += c.completed;
        report.failovers += c.failovers;
        report.exec_carbon_g += c.exec_carbon_g;
        report.trans_carbon_g += c.trans_carbon_g;
        report.cost_usd += c.cost_usd;
        report.scratch_allocs += c.scratch_allocs;
    }
    if caribou_telemetry::is_enabled() {
        caribou_telemetry::count("loadgen.invocations", report.latencies_s.len() as u64);
        caribou_telemetry::count("loadgen.chunks", chunks as u64);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_workloads::benchmarks::{text2speech_censoring, InputSize};

    fn config(n: usize, workers: usize) -> LoadgenConfig {
        LoadgenConfig {
            invocations: n,
            seed: 42,
            workers,
            arrivals: ArrivalProcess::Poisson { rate_per_s: 5.0 },
            scenario: TransmissionScenario::BEST,
        }
    }

    #[test]
    fn report_is_worker_count_invariant() {
        let bench = text2speech_censoring(InputSize::Small);
        let a = run_loadgen(&bench, &config(300, 1)).unwrap();
        let b = run_loadgen(&bench, &config(300, 3)).unwrap();
        assert_eq!(a.latencies_s.len(), 300);
        for (x, y) in a.latencies_s.iter().zip(&b.latencies_s) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.failovers, b.failovers);
        assert_eq!(a.exec_carbon_g.to_bits(), b.exec_carbon_g.to_bits());
        assert_eq!(a.trans_carbon_g.to_bits(), b.trans_carbon_g.to_bits());
        assert_eq!(a.cost_usd.to_bits(), b.cost_usd.to_bits());
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        let r = LoadReport {
            latencies_s: vec![4.0, 1.0, 3.0, 2.0],
            completed: 4,
            failovers: 0,
            exec_carbon_g: 0.0,
            trans_carbon_g: 0.0,
            cost_usd: 0.0,
            span_s: 0.0,
            scratch_allocs: 0,
            pool: PoolStats::default(),
        };
        let sorted = r.sorted_latencies();
        assert_eq!(r.latency_quantile(&sorted, 0.5), 2.0);
        assert_eq!(r.latency_quantile(&sorted, 0.99), 4.0);
        assert_eq!(r.latency_quantile(&sorted, 0.0), 1.0);
        assert_eq!(r.mean_latency_s(), 2.5);
    }

    #[test]
    fn loadgen_counts_invocations_in_telemetry() {
        caribou_telemetry::enable(Box::new(caribou_telemetry::NullSink));
        let bench = text2speech_censoring(InputSize::Small);
        run_loadgen(&bench, &config(50, 1)).unwrap();
        let finished = caribou_telemetry::finish().expect("session active");
        assert_eq!(finished.recorder.counter("loadgen.invocations"), 50);
        assert_eq!(finished.recorder.counter("loadgen.chunks"), 1);
        // The pooled engine path ran: warm steady state allocates only the
        // caller-owned log records.
        assert_eq!(finished.recorder.gauges["engine.alloc_per_invocation"], 2.0);
    }
}
