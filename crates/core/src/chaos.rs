//! Chaos harness: seeded randomized fault campaigns with run-level
//! invariant checking.
//!
//! The harness deploys a diamond workflow (fan-out, conditional edge, and
//! a synchronization node — every §4 mechanism), offloads it across the
//! evaluation regions, then replays a request trace under a
//! [`FaultPlan::randomized`] campaign: region outages, pairwise network
//! partitions, gray failures, KV throttling, cold-start storms, and
//! stochastic message drops. After every invocation it checks the
//! robustness invariants the design promises:
//!
//! 1. **No invocation lost** — every request lands in exactly one of
//!    {completed clean, fell back home, reported failed}, and the
//!    classification is consistent with the outcome's raw fields.
//! 2. **Routing stays deployable** — the router never hands out a plan
//!    referencing a region without an active deployment.
//! 3. **Metering is honest** — the SNS publishes billed to the invocation
//!    meter equal the messages the pub/sub service actually accepted, per
//!    invocation and campaign-wide (no double counting, no leaks).
//!
//! Everything is deterministic under the campaign seed: the same
//! [`ChaosConfig`] always produces the same [`ChaosReport`].

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::TableSource;
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_exec::outcome::InvocationStatus;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_model::builder::Workflow;
use caribou_model::dag::NodeId;
use caribou_model::dist::DistSpec;
use caribou_model::manifest::DeploymentManifest;
use caribou_model::plan::{DeploymentPlan, HourlyPlans};
use caribou_model::region::{ProviderSet, RegionId};
use caribou_model::rng::Pcg32;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::faults::FaultPlan;
use caribou_simcloud::orchestration::Orchestrator;

use crate::migrator::Migrator;
use crate::utility::DeploymentUtility;

/// Parameters of one chaos campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChaosConfig {
    /// Master seed: the cloud, the fault plan, and every invocation derive
    /// from it deterministically.
    pub seed: u64,
    /// Number of requests replayed, evenly spaced over `duration_s`.
    pub requests: u32,
    /// Campaign length, simulation seconds.
    pub duration_s: f64,
    /// Whether the router's per-region circuit breaker participates.
    pub breaker_enabled: bool,
    /// Per-attempt stochastic message-drop probability.
    pub drop_prob: f64,
    /// Providers whose regions participate in the campaign. The default
    /// AWS-only set replays the exact legacy campaign byte-for-byte;
    /// `aws,gcp` offloads across both substrates so faults can force
    /// cross-provider re-routes.
    pub providers: ProviderSet,
    /// Fallback plan sets precomputed alongside the primary in the
    /// correlated campaign (`0` = no contingency table: the baseline
    /// re-route-home behaviour). Ignored by [`run_campaign`].
    pub contingency: usize,
    /// Worker threads for the contingency solve in the correlated
    /// campaign; the report is bit-identical at any count. Ignored by
    /// [`run_campaign`].
    pub workers: usize,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 42,
            requests: 500,
            duration_s: 6.0 * 3600.0,
            breaker_enabled: true,
            drop_prob: 0.02,
            providers: ProviderSet::aws_only(),
            contingency: 0,
            workers: 1,
        }
    }
}

/// Summary of the fault classes a campaign injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultClassCounts {
    /// Full region outage windows.
    pub outages: usize,
    /// Pairwise network partition windows.
    pub partitions: usize,
    /// Gray-failure (latency inflation) windows.
    pub gray_failures: usize,
    /// KV throttling windows.
    pub kv_throttles: usize,
    /// Cold-start storm windows.
    pub cold_storms: usize,
}

/// Result of one chaos campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Requests replayed.
    pub requests: u32,
    /// Requests that completed on the planned deployment.
    pub completed_clean: u32,
    /// Requests that completed via the mid-flight home fallback.
    pub fell_back_home: u32,
    /// Requests reported failed.
    pub failed: u32,
    /// Requests whose route was rewritten by an open circuit breaker.
    pub breaker_reroutes: u32,
    /// Median end-to-end latency over non-failed requests, seconds.
    pub p50_latency_s: f64,
    /// 99th-percentile end-to-end latency over non-failed requests.
    pub p99_latency_s: f64,
    /// Mean end-to-end latency over non-failed requests.
    pub mean_latency_s: f64,
    /// Fault windows the campaign injected.
    pub faults: FaultClassCounts,
    /// Invariant violations (empty on a healthy run).
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether the campaign upheld every invariant.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// The diamond chaos workload: A fans out to B (conditional) and C, which
/// join at synchronization node D.
fn chaos_app(home: RegionId) -> WorkflowApp {
    let mut wf = Workflow::new("chaos", "0.1");
    let a = wf
        .serverless_function("A")
        .exec_time(DistSpec::Constant { value: 0.4 })
        .register();
    let b = wf
        .serverless_function("B")
        .exec_time(DistSpec::Constant { value: 0.6 })
        .register();
    let c = wf
        .serverless_function("C")
        .exec_time(DistSpec::Constant { value: 0.8 })
        .register();
    let d = wf
        .serverless_function("D")
        .exec_time(DistSpec::Constant { value: 0.3 })
        .register();
    wf.invoke(a, b, Some(0.7));
    wf.invoke(a, c, None);
    wf.invoke(b, d, None);
    wf.invoke(c, d, None);
    wf.get_predecessor_data(d);
    let (dag, profile, _) = wf.extract().expect("static chaos workflow is valid");
    WorkflowApp {
        name: "chaos".into(),
        dag,
        profile,
        home,
    }
}

/// Runs one seeded chaos campaign and returns its report.
pub fn run_campaign(config: &ChaosConfig) -> ChaosReport {
    // The AWS-only default takes the legacy constructor so the campaign
    // replays byte-for-byte; multi-provider sets assemble the cloud from
    // the trait backends and widen the offload universe.
    let mut cloud = if config.providers.is_aws_only() {
        SimCloud::aws(config.seed)
    } else {
        SimCloud::for_providers(config.providers, config.seed)
            .expect("chaos providers must have backends")
    };
    let home = cloud
        .region("us-east-1")
        .expect("default AWS catalog includes us-east-1");
    let regions: Vec<RegionId> = if config.providers.is_aws_only() {
        cloud.regions.evaluation_regions()
    } else {
        SimCloud::evaluation_universe(config.providers)
            .iter()
            .map(|n| cloud.regions.resolve(n).expect("backend region present"))
            .collect()
    };

    // Flat carbon: the campaign studies robustness, not carbon.
    let mut carbon = TableSource::new();
    for (id, _) in cloud.regions.iter() {
        carbon.insert(id, CarbonSeries::new(-400, vec![300.0; 24 * 100]));
    }

    // Deploy home, then offload across the evaluation regions BEFORE any
    // fault is armed — the campaign studies the runtime, not the rollout.
    let app = chaos_app(home);
    let manifest = DeploymentManifest::new("chaos", "0.1", "us-east-1");
    let mut wf =
        DeploymentUtility::deploy_initial(&mut cloud, app, &manifest).expect("initial deploy");
    let offload: Vec<RegionId> = regions.iter().copied().filter(|r| *r != home).collect();
    let mut plan = DeploymentPlan::uniform(4, offload[0]);
    plan.set(NodeId(1), offload[1 % offload.len()]);
    plan.set(NodeId(2), offload[2 % offload.len()]);
    plan.set(NodeId(3), offload[0]);
    let expires = config.duration_s * 10.0 + 1e6;
    let deployed_at = cloud.clock.now();
    Migrator::rollout(
        &mut cloud,
        &mut wf,
        HourlyPlans::daily(plan, 0.0, expires),
        deployed_at,
    )
    .expect("rollout before faults cannot fail");
    wf.router.breaker.enabled = config.breaker_enabled;

    // Arm the randomized campaign.
    let mut faults = FaultPlan::randomized(config.seed, &regions, home, config.duration_s);
    faults.message_drop_prob = config.drop_prob;
    let fault_counts = FaultClassCounts {
        outages: faults.outages.len(),
        partitions: faults.partitions.len(),
        gray_failures: faults.gray_failures.len(),
        kv_throttles: faults.kv_throttles.len(),
        cold_storms: faults.cold_storms.len(),
    };
    cloud.set_faults(faults.clone());

    let engine = ExecutionEngine {
        carbon_source: &carbon,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        orchestrator: Orchestrator::Caribou,
    };

    let mut master = Pcg32::seed_stream(config.seed, 0xc4a0);
    let t0 = cloud.clock.now();
    let step = config.duration_s / config.requests.max(1) as f64;
    let mut report = ChaosReport {
        requests: config.requests,
        completed_clean: 0,
        fell_back_home: 0,
        failed: 0,
        breaker_reroutes: 0,
        p50_latency_s: 0.0,
        p99_latency_s: 0.0,
        mean_latency_s: 0.0,
        faults: fault_counts,
        violations: Vec::new(),
    };
    let mut latencies: Vec<f64> = Vec::new();
    let mut sns_billed_total: u64 = 0;
    let sns_base = cloud.pubsub.total_published();

    for i in 0..config.requests {
        let at_s = t0 + i as f64 * step;
        let decision = wf.router.route(at_s);
        if decision.breaker_rerouted {
            report.breaker_reroutes += 1;
        }

        // Invariant 2: the routed plan references only active regions.
        for r in decision.plan.regions_used() {
            if !wf.active_regions.contains(&r) {
                report.violations.push(format!(
                    "request {i}: routed plan references region {r:?} with no deployment"
                ));
            }
        }

        let published_before = cloud.pubsub.total_published();
        let mut rng = master.fork(i as u64 + 1);
        let outcome = engine.invoke(
            &mut cloud,
            &wf.app,
            &decision.plan,
            i as u64 + 1,
            at_s,
            &mut rng,
        );
        wf.router
            .record_outcome(&decision.plan, outcome.failed_region, at_s);

        // Invariant 1: exactly-one-of classification, consistent with the
        // raw outcome fields.
        match outcome.status() {
            InvocationStatus::Completed => {
                report.completed_clean += 1;
                if !outcome.completed || outcome.failovers > 0 {
                    report.violations.push(format!(
                        "request {i}: Completed status but inconsistent fields"
                    ));
                }
            }
            InvocationStatus::FellBackHome => {
                report.fell_back_home += 1;
                if !outcome.completed || outcome.failovers == 0 {
                    report.violations.push(format!(
                        "request {i}: FellBackHome status but inconsistent fields"
                    ));
                }
                if outcome.failed_region.is_none() {
                    report.violations.push(format!(
                        "request {i}: fell back home without a failed region"
                    ));
                }
            }
            InvocationStatus::Failed => {
                report.failed += 1;
                if outcome.completed {
                    report.violations.push(format!(
                        "request {i}: Failed status on a completed invocation"
                    ));
                }
            }
        }

        // Invariant 3 (per invocation): SNS publishes billed to the meter
        // equal the messages pub/sub accepted during this invocation.
        let billed: u64 = outcome.meter.sns_publishes.values().sum();
        let accepted = cloud.pubsub.total_published() - published_before;
        if billed != accepted {
            report.violations.push(format!(
                "request {i}: meter billed {billed} SNS publishes, pub/sub accepted {accepted}"
            ));
        }
        sns_billed_total += billed;

        if outcome.completed {
            latencies.push(outcome.e2e_latency_s);
        }
    }

    // Invariant 3 (campaign-wide): no publish was double-billed or lost
    // across the whole run.
    let accepted_total = cloud.pubsub.total_published() - sns_base;
    if sns_billed_total != accepted_total {
        report.violations.push(format!(
            "campaign: meters billed {sns_billed_total} SNS publishes, pub/sub accepted {accepted_total}"
        ));
    }
    let classified = report.completed_clean + report.fell_back_home + report.failed;
    if classified != config.requests {
        report.violations.push(format!(
            "campaign: {classified} classified of {} requests",
            config.requests
        ));
    }

    latencies.sort_by(f64::total_cmp);
    if !latencies.is_empty() {
        report.p50_latency_s = caribou_metrics::summary::percentile_sorted(&latencies, 0.50);
        report.p99_latency_s = caribou_metrics::summary::percentile_sorted(&latencies, 0.99);
        report.mean_latency_s = latencies.iter().sum::<f64>() / latencies.len() as f64;
    }
    report
}

/// Fault windows of the correlated classes a campaign injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CorrelatedFaultCounts {
    /// Provider-wide outage windows.
    pub provider_outages: usize,
    /// Shared failure-domain windows.
    pub failure_domains: usize,
    /// Carbon-data (forecast feed) outage windows.
    pub carbon_outages: usize,
}

/// Result of one correlated chaos campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelatedChaosReport {
    /// The base robustness report (invariants, latency percentiles,
    /// legacy fault class counts).
    pub base: ChaosReport,
    /// Correlated fault windows injected on top of the base classes.
    pub correlated: CorrelatedFaultCounts,
    /// Contingency entries the solver precomputed (0 in the baseline).
    pub contingency_entries: usize,
    /// Requests served from a precomputed fallback plan.
    pub fallback_routed: u32,
    /// Requests a half-open breaker admitted as recovery probes. Probe
    /// (canary) traffic deliberately samples a suspected-down path and
    /// is excluded from the user latency percentiles.
    pub probe_requests: u32,
    /// Total operational carbon across every invocation, grams.
    pub total_carbon_g: f64,
    /// Carbon queries answered fresh / last-known-good / yearly-average.
    pub stale_queries: (u64, u64, u64),
}

/// Per-grid-zone carbon intensity for the correlated campaign, gCO2e/kWh.
///
/// Unlike [`run_campaign`]'s flat table, the correlated campaign studies
/// carbon under failover, so the zones need realistic spread: hydro
/// Québec and the Pacific Northwest are clean, PJM and MISO dirty.
fn grid_intensity(zone: &str) -> f64 {
    match zone {
        "CA-QC" => 30.0,
        "US-NW-PACW" => 90.0,
        "US-CAL-CISO" => 240.0,
        "US-MIDA-PJM" => 380.0,
        "US-MIDW-MISO" => 460.0,
        "CA-AB" => 520.0,
        _ => 350.0,
    }
}

/// Runs one seeded *correlated* chaos campaign: provider-wide outages,
/// shared failure domains, and carbon-data outages on top of the base
/// randomized classes — with precomputed contingency failover
/// (`config.contingency > 0`) or the baseline re-route-home behaviour
/// (`== 0`), and stale-forecast degradation on the carbon path.
///
/// Everything is deterministic under the seed and bit-identical at any
/// `config.workers` count.
pub fn run_correlated_campaign(config: &ChaosConfig) -> CorrelatedChaosReport {
    correlated_campaign_with(config, None)
}

/// Runs the pinned provider-wide outage scenario: every region of the
/// victim provider (the first non-home provider in the topology) goes
/// dark over `[0.15, 0.85)` of the campaign, the carbon-data feed goes
/// dark over `[0.15, 0.80)`, and the home region suffers a gray failure
/// (transfer latency ×5 — it is absorbing everyone's failover traffic)
/// for the outage window. No other fault class fires, so the comparison
/// between `contingency > 0` and the re-route-home baseline isolates the
/// correlated-failure response.
pub fn run_provider_outage_scenario(config: &ChaosConfig) -> CorrelatedChaosReport {
    use caribou_model::region::Provider;
    use caribou_simcloud::faults::{CarbonOutage, GrayFailure, ProviderOutage, Window};

    // Rebuild the region topology exactly as the campaign will below.
    let cloud = if config.providers.is_aws_only() {
        SimCloud::aws(config.seed)
    } else {
        SimCloud::for_providers(config.providers, config.seed)
            .expect("chaos providers must have backends")
    };
    let home = cloud
        .region("us-east-1")
        .expect("catalog includes us-east-1");
    let regions: Vec<RegionId> = if config.providers.is_aws_only() {
        cloud.regions.evaluation_regions()
    } else {
        SimCloud::evaluation_universe(config.providers)
            .iter()
            .map(|n| cloud.regions.resolve(n).expect("backend region present"))
            .collect()
    };
    let home_provider = cloud.regions.spec(home).provider;
    let victim = Provider::ALL
        .into_iter()
        .find(|p| {
            *p != home_provider
                && regions
                    .iter()
                    .any(|&r| cloud.regions.spec(r).provider == *p)
        })
        .unwrap_or(home_provider);
    let victims: Vec<RegionId> = regions
        .iter()
        .copied()
        .filter(|&r| cloud.regions.spec(r).provider == victim && r != home)
        .collect();
    let window = Window::new(0.15 * config.duration_s, 0.85 * config.duration_s);
    let mut faults = FaultPlan::none();
    faults.provider_outages.push(ProviderOutage {
        provider: victim,
        regions: victims,
        window,
    });
    faults.carbon_outages.push(CarbonOutage {
        window: Window::new(0.15 * config.duration_s, 0.80 * config.duration_s),
    });
    faults.gray_failures.push(GrayFailure {
        region: home,
        window,
        latency_factor: 5.0,
    });
    faults.message_drop_prob = config.drop_prob;
    correlated_campaign_with(config, Some(faults))
}

/// Shared body of the correlated campaigns: `faults` overrides the
/// default [`FaultPlan::randomized_correlated`] plan when given.
fn correlated_campaign_with(
    config: &ChaosConfig,
    faults_override: Option<FaultPlan>,
) -> CorrelatedChaosReport {
    use caribou_metrics::costmodel::CostModel;
    use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
    use caribou_model::constraints::{Objective, Tolerances};
    use caribou_model::region::Provider;

    let mut cloud = if config.providers.is_aws_only() {
        SimCloud::aws(config.seed)
    } else {
        SimCloud::for_providers(config.providers, config.seed)
            .expect("chaos providers must have backends")
    };
    let home = cloud
        .region("us-east-1")
        .expect("catalog includes us-east-1");
    let regions: Vec<RegionId> = if config.providers.is_aws_only() {
        cloud.regions.evaluation_regions()
    } else {
        SimCloud::evaluation_universe(config.providers)
            .iter()
            .map(|n| cloud.regions.resolve(n).expect("backend region present"))
            .collect()
    };
    let topology: Vec<(RegionId, Provider)> = regions
        .iter()
        .map(|&r| (r, cloud.regions.spec(r).provider))
        .collect();

    // Correlated fault plan first: its carbon-data outage windows feed
    // the stale-aware wrapper below.
    let mut faults = faults_override.unwrap_or_else(|| {
        FaultPlan::randomized_correlated(config.seed, &topology, home, config.duration_s)
    });
    faults.message_drop_prob = config.drop_prob;
    let fault_counts = FaultClassCounts {
        outages: faults.outages.len(),
        partitions: faults.partitions.len(),
        gray_failures: faults.gray_failures.len(),
        kv_throttles: faults.kv_throttles.len(),
        cold_storms: faults.cold_storms.len(),
    };
    let correlated_counts = CorrelatedFaultCounts {
        provider_outages: faults.provider_outages.len(),
        failure_domains: faults.failure_domains.len(),
        carbon_outages: faults.carbon_outages.len(),
    };

    // Per-grid-zone carbon with stale-forecast degradation over the
    // campaign's carbon-data outage windows (seconds → hours).
    let mut table = caribou_carbon::source::TableSource::new();
    for (id, spec) in cloud.regions.iter() {
        let v = grid_intensity(&spec.grid_zone);
        table.insert(id, CarbonSeries::new(-400, vec![v; 24 * 100]));
    }
    let carbon_windows: Vec<(f64, f64)> = faults
        .carbon_outages
        .iter()
        .map(|o| (o.window.start / 3600.0, o.window.end / 3600.0))
        .collect();
    let stale = caribou_carbon::staleness::StaleAwareSource::new(
        table.clone(),
        &regions,
        carbon_windows,
        2.0,
    );

    // Solve the primary 24-hour schedule plus the contingency table over
    // the fresh table (the solve happens before the feed goes dark).
    let app = chaos_app(home);
    let runtime = cloud.compute.clone();
    let latency = cloud.latency.clone();
    let cost_model = CostModel::new(&cloud.pricing);
    let models = DefaultModels {
        profile: &app.profile,
        runtime: &runtime,
        latency: &latency,
        orchestrator: Orchestrator::Caribou,
    };
    let permitted = vec![regions.clone(); app.dag.node_count()];
    let ctx = caribou_solver::SolverContext {
        dag: &app.dag,
        profile: &app.profile,
        permitted: &permitted,
        home,
        objective: Objective::Carbon,
        tolerances: Tolerances {
            latency: 2.0,
            cost: 2.0,
            carbon: f64::INFINITY,
        },
        carbon_source: &table,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        cost_model,
        models: &models,
        mc_config: MonteCarloConfig {
            batch: 60,
            max_samples: 120,
            cv_threshold: 0.1,
        },
    };
    let engine = caribou_solver::EvalEngine::new(config.seed, config.workers.max(1));
    let solver = caribou_solver::HbssSolver::new();
    let expires = config.duration_s * 10.0 + 1e6;
    let mut solve_rng = Pcg32::seed_stream(config.seed, 0x501e);
    let (primary, table_c) = caribou_solver::contingency::solve_hourly_with_contingency(
        &engine,
        &solver,
        &ctx,
        &topology,
        0.0,
        0.0,
        expires,
        &mut solve_rng,
        config.seed,
        config.contingency,
    );

    // Deploy home, every fallback's regions, then the primary — all
    // before a single fault is armed.
    let manifest = DeploymentManifest::new("chaos", "0.1", "us-east-1");
    let mut wf =
        DeploymentUtility::deploy_initial(&mut cloud, app, &manifest).expect("initial deploy");
    let deployed_at = cloud.clock.now();
    for entry in &table_c.entries {
        Migrator::rollout(&mut cloud, &mut wf, entry.plans.clone(), deployed_at)
            .expect("fallback rollout before faults cannot fail");
    }
    Migrator::rollout(&mut cloud, &mut wf, primary, deployed_at)
        .expect("primary rollout before faults cannot fail");
    wf.router.breaker.enabled = config.breaker_enabled;
    let contingency_entries = table_c.len();
    if config.contingency > 0 {
        wf.router.set_contingency(table_c, topology.clone());
    }
    cloud.set_faults(faults.clone());

    let exec = ExecutionEngine {
        carbon_source: &stale,
        carbon_model: CarbonModel::new(TransmissionScenario::BEST),
        orchestrator: Orchestrator::Caribou,
    };

    let mut master = Pcg32::seed_stream(config.seed, 0xc4a0);
    let t0 = cloud.clock.now();
    let step = config.duration_s / config.requests.max(1) as f64;
    let mut base = ChaosReport {
        requests: config.requests,
        completed_clean: 0,
        fell_back_home: 0,
        failed: 0,
        breaker_reroutes: 0,
        p50_latency_s: 0.0,
        p99_latency_s: 0.0,
        mean_latency_s: 0.0,
        faults: fault_counts,
        violations: Vec::new(),
    };
    let mut fallback_routed: u32 = 0;
    let mut probe_requests: u32 = 0;
    let mut total_carbon_g = 0.0;
    let mut latencies: Vec<f64> = Vec::new();
    let mut sns_billed_total: u64 = 0;
    let sns_base = cloud.pubsub.total_published();

    for i in 0..config.requests {
        let at_s = t0 + i as f64 * step;
        let decision = wf.router.route(at_s);
        if decision.breaker_rerouted {
            base.breaker_reroutes += 1;
        }
        if decision.fallback {
            fallback_routed += 1;
        }
        if decision.probed {
            probe_requests += 1;
        }
        for r in decision.plan.regions_used() {
            if !wf.active_regions.contains(&r) {
                base.violations.push(format!(
                    "request {i}: routed plan references region {r:?} with no deployment"
                ));
            }
        }
        let published_before = cloud.pubsub.total_published();
        let mut rng = master.fork(i as u64 + 1);
        let outcome = exec.invoke(
            &mut cloud,
            &wf.app,
            &decision.plan,
            i as u64 + 1,
            at_s,
            &mut rng,
        );
        wf.router
            .record_outcome(&decision.plan, outcome.failed_region, at_s);
        match outcome.status() {
            InvocationStatus::Completed => {
                base.completed_clean += 1;
                if !outcome.completed || outcome.failovers > 0 {
                    base.violations.push(format!(
                        "request {i}: Completed status but inconsistent fields"
                    ));
                }
            }
            InvocationStatus::FellBackHome => {
                base.fell_back_home += 1;
                if !outcome.completed || outcome.failovers == 0 {
                    base.violations.push(format!(
                        "request {i}: FellBackHome status but inconsistent fields"
                    ));
                }
                if outcome.failed_region.is_none() {
                    base.violations.push(format!(
                        "request {i}: fell back home without a failed region"
                    ));
                }
            }
            InvocationStatus::Failed => {
                base.failed += 1;
                if outcome.completed {
                    base.violations.push(format!(
                        "request {i}: Failed status on a completed invocation"
                    ));
                }
            }
        }
        let billed: u64 = outcome.meter.sns_publishes.values().sum();
        let accepted = cloud.pubsub.total_published() - published_before;
        if billed != accepted {
            base.violations.push(format!(
                "request {i}: meter billed {billed} SNS publishes, pub/sub accepted {accepted}"
            ));
        }
        sns_billed_total += billed;
        total_carbon_g += outcome.carbon_g();
        if outcome.completed && !decision.probed {
            latencies.push(outcome.e2e_latency_s);
        }
    }

    let accepted_total = cloud.pubsub.total_published() - sns_base;
    if sns_billed_total != accepted_total {
        base.violations.push(format!(
            "campaign: meters billed {sns_billed_total} SNS publishes, pub/sub accepted {accepted_total}"
        ));
    }
    let classified = base.completed_clean + base.fell_back_home + base.failed;
    if classified != config.requests {
        base.violations.push(format!(
            "campaign: {classified} classified of {} requests",
            config.requests
        ));
    }
    latencies.sort_by(f64::total_cmp);
    if !latencies.is_empty() {
        base.p50_latency_s = caribou_metrics::summary::percentile_sorted(&latencies, 0.50);
        base.p99_latency_s = caribou_metrics::summary::percentile_sorted(&latencies, 0.99);
        base.mean_latency_s = latencies.iter().sum::<f64>() / latencies.len() as f64;
    }
    stale.flush_telemetry();
    CorrelatedChaosReport {
        base,
        correlated: correlated_counts,
        contingency_entries,
        fallback_routed,
        probe_requests,
        total_carbon_g,
        stale_queries: stale.query_counts(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(seed: u64, breaker: bool) -> ChaosConfig {
        ChaosConfig {
            seed,
            requests: 120,
            duration_s: 2.0 * 3600.0,
            breaker_enabled: breaker,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn campaign_is_deterministic_under_a_seed() {
        let a = run_campaign(&quick(7, true));
        let b = run_campaign(&quick(7, true));
        assert_eq!(a, b);
    }

    #[test]
    fn campaign_upholds_invariants_and_exercises_every_fault_class() {
        let report = run_campaign(&quick(42, true));
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert!(report.faults.partitions > 0, "partitions injected");
        assert!(report.faults.gray_failures > 0, "gray failures injected");
        assert!(report.faults.kv_throttles > 0, "KV throttling injected");
        assert_eq!(
            report.completed_clean + report.fell_back_home + report.failed,
            report.requests
        );
        assert!(report.fell_back_home > 0, "faults forced some failovers");
    }

    #[test]
    fn multi_provider_campaign_upholds_invariants() {
        let mut cfg = quick(42, true);
        cfg.providers = ProviderSet::parse("aws,gcp").unwrap();
        let report = run_campaign(&cfg);
        assert!(report.ok(), "violations: {:?}", report.violations);
        assert_eq!(
            report.completed_clean + report.fell_back_home + report.failed,
            report.requests,
            "no invocation lost across the provider boundary"
        );
        // Same seed, same config → same report; and the widened offload
        // universe genuinely changes the campaign relative to aws-only.
        assert_eq!(report, run_campaign(&cfg));
        assert_ne!(report, run_campaign(&quick(42, true)));
    }

    fn correlated(seed: u64, contingency: usize, workers: usize) -> ChaosConfig {
        ChaosConfig {
            seed,
            requests: 200,
            duration_s: 4.0 * 3600.0,
            providers: ProviderSet::parse("aws,gcp").unwrap(),
            contingency,
            workers,
            ..ChaosConfig::default()
        }
    }

    #[test]
    fn correlated_campaign_upholds_invariants_and_injects_every_class() {
        let report = run_correlated_campaign(&correlated(42, 3, 1));
        assert!(report.base.ok(), "violations: {:?}", report.base.violations);
        assert!(report.correlated.provider_outages > 0);
        assert!(report.correlated.failure_domains > 0);
        assert!(report.correlated.carbon_outages > 0);
        assert!(report.contingency_entries > 0);
        let (fresh, lkg, yearly) = report.stale_queries;
        assert!(fresh > 0, "healthy hours answer fresh");
        assert!(
            lkg + yearly > 0,
            "the carbon outage pushed queries down the ladder"
        );
    }

    #[test]
    fn correlated_campaign_is_bit_identical_at_any_worker_count() {
        let w1 = run_correlated_campaign(&correlated(42, 3, 1));
        let w2 = run_correlated_campaign(&correlated(42, 3, 2));
        let w8 = run_correlated_campaign(&correlated(42, 3, 8));
        assert_eq!(w1, w2);
        assert_eq!(w1, w8);
        // And under the same seed the whole report reproduces.
        assert_eq!(w1, run_correlated_campaign(&correlated(42, 3, 1)));
    }

    fn headline(contingency: usize, workers: usize) -> ChaosConfig {
        ChaosConfig {
            seed: 42,
            requests: 1500,
            duration_s: 6.0 * 3600.0,
            drop_prob: 0.0,
            providers: ProviderSet::parse("aws,gcp").unwrap(),
            contingency,
            workers,
            ..ChaosConfig::default()
        }
    }

    /// The pinned headline campaign (EXPERIMENTS.md "Contingency"): a
    /// seeded provider-wide `gcp` outage covering 70% of a 6 h campaign,
    /// with the home region absorbing gray congestion (transfer ×5) for
    /// the duration. Same faults in both runs — the only difference is
    /// the precomputed contingency table. Pinned at seed 42:
    /// p99 2.349 s vs 2.457 s, total carbon 0.219 g vs 0.623 g.
    #[test]
    fn contingency_failover_beats_reroute_home_on_p99_and_carbon() {
        caribou_telemetry::enable(Box::new(caribou_telemetry::MemorySink::default()));
        let with = run_provider_outage_scenario(&headline(3, 1));
        let finished = caribou_telemetry::finish().expect("session active");
        let without = run_provider_outage_scenario(&headline(0, 1));

        assert!(with.base.ok(), "violations: {:?}", with.base.violations);
        assert!(
            without.base.ok(),
            "violations: {:?}",
            without.base.violations
        );
        assert_eq!(without.fallback_routed, 0);
        assert!(
            with.fallback_routed > 0,
            "failover engaged under the outage"
        );
        assert!(
            with.base.p99_latency_s < without.base.p99_latency_s,
            "contingency p99 {} !< baseline p99 {}",
            with.base.p99_latency_s,
            without.base.p99_latency_s
        );
        assert!(
            with.base.p50_latency_s < without.base.p50_latency_s,
            "contingency p50 {} !< baseline p50 {}",
            with.base.p50_latency_s,
            without.base.p50_latency_s
        );
        assert!(
            with.total_carbon_g < without.total_carbon_g,
            "contingency carbon {} !< baseline carbon {}",
            with.total_carbon_g,
            without.total_carbon_g
        );

        // The failover path and the degradation ladder both leave an
        // auditable telemetry trail in the contingency run.
        let rec = &finished.recorder;
        assert!(rec.counter("failover.engaged") >= 1, "engaged counter");
        assert!(rec.counter("failover.rerouted") > 0, "rerouted counter");
        assert!(rec.counter("failover.recovered") >= 1, "recovered counter");
        assert!(rec.counter("carbon.stale.fresh") > 0);
        assert!(rec.counter("carbon.stale.last_known_good") > 0);
        assert!(rec.counter("carbon.stale.yearly_average") > 0);
    }

    #[test]
    fn provider_outage_scenario_is_bit_identical_at_any_worker_count() {
        let cfg = |workers| ChaosConfig {
            seed: 7,
            requests: 200,
            duration_s: 4.0 * 3600.0,
            drop_prob: 0.0,
            providers: ProviderSet::parse("aws,gcp").unwrap(),
            contingency: 3,
            workers,
            ..ChaosConfig::default()
        };
        let w1 = run_provider_outage_scenario(&cfg(1));
        let w2 = run_provider_outage_scenario(&cfg(2));
        let w8 = run_provider_outage_scenario(&cfg(8));
        assert_eq!(w1, w2);
        assert_eq!(w1, w8);
    }

    #[test]
    fn disabling_the_breaker_is_visible_in_reroute_counts() {
        let with = run_campaign(&quick(42, true));
        let without = run_campaign(&quick(42, false));
        assert!(without.ok(), "violations: {:?}", without.violations);
        assert!(with.breaker_reroutes > 0, "breaker engaged under faults");
        assert_eq!(without.breaker_reroutes, 0);
    }
}
