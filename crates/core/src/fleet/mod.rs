//! The fleet subsystem: multi-tenant solving with a cross-app estimate
//! cache and incremental hourly re-solve.
//!
//! Where the rest of the framework plans one workflow at a time (the
//! paper's setting), this module owns a *fleet* of N heterogeneous DAG
//! apps and re-plans every app for every simulated hour through one
//! shared [`EstimateCache`]:
//!
//! * **Generation** — [`caribou_workloads::fleet`] draws seeded apps
//!   from a discrete palette, so large fleets contain structurally
//!   identical apps with distinct constraints.
//! * **Cross-app sharing** — each app gets an [`EvalEngine`] carrying
//!   its structural fingerprint over the shared cache; two apps of the
//!   same species hit each other's `(plan, hour)` estimates because key
//!   and Monte Carlo stream both derive from the fingerprint, never
//!   from app identity.
//! * **Determinism** — every `(app, hour)` solve cell is a pure function
//!   of the fleet seed and its labels: walk RNGs split per cell, results
//!   fold back at cell index. Schedules are bit-identical at any
//!   [`FleetConfig::workers`].
//! * **Incremental re-solve** — [`DependencyIndex`] records which
//!   forecast inputs each app's solves read; after a forecast revision,
//!   [`replan_incremental`] drops exactly the invalidated cache entries
//!   ([`EstimateCache::invalidate_hour`]) and re-runs exactly the dirty
//!   cells, reusing every other cell's plan verbatim — bit-identical to
//!   a from-scratch solve against the revised forecast.
//!
//! The modeled solver footprint (§9.7's solve-carbon accounting via
//! [`crate::tokens::solve_carbon_g`]) is reported per run, so the carbon
//! *saved* by incremental re-solve is a first-class result.

pub mod index;
pub mod perturb;

use std::collections::BTreeMap;
use std::sync::Arc;

use caribou_carbon::series::CarbonSeries;
use caribou_carbon::source::{CarbonDataSource, RegionalSource, TableSource};
use caribou_carbon::synth::SyntheticCarbonSource;
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::montecarlo::{DefaultModels, MonteCarloConfig};
use caribou_model::constraints::Objective;
use caribou_model::plan::DeploymentPlan;
use caribou_model::region::{ProviderSet, RegionId};
use caribou_model::rng::{mix64, SeedSplitter};
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::engine::{EstimateCache, EvalEngine, DEFAULT_CACHE_CAPACITY};
use caribou_solver::hbss::{HbssParams, HbssSolver};
use caribou_solver::pool;
use caribou_workloads::fleet::FleetApp;

pub use index::{DependencyIndex, DirtySet};
pub use perturb::{parse_perturb, PerturbOp, Perturbation};

/// Domain-separation label for per-cell HBSS walk streams.
const FLEET_WALK_DOMAIN: u64 = 0xca1b_f1ee_7a44_0003;

/// Fleet run parameters.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Applications in the fleet.
    pub apps: usize,
    /// Simulated hours each app is re-planned for.
    pub hours: usize,
    /// Worker threads the solve cells fan across (results identical at
    /// any value).
    pub workers: usize,
    /// Master seed: generation, evaluation streams, and walks all derive
    /// from it.
    pub seed: u64,
    /// Shared estimate-cache capacity.
    pub cache_capacity: usize,
    /// Monte Carlo stopping rule (fleet default trades sample count for
    /// throughput; estimates stay deterministic).
    pub mc: MonteCarloConfig,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            apps: 24,
            hours: 24,
            workers: 1,
            seed: 7,
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            mc: MonteCarloConfig {
                batch: 40,
                max_samples: 80,
                cv_threshold: 0.2,
            },
        }
    }
}

/// HBSS parameters for fleet solves: a tighter iteration budget than the
/// single-app default — fleets amortize exploration across thousands of
/// solves sharing one estimate cache.
pub fn fleet_hbss_params() -> HbssParams {
    HbssParams {
        alpha_factor: 3,
        ..HbssParams::default()
    }
}

/// The frozen world a fleet run solves against: simulated cloud models
/// plus a materialized hourly carbon forecast.
pub struct FleetEnv {
    /// Simulated cloud (latency, pricing, compute).
    pub cloud: SimCloud,
    /// Candidate regions (the §9.1 evaluation set).
    pub universe: Vec<RegionId>,
    /// Hourly forecast values per universe region, hours `0..hours`.
    pub forecast: BTreeMap<RegionId, Vec<f64>>,
    seed: u64,
    hours: usize,
    provider_bits: u64,
}

impl FleetEnv {
    /// Builds the environment: an `aws_default` cloud and a synthetic
    /// Electricity-Maps-calibrated forecast materialized at hourly
    /// resolution. Pure function of `(seed, hours)`.
    pub fn new(seed: u64, hours: usize) -> Self {
        Self::for_providers(seed, hours, ProviderSet::aws_only())
            .expect("the AWS backend always exists")
    }

    /// [`FleetEnv::new`] over an explicit provider set: the candidate
    /// universe unions every member backend's evaluation regions, and the
    /// env carries the universe's provider bits so fleet evaluation
    /// streams and cache keys separate from the AWS-only ones
    /// (aws-only ⇒ bits 0 ⇒ byte-identical legacy env).
    pub fn for_providers(
        seed: u64,
        hours: usize,
        providers: ProviderSet,
    ) -> Result<Self, caribou_model::error::ModelError> {
        let cloud = if providers.is_aws_only() {
            SimCloud::aws(seed)
        } else {
            SimCloud::for_providers(providers, seed)?
        };
        let universe: Vec<RegionId> = if providers.is_aws_only() {
            cloud.regions.evaluation_regions()
        } else {
            SimCloud::evaluation_universe(providers)
                .iter()
                .map(|n| cloud.regions.resolve(n))
                .collect::<Result<_, _>>()?
        };
        let provider_bits = cloud.regions.provider_bits(&universe);
        let synth =
            RegionalSource::new(&cloud.regions, SyntheticCarbonSource::aws_calibrated(seed))
                .expect("the catalog's grid zones are all calibrated");
        let forecast = universe
            .iter()
            .map(|&r| {
                let values: Vec<f64> = (0..hours)
                    .map(|h| synth.intensity(r, h as f64 + 0.5))
                    .collect();
                (r, values)
            })
            .collect();
        Ok(FleetEnv {
            cloud,
            universe,
            forecast,
            seed,
            hours,
            provider_bits,
        })
    }

    /// Cache/stream discriminator bits of the universe's non-AWS
    /// providers (0 on the default AWS-only environment).
    pub fn provider_bits(&self) -> u64 {
        self.provider_bits
    }

    /// The fleet seed the environment derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Simulated hours covered by the forecast.
    pub fn hours(&self) -> usize {
        self.hours
    }

    /// Applies forecast revisions in place.
    pub fn apply_perturbations(&mut self, perturbs: &[Perturbation]) {
        for p in perturbs {
            for r in p.touched(&self.universe) {
                let values = self
                    .forecast
                    .get_mut(r)
                    .expect("universe regions all have forecast series");
                values[p.hour] = p.apply(values[p.hour]);
            }
        }
    }

    /// Materializes the forecast as a [`TableSource`] for the solver.
    pub fn table(&self) -> TableSource {
        let mut table = TableSource::new();
        for (&r, values) in &self.forecast {
            table.insert(r, CarbonSeries::new(0, values.clone()));
        }
        table
    }

    /// Forecast intensity at `(region, hour-index)`.
    pub fn intensity(&self, region: RegionId, hour: usize) -> f64 {
        self.forecast[&region][hour]
    }
}

/// One solved `(app, hour)` cell: the chosen plan and its estimated
/// carbon per invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetCell {
    /// The HBSS-selected deployment.
    pub plan: DeploymentPlan,
    /// Mean carbon of the selected plan, gCO₂eq per invocation.
    pub carbon_mean: f64,
}

/// The fleet's full schedule: one cell per `(app, hour)`, app-major.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSchedule {
    /// Applications covered.
    pub apps: usize,
    /// Hours covered per app.
    pub hours: usize,
    cells: Vec<FleetCell>,
}

impl FleetSchedule {
    /// The cell for `(app, hour)`.
    pub fn cell(&self, app: usize, hour: usize) -> &FleetCell {
        &self.cells[app * self.hours + hour]
    }

    /// All cells, app-major.
    pub fn cells(&self) -> &[FleetCell] {
        &self.cells
    }

    /// Order-sensitive digest over every plan and estimate — two
    /// schedules are bit-identical iff their digests match (up to hash
    /// collision), which the determinism smokes diff across worker
    /// counts.
    pub fn digest(&self) -> u64 {
        let mut d = 0xca1b_f1ee_7a44_d167u64;
        for cell in &self.cells {
            for r in cell.plan.assignment() {
                d = mix64(d ^ (r.index() as u64).wrapping_add(0x9e37_79b9_7f4a_7c15));
            }
            d = mix64(d ^ cell.carbon_mean.to_bits());
        }
        d
    }

    /// Mean carbon of the whole schedule, gCO₂eq per invocation summed
    /// over apps and averaged over hours.
    pub fn total_carbon_mean(&self) -> f64 {
        if self.hours == 0 {
            return 0.0;
        }
        self.cells.iter().map(|c| c.carbon_mean).sum::<f64>() / self.hours as f64
    }
}

/// Result of one fleet (re-)plan run.
#[derive(Debug, Clone)]
pub struct FleetReport {
    /// Cells actually solved this run.
    pub solved_cells: usize,
    /// Cells reused verbatim from the prior schedule.
    pub reused_cells: usize,
    /// Distinct apps that re-entered HBSS.
    pub dirty_apps: usize,
    /// Estimate-cache entries dropped by forecast invalidation.
    pub cache_entries_invalidated: u64,
    /// Modeled carbon spent running this run's solves, gCO₂eq (§9.7
    /// solve-footprint accounting).
    pub solve_carbon_g: f64,
    /// Modeled solve carbon avoided by reusing prior cells, gCO₂eq.
    pub saved_solve_carbon_g: f64,
    /// The resulting schedule.
    pub schedule: FleetSchedule,
}

/// Solves the full `apps × hours` grid from scratch.
///
/// The cache may be cold or warm: cached estimates are bit-equal to
/// fresh computation, so the schedule is identical either way.
pub fn solve_fleet(
    apps: &[FleetApp],
    env: &FleetEnv,
    cfg: &FleetConfig,
    cache: &Arc<EstimateCache>,
) -> FleetReport {
    let all: Vec<(usize, usize)> = (0..apps.len())
        .flat_map(|a| (0..cfg.hours).map(move |h| (a, h)))
        .collect();
    run_cells(apps, env, cfg, cache, None, &all, apps.len(), 0)
}

/// Incrementally re-plans after forecast revisions.
///
/// Drops the cache entries whose inputs `perturbs` touched, re-solves
/// exactly the dirty `(app, hour)` cells per the [`DependencyIndex`],
/// and reuses every other cell of `prior` verbatim. The result is
/// bit-identical to [`solve_fleet`] against the revised environment.
///
/// `env` must already have the revisions applied
/// ([`FleetEnv::apply_perturbations`]), and `cache`/`prior` must come
/// from the pre-revision run.
pub fn replan_incremental(
    apps: &[FleetApp],
    env: &FleetEnv,
    cfg: &FleetConfig,
    cache: &Arc<EstimateCache>,
    prior: &FleetSchedule,
    perturbs: &[Perturbation],
) -> FleetReport {
    let index = DependencyIndex::build(apps);
    let dirty = index.dirty_cells(&env.universe, perturbs);

    // Invalidate stale estimates: per revised hour, the union of touched
    // regions. Surviving entries provably read only unrevised inputs.
    let mut by_hour: BTreeMap<usize, Vec<RegionId>> = BTreeMap::new();
    for p in perturbs {
        by_hour
            .entry(p.hour)
            .or_default()
            .extend_from_slice(p.touched(&env.universe));
    }
    let mut invalidated = 0u64;
    for (h, mut regions) in by_hour {
        regions.sort_unstable();
        regions.dedup();
        invalidated += cache.invalidate_hour(h as f64 + 0.5, &regions);
    }

    if caribou_telemetry::is_enabled() {
        caribou_telemetry::count("fleet.cache.invalidated", invalidated);
        for (h, n) in &dirty.per_hour {
            caribou_telemetry::event("fleet.invalidate", format!("h{h}"), *n as f64);
        }
    }
    run_cells(
        apps,
        env,
        cfg,
        cache,
        Some(prior),
        &dirty.cells,
        dirty.apps,
        invalidated,
    )
}

/// Solves `cells` (fanned across the worker pool, folded at cell index)
/// and fills the remaining grid from `base`.
#[allow(clippy::too_many_arguments)]
fn run_cells(
    apps: &[FleetApp],
    env: &FleetEnv,
    cfg: &FleetConfig,
    cache: &Arc<EstimateCache>,
    base: Option<&FleetSchedule>,
    cells: &[(usize, usize)],
    dirty_apps: usize,
    cache_entries_invalidated: u64,
) -> FleetReport {
    let table = env.table();
    let models: Vec<DefaultModels<'_>> = apps
        .iter()
        .map(|a| DefaultModels {
            profile: &a.profile,
            runtime: &env.cloud.compute,
            latency: &env.cloud.latency,
            orchestrator: Orchestrator::Caribou,
        })
        .collect();
    let ctxs: Vec<SolverContext<'_, TableSource, DefaultModels<'_>>> = apps
        .iter()
        .zip(&models)
        .map(|(a, m)| SolverContext {
            dag: &a.dag,
            profile: &a.profile,
            permitted: &a.permitted,
            home: a.home,
            objective: Objective::Carbon,
            tolerances: a.tolerances,
            carbon_source: &table,
            carbon_model: CarbonModel::new(TransmissionScenario::BEST),
            cost_model: CostModel::new(&env.cloud.pricing),
            models: m,
            mc_config: cfg.mc,
        })
        .collect();
    // One engine per app: same solve seed, per-app fingerprint, the
    // env's provider bits, shared cache — the cross-app sharing contract
    // of `EvalEngine::with_cache_providers`.
    let engines: Vec<EvalEngine> = apps
        .iter()
        .map(|a| {
            EvalEngine::with_cache_providers(
                cfg.seed,
                a.fingerprint,
                env.provider_bits,
                1,
                Arc::clone(cache),
            )
        })
        .collect();
    let solver = HbssSolver {
        params: fleet_hbss_params(),
    };

    // Every cell is a pure function of (fleet seed, app, hour): the walk
    // RNG splits off those labels, so the pool may run cells in any
    // order on any worker and the fold below stays bit-identical.
    let (solved, stats) = pool::map_indexed(cfg.workers, cells.len(), |i| {
        let (a, h) = cells[i];
        let mut walk = SeedSplitter::new(cfg.seed)
            .absorb(FLEET_WALK_DOMAIN)
            .absorb(a as u64)
            .absorb(h as u64)
            .rng();
        let outcome = solver.solve_with(&engines[a], &ctxs[a], h as f64 + 0.5, &mut walk);
        FleetCell {
            plan: outcome.best,
            carbon_mean: outcome.best_estimate.carbon.mean,
        }
    });
    stats.emit();
    cache.flush_telemetry();

    let grid = apps.len() * cfg.hours;
    let mut out: Vec<Option<FleetCell>> = match base {
        Some(prior) => {
            assert_eq!(prior.apps, apps.len());
            assert_eq!(prior.hours, cfg.hours);
            prior.cells.iter().cloned().map(Some).collect()
        }
        None => vec![None; grid],
    };
    for (i, &(a, h)) in cells.iter().enumerate() {
        out[a * cfg.hours + h] = Some(solved[i].clone());
    }
    let schedule = FleetSchedule {
        apps: apps.len(),
        hours: cfg.hours,
        cells: out
            .into_iter()
            .map(|c| c.expect("solve cells cover the grid"))
            .collect(),
    };

    // Modeled solve footprint (§9.7): one solve runs a vCPU for a
    // complexity-proportional time in the app's home region.
    let cell_cost = |a: usize, h: usize| {
        let complexity = apps[a].dag.node_count() * apps[a].forecast_reads().len();
        crate::tokens::solve_carbon_g(complexity, 1, true, env.intensity(apps[a].home, h))
    };
    let solve_carbon_g: f64 = cells.iter().map(|&(a, h)| cell_cost(a, h)).sum();
    let full_carbon_g: f64 = (0..apps.len())
        .flat_map(|a| (0..cfg.hours).map(move |h| (a, h)))
        .map(|(a, h)| cell_cost(a, h))
        .sum();

    let report = FleetReport {
        solved_cells: cells.len(),
        reused_cells: grid - cells.len(),
        dirty_apps,
        cache_entries_invalidated,
        solve_carbon_g,
        saved_solve_carbon_g: full_carbon_g - solve_carbon_g,
        schedule,
    };
    if caribou_telemetry::is_enabled() {
        caribou_telemetry::count("fleet.cells.solved", report.solved_cells as u64);
        caribou_telemetry::count("fleet.cells.reused", report.reused_cells as u64);
        caribou_telemetry::count("fleet.apps.dirty", report.dirty_apps as u64);
        caribou_telemetry::gauge("fleet.solve_carbon_g", report.solve_carbon_g);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_workloads::fleet::generate_fleet;

    fn small_cfg() -> FleetConfig {
        FleetConfig {
            apps: 6,
            hours: 4,
            workers: 1,
            seed: 42,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn full_solve_is_worker_count_invariant_and_shares_estimates() {
        let cfg = small_cfg();
        let env = FleetEnv::new(cfg.seed, cfg.hours);
        let apps = generate_fleet(cfg.seed, cfg.apps, &env.universe);
        let solve = |workers: usize| {
            let cache = EstimateCache::shared(cfg.cache_capacity);
            let cfg = FleetConfig { workers, ..cfg };
            let report = solve_fleet(&apps, &env, &cfg, &cache);
            (report, cache)
        };
        let (r1, c1) = solve(1);
        let (r4, _) = solve(4);
        assert_eq!(r1.schedule, r4.schedule);
        assert_eq!(r1.schedule.digest(), r4.schedule.digest());
        assert_eq!(r1.solved_cells, cfg.apps * cfg.hours);
        assert_eq!(r1.reused_cells, 0);
        assert!(
            c1.hit_count() > 0,
            "shared cache must hit across HBSS revisits and same-species apps"
        );
    }

    #[test]
    fn incremental_replan_matches_from_scratch_and_solves_fewer_cells() {
        let cfg = small_cfg();
        let env = FleetEnv::new(cfg.seed, cfg.hours);
        let apps = generate_fleet(cfg.seed, cfg.apps, &env.universe);
        let cache = EstimateCache::shared(cfg.cache_capacity);
        let before = solve_fleet(&apps, &env, &cfg, &cache);

        // Revise one region at one hour.
        let target = env.universe[2];
        let perturbs = vec![Perturbation {
            hour: 1,
            region: Some(target),
            op: PerturbOp::Scale(3.0),
        }];
        let mut revised = FleetEnv::new(cfg.seed, cfg.hours);
        revised.apply_perturbations(&perturbs);

        let incremental =
            replan_incremental(&apps, &revised, &cfg, &cache, &before.schedule, &perturbs);
        let scratch = solve_fleet(
            &apps,
            &revised,
            &cfg,
            &EstimateCache::shared(cfg.cache_capacity),
        );
        assert_eq!(
            incremental.schedule, scratch.schedule,
            "incremental re-solve must be bit-identical to from-scratch"
        );
        assert!(
            incremental.solved_cells < before.solved_cells,
            "only dirty cells re-enter HBSS"
        );
        assert_eq!(
            incremental.solved_cells + incremental.reused_cells,
            cfg.apps * cfg.hours
        );
        assert!(incremental.saved_solve_carbon_g > 0.0);
        // Unperturbed cells are reused verbatim.
        for a in 0..cfg.apps {
            for h in 0..cfg.hours {
                if h != 1 {
                    assert_eq!(
                        incremental.schedule.cell(a, h),
                        before.schedule.cell(a, h),
                        "cell ({a},{h}) should be untouched"
                    );
                }
            }
        }
    }

    #[test]
    fn multi_provider_env_widens_the_universe_and_separates_streams() {
        let aws = FleetEnv::new(42, 4);
        assert_eq!(aws.provider_bits(), 0, "aws-only reserves bits 0");
        let both = FleetEnv::for_providers(42, 4, ProviderSet::parse("aws,gcp").unwrap()).unwrap();
        assert!(both.universe.len() > aws.universe.len());
        assert_ne!(both.provider_bits(), 0);
        // The AWS prefix of the universe is unchanged (same ids, same
        // forecast values), so aws-only fleets are untouched.
        assert_eq!(&both.universe[..aws.universe.len()], &aws.universe[..]);
        for &r in &aws.universe {
            assert_eq!(aws.forecast[&r], both.forecast[&r]);
        }
        // A cross-provider fleet solve stays worker-count invariant.
        let cfg = FleetConfig {
            apps: 4,
            hours: 2,
            seed: 42,
            ..FleetConfig::default()
        };
        let apps = generate_fleet(cfg.seed, cfg.apps, &both.universe);
        let solve = |workers: usize| {
            let cache = EstimateCache::shared(cfg.cache_capacity);
            let cfg = FleetConfig { workers, ..cfg };
            solve_fleet(&apps, &both, &cfg, &cache).schedule
        };
        assert_eq!(solve(1), solve(4));
    }

    #[test]
    fn env_perturbation_only_moves_the_targeted_value() {
        let mut env = FleetEnv::new(3, 6);
        let base = FleetEnv::new(3, 6);
        let r = env.universe[0];
        env.apply_perturbations(&[Perturbation {
            hour: 2,
            region: Some(r),
            op: PerturbOp::Shift(55.0),
        }]);
        for &u in &env.universe.clone() {
            for h in 0..6 {
                let (a, b) = (env.intensity(u, h), base.intensity(u, h));
                if u == r && h == 2 {
                    assert_eq!(a, b + 55.0);
                } else {
                    assert_eq!(a, b);
                }
            }
        }
    }
}
