//! The forecast dependency index behind incremental re-solve.
//!
//! An `(app, hour)` solve cell is a pure function of the app's static
//! structure, the fleet seeds, and the carbon forecast restricted to
//! `(app.forecast_reads(), hour)`: HBSS ranks the app's permitted regions
//! by intensity at the solve hour, and every Monte Carlo estimate reads
//! intensity only for assigned regions plus home at that hour (verified
//! by the incremental-equivalence proptests). The index materializes that
//! read set per app, so a forecast revision maps to exactly the solve
//! cells whose inputs changed — everything else reuses its prior plan
//! verbatim, bit-for-bit.

use std::collections::BTreeMap;

use caribou_model::region::RegionId;
use caribou_workloads::fleet::FleetApp;

use super::perturb::Perturbation;

/// Per-app forecast read sets.
#[derive(Debug, Clone)]
pub struct DependencyIndex {
    reads: Vec<Vec<RegionId>>,
}

/// The solve cells a set of forecast revisions dirties.
#[derive(Debug, Clone, Default)]
pub struct DirtySet {
    /// Dirty `(app, hour)` cells, app-major sorted, deduplicated.
    pub cells: Vec<(usize, usize)>,
    /// Distinct dirty apps.
    pub apps: usize,
    /// Dirty-app count per perturbed hour (for `fleet.invalidate` events).
    pub per_hour: BTreeMap<usize, usize>,
}

impl DependencyIndex {
    /// Builds the index for a fleet.
    pub fn build(apps: &[FleetApp]) -> Self {
        DependencyIndex {
            reads: apps.iter().map(FleetApp::forecast_reads).collect(),
        }
    }

    /// The regions app `a`'s solves read from the forecast.
    pub fn reads(&self, app: usize) -> &[RegionId] {
        &self.reads[app]
    }

    /// Maps forecast revisions to the dirty solve cells.
    ///
    /// App `a` is dirty at hour `h` iff some revision at `h` touches a
    /// region in `reads(a)`. Deterministic: output order is app-major and
    /// independent of the revision order.
    pub fn dirty_cells(&self, universe: &[RegionId], perturbs: &[Perturbation]) -> DirtySet {
        let mut cells: Vec<(usize, usize)> = Vec::new();
        let mut per_hour: BTreeMap<usize, usize> = BTreeMap::new();
        let mut dirty_apps = vec![false; self.reads.len()];
        for (a, reads) in self.reads.iter().enumerate() {
            let mut hours: Vec<usize> = perturbs
                .iter()
                .filter(|p| p.touched(universe).iter().any(|r| reads.contains(r)))
                .map(|p| p.hour)
                .collect();
            hours.sort_unstable();
            hours.dedup();
            for &h in &hours {
                cells.push((a, h));
                *per_hour.entry(h).or_insert(0) += 1;
            }
            dirty_apps[a] = !hours.is_empty();
        }
        DirtySet {
            cells,
            apps: dirty_apps.iter().filter(|d| **d).count(),
            per_hour,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::perturb::parse_perturb;
    use super::*;
    use caribou_model::region::RegionCatalog;
    use caribou_workloads::fleet::generate_fleet;

    #[test]
    fn region_targeted_revision_dirties_a_strict_subset() {
        let cat = RegionCatalog::aws_default();
        let universe = cat.evaluation_regions();
        let fleet = generate_fleet(42, 64, &universe);
        let index = DependencyIndex::build(&fleet);

        // Perturb one non-home-favoured region at one hour: apps whose
        // permitted sets skip that region must stay clean.
        let spec = format!("h5:{}*1.7", cat.name(universe[3]));
        let perturbs = parse_perturb(&spec, &cat, &universe, 24).unwrap();
        let dirty = index.dirty_cells(&universe, &perturbs);
        assert!(dirty.apps > 0, "some apps read the perturbed region");
        assert!(
            dirty.apps < fleet.len(),
            "constraint heterogeneity must keep some apps clean"
        );
        assert_eq!(dirty.cells.len(), dirty.apps, "one hour dirty per app");
        assert_eq!(dirty.per_hour.get(&5), Some(&dirty.apps));
        for (a, h) in &dirty.cells {
            assert_eq!(*h, 5);
            assert!(index.reads(*a).contains(&universe[3]));
        }
    }

    #[test]
    fn all_region_revision_dirties_every_app_at_that_hour_only() {
        let cat = RegionCatalog::aws_default();
        let universe = cat.evaluation_regions();
        let fleet = generate_fleet(9, 16, &universe);
        let index = DependencyIndex::build(&fleet);
        let perturbs = parse_perturb("h2*1.1", &cat, &universe, 24).unwrap();
        let dirty = index.dirty_cells(&universe, &perturbs);
        assert_eq!(dirty.apps, fleet.len());
        assert_eq!(dirty.cells.len(), fleet.len());
        assert!(dirty.cells.iter().all(|(_, h)| *h == 2));
    }

    #[test]
    fn duplicate_revisions_do_not_duplicate_cells() {
        let cat = RegionCatalog::aws_default();
        let universe = cat.evaluation_regions();
        let fleet = generate_fleet(1, 8, &universe);
        let index = DependencyIndex::build(&fleet);
        let perturbs = parse_perturb("h1*2,h1+5", &cat, &universe, 24).unwrap();
        let dirty = index.dirty_cells(&universe, &perturbs);
        assert_eq!(dirty.cells.len(), fleet.len(), "h1 counted once per app");
    }
}
