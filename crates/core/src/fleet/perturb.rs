//! Forecast perturbation specs for fleet re-plan experiments.
//!
//! Grammar (comma-separated terms):
//!
//! ```text
//! spec   := term ("," term)*
//! term   := "h" HOUR [":" REGION] op
//! op     := "*" FACTOR | "+" DELTA | "-" DELTA
//! ```
//!
//! `HOUR` is a simulated-hour index; omitting `REGION` applies the term
//! to every region of the fleet universe. Examples:
//!
//! * `h7*1.5` — hour 7, all regions, carbon intensity × 1.5;
//! * `h7:us-west-2+120` — hour 7, `us-west-2` only, +120 gCO₂eq/kWh;
//! * `h3:ca-central-1*2,h18-40` — two revisions at once.
//!
//! Region names contain `-`, so a shift's sign is found from the *last*
//! `-` of a term (after `*` and `+` have been ruled out): in
//! `h7:us-west-2-40` the region is `us-west-2` and the delta is `-40`.

use caribou_model::region::{RegionCatalog, RegionId};

/// One forecast revision: intensity at (`hour`, `region`) changes by `op`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Perturbation {
    /// Simulated-hour index the revision applies to.
    pub hour: usize,
    /// Affected region; `None` = every region in the fleet universe.
    pub region: Option<RegionId>,
    /// The revision.
    pub op: PerturbOp,
}

/// How an intensity value is revised.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PerturbOp {
    /// Multiply by a factor.
    Scale(f64),
    /// Add a delta (may be negative; results clamp at 0).
    Shift(f64),
}

impl Perturbation {
    /// Applies the revision to one intensity value (clamped at 0).
    pub fn apply(&self, value: f64) -> f64 {
        let v = match self.op {
            PerturbOp::Scale(f) => value * f,
            PerturbOp::Shift(d) => value + d,
        };
        v.max(0.0)
    }

    /// The regions of `universe` this revision touches.
    pub fn touched<'a>(&self, universe: &'a [RegionId]) -> &'a [RegionId] {
        match self.region {
            Some(_) => {
                let i = universe
                    .iter()
                    .position(|r| Some(*r) == self.region)
                    .expect("perturbation region validated against the universe");
                &universe[i..=i]
            }
            None => universe,
        }
    }
}

/// Parses a perturbation spec — see the module docs for the grammar.
///
/// `hours` bounds the hour index; regions resolve against `catalog` and
/// must be members of `universe`.
pub fn parse_perturb(
    spec: &str,
    catalog: &RegionCatalog,
    universe: &[RegionId],
    hours: usize,
) -> Result<Vec<Perturbation>, String> {
    let mut out = Vec::new();
    for term in spec.split(',') {
        let term = term.trim();
        if term.is_empty() {
            return Err(format!("--perturb: empty term in `{spec}`"));
        }
        out.push(parse_term(term, catalog, universe, hours)?);
    }
    Ok(out)
}

fn parse_term(
    term: &str,
    catalog: &RegionCatalog,
    universe: &[RegionId],
    hours: usize,
) -> Result<Perturbation, String> {
    let body = term
        .strip_prefix('h')
        .ok_or_else(|| format!("--perturb: term `{term}` must start with `h<hour>`"))?;
    let digits = body.chars().take_while(char::is_ascii_digit).count();
    if digits == 0 {
        return Err(format!("--perturb: term `{term}` has no hour index"));
    }
    let hour: usize = body[..digits]
        .parse()
        .map_err(|e| format!("--perturb: bad hour in `{term}`: {e}"))?;
    if hour >= hours {
        return Err(format!(
            "--perturb: hour {hour} out of range (fleet simulates hours 0..{hours})"
        ));
    }
    let rest = &body[digits..];
    let (region_part, op_part) = match rest.strip_prefix(':') {
        Some(tail) => {
            // The op starts at the last `*` or `+`; failing those, at the
            // last `-` (region names contain `-`).
            let pos = tail
                .rfind(['*', '+'])
                .or_else(|| tail.rfind('-').filter(|p| *p > 0))
                .ok_or_else(|| format!("--perturb: term `{term}` has no `*`/`+`/`-` op"))?;
            (Some(&tail[..pos]), &tail[pos..])
        }
        None => (None, rest),
    };
    let region = match region_part {
        None => None,
        Some(name) => {
            let id = catalog
                .resolve(name)
                .map_err(|e| format!("--perturb: {e}"))?;
            if !universe.contains(&id) {
                return Err(format!(
                    "--perturb: region `{name}` is not in the fleet universe"
                ));
            }
            Some(id)
        }
    };
    let mut op_chars = op_part.chars();
    let op_char = op_chars
        .next()
        .ok_or_else(|| format!("--perturb: term `{term}` has no op"))?;
    let value = op_chars.as_str();
    let op = match op_char {
        '*' => PerturbOp::Scale(
            value
                .parse()
                .map_err(|e| format!("--perturb: bad factor in `{term}`: {e}"))?,
        ),
        '+' => PerturbOp::Shift(
            value
                .parse()
                .map_err(|e| format!("--perturb: bad delta in `{term}`: {e}"))?,
        ),
        '-' => PerturbOp::Shift(
            -value
                .parse::<f64>()
                .map_err(|e| format!("--perturb: bad delta in `{term}`: {e}"))?,
        ),
        other => {
            return Err(format!(
                "--perturb: unknown op `{other}` in `{term}` (use * + or -)"
            ))
        }
    };
    if let PerturbOp::Scale(f) = op {
        if f < 0.0 {
            return Err(format!("--perturb: negative factor in `{term}`"));
        }
    }
    Ok(Perturbation { hour, region, op })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (RegionCatalog, Vec<RegionId>) {
        let cat = RegionCatalog::aws_default();
        let universe = cat.evaluation_regions();
        (cat, universe)
    }

    #[test]
    fn parses_scale_shift_and_region_terms() {
        let (cat, uni) = setup();
        let ps = parse_perturb("h7*1.5,h3:us-west-2+120,h5:ca-central-1-40", &cat, &uni, 24)
            .expect("valid spec");
        assert_eq!(ps.len(), 3);
        assert_eq!(ps[0].hour, 7);
        assert_eq!(ps[0].region, None);
        assert_eq!(ps[0].op, PerturbOp::Scale(1.5));
        assert_eq!(ps[1].region, cat.id_of("us-west-2"));
        assert_eq!(ps[1].op, PerturbOp::Shift(120.0));
        assert_eq!(ps[2].region, cat.id_of("ca-central-1"));
        assert_eq!(ps[2].op, PerturbOp::Shift(-40.0));
    }

    #[test]
    fn negative_shift_splits_after_hyphenated_region() {
        let (cat, uni) = setup();
        let ps = parse_perturb("h0:us-west-2-7.5", &cat, &uni, 24).expect("valid");
        assert_eq!(ps[0].region, cat.id_of("us-west-2"));
        assert_eq!(ps[0].op, PerturbOp::Shift(-7.5));
        assert_eq!(ps[0].apply(10.0), 2.5);
        assert_eq!(ps[0].apply(5.0), 0.0, "clamped at zero");
    }

    #[test]
    fn rejects_malformed_terms() {
        let (cat, uni) = setup();
        for bad in [
            "7*1.5",          // missing h prefix
            "h*1.5",          // missing hour
            "h99*1.5",        // hour out of range for 24
            "h1:eu-west-1*2", // region outside the universe
            "h1:us-west-2",   // no op
            "h1*-2",          // negative factor
            "h1:nowhere-1*2", // unknown region
            "",               // empty
        ] {
            assert!(
                parse_perturb(bad, &cat, &uni, 24).is_err(),
                "`{bad}` should be rejected"
            );
        }
    }

    #[test]
    fn touched_resolves_region_scope() {
        let (cat, uni) = setup();
        let all = parse_perturb("h1*2", &cat, &uni, 24).unwrap();
        assert_eq!(all[0].touched(&uni), &uni[..]);
        let one = parse_perturb("h1:us-west-1*2", &cat, &uni, 24).unwrap();
        assert_eq!(one[0].touched(&uni), &[cat.id_of("us-west-1").unwrap()]);
    }
}
