//! The Deployment Migrator: automated cross-regional re-deployment (§6.1).
//!
//! Given a freshly solved plan set, the Migrator determines which regions
//! need a function deployment, replays the deployment steps there — IAM
//! role, crane image copy from the home region (no rebuild), topic
//! creation — and activates the plan by updating the KV metadata only once
//! *every* deployment succeeded. "If any function re-deployment fails,
//! the framework defaults to the home region deployment"; the failed plan
//! is retained and retried on later ticks until replaced.

use caribou_model::manifest::IamPolicy;
use caribou_model::plan::HourlyPlans;
use caribou_model::region::RegionId;
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::pubsub::TopicKey;

use crate::error::CoreError;
use crate::utility::DeployedWorkflow;

/// Summary of one migration attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationReport {
    /// Regions that received a new deployment in this attempt.
    pub newly_deployed: Vec<RegionId>,
    /// Total crane-copy egress bytes.
    pub egress_bytes: f64,
    /// Total wall-clock of the migration, seconds.
    pub duration_s: f64,
    /// Whether the plan set was activated.
    pub activated: bool,
}

/// The Deployment Migrator.
#[derive(Debug, Default)]
pub struct Migrator;

impl Migrator {
    /// Attempts to roll out `plans`, activating them on success. On any
    /// failure the router keeps (or reverts to) the home deployment and
    /// the plan set is stored in `workflow.pending` for retry.
    pub fn rollout(
        cloud: &mut SimCloud,
        workflow: &mut DeployedWorkflow,
        plans: HourlyPlans,
        now_s: f64,
    ) -> Result<MigrationReport, CoreError> {
        let needed = plans.regions_used();
        let home = workflow.app.home;
        let mut report = MigrationReport {
            newly_deployed: Vec::new(),
            egress_bytes: 0.0,
            duration_s: 0.0,
            activated: false,
        };
        // Contingency guard: refuse to start a rollout into a region the
        // fault plan already marks as down — the crane copies would be
        // wasted on a region that cannot come up. The plan set is
        // retained so `retry_pending` can pick it up once the window
        // closes. (Outages that *begin* mid-rollout are still surfaced
        // as `DeploymentFailed` by the per-region check below.)
        for &region in &needed {
            if workflow.active_regions.contains(&region) {
                continue;
            }
            if cloud.faults.region_down(region, now_s) {
                let until_s = cloud.faults.down_until(region, now_s).unwrap_or(now_s);
                if caribou_telemetry::is_enabled() {
                    caribou_telemetry::event_at(
                        now_s,
                        "migrator.refused",
                        format!("{}@r{}", workflow.app.name, region.0),
                        until_s,
                    );
                }
                workflow.pending = Some(plans);
                return Err(CoreError::RegionUnavailable { region, until_s });
            }
        }
        let mut rng = cloud.rng.fork(0x4d16);
        for region in needed {
            if workflow.active_regions.contains(&region) {
                continue;
            }
            // Fault injection: region outage or stochastic deploy failure.
            if cloud
                .faults
                .deploy_fails(region, now_s + report.duration_s, &mut rng)
            {
                if caribou_telemetry::is_enabled() {
                    // The §6.1 fallback: failed rollout, traffic stays home.
                    caribou_telemetry::event_at(
                        now_s,
                        "migrator.rollback",
                        format!("{}@r{}", workflow.app.name, region.0),
                        0.0,
                    );
                }
                workflow.pending = Some(plans);
                // The regions deployed before the failure stay deployed
                // (and in `active_regions`), so the retry only copies
                // images to the regions that are still missing. The
                // partial report keeps the billing account consistent.
                return Err(CoreError::DeploymentFailed {
                    region,
                    stage: workflow.app.name.to_string(),
                    partial: Box::new(report),
                });
            }
            // Replay step 2 in the new region: IAM role, crane copy,
            // topics, framework tables.
            let policy = cloud
                .iam
                .policy(&workflow.app.name, home)
                .cloned()
                .unwrap_or_else(IamPolicy::caribou_default);
            cloud
                .iam
                .put_role(workflow.app.name.clone(), region, policy);
            let lm = cloud.latency.clone();
            let copy = cloud
                .registry
                .crane_copy(&workflow.image, home, region, &lm, &mut rng)
                .ok_or_else(|| CoreError::ImageMissing {
                    image: workflow.image.clone(),
                })?;
            report.egress_bytes += copy.egress_bytes;
            report.duration_s += copy.duration_s;
            cloud.meter.record_transfer(home, region, copy.egress_bytes);
            for node in workflow.app.dag.all_nodes() {
                cloud.pubsub.create_topic(TopicKey {
                    workflow: workflow.app.name.to_string(),
                    stage: workflow.app.dag.node(node).name.clone(),
                    region,
                });
            }
            cloud
                .kv
                .create_table(format!("caribou-data@{}", region.0), region);
            cloud
                .kv
                .create_table(format!("caribou-sync@{}", region.0), region);
            workflow.active_regions.insert(region);
            report.newly_deployed.push(region);
        }

        // Activate: update the KV metadata and the router atomically (the
        // paper flips the value in the distributed KV store).
        let plan_json = serde_json::to_vec(&plans).expect("plan serialization is infallible");
        cloud.kv.put_if_absent(
            "caribou-meta",
            &format!("plans:{}:{}", workflow.app.name, now_s as u64),
            bytes::Bytes::from(plan_json),
            home,
        );
        workflow.router.activate(plans);
        workflow.pending = None;
        report.activated = true;
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::event_at(
                now_s,
                "migrator.migration",
                &workflow.app.name,
                report.newly_deployed.len() as f64,
            );
            caribou_telemetry::count(
                "migrator.regions_deployed",
                report.newly_deployed.len() as u64,
            );
        }
        Ok(report)
    }

    /// Retries a pending (previously failed) rollout, if any.
    pub fn retry_pending(
        cloud: &mut SimCloud,
        workflow: &mut DeployedWorkflow,
        now_s: f64,
    ) -> Option<Result<MigrationReport, CoreError>> {
        let plans = workflow.pending.take()?;
        if plans.expired(now_s) {
            // An expired plan is worthless; drop it (traffic is already
            // routed home). The drop is observable so operators can tell
            // "plan replaced" apart from "plan silently abandoned".
            if caribou_telemetry::is_enabled() {
                caribou_telemetry::event_at(
                    now_s,
                    "migrator.plan_expired",
                    &workflow.app.name,
                    plans.expires_at,
                );
            }
            return None;
        }
        Some(Self::rollout(cloud, workflow, plans, now_s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::utility::DeploymentUtility;
    use caribou_exec::engine::WorkflowApp;
    use caribou_model::builder::Workflow;
    use caribou_model::manifest::DeploymentManifest;
    use caribou_model::plan::DeploymentPlan;
    use caribou_simcloud::faults::FaultPlan;

    fn deployed(cloud: &mut SimCloud) -> DeployedWorkflow {
        let mut wf = Workflow::new("wf", "0.1");
        let a = wf.serverless_function("A").register();
        let b = wf.serverless_function("B").register();
        wf.invoke(a, b, None);
        let (dag, profile, _) = wf.extract().unwrap();
        let app = WorkflowApp {
            name: "wf".into(),
            dag,
            profile,
            home: cloud.region("us-east-1").unwrap(),
        };
        let manifest = DeploymentManifest::new("wf", "0.1", "us-east-1");
        DeploymentUtility::deploy_initial(cloud, app, &manifest).unwrap()
    }

    fn plans_using(region: RegionId, expires: f64) -> HourlyPlans {
        HourlyPlans::hourly(
            (0..24)
                .map(|_| DeploymentPlan::uniform(2, region))
                .collect(),
            0.0,
            expires,
        )
    }

    #[test]
    fn rollout_deploys_and_activates() {
        let mut cloud = SimCloud::aws(1);
        let mut wf = deployed(&mut cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        let report = Migrator::rollout(&mut cloud, &mut wf, plans_using(ca, 1e9), 10.0).unwrap();
        assert!(report.activated);
        assert_eq!(report.newly_deployed, vec![ca]);
        assert!(report.egress_bytes > 0.0, "crane copy charges egress");
        assert!(cloud.iam.role_exists("wf", ca));
        assert!(cloud.registry.has_replica("wf:0.1", ca));
        assert!(wf.router.has_active_plan(10.0));
        assert!(wf.active_regions.contains(&ca));
    }

    #[test]
    fn second_rollout_to_same_region_copies_nothing() {
        let mut cloud = SimCloud::aws(2);
        let mut wf = deployed(&mut cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        Migrator::rollout(&mut cloud, &mut wf, plans_using(ca, 1e9), 10.0).unwrap();
        let report = Migrator::rollout(&mut cloud, &mut wf, plans_using(ca, 2e9), 20.0).unwrap();
        assert!(report.activated);
        assert!(report.newly_deployed.is_empty());
        assert_eq!(report.egress_bytes, 0.0);
    }

    #[test]
    fn failed_rollout_falls_back_home_and_retains_pending() {
        let mut cloud = SimCloud::aws(3);
        let mut wf = deployed(&mut cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(FaultPlan::none().with_outage(ca, 0.0, 1000.0));
        // The outage is already known at rollout time, so the Migrator
        // refuses up front with the typed error.
        let err = Migrator::rollout(&mut cloud, &mut wf, plans_using(ca, 1e9), 10.0);
        assert!(matches!(
            err,
            Err(CoreError::RegionUnavailable { region, until_s })
                if region == ca && until_s == 1000.0
        ));
        assert!(!wf.router.has_active_plan(10.0), "traffic stays home");
        assert!(wf.pending.is_some(), "plan retained for retry");
        // After the outage, the retry succeeds.
        let retry = Migrator::retry_pending(&mut cloud, &mut wf, 2000.0).unwrap();
        assert!(retry.is_ok());
        assert!(wf.router.has_active_plan(2000.0));
    }

    #[test]
    fn expired_pending_plan_is_dropped() {
        let mut cloud = SimCloud::aws(4);
        let mut wf = deployed(&mut cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(FaultPlan::none().with_outage(ca, 0.0, 1000.0));
        let _ = Migrator::rollout(&mut cloud, &mut wf, plans_using(ca, 500.0), 10.0);
        assert!(wf.pending.is_some());
        // The plan expired during the outage.
        assert!(Migrator::retry_pending(&mut cloud, &mut wf, 2000.0).is_none());
        assert!(wf.pending.is_none());
    }

    #[test]
    fn retry_with_no_pending_is_noop() {
        let mut cloud = SimCloud::aws(5);
        let mut wf = deployed(&mut cloud);
        assert!(Migrator::retry_pending(&mut cloud, &mut wf, 0.0).is_none());
    }

    fn plans_split(a: RegionId, b: RegionId, expires: f64) -> HourlyPlans {
        let mut plan = DeploymentPlan::uniform(2, a);
        plan.set(caribou_model::dag::NodeId(1), b);
        HourlyPlans::hourly((0..24).map(|_| plan.clone()).collect(), 0.0, expires)
    }

    #[test]
    fn failed_rollout_reports_partial_progress() {
        let mut cloud = SimCloud::aws(6);
        let mut wf = deployed(&mut cloud);
        let west = cloud.region("us-west-1").unwrap();
        let ca = cloud.region("ca-central-1").unwrap();
        // regions_used() is sorted, so us-west-1 (2) deploys before
        // ca-central-1 (4) — and an outage *opens mid-rollout* on the
        // latter (west's crane copy pushes the clock past 10.5 s), so
        // the up-front guard passes and the failure is a mid-rollout
        // DeploymentFailed with partial progress.
        cloud.set_faults(FaultPlan::none().with_outage(ca, 10.5, 1000.0));
        let err = Migrator::rollout(&mut cloud, &mut wf, plans_split(west, ca, 1e9), 10.0);
        let Err(CoreError::DeploymentFailed {
            region, partial, ..
        }) = err
        else {
            panic!("expected DeploymentFailed");
        };
        assert_eq!(region, ca);
        assert_eq!(partial.newly_deployed, vec![west]);
        assert!(partial.egress_bytes > 0.0, "west crane copy was billed");
        assert!(!partial.activated);
        assert!(wf.active_regions.contains(&west), "west stays deployed");
    }

    #[test]
    fn retry_after_partial_failure_does_not_recopy_images() {
        let mut cloud = SimCloud::aws(7);
        let mut wf = deployed(&mut cloud);
        let west = cloud.region("us-west-1").unwrap();
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(FaultPlan::none().with_outage(ca, 10.5, 1000.0));
        let _ = Migrator::rollout(&mut cloud, &mut wf, plans_split(west, ca, 1e9), 10.0);
        // Outage over: the retry deploys only the region that failed.
        let retry = Migrator::retry_pending(&mut cloud, &mut wf, 2000.0)
            .expect("pending plan retained")
            .expect("retry succeeds");
        assert_eq!(retry.newly_deployed, vec![ca], "west is not re-deployed");
        assert!(retry.activated);
        assert!(wf.router.has_active_plan(2000.0));
    }

    #[test]
    fn rollout_refused_into_known_outage_does_no_work() {
        let mut cloud = SimCloud::aws(9);
        let mut wf = deployed(&mut cloud);
        let west = cloud.region("us-west-1").unwrap();
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(FaultPlan::none().with_outage(ca, 0.0, 1000.0));
        // Even though west (deployed first in region order) is healthy,
        // the up-front sweep refuses before any crane copy is billed.
        let err = Migrator::rollout(&mut cloud, &mut wf, plans_split(west, ca, 1e9), 10.0);
        assert!(matches!(
            err,
            Err(CoreError::RegionUnavailable { region, .. }) if region == ca
        ));
        assert!(!wf.active_regions.contains(&west), "no partial deploys");
        assert!(!cloud.registry.has_replica("wf:0.1", west));
        assert!(wf.pending.is_some(), "plan retained for retry");
        // Window closed: retry now deploys both regions.
        let retry = Migrator::retry_pending(&mut cloud, &mut wf, 2000.0)
            .expect("pending plan retained")
            .expect("retry succeeds");
        assert_eq!(retry.newly_deployed, vec![west, ca]);
        assert!(retry.activated);
    }

    #[test]
    fn refused_rollout_emits_refusal_event() {
        caribou_telemetry::enable(Box::new(caribou_telemetry::MemorySink::default()));
        let mut cloud = SimCloud::aws(10);
        let mut wf = deployed(&mut cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(FaultPlan::none().with_outage(ca, 0.0, 700.0));
        let _ = Migrator::rollout(&mut cloud, &mut wf, plans_using(ca, 1e9), 10.0);
        let finished = caribou_telemetry::finish().expect("session active");
        let sink = finished
            .sink
            .as_any()
            .downcast_ref::<caribou_telemetry::MemorySink>()
            .unwrap();
        let refusals: Vec<_> = sink
            .events
            .iter()
            .filter(|e| e.kind == "migrator.refused")
            .collect();
        assert_eq!(refusals.len(), 1);
        assert_eq!(refusals[0].value, 700.0, "records the window end");
    }

    #[test]
    fn expired_pending_drop_emits_telemetry_event() {
        caribou_telemetry::enable(Box::new(caribou_telemetry::MemorySink::default()));
        let mut cloud = SimCloud::aws(8);
        let mut wf = deployed(&mut cloud);
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(FaultPlan::none().with_outage(ca, 0.0, 1000.0));
        let _ = Migrator::rollout(&mut cloud, &mut wf, plans_using(ca, 500.0), 10.0);
        assert!(Migrator::retry_pending(&mut cloud, &mut wf, 2000.0).is_none());
        let finished = caribou_telemetry::finish().expect("session active");
        let sink = finished
            .sink
            .as_any()
            .downcast_ref::<caribou_telemetry::MemorySink>()
            .unwrap();
        let drop_events: Vec<_> = sink
            .events
            .iter()
            .filter(|e| e.kind == "migrator.plan_expired")
            .collect();
        assert_eq!(drop_events.len(), 1);
        assert_eq!(drop_events[0].label, "wf");
        assert_eq!(drop_events[0].value, 500.0, "records the expiry time");
    }
}
