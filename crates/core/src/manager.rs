//! The Deployment Manager's decision logic (§5.2, Fig. 6).
//!
//! The manager iterates over deployed workflows; when a token check is
//! due it collects metrics, earns tokens from the past period's potential
//! savings, compares the budget against the cost of generating a new
//! deployment plan, and picks the plan granularity the budget affords —
//! hourly (24 solves) when rich, daily (one solve) when tight, nothing
//! when broke. The decision core is separated from the framework loop so
//! it can be tested exhaustively.

use crate::tokens::{solve_carbon_g, TokenBucket};

/// What the manager decided at a token check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveDecision {
    /// Not enough budget; keep the current (possibly expired) plan state.
    Skip,
    /// Solve one plan against day-averaged carbon (daily granularity).
    Daily,
    /// Solve 24 hourly plans (full granularity).
    Hourly,
}

/// Configuration of the manager.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ManagerConfig {
    /// Whether the Go Monte Carlo implementation's speedup applies to the
    /// modeled solve cost (§9.7).
    pub go_runtime: bool,
    /// Dynamic token-bucket triggering (§5.2). When `false`, the manager
    /// solves hourly at `fixed_interval_s` unconditionally — the §9.7
    /// ablation.
    pub dynamic_triggering: bool,
    /// Fixed solve interval when `dynamic_triggering` is off, seconds.
    pub fixed_interval_s: f64,
}

impl Default for ManagerConfig {
    fn default() -> Self {
        ManagerConfig {
            go_runtime: true,
            dynamic_triggering: true,
            fixed_interval_s: 86_400.0,
        }
    }
}

/// Metrics collected for one token check (the sliding window of §5.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckMetrics {
    /// Invocations observed in the window.
    pub invocations: usize,
    /// Mean total execution seconds per invocation.
    pub mean_exec_s: f64,
    /// Facility energy per execution second, kWh/s.
    pub energy_per_s_kwh: f64,
    /// `I_home − I_cleanest` over the trailing day, gCO₂eq/kWh.
    pub intensity_differential: f64,
    /// Carbon intensity of the framework's own region now.
    pub framework_intensity: f64,
    /// Workflow complexity (`|N| + |E|`).
    pub complexity: usize,
    /// Window length, seconds.
    pub window_s: f64,
}

/// The per-workflow Deployment Manager.
#[derive(Debug, Clone)]
pub struct DeploymentManager {
    /// The token bucket.
    pub bucket: TokenBucket,
    /// Configuration.
    pub config: ManagerConfig,
    /// Times (simulation seconds) a new plan set was generated.
    pub generations: Vec<f64>,
    /// Cumulative modeled framework carbon from solves, gCO₂eq.
    pub solve_carbon_g: f64,
    /// Current post-solve check interval; starts at one plan horizon
    /// (24 h) during the learning phase and stretches while successive
    /// solves keep producing the same plans (§9.5: "optimizing deployment
    /// regions daily and subsequently transitioning to a lower frequency
    /// schedule").
    pub stable_interval_s: f64,
}

impl DeploymentManager {
    /// Creates a manager whose first check is due at `first_check_s`.
    pub fn new(first_check_s: f64, config: ManagerConfig) -> Self {
        DeploymentManager {
            // Cap the bucket generously: ten hourly solves' worth for a
            // mid-size workflow in a dirty region.
            bucket: TokenBucket::new(first_check_s, 10.0 * solve_carbon_g(10, 24, false, 400.0)),
            config,
            generations: Vec::new(),
            solve_carbon_g: 0.0,
            stable_interval_s: 86_400.0,
        }
    }

    /// Records the outcome of a solve's rollout and schedules the next
    /// check: a changed plan set resets the cadence to one plan horizon
    /// (24 h, the learning phase); an unchanged one stretches the interval
    /// geometrically up to 3.5 days. Returns the chosen interval. No-op
    /// under fixed-frequency triggering.
    pub fn note_solve_outcome(&mut self, now_s: f64, plans_changed: bool) -> f64 {
        if !self.config.dynamic_triggering {
            return self.config.fixed_interval_s;
        }
        const HORIZON_S: f64 = 86_400.0;
        const MAX_STABLE_S: f64 = 3.5 * 86_400.0;
        self.stable_interval_s = if plans_changed {
            HORIZON_S
        } else {
            (self.stable_interval_s * 1.7).min(MAX_STABLE_S)
        };
        self.bucket.next_check_s = now_s + self.stable_interval_s;
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::event_at(
                now_s,
                "manager.cadence_change",
                if plans_changed { "reset" } else { "stretch" },
                self.stable_interval_s,
            );
        }
        self.stable_interval_s
    }

    /// Whether a token check is due at `now_s`.
    pub fn check_due(&self, now_s: f64) -> bool {
        now_s + 1e-9 >= self.bucket.next_check_s
    }

    /// Time of the next scheduled check.
    pub fn next_check_s(&self) -> f64 {
        self.bucket.next_check_s
    }

    /// Runs the token-check decision of Fig. 6 and updates the bucket and
    /// schedule. On `Daily`/`Hourly` the solve's carbon has been consumed
    /// from the bucket and added to [`DeploymentManager::solve_carbon_g`].
    pub fn check(&mut self, now_s: f64, m: CheckMetrics) -> SolveDecision {
        if !self.config.dynamic_triggering {
            // Fixed-frequency ablation (§9.7): always solve hourly and
            // account the cost, without budget gating.
            let cost = solve_carbon_g(
                m.complexity,
                24,
                self.config.go_runtime,
                m.framework_intensity,
            );
            self.solve_carbon_g += cost;
            self.generations.push(now_s);
            self.bucket.next_check_s = now_s + self.config.fixed_interval_s;
            return SolveDecision::Hourly;
        }

        let earned = self.bucket.earn(
            m.invocations,
            m.mean_exec_s,
            m.energy_per_s_kwh,
            m.intensity_differential,
        );
        let earn_rate = if m.window_s > 0.0 {
            earned / m.window_s
        } else {
            0.0
        };
        let hourly_cost = solve_carbon_g(
            m.complexity,
            24,
            self.config.go_runtime,
            m.framework_intensity,
        );
        let daily_cost = solve_carbon_g(
            m.complexity,
            1,
            self.config.go_runtime,
            m.framework_intensity,
        );

        let decision = if self.bucket.try_consume(hourly_cost) {
            self.solve_carbon_g += hourly_cost;
            SolveDecision::Hourly
        } else if self.bucket.try_consume(daily_cost) {
            self.solve_carbon_g += daily_cost;
            SolveDecision::Daily
        } else {
            SolveDecision::Skip
        };
        if decision != SolveDecision::Skip {
            self.generations.push(now_s);
        }
        self.bucket
            .schedule_next_check(now_s, earn_rate, hourly_cost);
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::gauge("manager.token_level_g", self.bucket.tokens());
            caribou_telemetry::count("manager.token_check", 1);
            match decision {
                SolveDecision::Skip => {}
                SolveDecision::Daily => {
                    caribou_telemetry::event_at(now_s, "manager.dp_generation", "daily", daily_cost)
                }
                SolveDecision::Hourly => caribou_telemetry::event_at(
                    now_s,
                    "manager.dp_generation",
                    "hourly",
                    hourly_cost,
                ),
            }
        }
        decision
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(invocations: usize, differential: f64) -> CheckMetrics {
        CheckMetrics {
            invocations,
            mean_exec_s: 10.0,
            energy_per_s_kwh: 1e-6,
            intensity_differential: differential,
            framework_intensity: 32.0,
            complexity: 10,
            window_s: 86_400.0,
        }
    }

    #[test]
    fn broke_bucket_skips() {
        let mut dm = DeploymentManager::new(0.0, ManagerConfig::default());
        let d = dm.check(0.0, metrics(1, 10.0));
        assert_eq!(d, SolveDecision::Skip);
        assert!(dm.generations.is_empty());
        assert_eq!(dm.solve_carbon_g, 0.0);
    }

    #[test]
    fn busy_workflow_earns_hourly_solve() {
        let mut dm = DeploymentManager::new(0.0, ManagerConfig::default());
        // 100k invocations × 10 s × 1e-6 kWh/s × 348 g/kWh ≈ 348 g.
        let d = dm.check(0.0, metrics(100_000, 348.0));
        assert_eq!(d, SolveDecision::Hourly);
        assert_eq!(dm.generations, vec![0.0]);
        assert!(dm.solve_carbon_g > 0.0);
    }

    #[test]
    fn moderate_budget_degrades_to_daily() {
        let mut dm = DeploymentManager::new(0.0, ManagerConfig::default());
        let hourly = solve_carbon_g(10, 24, true, 32.0);
        let daily = solve_carbon_g(10, 1, true, 32.0);
        // Earn between daily and hourly cost.
        let target = (daily + hourly) / 2.0;
        let invocations = (target / (10.0 * 1e-6 * 348.0)).ceil() as usize;
        let d = dm.check(0.0, metrics(invocations, 348.0));
        assert_eq!(d, SolveDecision::Daily);
    }

    #[test]
    fn tokens_accumulate_across_checks() {
        let mut dm = DeploymentManager::new(0.0, ManagerConfig::default());
        let hourly = solve_carbon_g(10, 24, true, 32.0);
        // Earn ~60% of an hourly solve per check.
        let per_check = 0.6 * hourly;
        let invocations = (per_check / (10.0 * 1e-6 * 348.0)).ceil() as usize;
        let first = dm.check(0.0, metrics(invocations, 348.0));
        // First check could afford a daily solve; what matters is that by
        // the second check the hourly budget is reachable.
        let second = dm.check(86_400.0, metrics(invocations, 348.0));
        assert!(
            first == SolveDecision::Daily || second != SolveDecision::Skip,
            "{first:?} then {second:?}"
        );
    }

    #[test]
    fn zero_differential_never_solves() {
        let mut dm = DeploymentManager::new(0.0, ManagerConfig::default());
        for i in 0..10 {
            let d = dm.check(i as f64 * 86_400.0, metrics(1_000_000, 0.0));
            assert_eq!(d, SolveDecision::Skip, "check {i}");
        }
    }

    #[test]
    fn fixed_frequency_ablation_always_solves() {
        let cfg = ManagerConfig {
            dynamic_triggering: false,
            fixed_interval_s: 86_400.0 / 2.0,
            ..ManagerConfig::default()
        };
        let mut dm = DeploymentManager::new(0.0, cfg);
        let d = dm.check(0.0, metrics(0, 0.0));
        assert_eq!(d, SolveDecision::Hourly);
        assert!((dm.next_check_s() - 43_200.0).abs() < 1.0);
        assert!(dm.solve_carbon_g > 0.0);
    }

    #[test]
    fn go_runtime_halves_solve_cost() {
        let cfg_py = ManagerConfig {
            go_runtime: false,
            ..ManagerConfig::default()
        };
        let mut py = DeploymentManager::new(0.0, cfg_py);
        let mut go = DeploymentManager::new(0.0, ManagerConfig::default());
        let m = metrics(100_000, 348.0);
        py.check(0.0, m);
        go.check(0.0, m);
        assert!(go.solve_carbon_g < py.solve_carbon_g);
        assert!((py.solve_carbon_g / go.solve_carbon_g - 534.0 / 276.0).abs() < 0.01);
    }

    #[test]
    fn cadence_stretches_on_stable_plans_and_resets_on_change() {
        let mut dm = DeploymentManager::new(0.0, ManagerConfig::default());
        let a = dm.note_solve_outcome(0.0, true);
        assert!((a - 86_400.0).abs() < 1.0, "learning phase is daily");
        let b = dm.note_solve_outcome(a, false);
        assert!(b > a, "stable plans stretch the interval");
        let c = dm.note_solve_outcome(a + b, false);
        assert!(c > b);
        // Capped at 3.5 days.
        for _ in 0..10 {
            dm.note_solve_outcome(0.0, false);
        }
        assert!(dm.stable_interval_s <= 3.5 * 86_400.0 + 1.0);
        // A changed plan resets to daily.
        let r = dm.note_solve_outcome(0.0, true);
        assert!((r - 86_400.0).abs() < 1.0);
    }

    #[test]
    fn note_solve_outcome_noop_under_fixed_triggering() {
        let cfg = ManagerConfig {
            dynamic_triggering: false,
            fixed_interval_s: 1234.0,
            ..ManagerConfig::default()
        };
        let mut dm = DeploymentManager::new(0.0, cfg);
        assert_eq!(dm.note_solve_outcome(0.0, true), 1234.0);
        assert_eq!(dm.stable_interval_s, 86_400.0, "state untouched");
    }

    #[test]
    fn check_due_respects_schedule() {
        let mut dm = DeploymentManager::new(100.0, ManagerConfig::default());
        assert!(!dm.check_due(50.0));
        assert!(dm.check_due(100.0));
        dm.check(100.0, metrics(10, 100.0));
        assert!(dm.next_check_s() > 100.0);
        assert!(!dm.check_due(100.0 + 1.0));
    }
}
