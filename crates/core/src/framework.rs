//! The top-level Caribou runtime.
//!
//! Owns the simulated cloud and the control-plane state of every deployed
//! workflow, and drives invocation traces end-to-end: routing (including
//! the 10% benchmarking traffic and expiry fallback), execution, metric
//! learning, token-bucket-triggered solving on *forecast* carbon data,
//! migration, and emission accounting on *actual* carbon data — the same
//! separation the paper's evaluation relies on (§9.5).

use caribou_carbon::source::{CarbonDataSource, ForecastingSource};
use caribou_exec::engine::{ExecutionEngine, WorkflowApp};
use caribou_metrics::carbonmodel::{CarbonModel, TransmissionScenario};
use caribou_metrics::costmodel::CostModel;
use caribou_metrics::energy::expected_energy_kwh;
use caribou_metrics::manager::MetricsManager;
use caribou_metrics::montecarlo::MonteCarloConfig;
use caribou_model::constraints::Constraints;
use caribou_model::manifest::DeploymentManifest;
use caribou_model::plan::{DeploymentPlan, HourlyPlans};
use caribou_model::region::RegionId;
use caribou_model::rng::{Pcg32, SeedSplitter};
use caribou_simcloud::cloud::SimCloud;
use caribou_simcloud::orchestration::Orchestrator;
use caribou_solver::context::SolverContext;
use caribou_solver::engine::EvalEngine;
use caribou_solver::hbss::{HbssParams, HbssSolver};
use caribou_solver::hourly::DayAveragedSource;
use caribou_solver::pool;

use crate::error::CoreError;
use crate::manager::{CheckMetrics, DeploymentManager, ManagerConfig, SolveDecision};
use crate::migrator::Migrator;
use crate::utility::{DeployedWorkflow, DeploymentUtility};

/// Framework configuration.
#[derive(Debug, Clone)]
pub struct CaribouConfig {
    /// Regions the solver may consider (before per-workflow constraints).
    pub candidate_regions: Vec<RegionId>,
    /// Transmission-carbon scenario used for decisions *and* accounting.
    pub scenario: TransmissionScenario,
    /// Monte Carlo stopping rule for the solver's estimates.
    pub mc: MonteCarloConfig,
    /// HBSS hyper-parameters.
    pub hbss: HbssParams,
    /// Deployment Manager configuration.
    pub manager: ManagerConfig,
    /// Lifetime of a generated plan set before it expires and traffic
    /// falls back home (§5.2), seconds.
    pub plan_expiry_s: f64,
    /// Region the framework's own components run in (solve overhead is
    /// charged at this region's intensity); defaults to the workflow home.
    pub framework_region: Option<RegionId>,
    /// Master seed for all framework randomness.
    pub seed: u64,
    /// Worker threads the solver's evaluation engine fans candidates
    /// across. Solve results are bit-identical at any value; only
    /// wall-clock changes.
    pub workers: usize,
}

impl CaribouConfig {
    /// A reasonable default over the given candidate regions.
    pub fn new(candidate_regions: Vec<RegionId>, scenario: TransmissionScenario) -> Self {
        CaribouConfig {
            candidate_regions,
            scenario,
            mc: MonteCarloConfig {
                batch: 200,
                max_samples: 2000,
                cv_threshold: 0.05,
            },
            hbss: HbssParams::default(),
            manager: ManagerConfig::default(),
            plan_expiry_s: 2.0 * 86_400.0,
            framework_region: None,
            seed: 7,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

/// One executed invocation in a run report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InvocationSample {
    /// Invocation time, simulation seconds.
    pub at_s: f64,
    /// End-to-end service time, seconds.
    pub latency_s: f64,
    /// Cost, USD.
    pub cost_usd: f64,
    /// Execution carbon, gCO₂eq.
    pub exec_carbon_g: f64,
    /// Transmission carbon, gCO₂eq.
    pub trans_carbon_g: f64,
    /// Whether the invocation completed.
    pub completed: bool,
    /// Whether the invocation completed only by re-routing one or more
    /// nodes to the home deployment mid-flight (§6.1 fallback).
    pub fell_back_home: bool,
    /// Whether this was pinned-home benchmarking traffic.
    pub benchmark_traffic: bool,
    /// Region hosting the majority of the plan's nodes (Fig. 11's
    /// "where most workflow nodes are deployed").
    pub majority_region: RegionId,
}

impl InvocationSample {
    /// Total operational carbon of the invocation, gCO₂eq.
    pub fn carbon_g(&self) -> f64 {
        self.exec_carbon_g + self.trans_carbon_g
    }
}

/// The result of running a trace.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    /// Every executed invocation, in order.
    pub samples: Vec<InvocationSample>,
    /// Times a new plan set was generated.
    pub dp_generations: Vec<f64>,
    /// Modeled carbon of the framework's own solves, gCO₂eq.
    pub framework_carbon_g: f64,
    /// Egress bytes spent on migrations (crane copies).
    pub migration_egress_bytes: f64,
}

impl RunReport {
    /// Total workflow carbon, gCO₂eq.
    pub fn workflow_carbon_g(&self) -> f64 {
        self.samples.iter().map(|s| s.carbon_g()).sum()
    }

    /// Total carbon including framework overhead, gCO₂eq.
    pub fn total_carbon_g(&self) -> f64 {
        self.workflow_carbon_g() + self.framework_carbon_g
    }

    /// Total cost, USD.
    pub fn total_cost_usd(&self) -> f64 {
        self.samples.iter().map(|s| s.cost_usd).sum()
    }

    /// Mean end-to-end latency, seconds.
    pub fn mean_latency_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.latency_s).sum::<f64>() / self.samples.len() as f64
    }

    /// 95th-percentile end-to-end latency, seconds.
    pub fn p95_latency_s(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut v: Vec<f64> = self.samples.iter().map(|s| s.latency_s).collect();
        v.sort_by(f64::total_cmp);
        caribou_metrics::summary::percentile_sorted(&v, 0.95)
    }

    /// Fraction of invocations that completed.
    pub fn completion_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 1.0;
        }
        self.samples.iter().filter(|s| s.completed).count() as f64 / self.samples.len() as f64
    }

    /// Fraction of invocations that completed only via the mid-flight
    /// home-region fallback.
    pub fn fallback_rate(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.fell_back_home).count() as f64 / self.samples.len() as f64
    }

    /// Serializes the per-invocation samples as CSV for external plotting
    /// (one row per invocation).
    pub fn samples_to_csv(&self, catalog: &caribou_model::region::RegionCatalog) -> String {
        let mut out = String::from(
            "at_s,latency_s,cost_usd,exec_carbon_g,trans_carbon_g,completed,benchmark_traffic,majority_region,fell_back_home\n",
        );
        for s in &self.samples {
            out.push_str(&format!(
                "{},{},{},{},{},{},{},{},{}\n",
                s.at_s,
                s.latency_s,
                s.cost_usd,
                s.exec_carbon_g,
                s.trans_carbon_g,
                s.completed,
                s.benchmark_traffic,
                catalog.name(s.majority_region),
                s.fell_back_home
            ));
        }
        out
    }

    /// Machine-readable summary of the run (the per-sample detail stays in
    /// memory; this is the aggregate a dashboard or CI would record).
    pub fn summary_json(&self) -> serde_json::Value {
        serde_json::json!({
            "invocations": self.samples.len(),
            "completion_rate": self.completion_rate(),
            "fallback_rate": self.fallback_rate(),
            "workflow_carbon_g": self.workflow_carbon_g(),
            "framework_carbon_g": self.framework_carbon_g,
            "total_carbon_g": self.total_carbon_g(),
            "cost_usd": self.total_cost_usd(),
            "mean_latency_s": self.mean_latency_s(),
            "p95_latency_s": self.p95_latency_s(),
            "dp_generations_s": self.dp_generations,
            "migration_egress_bytes": self.migration_egress_bytes,
        })
    }
}

struct WorkflowState {
    dep: DeployedWorkflow,
    constraints: Constraints,
    metrics: MetricsManager,
    manager: DeploymentManager,
    last_check_s: f64,
}

/// The Caribou framework over a simulated cloud and a carbon data source.
pub struct Caribou<S: CarbonDataSource> {
    /// The simulated cloud substrate.
    pub cloud: SimCloud,
    /// The *actual* carbon source (the framework only ever sees its past
    /// when solving; accounting uses it directly).
    pub carbon: S,
    /// Configuration.
    pub config: CaribouConfig,
    workflows: Vec<WorkflowState>,
    rng: Pcg32,
    inv_counter: u64,
}

impl<S: CarbonDataSource + Sync> Caribou<S> {
    /// Creates the framework.
    pub fn new(cloud: SimCloud, carbon: S, config: CaribouConfig) -> Self {
        let rng = Pcg32::seed_stream(config.seed, 0xca51b0);
        Caribou {
            cloud,
            carbon,
            config,
            workflows: Vec::new(),
            rng,
            inv_counter: 0,
        }
    }

    /// Deploys a workflow (initial home deployment, §6.1) and registers it
    /// with the Deployment Manager. Returns its index.
    pub fn deploy(
        &mut self,
        app: WorkflowApp,
        manifest: &DeploymentManifest,
        constraints: Constraints,
    ) -> Result<usize, CoreError> {
        let dep = DeploymentUtility::deploy_initial(&mut self.cloud, app, manifest)?;
        let first_check = self.cloud.clock.now();
        self.workflows.push(WorkflowState {
            dep,
            constraints,
            metrics: MetricsManager::new(),
            manager: DeploymentManager::new(first_check, self.config.manager),
            last_check_s: first_check,
        });
        Ok(self.workflows.len() - 1)
    }

    /// The deployed workflow state (for inspection in tests/examples).
    pub fn workflow(&self, idx: usize) -> &DeployedWorkflow {
        &self.workflows[idx].dep
    }

    /// The Deployment Manager of a workflow.
    pub fn manager(&self, idx: usize) -> &DeploymentManager {
        &self.workflows[idx].manager
    }

    /// Runs an invocation trace (ascending times, simulation seconds)
    /// against workflow `idx`, interleaving Deployment Manager ticks.
    pub fn run_trace(&mut self, idx: usize, trace: &[f64]) -> RunReport {
        let mut reports = self.run_multi(&[(idx, trace.to_vec())]);
        reports.remove(&idx).unwrap_or_default()
    }

    /// Runs traces for several deployed workflows concurrently, with the
    /// Deployment Manager "regularly iterating over all deployed
    /// workflows" (§5.2): before each invocation is dispatched, every
    /// workflow whose token check is due gets its tick. Returns one report
    /// per workflow index.
    pub fn run_multi(
        &mut self,
        traces: &[(usize, Vec<f64>)],
    ) -> std::collections::HashMap<usize, RunReport> {
        // Merge all arrivals into one ascending timeline.
        let mut events: Vec<(f64, usize)> = traces
            .iter()
            .flat_map(|(idx, t)| t.iter().map(move |at| (*at, *idx)))
            .collect();
        events.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut reports: std::collections::HashMap<usize, RunReport> = traces
            .iter()
            .map(|(idx, _)| (*idx, RunReport::default()))
            .collect();
        let indices: Vec<usize> = reports.keys().copied().collect();

        for (at_s, idx) in events {
            // Manager pass over every deployed workflow in the run.
            for &w in &indices {
                while self.workflows[w].manager.next_check_s() <= at_s {
                    let check_at = self.workflows[w]
                        .manager
                        .next_check_s()
                        .max(self.workflows[w].last_check_s);
                    let report = reports.get_mut(&w).expect("report exists");
                    self.manager_tick(w, check_at, report);
                }
            }
            let sample = self.invoke_once(idx, at_s);
            reports
                .get_mut(&idx)
                .expect("report exists")
                .samples
                .push(sample);
        }
        for (&idx, report) in reports.iter_mut() {
            let st = &self.workflows[idx];
            report.dp_generations = st.manager.generations.clone();
            report.framework_carbon_g = st.manager.solve_carbon_g;
        }
        reports
    }

    /// Executes one invocation at `at_s` through the router and engine.
    fn invoke_once(&mut self, idx: usize, at_s: f64) -> InvocationSample {
        if at_s > self.cloud.clock.now() {
            self.cloud.clock.advance_to(at_s);
        }
        let state = &mut self.workflows[idx];
        let decision = state.dep.router.route(at_s);
        let plan = decision.plan;
        let majority_region = majority_region(&plan);
        self.inv_counter += 1;
        let inv_id = self.inv_counter;
        let engine = ExecutionEngine {
            carbon_source: &self.carbon,
            carbon_model: CarbonModel::new(self.config.scenario),
            orchestrator: Orchestrator::Caribou,
        };
        let mut rng = self.rng.fork(inv_id);
        let mut outcome = engine.invoke(
            &mut self.cloud,
            &state.dep.app,
            &plan,
            inv_id,
            at_s,
            &mut rng,
        );
        outcome.log.benchmark_traffic = decision.benchmark_traffic;
        state.metrics.record(outcome.log.clone());
        // Feed the outcome back into the router's per-region circuit
        // breaker: consecutive failures of an offload region open its
        // breaker and later invocations are pre-routed home instead of
        // paying the mid-flight failover tax.
        state
            .dep
            .router
            .record_outcome(&plan, outcome.failed_region, at_s);
        InvocationSample {
            at_s,
            latency_s: outcome.e2e_latency_s,
            cost_usd: outcome.cost_usd,
            exec_carbon_g: outcome.exec_carbon_g,
            trans_carbon_g: outcome.trans_carbon_g,
            completed: outcome.completed,
            fell_back_home: outcome.fell_back_home(),
            benchmark_traffic: decision.benchmark_traffic,
            majority_region,
        }
    }

    /// One Deployment Manager tick (Fig. 6): retry pending rollouts,
    /// collect metrics, earn/spend tokens, solve, and migrate.
    fn manager_tick(&mut self, idx: usize, now_s: f64, report: &mut RunReport) {
        // Retry a previously failed rollout first (§6.1). Even a failed
        // attempt may have copied images to some regions; its partial
        // report keeps the egress accounting complete.
        {
            let state = &mut self.workflows[idx];
            match Migrator::retry_pending(&mut self.cloud, &mut state.dep, now_s) {
                Some(Ok(r)) => report.migration_egress_bytes += r.egress_bytes,
                Some(Err(CoreError::DeploymentFailed { partial, .. })) => {
                    report.migration_egress_bytes += partial.egress_bytes;
                }
                _ => {}
            }
        }

        let now_h = now_s / 3600.0;
        let (home, complexity, window_s, invocations, mean_exec_s, energy_per_s, profile) = {
            let state = &self.workflows[idx];
            let dag = &state.dep.app.dag;
            let profile = state.metrics.refreshed_profile(dag, &state.dep.app.profile);
            let window_s = (now_s - state.last_check_s).max(1.0);
            let invocations = state.metrics.invocations_between(state.last_check_s, now_s);
            let expected_exec = profile.expected_total_exec_seconds(dag);
            let mean_exec_s = state.metrics.mean_total_exec_s().unwrap_or(expected_exec);
            let probs = profile.node_invocation_probabilities(dag);
            let energy_per_inv: f64 = profile
                .nodes
                .iter()
                .zip(probs.iter())
                .map(|(n, p)| {
                    p * expected_energy_kwh(n.memory_mb, n.exec_time.mean(), n.cpu_utilization)
                })
                .sum();
            let energy_per_s = if expected_exec > 0.0 {
                energy_per_inv / expected_exec
            } else {
                0.0
            };
            (
                state.dep.app.home,
                dag.complexity(),
                window_s,
                invocations,
                mean_exec_s,
                energy_per_s,
                profile,
            )
        };

        // Carbon differential over the trailing day: home versus the
        // cleanest candidate region.
        let home_avg = self.carbon.average(home, now_h - 24.0, now_h);
        let cleanest = self
            .config
            .candidate_regions
            .iter()
            .map(|r| self.carbon.average(*r, now_h - 24.0, now_h))
            .fold(f64::INFINITY, f64::min);
        let differential = (home_avg - cleanest).max(0.0);
        let framework_region = self.config.framework_region.unwrap_or(home);
        let framework_intensity = self.carbon.intensity(framework_region, now_h);

        let decision = self.workflows[idx].manager.check(
            now_s,
            CheckMetrics {
                invocations,
                mean_exec_s,
                energy_per_s_kwh: energy_per_s,
                intensity_differential: differential,
                framework_intensity,
                complexity,
                window_s,
            },
        );
        self.workflows[idx].last_check_s = now_s;
        if decision == SolveDecision::Skip {
            return;
        }

        // Solve on forecast data only (§7.2): the framework knows the past
        // and Holt-Winters-extrapolates the future.
        let _solve_span = caribou_telemetry::is_enabled()
            .then(|| caribou_telemetry::wall_span("core", "manager.solve_and_rollout"));
        let plans = {
            let state = &self.workflows[idx];
            let dag = &state.dep.app.dag;
            let permitted = state
                .constraints
                .permitted_regions(
                    dag,
                    &self.config.candidate_regions,
                    &self.cloud.regions,
                    home,
                )
                .expect("constraints validated at deploy time");
            let runtime = self.cloud.compute.clone();
            let latency = self.cloud.latency.clone();
            let models = state.metrics.learned_models(
                &profile,
                &runtime,
                &latency,
                Orchestrator::Caribou,
                home,
            );
            let forecast =
                ForecastingSource::fit(&self.carbon, &self.config.candidate_regions, now_h, 48);
            let cost_model = CostModel::new(&self.cloud.pricing);
            let ctx = SolverContext {
                dag,
                profile: &profile,
                permitted: &permitted,
                home,
                objective: state.constraints.objective,
                tolerances: state.constraints.tolerances,
                carbon_source: &forecast,
                carbon_model: CarbonModel::new(self.config.scenario),
                cost_model,
                models: &models,
                mc_config: self.config.mc,
            };
            let solver = HbssSolver {
                params: self.config.hbss,
            };
            let expires = now_s + self.config.plan_expiry_s;
            let mut srng = self.rng.fork(0x501e ^ now_s as u64);
            // One evaluation engine per solve: the forecast and learned
            // models are refreshed every tick, so cached estimates must not
            // outlive this block. The engine seed is derived from the
            // framework seed and the tick time so solves stay reproducible
            // while distinct ticks get distinct streams.
            let engine_seed = SeedSplitter::new(self.config.seed)
                .absorb(0x501e)
                .absorb(now_s.to_bits())
                .seed();
            match decision {
                SolveDecision::Hourly => {
                    // One plan per hour-of-day for the next 24 hours,
                    // fanned across the engine's worker pool. The per-step
                    // walk rngs are pre-forked in order — exactly what the
                    // sequential loop drew — so the schedule is
                    // bit-identical at any worker count.
                    let engine = EvalEngine::new(engine_seed, self.config.workers);
                    let srngs: Vec<Pcg32> = (0..24).map(|step| srng.fork(step as u64)).collect();
                    let (solved, stats) = pool::map_indexed(engine.workers(), 24, |step| {
                        let abs_h = now_h + step as f64;
                        let mut hrng = srngs[step].clone();
                        solver
                            .solve_with(&engine, &ctx, abs_h + 0.5, &mut hrng)
                            .best
                    });
                    stats.emit();
                    engine.flush_telemetry();
                    // Index by hour-of-day so the router's lookup finds the
                    // right plan.
                    let mut per_hour: Vec<Option<DeploymentPlan>> = vec![None; 24];
                    for (step, best) in solved.into_iter().enumerate() {
                        let hod = ((now_h + step as f64) as usize) % 24;
                        per_hour[hod] = Some(best);
                    }
                    let plans: Vec<DeploymentPlan> = per_hour
                        .into_iter()
                        .map(|p| p.expect("all 24 hours solved"))
                        .collect();
                    HourlyPlans::hourly(plans, now_s, expires)
                }
                SolveDecision::Daily => {
                    let averaged = DayAveragedSource::new(&forecast, now_h);
                    let day_ctx = SolverContext {
                        dag,
                        profile: &profile,
                        permitted: &permitted,
                        home,
                        objective: state.constraints.objective,
                        tolerances: state.constraints.tolerances,
                        carbon_source: &averaged,
                        carbon_model: CarbonModel::new(self.config.scenario),
                        cost_model: CostModel::new(&self.cloud.pricing),
                        models: &models,
                        mc_config: self.config.mc,
                    };
                    // The day-averaged source answers the same hour keys
                    // differently from the forecast, so the daily solve
                    // gets its own engine rather than sharing a cache.
                    let day_engine = EvalEngine::new(
                        SeedSplitter::new(engine_seed).absorb(0xda11).seed(),
                        self.config.workers,
                    );
                    let outcome = solver.solve_with(&day_engine, &day_ctx, now_h + 12.0, &mut srng);
                    day_engine.flush_telemetry();
                    HourlyPlans::daily(outcome.best, now_s, expires)
                }
                SolveDecision::Skip => unreachable!(),
            }
        };

        // Compare against the previously active plans to drive the
        // check-cadence adaptation (§9.5): identical plan sets relax the
        // solve frequency, changed ones reset it to daily.
        let state = &mut self.workflows[idx];
        let plans_changed = state
            .dep
            .router
            .active_plans()
            .map(|prev| {
                // "Similar 24-hour DPs" count as stable (§9.5): only a
                // material difference (more than 4 of 24 hours reassigned)
                // resets the learning cadence.
                let differing = (0..24)
                    .filter(|h| prev.plan_for_hour(*h) != plans.plan_for_hour(*h))
                    .count();
                differing > 4
            })
            .unwrap_or(true);
        let interval = state.manager.note_solve_outcome(now_s, plans_changed);
        let mut plans = plans;
        plans.expires_at = (now_s + interval + 7200.0)
            .min(now_s + self.config.plan_expiry_s.max(interval + 7200.0));

        // Roll out: on failure the plan stays pending and traffic remains
        // home-routed, but any partial progress is still billed.
        match Migrator::rollout(&mut self.cloud, &mut state.dep, plans, now_s) {
            Ok(r) => report.migration_egress_bytes += r.egress_bytes,
            Err(CoreError::DeploymentFailed { partial, .. }) => {
                report.migration_egress_bytes += partial.egress_bytes;
            }
            Err(_) => {}
        }
    }
}

/// The region hosting the majority of a plan's nodes.
pub fn majority_region(plan: &DeploymentPlan) -> RegionId {
    let mut counts: Vec<(RegionId, usize)> = Vec::new();
    for r in plan.assignment() {
        match counts.iter_mut().find(|(id, _)| id == r) {
            Some((_, c)) => *c += 1,
            None => counts.push((*r, 1)),
        }
    }
    counts
        .into_iter()
        .max_by_key(|(id, c)| (*c, usize::MAX - id.index()))
        .map(|(id, _)| id)
        .expect("non-empty plan")
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_carbon::series::CarbonSeries;
    use caribou_carbon::source::TableSource;
    use caribou_model::builder::Workflow;
    use caribou_model::dist::DistSpec;

    fn flat_carbon(cloud: &SimCloud) -> TableSource {
        let mut t = TableSource::new();
        for (id, spec) in cloud.regions.iter() {
            let v = match spec.name.as_str() {
                "us-east-1" | "us-east-2" => 380.0,
                "ca-central-1" => 32.0,
                _ => 350.0,
            };
            t.insert(id, CarbonSeries::new(-400, vec![v; 24 * 100]));
        }
        t
    }

    fn compute_heavy_app(cloud: &SimCloud) -> WorkflowApp {
        let mut wf = Workflow::new("heavy", "0.1");
        let a = wf
            .serverless_function("A")
            .exec_time(DistSpec::Constant { value: 5.0 })
            .register();
        let b = wf
            .serverless_function("B")
            .exec_time(DistSpec::Constant { value: 10.0 })
            .register();
        wf.invoke(a, b, None)
            .payload(DistSpec::Constant { value: 20_000.0 });
        let (dag, profile, _) = wf.extract().unwrap();
        WorkflowApp {
            name: "heavy".into(),
            dag,
            profile,
            home: cloud.region("us-east-1").unwrap(),
        }
    }

    fn framework(seed: u64) -> Caribou<TableSource> {
        let mut cloud = SimCloud::aws(seed);
        cloud.compute.cold_start_prob = 0.0;
        let carbon = flat_carbon(&cloud);
        let regions = cloud.regions.evaluation_regions();
        let mut config = CaribouConfig::new(regions, TransmissionScenario::BEST);
        config.mc = MonteCarloConfig {
            batch: 60,
            max_samples: 120,
            cv_threshold: 0.1,
        };
        config.hbss.max_iterations = 60;
        config.seed = seed;
        Caribou::new(cloud, carbon, config)
    }

    fn tolerant_constraints(n: usize) -> Constraints {
        let mut c = Constraints::unconstrained(n);
        c.tolerances.latency = 0.5;
        c.tolerances.cost = 0.5;
        c
    }

    #[test]
    fn end_to_end_run_reduces_carbon_once_plan_activates() {
        let mut fw = framework(1);
        let app = compute_heavy_app(&fw.cloud);
        let manifest = DeploymentManifest::new("heavy", "0.1", "us-east-1");
        let idx = fw.deploy(app, &manifest, tolerant_constraints(2)).unwrap();

        // A busy trace: 2000/day over 3 days earns a solve quickly.
        let trace = caribou_workloads::traces::uniform_trace(10.0, 3.0 * 86_400.0, 2000.0);
        let report = fw.run_trace(idx, &trace);
        assert!(!report.dp_generations.is_empty(), "a plan was solved");
        assert!(report.completion_rate() > 0.999);

        // Carbon per invocation in the last day must be far below the
        // first hours (home-only) — the plan moved the workflow to
        // ca-central-1 (~12x cleaner).
        let early: Vec<&InvocationSample> = report
            .samples
            .iter()
            .filter(|s| s.at_s < 3600.0 && !s.benchmark_traffic)
            .collect();
        let late: Vec<&InvocationSample> = report
            .samples
            .iter()
            .filter(|s| s.at_s > 2.0 * 86_400.0 && !s.benchmark_traffic)
            .collect();
        let mean = |v: &[&InvocationSample]| -> f64 {
            v.iter().map(|s| s.carbon_g()).sum::<f64>() / v.len() as f64
        };
        let early_c = mean(&early);
        let late_c = mean(&late);
        assert!(late_c < early_c * 0.4, "early {early_c} g, late {late_c} g");
        // Framework overhead is accounted and small relative to savings.
        assert!(report.framework_carbon_g > 0.0);
        assert!(report.framework_carbon_g < report.workflow_carbon_g());
    }

    #[test]
    fn benchmark_traffic_stays_home() {
        let mut fw = framework(2);
        let app = compute_heavy_app(&fw.cloud);
        let home = app.home;
        let manifest = DeploymentManifest::new("heavy", "0.1", "us-east-1");
        let idx = fw.deploy(app, &manifest, tolerant_constraints(2)).unwrap();
        let trace = caribou_workloads::traces::uniform_trace(10.0, 2.0 * 86_400.0, 1500.0);
        let report = fw.run_trace(idx, &trace);
        let bench: Vec<&InvocationSample> = report
            .samples
            .iter()
            .filter(|s| s.benchmark_traffic)
            .collect();
        assert!(!bench.is_empty());
        let frac = bench.len() as f64 / report.samples.len() as f64;
        assert!((frac - 0.1).abs() < 0.01, "benchmark fraction {frac}");
        assert!(bench.iter().all(|s| s.majority_region == home));
    }

    #[test]
    fn no_carbon_differential_never_solves() {
        // A world where every region has identical intensity: no potential
        // savings, so the token bucket never earns and the framework never
        // spends overhead (§5.2: overhead must stay below savings).
        let mut cloud = SimCloud::aws(3);
        cloud.compute.cold_start_prob = 0.0;
        let mut carbon = TableSource::new();
        for (id, _) in cloud.regions.iter() {
            carbon.insert(id, CarbonSeries::new(-400, vec![380.0; 24 * 100]));
        }
        let regions = cloud.regions.evaluation_regions();
        let mut config = CaribouConfig::new(regions, TransmissionScenario::BEST);
        config.mc = MonteCarloConfig {
            batch: 60,
            max_samples: 120,
            cv_threshold: 0.1,
        };
        config.seed = 3;
        let app = compute_heavy_app(&cloud);
        let mut fw = Caribou::new(cloud, carbon, config);
        let manifest = DeploymentManifest::new("heavy", "0.1", "us-east-1");
        let idx = fw.deploy(app, &manifest, tolerant_constraints(2)).unwrap();
        let trace = caribou_workloads::traces::uniform_trace(10.0, 3.0 * 86_400.0, 2000.0);
        let report = fw.run_trace(idx, &trace);
        assert!(report.dp_generations.is_empty());
        assert_eq!(report.framework_carbon_g, 0.0);
        assert!(report
            .samples
            .iter()
            .all(|s| s.majority_region == fw.workflow(idx).app.home));
    }

    #[test]
    fn run_report_serializes_for_dashboards() {
        let mut fw = framework(8);
        let app = compute_heavy_app(&fw.cloud);
        let manifest = DeploymentManifest::new("heavy", "0.1", "us-east-1");
        let idx = fw.deploy(app, &manifest, tolerant_constraints(2)).unwrap();
        let trace = caribou_workloads::traces::uniform_trace(10.0, 7200.0, 400.0);
        let report = fw.run_trace(idx, &trace);

        let json = report.summary_json();
        assert_eq!(json["invocations"], report.samples.len());
        assert!(json["workflow_carbon_g"].as_f64().unwrap() > 0.0);
        assert!(json["completion_rate"].as_f64().unwrap() > 0.99);

        let csv = report.samples_to_csv(&fw.cloud.regions);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), report.samples.len() + 1);
        assert!(lines[0].starts_with("at_s,latency_s"));
        assert!(lines[1].contains("us-east-1"));
    }

    #[test]
    fn multi_workflow_runs_share_the_cloud() {
        let mut fw = framework(7);
        let app_a = compute_heavy_app(&fw.cloud);
        let mut app_b = compute_heavy_app(&fw.cloud);
        app_b.name = "second".into();
        let manifest_a = DeploymentManifest::new("heavy", "0.1", "us-east-1");
        let manifest_b = DeploymentManifest::new("second", "0.1", "us-east-1");
        let a = fw
            .deploy(app_a, &manifest_a, tolerant_constraints(2))
            .unwrap();
        let b = fw
            .deploy(app_b, &manifest_b, tolerant_constraints(2))
            .unwrap();
        let trace_a = caribou_workloads::traces::uniform_trace(10.0, 86_400.0, 600.0);
        let trace_b = caribou_workloads::traces::uniform_trace(40.0, 86_400.0, 300.0);
        let reports = fw.run_multi(&[(a, trace_a.clone()), (b, trace_b.clone())]);
        assert_eq!(reports[&a].samples.len(), trace_a.len());
        assert_eq!(reports[&b].samples.len(), trace_b.len());
        assert!(reports[&a].completion_rate() > 0.999);
        assert!(reports[&b].completion_rate() > 0.999);
        // The two workflows are isolated: benchmark-traffic fractions hold
        // for each independently.
        for (idx, trace) in [(a, &trace_a), (b, &trace_b)] {
            let bench = reports[&idx]
                .samples
                .iter()
                .filter(|s| s.benchmark_traffic)
                .count();
            let frac = bench as f64 / trace.len() as f64;
            assert!((frac - 0.1).abs() < 0.02, "wf {idx}: {frac}");
        }
    }

    #[test]
    fn outage_trips_breaker_and_traffic_falls_back_home() {
        use caribou_exec::router::BreakerState;
        use caribou_simcloud::faults::FaultPlan;

        let mut fw = framework(9);
        let app = compute_heavy_app(&fw.cloud);
        let manifest = DeploymentManifest::new("heavy", "0.1", "us-east-1");
        let idx = fw.deploy(app, &manifest, tolerant_constraints(2)).unwrap();
        let ca = fw.cloud.region("ca-central-1").unwrap();
        // Install an offload plan directly, then take the region down.
        let plans = HourlyPlans::daily(DeploymentPlan::uniform(2, ca), 0.0, 1e9);
        Migrator::rollout(&mut fw.cloud, &mut fw.workflows[idx].dep, plans, 0.0).unwrap();
        fw.cloud
            .set_faults(FaultPlan::none().with_outage(ca, 1000.0, 1e9));

        let trace: Vec<f64> = (0..60).map(|i| 2000.0 + i as f64 * 10.0).collect();
        let report = fw.run_trace(idx, &trace);

        // Nothing is lost: early invocations fail over mid-flight, and
        // once the breaker opens the router pre-routes home.
        assert!(report.completion_rate() > 0.999);
        assert!(report.fallback_rate() > 0.0, "some mid-flight failovers");
        assert_eq!(
            fw.workflows[idx].dep.router.breaker_state(ca),
            BreakerState::Open
        );
        // After the breaker opens, at most the occasional half-open probe
        // still pays the failover path.
        let late_fallbacks = report
            .samples
            .iter()
            .rev()
            .take(20)
            .filter(|s| s.fell_back_home)
            .count();
        assert!(late_fallbacks <= 1, "late fallbacks: {late_fallbacks}");
    }

    #[test]
    fn majority_region_picks_mode() {
        let plan = DeploymentPlan::new(vec![RegionId(1), RegionId(2), RegionId(2)]);
        assert_eq!(majority_region(&plan), RegionId(2));
        let single = DeploymentPlan::uniform(4, RegionId(5));
        assert_eq!(majority_region(&single), RegionId(5));
    }
}
