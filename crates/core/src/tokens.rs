//! Token-bucket self-regulation of deployment-plan generation (§5.2).
//!
//! "Tokens represent the carbon budget for system overhead"; they are
//! earned from past-period invocations weighted by runtime and the carbon
//! intensity differential between the home region and the cleanest
//! available region — a sliding-window estimate of the savings a new plan
//! could realize. A deployment solve consumes tokens proportional to the
//! workflow's complexity and the carbon intensity of the region the
//! framework itself runs in. The next token-check time is derived from the
//! gap between bucket content and solve cost, smoothed by a sigmoid so it
//! tracks the invocation rate of the past period.

use caribou_metrics::energy;

/// Modeled solver wall-clock per solve-iteration-unit, seconds. Calibrated
/// to the paper's report: a 24-hour-granularity solve of Text2Speech
/// Censoring (complexity 10) runs ~534 s in Python (~22.3 s per hourly
/// solve → 2.225 s per complexity unit).
pub const SOLVE_SECONDS_PER_COMPLEXITY: f64 = 2.225;

/// Speedup of the Go Monte Carlo re-implementation (§9.7: "doubling
/// performance compared to Python", dropping 534 s to ~276 s).
pub const GO_SPEEDUP: f64 = 534.0 / 276.0;

/// Modeled wall-clock of one deployment solve, seconds.
pub fn solve_seconds(complexity: usize, hourly_solves: usize, go_runtime: bool) -> f64 {
    let per_solve = SOLVE_SECONDS_PER_COMPLEXITY * complexity as f64;
    let total = per_solve * hourly_solves as f64;
    if go_runtime {
        total / GO_SPEEDUP
    } else {
        total
    }
}

/// Carbon cost of one deployment solve, gCO₂eq: the solver runs one fully
/// utilized vCPU for [`solve_seconds`] in the framework's region.
pub fn solve_carbon_g(
    complexity: usize,
    hourly_solves: usize,
    go_runtime: bool,
    framework_intensity: f64,
) -> f64 {
    let secs = solve_seconds(complexity, hourly_solves, go_runtime);
    framework_intensity * energy::P_MAX_KW * energy::PUE * secs / 3600.0
}

/// The per-workflow token bucket.
///
/// # Examples
///
/// ```
/// use caribou_core::tokens::TokenBucket;
///
/// let mut bucket = TokenBucket::new(0.0, 1e6);
/// // 1,000 invocations of a 10 s workflow at 1e-6 kWh/s across a
/// // 348 g/kWh differential earn ~3.5 g of carbon budget.
/// bucket.earn(1000, 10.0, 1e-6, 348.0);
/// assert!(bucket.try_consume(3.0));
/// assert!(!bucket.try_consume(3.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TokenBucket {
    /// Current budget, gCO₂eq.
    tokens: f64,
    /// Cap on the bucket (multiples of one hourly solve's cost keep the
    /// budget from growing unboundedly during long stable periods).
    pub cap: f64,
    /// Simulation time of the next scheduled token check.
    pub next_check_s: f64,
    /// Minimum interval between checks, seconds.
    pub min_interval_s: f64,
    /// Maximum interval between checks, seconds.
    pub max_interval_s: f64,
}

impl TokenBucket {
    /// Creates an empty bucket with its first check due at `first_check_s`.
    pub fn new(first_check_s: f64, cap: f64) -> Self {
        TokenBucket {
            tokens: 0.0,
            cap,
            next_check_s: first_check_s,
            min_interval_s: 3600.0,
            max_interval_s: 86_400.0,
        }
    }

    /// Current budget, gCO₂eq.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Earns tokens from observed potential savings (§5.2: "Functions
    /// with higher invocation counts and longer runtimes accumulate more
    /// tokens. Each token represents the carbon intensity differential
    /// between target regions").
    ///
    /// `invocations` and `mean_exec_s` describe the past period (the
    /// sliding window); `energy_per_s_kwh` is the workflow's facility
    /// energy draw per execution second; `intensity_differential` is
    /// `I_home − I_cleanest` (clamped at zero).
    pub fn earn(
        &mut self,
        invocations: usize,
        mean_exec_s: f64,
        energy_per_s_kwh: f64,
        intensity_differential: f64,
    ) -> f64 {
        let earned = invocations as f64
            * mean_exec_s.max(0.0)
            * energy_per_s_kwh.max(0.0)
            * intensity_differential.max(0.0);
        self.tokens = (self.tokens + earned).min(self.cap);
        earned
    }

    /// Attempts to pay for a solve costing `cost_g`; returns whether the
    /// budget sufficed (and was consumed).
    pub fn try_consume(&mut self, cost_g: f64) -> bool {
        if self.tokens + 1e-15 >= cost_g {
            self.tokens -= cost_g;
            true
        } else {
            false
        }
    }

    /// Schedules the next check: the time to accumulate the remaining
    /// deficit at the past period's earn rate, squashed through a sigmoid
    /// onto `[min_interval, max_interval]` so that bursty workflows check
    /// often and idle ones back off (§5.2, Fig. 6 "Determine Check Time").
    pub fn schedule_next_check(&mut self, now_s: f64, earn_rate_per_s: f64, cost_g: f64) -> f64 {
        let deficit = (cost_g - self.tokens).max(0.0);
        let eta_s = if earn_rate_per_s > 1e-18 {
            deficit / earn_rate_per_s
        } else {
            self.max_interval_s * 10.0
        };
        // Sigmoid-smooth the ETA onto the interval band: an ETA equal to
        // the geometric mid-band maps to ~the middle of the band.
        let mid = (self.min_interval_s * self.max_interval_s).sqrt();
        let x = (eta_s / mid).ln();
        let sig = 1.0 / (1.0 + (-x).exp());
        let interval = self.min_interval_s + (self.max_interval_s - self.min_interval_s) * sig;
        self.next_check_s = now_s + interval;
        self.next_check_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_seconds_matches_paper_calibration() {
        // Text2Speech Censoring: 5 nodes + 5 edges = complexity 10;
        // 24-hour granularity → ~534 s in Python, ~276 s in Go (§9.7).
        let py = solve_seconds(10, 24, false);
        assert!((py - 534.0).abs() < 10.0, "python {py}");
        let go = solve_seconds(10, 24, true);
        assert!((go - 276.0).abs() < 10.0, "go {go}");
    }

    #[test]
    fn solve_carbon_matches_paper_figure() {
        // ~1.98e-2 gCO₂eq for the 534 s solve in ca-central-1 (§9.7).
        let g = solve_carbon_g(10, 24, false, 32.0);
        assert!((g / 1.98e-2 - 1.0).abs() < 0.15, "carbon {g}");
    }

    #[test]
    fn earn_scales_with_volume_and_differential() {
        let mut b = TokenBucket::new(0.0, 1e9);
        let e1 = b.earn(100, 2.0, 1e-6, 300.0);
        let e2 = b.earn(200, 2.0, 1e-6, 300.0);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
        assert!((b.tokens() - (e1 + e2)).abs() < 1e-12);
        // No differential → nothing earned.
        assert_eq!(b.earn(100, 2.0, 1e-6, 0.0), 0.0);
        assert_eq!(b.earn(100, 2.0, 1e-6, -50.0), 0.0);
    }

    #[test]
    fn bucket_caps() {
        let mut b = TokenBucket::new(0.0, 1.0);
        b.earn(1_000_000, 10.0, 1e-3, 500.0);
        assert_eq!(b.tokens(), 1.0);
    }

    #[test]
    fn consume_requires_budget() {
        let mut b = TokenBucket::new(0.0, 1e9);
        b.earn(10, 1.0, 1e-6, 100.0); // 1e-3 g
        assert!(!b.try_consume(1.0));
        assert!(b.try_consume(5e-4));
        assert!(b.tokens() < 1e-3);
    }

    #[test]
    fn next_check_tracks_earn_rate() {
        let mut fast = TokenBucket::new(0.0, 1e9);
        let mut slow = TokenBucket::new(0.0, 1e9);
        let cost = 1.0;
        let t_fast = fast.schedule_next_check(0.0, 1e-3, cost); // 1000 s ETA
        let t_slow = slow.schedule_next_check(0.0, 1e-6, cost); // 1e6 s ETA
        assert!(t_fast < t_slow, "fast {t_fast} slow {t_slow}");
        for t in [t_fast, t_slow] {
            assert!(t >= fast.min_interval_s);
            assert!(t <= fast.max_interval_s + 1.0);
        }
    }

    #[test]
    fn zero_rate_backs_off_to_max() {
        let mut b = TokenBucket::new(0.0, 1e9);
        let t = b.schedule_next_check(100.0, 0.0, 1.0);
        assert!((t - (100.0 + b.max_interval_s)).abs() < b.max_interval_s * 0.05);
    }

    #[test]
    fn full_bucket_checks_soon() {
        let mut b = TokenBucket::new(0.0, 1e9);
        b.earn(1000, 10.0, 1e-3, 500.0); // plenty of tokens
        let t = b.schedule_next_check(0.0, 1e-3, 0.5);
        // No deficit → ETA 0 → near the minimum interval.
        assert!(t < b.min_interval_s * 2.0, "t {t}");
    }
}
