//! `caribou-telemetry` — tracing, metrics and event-journal subsystem for
//! the Caribou stack.
//!
//! Instrumented code (simcloud, exec, solver, core, metrics) calls the free
//! functions in this module — [`count`], [`gauge`], [`observe`], [`event`],
//! [`span_at`], [`wall_span`] — which are no-ops costing one thread-local
//! boolean check unless a session is active. Sessions are per-thread: the
//! simulator is single-threaded, so no locks appear on hot paths and
//! parallel test threads get independent recorders.
//!
//! ```no_run
//! use caribou_telemetry as telemetry;
//!
//! telemetry::enable(Box::new(telemetry::MemorySink::default()));
//! telemetry::count("pubsub.publish", 1);
//! telemetry::event("pubsub.retry", "us-east-1", 2.0);
//! let session = telemetry::finish().unwrap();
//! assert_eq!(session.recorder.counter("pubsub.publish"), 1);
//! ```

pub mod recorder;
pub mod replay;
pub mod sink;
pub mod sketch;
pub mod span;

use std::cell::{Cell, RefCell};

pub use recorder::{Event, Histogram, Journal, Recorder, HISTOGRAM_BUCKETS, MIN_BUCKET};
pub use sink::{JsonlSink, MemorySink, NullSink, TelemetrySink};
pub use sketch::{Moments, QuantileSketch, SKETCH_BUCKETS, SUB_BUCKETS};
pub use span::{chrome_trace, flame_summary, SpanRecord, WallSpanGuard};

/// Default ring-buffer capacity of the event journal.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 65_536;

struct Session {
    recorder: Recorder,
    sink: Box<dyn TelemetrySink>,
    /// Virtual sim time, fed by the sim clock so events don't need a time
    /// parameter threaded through every call site.
    sim_now_s: f64,
    /// Current wall-span nesting depth.
    depth: u32,
    /// Wall epoch for guard spans.
    epoch: std::time::Instant,
}

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static SESSION: RefCell<Option<Session>> = const { RefCell::new(None) };
}

/// A finished telemetry session: the final aggregates and the sink, handed
/// back so callers can extract buffered data (e.g. [`MemorySink`]).
pub struct FinishedSession {
    pub recorder: Recorder,
    pub sink: Box<dyn TelemetrySink>,
}

/// Whether a telemetry session is active on this thread.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.with(|e| e.get())
}

/// Start a session on this thread with the default journal capacity.
pub fn enable(sink: Box<dyn TelemetrySink>) {
    enable_with_capacity(sink, DEFAULT_JOURNAL_CAPACITY);
}

/// Start a session with an explicit journal ring-buffer capacity.
pub fn enable_with_capacity(sink: Box<dyn TelemetrySink>, journal_capacity: usize) {
    SESSION.with(|s| {
        *s.borrow_mut() = Some(Session {
            recorder: Recorder::new(journal_capacity),
            sink,
            sim_now_s: 0.0,
            depth: 0,
            epoch: std::time::Instant::now(),
        });
    });
    ENABLED.with(|e| e.set(true));
}

/// End the session: flushes the summary to the sink and returns both the
/// recorder and the sink. Returns `None` if no session was active.
pub fn finish() -> Option<FinishedSession> {
    ENABLED.with(|e| e.set(false));
    SESSION.with(|s| s.borrow_mut().take()).map(|mut session| {
        session.sink.finish(&session.recorder);
        FinishedSession {
            recorder: session.recorder,
            sink: session.sink,
        }
    })
}

#[inline]
fn with_session<R>(f: impl FnOnce(&mut Session) -> R) -> Option<R> {
    if !is_enabled() {
        return None;
    }
    SESSION.with(|s| s.borrow_mut().as_mut().map(f))
}

/// Feed the current virtual sim time; the sim clock calls this on advance.
#[inline]
pub fn set_sim_now(t_s: f64) {
    if !is_enabled() {
        return;
    }
    with_session(|s| s.sim_now_s = t_s);
}

/// Current virtual sim time as last fed by the clock.
#[inline]
pub fn sim_now() -> f64 {
    with_session(|s| s.sim_now_s).unwrap_or(0.0)
}

/// Increment a counter.
#[inline]
pub fn count(key: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    with_session(|s| s.recorder.count(key, delta));
}

/// Set a gauge to its latest value.
#[inline]
pub fn gauge(key: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    with_session(|s| s.recorder.gauge(key, value));
}

/// Record an observation into a log-scale histogram.
#[inline]
pub fn observe(key: &'static str, value: f64) {
    if !is_enabled() {
        return;
    }
    with_session(|s| s.recorder.observe(key, value));
}

/// Append an event to the journal at the current sim time and stream it to
/// the sink. `label` is only materialized when a session is active.
#[inline]
pub fn event(kind: &'static str, label: impl AsRef<str>, value: f64) {
    if !is_enabled() {
        return;
    }
    with_session(|s| {
        let e = Event {
            t_s: s.sim_now_s,
            kind,
            label: label.as_ref().to_string(),
            value,
        };
        s.sink.record_event(&e);
        s.recorder.journal.push(e);
        s.recorder.count(kind, 1);
    });
}

/// Like [`event`] but with an explicit sim timestamp.
#[inline]
pub fn event_at(t_s: f64, kind: &'static str, label: impl AsRef<str>, value: f64) {
    if !is_enabled() {
        return;
    }
    with_session(|s| {
        let e = Event {
            t_s,
            kind,
            label: label.as_ref().to_string(),
            value,
        };
        s.sink.record_event(&e);
        s.recorder.journal.push(e);
        s.recorder.count(kind, 1);
    });
}

/// Record a completed sim-time span: the simulator knows the modeled
/// `(start, duration)` pair, so no guard object is needed. `pid` groups
/// spans per invocation; `tid` is the lane within it (node name, `pubsub`).
#[inline]
pub fn span_at(
    cat: &'static str,
    name: impl AsRef<str>,
    start_s: f64,
    dur_s: f64,
    pid: u64,
    tid: impl AsRef<str>,
) {
    if !is_enabled() {
        return;
    }
    with_session(|s| {
        let rec = SpanRecord {
            name: name.as_ref().to_string(),
            cat,
            ts_us: (start_s.max(0.0) * 1e6) as u64,
            dur_us: (dur_s.max(0.0) * 1e6).round() as u64,
            pid,
            tid: tid.as_ref().to_string(),
            depth: 0,
        };
        s.sink.record_span(&rec);
    });
}

/// Start a wall-clock span guard; records on drop. Use the [`span!`] macro
/// for brevity. Nesting depth is tracked per thread.
pub fn wall_span(cat: &'static str, name: impl AsRef<str>) -> WallSpanGuard {
    let active = is_enabled();
    if active {
        with_session(|s| s.depth += 1);
    }
    WallSpanGuard {
        name: name.as_ref().to_string(),
        cat,
        start: std::time::Instant::now(),
        active,
    }
}

pub(crate) fn finish_wall_span(guard: &mut span::WallSpanGuard) {
    with_session(|s| {
        let dur = guard.start.elapsed();
        s.depth = s.depth.saturating_sub(1);
        let rec = SpanRecord {
            name: guard.name.clone(),
            cat: guard.cat,
            ts_us: guard.start.saturating_duration_since(s.epoch).as_micros() as u64,
            dur_us: dur.as_micros() as u64,
            pid: 0,
            tid: format!("wall:{}", guard.cat),
            depth: s.depth,
        };
        s.sink.record_span(&rec);
        s.recorder
            .observe(guard.name.leak_or_static(), dur.as_secs_f64());
    });
}

trait LeakOrStatic {
    fn leak_or_static(&self) -> &'static str;
}

impl LeakOrStatic for String {
    /// Wall spans observe into a histogram keyed by `&'static str`; span
    /// names come from a small fixed set of call sites, so interning by
    /// leaking is bounded.
    fn leak_or_static(&self) -> &'static str {
        use std::collections::BTreeSet;
        use std::sync::Mutex;
        static INTERNED: Mutex<BTreeSet<&'static str>> = Mutex::new(BTreeSet::new());
        let mut set = INTERNED.lock().unwrap();
        if let Some(s) = set.get(self.as_str()) {
            return s;
        }
        let leaked: &'static str = Box::leak(self.clone().into_boxed_str());
        set.insert(leaked);
        leaked
    }
}

/// Run `f` against the active recorder (e.g. to snapshot counters mid-run).
pub fn with_recorder<R>(f: impl FnOnce(&Recorder) -> R) -> Option<R> {
    with_session(|s| f(&s.recorder))
}

#[cfg(test)]
mod tests {
    // Sessions are thread-local and the test harness gives each test its
    // own thread, so these lifecycle tests don't interfere.
    use super::*;

    #[test]
    fn disabled_calls_are_noops_and_finish_returns_none() {
        assert!(!is_enabled());
        count("x", 1);
        gauge("g", 1.0);
        observe("h", 1.0);
        event("e.kind", "label", 0.0);
        span_at("cat", "name", 0.0, 1.0, 0, "t");
        {
            let _g = wall_span("cat", "guard");
        }
        assert!(finish().is_none());
    }

    #[test]
    fn session_records_and_hands_back_sink() {
        enable(Box::new(MemorySink::default()));
        assert!(is_enabled());
        set_sim_now(10.0);
        assert_eq!(sim_now(), 10.0);
        count("kv.read", 3);
        gauge("tokens", 2.5);
        observe("lat", 0.125);
        event("pubsub.publish", "r0", 1.0);
        event_at(42.0, "pubsub.ack", "r1", 0.0);
        span_at("exec", "nodeA", 10.0, 0.5, 7, "node:0");

        let finished = finish().expect("session was active");
        assert!(!is_enabled());
        assert_eq!(finished.recorder.counter("kv.read"), 3);
        // Events also bump a counter under their kind.
        assert_eq!(finished.recorder.counter("pubsub.publish"), 1);
        assert_eq!(finished.recorder.gauges["tokens"], 2.5);
        assert_eq!(finished.recorder.journal.len(), 2);
        let times: Vec<f64> = finished.recorder.journal.iter().map(|e| e.t_s).collect();
        assert_eq!(times, [10.0, 42.0]);

        let sink = finished
            .sink
            .as_any()
            .downcast_ref::<MemorySink>()
            .expect("downcast the sink we enabled with");
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.spans.len(), 1);
        assert_eq!(sink.spans[0].name, "nodeA");
        assert_eq!(sink.spans[0].ts_us, 10_000_000);
        assert_eq!(sink.spans[0].dur_us, 500_000);
        assert_eq!(sink.spans[0].pid, 7);
    }

    #[test]
    fn wall_span_nesting_tracks_depth_and_observes_duration() {
        enable(Box::new(MemorySink::default()));
        {
            let _outer = wall_span("solver", "outer");
            {
                let _inner = wall_span("solver", "inner");
            }
        }
        let finished = finish().unwrap();
        let sink = finished.sink.as_any().downcast_ref::<MemorySink>().unwrap();
        // Guards record on drop: inner first at depth 1, outer at depth 0.
        assert_eq!(sink.spans.len(), 2);
        assert_eq!(sink.spans[0].name, "inner");
        assert_eq!(sink.spans[0].depth, 1);
        assert_eq!(sink.spans[1].name, "outer");
        assert_eq!(sink.spans[1].depth, 0);
        assert_eq!(finished.recorder.histograms["outer"].count, 1);
        assert_eq!(finished.recorder.histograms["inner"].count, 1);
    }

    #[test]
    fn wall_span_guard_from_disabled_period_stays_inert() {
        // A guard taken while disabled must not record even if a session
        // starts before it drops.
        let guard = wall_span("cat", "stale");
        enable(Box::new(MemorySink::default()));
        drop(guard);
        let finished = finish().unwrap();
        let sink = finished.sink.as_any().downcast_ref::<MemorySink>().unwrap();
        assert!(sink.spans.is_empty());
    }

    #[test]
    fn journal_capacity_is_honored_by_the_session() {
        enable_with_capacity(Box::new(NullSink), 3);
        for i in 0..8 {
            event("cap.test", format!("e{i}"), i as f64);
        }
        let finished = finish().unwrap();
        assert_eq!(finished.recorder.journal.len(), 3);
        assert_eq!(finished.recorder.journal.dropped(), 5);
        // The counter still saw all eight.
        assert_eq!(finished.recorder.counter("cap.test"), 8);
    }

    #[test]
    fn with_recorder_snapshots_mid_session() {
        assert!(with_recorder(|_| ()).is_none());
        enable(Box::new(NullSink));
        count("mid", 4);
        let snap = with_recorder(|r| r.counter("mid"));
        assert_eq!(snap, Some(4));
        finish();
    }
}
