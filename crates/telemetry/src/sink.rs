//! Streaming sinks for telemetry output.
//!
//! A [`TelemetrySink`] receives every journal [`Event`] and completed
//! [`SpanRecord`] as they are recorded, plus one final summary when the
//! session is finished. Aggregates (counters/gauges/histograms) always
//! accumulate in the in-memory [`crate::Recorder`] regardless of sink.
//!
//! Built-in implementations:
//!
//! * [`NullSink`] — discards everything. This is the default; combined with
//!   the disabled-by-default global switch, instrumentation costs a single
//!   thread-local boolean check when telemetry is off.
//! * [`MemorySink`] — buffers events and spans in memory; used by tests and
//!   by in-process trace export.
//! * [`JsonlSink`] — appends one JSON object per line to a file. Journal
//!   events are `{"type":"event",...}`, spans `{"type":"span",...}`, and
//!   the closing summary `{"type":"summary",...}`. The format is replayed
//!   by `caribou trace`.
//!
//! # Adding a new event
//!
//! Call [`crate::event`] (journal + sink), [`crate::count`] /
//! [`crate::gauge`] / [`crate::observe`] (aggregates only) from any crate
//! that depends on `caribou-telemetry`. Pick a dotted `kind` namespaced by
//! subsystem (`pubsub.retry`, `kv.rmw_conflict`, `solver.accept`). No sink
//! or schema change is needed; sinks treat kinds as opaque strings.

use std::io::Write;

use serde_json::{Map, Value};

use crate::recorder::{Event, Recorder};
use crate::span::SpanRecord;

/// Receiver for streamed telemetry.
pub trait TelemetrySink: std::any::Any {
    /// Called for every journal event (after ring-buffer insertion).
    fn record_event(&mut self, _event: &Event) {}

    /// Called for every completed span.
    fn record_span(&mut self, _span: &SpanRecord) {}

    /// Called once when the telemetry session finishes, with the final
    /// aggregate state.
    fn finish(&mut self, _recorder: &Recorder) {}

    /// Downcast support so callers can recover a concrete sink (e.g. a
    /// [`MemorySink`]'s buffered spans) from [`crate::FinishedSession`].
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {
    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Buffers events and spans in memory.
#[derive(Debug, Default)]
pub struct MemorySink {
    pub events: Vec<Event>,
    pub spans: Vec<SpanRecord>,
}

impl TelemetrySink for MemorySink {
    fn record_event(&mut self, event: &Event) {
        self.events.push(event.clone());
    }

    fn record_span(&mut self, span: &SpanRecord) {
        self.spans.push(span.clone());
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// Appends one JSON object per line to a writer (typically a file).
pub struct JsonlSink<W: Write> {
    writer: std::io::BufWriter<W>,
}

impl JsonlSink<std::fs::File> {
    /// Create (truncate) a journal file at `path`.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<Self> {
        Ok(JsonlSink {
            writer: std::io::BufWriter::new(std::fs::File::create(path)?),
        })
    }
}

impl<W: Write> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: std::io::BufWriter::new(writer),
        }
    }

    fn write_line(&mut self, value: &Value) {
        if let Ok(line) = serde_json::to_string(value) {
            let _ = writeln!(self.writer, "{line}");
        }
    }
}

pub(crate) fn event_to_json(event: &Event) -> Value {
    let mut obj = Map::new();
    obj.insert("type".to_string(), Value::String("event".to_string()));
    obj.insert("t_s".to_string(), Value::Number(event.t_s));
    obj.insert("kind".to_string(), Value::String(event.kind.to_string()));
    obj.insert("label".to_string(), Value::String(event.label.clone()));
    obj.insert("value".to_string(), Value::Number(event.value));
    Value::Object(obj)
}

pub(crate) fn span_to_json(span: &SpanRecord) -> Value {
    let mut obj = Map::new();
    obj.insert("type".to_string(), Value::String("span".to_string()));
    obj.insert("name".to_string(), Value::String(span.name.clone()));
    obj.insert("cat".to_string(), Value::String(span.cat.to_string()));
    obj.insert("ts_us".to_string(), Value::Number(span.ts_us as f64));
    obj.insert("dur_us".to_string(), Value::Number(span.dur_us as f64));
    obj.insert("pid".to_string(), Value::Number(span.pid as f64));
    obj.insert("tid".to_string(), Value::String(span.tid.clone()));
    obj.insert("depth".to_string(), Value::Number(span.depth as f64));
    Value::Object(obj)
}

pub(crate) fn summary_to_json(recorder: &Recorder) -> Value {
    let mut counters = Map::new();
    for (k, v) in &recorder.counters {
        counters.insert(k.to_string(), Value::Number(*v as f64));
    }
    let mut gauges = Map::new();
    for (k, v) in &recorder.gauges {
        gauges.insert(k.to_string(), Value::Number(*v));
    }
    let mut histograms = Map::new();
    for (k, h) in &recorder.histograms {
        let mut hm = Map::new();
        hm.insert("count".to_string(), Value::Number(h.count as f64));
        hm.insert("mean".to_string(), Value::Number(h.mean()));
        hm.insert("min".to_string(), Value::Number(h.min.min(h.max)));
        hm.insert("max".to_string(), Value::Number(h.max.max(h.min)));
        hm.insert("p50".to_string(), Value::Number(h.quantile(0.5)));
        hm.insert("p99".to_string(), Value::Number(h.quantile(0.99)));
        histograms.insert(k.to_string(), Value::Object(hm));
    }
    let mut obj = Map::new();
    obj.insert("type".to_string(), Value::String("summary".to_string()));
    obj.insert("counters".to_string(), Value::Object(counters));
    obj.insert("gauges".to_string(), Value::Object(gauges));
    obj.insert("histograms".to_string(), Value::Object(histograms));
    obj.insert(
        "journal_dropped".to_string(),
        Value::Number(recorder.journal.dropped() as f64),
    );
    Value::Object(obj)
}

impl<W: Write + 'static> TelemetrySink for JsonlSink<W> {
    fn record_event(&mut self, event: &Event) {
        self.write_line(&event_to_json(event));
    }

    fn record_span(&mut self, span: &SpanRecord) {
        self.write_line(&span_to_json(span));
    }

    fn finish(&mut self, recorder: &Recorder) {
        let summary = summary_to_json(recorder);
        self.write_line(&summary);
        let _ = self.writer.flush();
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}
