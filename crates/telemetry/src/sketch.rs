//! Mergeable streaming aggregates for sustained-load metrics.
//!
//! The sustained-load harness (`caribou loadgen`) used to collect one
//! exact `f64` per invocation, which made report memory grow linearly
//! with the invocation count. This module provides the O(buckets)
//! replacement:
//!
//! * [`Moments`] — exact running count/sum/mean/M2 (Welford update,
//!   Chan's parallel merge), so means and variances are not sketched;
//! * [`QuantileSketch`] — a log-linear histogram (the [`Histogram`]
//!   family of [`crate::recorder`] refined to [`SUB_BUCKETS`] linear
//!   sub-buckets per power-of-two octave) with a deterministic merge.
//!
//! Both types merge deterministically: merging the same operands in the
//! same order is bit-reproducible, and the bucket counts, `count`,
//! `min`, and `max` are exactly order-insensitive (integer adds and
//! min/max folds). Only the floating-point moment fields depend on the
//! merge order, which is why callers fold shard outputs in a fixed
//! order (see `caribou_core::loadgen`).
//!
//! [`Histogram`]: crate::recorder::Histogram

use crate::recorder::MIN_BUCKET;

/// Linear sub-buckets per power-of-two octave. The relative width of one
/// bucket — and therefore the worst-case relative quantile error — is
/// `1 / SUB_BUCKETS` (6.25%).
pub const SUB_BUCKETS: usize = 16;

/// Octaves covered, matching [`crate::recorder::HISTOGRAM_BUCKETS`]:
/// `[MIN_BUCKET, MIN_BUCKET * 2^64)`, i.e. 1 ns to ~584 years when
/// observations are seconds.
pub const OCTAVES: usize = 64;

/// Total bucket count of a [`QuantileSketch`].
pub const SKETCH_BUCKETS: usize = OCTAVES * SUB_BUCKETS;

/// Exact running moments: count, sum, mean and M2 (sum of squared
/// deviations from the mean), maintained with Welford's update and
/// merged with Chan's parallel formula.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Moments {
    /// Number of observations.
    pub count: u64,
    /// Plain running sum (fold-order dependent in the last bits).
    pub sum: f64,
    mean: f64,
    m2: f64,
}

impl Moments {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Merges another accumulator into this one (Chan et al.). The result
    /// is deterministic for a fixed merge order; merging in a different
    /// order may change the last floating-point bits.
    pub fn merge(&mut self, other: &Moments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n_a = self.count as f64;
        let n_b = other.count as f64;
        let n = n_a + n_b;
        let delta = other.mean - self.mean;
        self.mean += delta * (n_b / n);
        self.m2 += other.m2 + delta * delta * (n_a * n_b / n);
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0.0 when empty).
    pub fn variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            (self.m2 / self.count as f64).max(0.0)
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// A mergeable log-linear quantile sketch with exact running moments.
///
/// Memory is O([`SKETCH_BUCKETS`]) — independent of the observation
/// count — and every aggregate except the floating-point moments merges
/// exactly (integer bucket adds, min/max folds).
#[derive(Debug, Clone)]
pub struct QuantileSketch {
    buckets: Box<[u64; SKETCH_BUCKETS]>,
    /// Exact running moments over every observation.
    pub moments: Moments,
    min: f64,
    max: f64,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        QuantileSketch {
            buckets: Box::new([0; SKETCH_BUCKETS]),
            moments: Moments::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl QuantileSketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index of a value. NaN and anything at or below the floor
    /// land in bucket 0; overflow clamps to the last bucket.
    pub fn bucket_index(value: f64) -> usize {
        if value.is_nan() || value <= MIN_BUCKET {
            return 0;
        }
        let octave = (value / MIN_BUCKET).log2().floor() as i64;
        let octave = octave.clamp(0, OCTAVES as i64 - 1) as usize;
        let lo = Self::octave_lo(octave);
        let sub = ((value / lo - 1.0) * SUB_BUCKETS as f64).floor() as i64;
        let sub = sub.clamp(0, SUB_BUCKETS as i64 - 1) as usize;
        octave * SUB_BUCKETS + sub
    }

    fn octave_lo(octave: usize) -> f64 {
        MIN_BUCKET * (2f64).powi(octave as i32)
    }

    /// Lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> f64 {
        let lo = Self::octave_lo(i / SUB_BUCKETS);
        lo * (1.0 + (i % SUB_BUCKETS) as f64 / SUB_BUCKETS as f64)
    }

    /// Upper bound of bucket `i`.
    pub fn bucket_hi(i: usize) -> f64 {
        let lo = Self::octave_lo(i / SUB_BUCKETS);
        lo * (1.0 + (i % SUB_BUCKETS + 1) as f64 / SUB_BUCKETS as f64)
    }

    /// Folds one observation in.
    pub fn observe(&mut self, value: f64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.moments.observe(value);
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    /// Merges another sketch into this one. Bucket counts, `count`,
    /// `min`, and `max` merge exactly regardless of order; the moments
    /// are deterministic for a fixed fold order.
    pub fn merge(&mut self, other: &QuantileSketch) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.moments.merge(&other.moments);
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.moments.count
    }

    /// Smallest observation (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Arithmetic mean (exact, from the running moments).
    pub fn mean(&self) -> f64 {
        self.moments.mean()
    }

    /// Nearest-rank quantile estimate: the midpoint of the bucket holding
    /// the q-th observation, clamped to the observed min/max. The
    /// estimate is within one bucket's relative width (`1 / SUB_BUCKETS`)
    /// of the exact nearest-rank value.
    ///
    /// `q` outside `[0, 1]` is clamped; a non-finite `q` (NaN, ±inf does
    /// not order against the rank ladder) returns NaN instead of silently
    /// mapping to an extreme rank. An empty sketch returns 0.0 for every
    /// finite `q`, consistent with [`QuantileSketch::mean`].
    pub fn quantile(&self, q: f64) -> f64 {
        if !q.is_finite() {
            return f64::NAN;
        }
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let mid = (Self::bucket_lo(i) + Self::bucket_hi(i)) / 2.0;
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_consistent() {
        // Exact boundary values can round into a neighbor; the midpoint of
        // every bucket must map back to that bucket.
        for i in (SUB_BUCKETS + 1)..(SKETCH_BUCKETS - 1) {
            let lo = QuantileSketch::bucket_lo(i);
            let hi = QuantileSketch::bucket_hi(i);
            assert!(hi > lo, "bucket {i} is non-empty");
            let mid = (lo + hi) / 2.0;
            assert_eq!(QuantileSketch::bucket_index(mid), i, "mid of bucket {i}");
        }
    }

    #[test]
    fn degenerate_values_land_in_bucket_zero() {
        assert_eq!(QuantileSketch::bucket_index(0.0), 0);
        assert_eq!(QuantileSketch::bucket_index(-1.0), 0);
        assert_eq!(QuantileSketch::bucket_index(f64::NAN), 0);
        assert_eq!(
            QuantileSketch::bucket_index(f64::INFINITY),
            SKETCH_BUCKETS - 1
        );
    }

    #[test]
    fn moments_match_direct_computation() {
        let values = [1.0, 2.5, 0.25, 9.0, 4.0, 4.0, 0.125];
        let mut m = Moments::new();
        for v in values {
            m.observe(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.variance() - var).abs() < 1e-12);
        assert_eq!(m.count, values.len() as u64);
    }

    #[test]
    fn moments_merge_matches_single_stream() {
        let mut whole = Moments::new();
        let mut a = Moments::new();
        let mut b = Moments::new();
        for i in 0..1000 {
            let v = (i as f64 * 0.37).sin() + 2.0;
            whole.observe(v);
            if i < 400 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count, whole.count);
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = Moments::new();
        m.observe(3.0);
        let before = m;
        m.merge(&Moments::new());
        assert_eq!(m, before);
        let mut e = Moments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantile_error_is_within_one_bucket() {
        let mut s = QuantileSketch::new();
        let mut exact: Vec<f64> = Vec::new();
        let mut x = 0.017f64;
        for _ in 0..5000 {
            x = (x * 1.0003).fract() * 40.0 + 0.01;
            s.observe(x);
            exact.push(x);
        }
        exact.sort_by(f64::total_cmp);
        for q in [0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let rank = ((q * exact.len() as f64).ceil() as usize).clamp(1, exact.len());
            let truth = exact[rank - 1];
            let est = s.quantile(q);
            let rel = (est - truth).abs() / truth;
            assert!(rel <= 1.0 / SUB_BUCKETS as f64 + 1e-9, "q={q} rel={rel}");
        }
    }

    #[test]
    fn sketch_merge_bucket_counts_are_order_insensitive() {
        let mut parts: Vec<QuantileSketch> = Vec::new();
        for p in 0..4 {
            let mut s = QuantileSketch::new();
            for i in 0..200 {
                s.observe(((p * 200 + i) as f64 * 0.11).cos().abs() * 30.0 + 0.5);
            }
            parts.push(s);
        }
        let mut fwd = QuantileSketch::new();
        for p in &parts {
            fwd.merge(p);
        }
        let mut rev = QuantileSketch::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        assert_eq!(fwd.buckets, rev.buckets);
        assert_eq!(fwd.count(), rev.count());
        assert_eq!(fwd.min().to_bits(), rev.min().to_bits());
        assert_eq!(fwd.max().to_bits(), rev.max().to_bits());
        // Identical fold order is bit-reproducible including moments.
        let mut again = QuantileSketch::new();
        for p in &parts {
            again.merge(p);
        }
        assert_eq!(fwd.mean().to_bits(), again.mean().to_bits());
        assert_eq!(
            fwd.moments.variance().to_bits(),
            again.moments.variance().to_bits()
        );
    }

    #[test]
    fn quantile_rejects_non_finite_q_and_clamps_range() {
        let mut s = QuantileSketch::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.observe(v);
        }
        assert!(s.quantile(f64::NAN).is_nan());
        assert!(s.quantile(f64::INFINITY).is_nan());
        // Out-of-range finite q clamps instead of under/overflowing ranks.
        assert_eq!(s.quantile(-3.0).to_bits(), s.quantile(0.0).to_bits());
        assert_eq!(s.quantile(7.0).to_bits(), s.quantile(1.0).to_bits());
    }

    #[test]
    fn empty_sketch_is_all_zeroes() {
        let s = QuantileSketch::new();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert!(s.quantile(f64::NAN).is_nan());
    }

    #[test]
    fn constant_observations_pin_every_quantile() {
        let mut s = QuantileSketch::new();
        for _ in 0..100 {
            s.observe(3.25);
        }
        assert_eq!(s.quantile(0.5), 3.25);
        assert_eq!(s.quantile(0.99), 3.25);
        assert_eq!(s.mean(), 3.25);
    }
}
