//! Replay of a `.jsonl` telemetry journal (written by [`crate::JsonlSink`])
//! into a human-readable timeline and summary stats table — the engine
//! behind `caribou trace`.

use serde_json::Value;

/// One parsed line of a journal file.
#[derive(Debug, Clone)]
pub enum JournalLine {
    Event {
        t_s: f64,
        kind: String,
        label: String,
        value: f64,
    },
    Span {
        name: String,
        cat: String,
        ts_us: u64,
        dur_us: u64,
        pid: u64,
        tid: String,
    },
    Summary(Value),
}

/// Parse the journal's JSONL text. Unknown or malformed lines are skipped
/// (the format is append-only and may grow new record types).
pub fn parse_journal(text: &str) -> Vec<JournalLine> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let Ok(v) = serde_json::from_str::<Value>(line) else {
            continue;
        };
        match v["type"].as_str() {
            Some("event") => out.push(JournalLine::Event {
                t_s: v["t_s"].as_f64().unwrap_or(0.0),
                kind: v["kind"].as_str().unwrap_or("?").to_string(),
                label: v["label"].as_str().unwrap_or("").to_string(),
                value: v["value"].as_f64().unwrap_or(0.0),
            }),
            Some("span") => out.push(JournalLine::Span {
                name: v["name"].as_str().unwrap_or("?").to_string(),
                cat: v["cat"].as_str().unwrap_or("?").to_string(),
                ts_us: v["ts_us"].as_u64().unwrap_or(0),
                dur_us: v["dur_us"].as_u64().unwrap_or(0),
                pid: v["pid"].as_u64().unwrap_or(0),
                tid: v["tid"].as_str().unwrap_or("").to_string(),
            }),
            Some("summary") => out.push(JournalLine::Summary(v)),
            _ => {}
        }
    }
    out
}

fn fmt_sim_time(t_s: f64) -> String {
    let h = (t_s / 3600.0).floor() as u64;
    let m = ((t_s % 3600.0) / 60.0).floor() as u64;
    let s = t_s % 60.0;
    format!("{h:03}:{m:02}:{s:06.3}")
}

/// Render the journal as a chronological timeline. `limit` bounds the
/// number of printed rows (0 = unlimited); elided rows are noted.
pub fn render_timeline(lines: &[JournalLine], limit: usize) -> String {
    let mut rows: Vec<(f64, String)> = Vec::new();
    for l in lines {
        match l {
            JournalLine::Event {
                t_s,
                kind,
                label,
                value,
            } => {
                let detail = if label.is_empty() {
                    format!("{value:.6}")
                } else if *value == 0.0 {
                    label.clone()
                } else {
                    format!("{label} value={value:.6}")
                };
                rows.push((
                    *t_s,
                    format!("{} {:<26} {}", fmt_sim_time(*t_s), kind, detail),
                ));
            }
            JournalLine::Span {
                name,
                cat,
                ts_us,
                dur_us,
                pid,
                tid,
            } => {
                let t_s = *ts_us as f64 / 1e6;
                rows.push((
                    t_s,
                    format!(
                        "{} {:<26} {} [inv={} lane={} {:.3}ms]",
                        fmt_sim_time(t_s),
                        format!("span.{cat}"),
                        name,
                        pid,
                        tid,
                        *dur_us as f64 / 1e3
                    ),
                ));
            }
            JournalLine::Summary(_) => {}
        }
    }
    rows.sort_by(|a, b| a.0.total_cmp(&b.0));

    let total = rows.len();
    let shown = if limit == 0 { total } else { limit.min(total) };
    let mut out = String::new();
    out.push_str(&format!("{:<13} {:<26} detail\n", "sim time", "kind"));
    for (_, row) in rows.iter().take(shown) {
        out.push_str(row);
        out.push('\n');
    }
    if shown < total {
        out.push_str(&format!("... ({} more rows elided)\n", total - shown));
    }
    out
}

/// Render the summary record (counters/gauges/histograms) as a stats table.
/// Falls back to aggregating events if the journal has no summary line.
pub fn render_summary(lines: &[JournalLine]) -> String {
    let mut out = String::new();
    let summary = lines.iter().rev().find_map(|l| match l {
        JournalLine::Summary(v) => Some(v),
        _ => None,
    });

    if let Some(v) = summary {
        if let Some(counters) = v["counters"].as_object() {
            out.push_str(&format!("{:<40} {:>12}\n", "counter", "count"));
            for (k, c) in counters.iter() {
                out.push_str(&format!("{:<40} {:>12}\n", k, c.as_u64().unwrap_or(0)));
            }
        }
        if let Some(gauges) = v["gauges"].as_object() {
            if !gauges.is_empty() {
                out.push_str(&format!("\n{:<40} {:>12}\n", "gauge", "last"));
                for (k, g) in gauges.iter() {
                    out.push_str(&format!("{:<40} {:>12.4}\n", k, g.as_f64().unwrap_or(0.0)));
                }
            }
        }
        if let Some(hists) = v["histograms"].as_object() {
            if !hists.is_empty() {
                out.push_str(&format!(
                    "\n{:<40} {:>8} {:>12} {:>12} {:>12}\n",
                    "histogram", "count", "mean", "p50", "p99"
                ));
                for (k, h) in hists.iter() {
                    out.push_str(&format!(
                        "{:<40} {:>8} {:>12.6} {:>12.6} {:>12.6}\n",
                        k,
                        h["count"].as_u64().unwrap_or(0),
                        h["mean"].as_f64().unwrap_or(0.0),
                        h["p50"].as_f64().unwrap_or(0.0),
                        h["p99"].as_f64().unwrap_or(0.0)
                    ));
                }
            }
        }
        let dropped = v["journal_dropped"].as_u64().unwrap_or(0);
        if dropped > 0 {
            out.push_str(&format!(
                "\n({dropped} journal events dropped by ring buffer)\n"
            ));
        }
        return out;
    }

    // No summary line — aggregate what we have.
    use std::collections::BTreeMap;
    let mut counts: BTreeMap<&str, u64> = BTreeMap::new();
    for l in lines {
        if let JournalLine::Event { kind, .. } = l {
            *counts.entry(kind.as_str()).or_insert(0) += 1;
        }
    }
    out.push_str(&format!("{:<40} {:>12}\n", "event kind", "count"));
    for (k, c) in counts {
        out.push_str(&format!("{k:<40} {c:>12}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::{Event, Recorder};
    use crate::sink::{event_to_json, span_to_json, summary_to_json};
    use crate::span::SpanRecord;

    fn sample_journal_text() -> String {
        let e = Event {
            t_s: 3723.5,
            kind: "pubsub.retry",
            label: "us-east-1".to_string(),
            value: 2.0,
        };
        let s = SpanRecord {
            name: "resize".to_string(),
            cat: "exec",
            ts_us: 1_000_000,
            dur_us: 250_000,
            pid: 7,
            tid: "node:0@r1".to_string(),
            depth: 0,
        };
        let mut rec = Recorder::new(16);
        rec.count("pubsub.retry", 2);
        rec.gauge("solver.gamma", 0.5);
        rec.observe("exec.node_duration_s", 0.25);
        format!(
            "{}\n{}\nnot json at all\n{{\"type\":\"mystery\"}}\n{}\n",
            serde_json::to_string(&event_to_json(&e)).unwrap(),
            serde_json::to_string(&span_to_json(&s)).unwrap(),
            serde_json::to_string(&summary_to_json(&rec)).unwrap(),
        )
    }

    #[test]
    fn parse_journal_reads_events_spans_summary_and_skips_junk() {
        let lines = parse_journal(&sample_journal_text());
        assert_eq!(lines.len(), 3, "junk lines skipped");
        match &lines[0] {
            JournalLine::Event {
                t_s,
                kind,
                label,
                value,
            } => {
                assert_eq!(*t_s, 3723.5);
                assert_eq!(kind, "pubsub.retry");
                assert_eq!(label, "us-east-1");
                assert_eq!(*value, 2.0);
            }
            other => panic!("expected event, got {other:?}"),
        }
        match &lines[1] {
            JournalLine::Span {
                name,
                cat,
                ts_us,
                dur_us,
                pid,
                ..
            } => {
                assert_eq!(name, "resize");
                assert_eq!(cat, "exec");
                assert_eq!(*ts_us, 1_000_000);
                assert_eq!(*dur_us, 250_000);
                assert_eq!(*pid, 7);
            }
            other => panic!("expected span, got {other:?}"),
        }
        assert!(matches!(&lines[2], JournalLine::Summary(_)));
    }

    #[test]
    fn timeline_sorts_by_time_and_respects_limit() {
        let lines = parse_journal(&sample_journal_text());
        let out = render_timeline(&lines, 0);
        // The span starts at t=1 s, before the 01:02:03.5 event: it must
        // print first even though it appears later in the file.
        let span_pos = out.find("span.exec").unwrap();
        let event_pos = out.find("pubsub.retry").unwrap();
        assert!(span_pos < event_pos, "{out}");
        assert!(out.contains("001:02:03.500"), "{out}");

        let limited = render_timeline(&lines, 1);
        assert!(limited.contains("(1 more rows elided)"), "{limited}");
    }

    #[test]
    fn summary_table_prefers_the_summary_record() {
        let lines = parse_journal(&sample_journal_text());
        let out = render_summary(&lines);
        assert!(out.contains("pubsub.retry"), "{out}");
        assert!(out.contains("solver.gamma"), "{out}");
        assert!(out.contains("exec.node_duration_s"), "{out}");
        assert!(out.contains("0.5000"), "gauge value rendered");
    }

    #[test]
    fn summary_falls_back_to_event_aggregation() {
        let e = Event {
            t_s: 1.0,
            kind: "kv.read",
            label: String::new(),
            value: 0.0,
        };
        let text = format!(
            "{}\n{}\n",
            serde_json::to_string(&event_to_json(&e)).unwrap(),
            serde_json::to_string(&event_to_json(&e)).unwrap(),
        );
        let out = render_summary(&parse_journal(&text));
        assert!(out.contains("event kind"), "{out}");
        assert!(out.contains("kv.read"), "{out}");
        assert!(out.contains('2'), "{out}");
    }
}
