//! Span records, `span!`-style guard objects, and trace export.
//!
//! Two kinds of spans exist:
//!
//! * **Sim-time spans** ([`crate::span_at`]) — the simulator knows the
//!   modeled `(start, duration)` of each operation, so it records spans
//!   explicitly on the virtual timeline (pub/sub hop, function execution,
//!   sync-node update, …).
//! * **Wall-clock guard spans** ([`crate::wall_span`] / the [`span!`]
//!   macro) — measure real elapsed time of host-side work such as a solver
//!   run; the guard records on drop.
//!
//! Both produce [`SpanRecord`]s that export as Chrome trace-event JSON
//! (`chrome://tracing` / `ui.perfetto.dev` loadable) via [`chrome_trace`],
//! or as a plain-text flame summary via [`flame_summary`].

use serde_json::{Map, Value};

/// One completed span on a trace timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. a workflow node name or `hbss.solve`.
    pub name: String,
    /// Category, e.g. `exec`, `pubsub`, `solver`.
    pub cat: &'static str,
    /// Start in microseconds (virtual for sim spans, wall for guards).
    pub ts_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Process lane: the invocation id for sim spans, 0 for host work.
    pub pid: u64,
    /// Thread lane within the process, e.g. node index or `solver`.
    pub tid: String,
    /// Nesting depth at record time (0 = root). Used by the flame summary.
    pub depth: u32,
}

/// Serialize spans as a Chrome trace-event JSON document: an object with a
/// `traceEvents` array of `"ph":"X"` (complete) events.
pub fn chrome_trace(spans: &[SpanRecord]) -> Value {
    let events: Vec<Value> = spans
        .iter()
        .map(|s| {
            let mut obj = Map::new();
            obj.insert("name".to_string(), Value::String(s.name.clone()));
            obj.insert("cat".to_string(), Value::String(s.cat.to_string()));
            obj.insert("ph".to_string(), Value::String("X".to_string()));
            obj.insert("ts".to_string(), Value::Number(s.ts_us as f64));
            obj.insert("dur".to_string(), Value::Number(s.dur_us as f64));
            obj.insert("pid".to_string(), Value::Number(s.pid as f64));
            obj.insert("tid".to_string(), Value::String(s.tid.clone()));
            Value::Object(obj)
        })
        .collect();
    let mut root = Map::new();
    root.insert("traceEvents".to_string(), Value::Array(events));
    root.insert(
        "displayTimeUnit".to_string(),
        Value::String("ms".to_string()),
    );
    Value::Object(root)
}

/// Aggregate spans by name into a plain-text flame summary, widest first.
pub fn flame_summary(spans: &[SpanRecord]) -> String {
    use std::collections::BTreeMap;
    let mut agg: BTreeMap<(u32, &str), (u64, u64)> = BTreeMap::new();
    for s in spans {
        let e = agg.entry((s.depth, s.name.as_str())).or_insert((0, 0));
        e.0 += s.dur_us;
        e.1 += 1;
    }
    let mut rows: Vec<_> = agg.into_iter().collect();
    rows.sort_by(|a, b| {
        (a.0 .0, std::cmp::Reverse(a.1 .0)).cmp(&(b.0 .0, std::cmp::Reverse(b.1 .0)))
    });
    let mut out = String::new();
    out.push_str(&format!(
        "{:<40} {:>12} {:>8} {:>12}\n",
        "span", "total_us", "count", "mean_us"
    ));
    for ((depth, name), (total, count)) in rows {
        let indent = "  ".repeat(depth as usize);
        out.push_str(&format!(
            "{:<40} {:>12} {:>8} {:>12.1}\n",
            format!("{indent}{name}"),
            total,
            count,
            total as f64 / count as f64
        ));
    }
    out
}

/// Wall-clock span guard: measures from construction to drop, then records
/// a span plus an `observe` into the histogram named after the span.
pub struct WallSpanGuard {
    pub(crate) name: String,
    pub(crate) cat: &'static str,
    pub(crate) start: std::time::Instant,
    pub(crate) active: bool,
}

impl Drop for WallSpanGuard {
    fn drop(&mut self) {
        if self.active {
            crate::finish_wall_span(self);
        }
    }
}

/// Create a wall-clock span guard: `let _g = span!("solver", "hbss.solve");`
#[macro_export]
macro_rules! span {
    ($cat:expr, $name:expr) => {
        $crate::wall_span($cat, $name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, cat: &'static str, ts: u64, dur: u64, depth: u32) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            cat,
            ts_us: ts,
            dur_us: dur,
            pid: 1,
            tid: "t".to_string(),
            depth,
        }
    }

    #[test]
    fn chrome_trace_round_trips_through_serde_json() {
        let spans = vec![
            rec("invocation", "exec", 0, 5_000_000, 0),
            rec("A", "exec", 100, 2_000_000, 1),
            rec("B", "exec", 2_100_000, 2_800_000, 1),
        ];
        let doc = chrome_trace(&spans);
        let text = serde_json::to_string(&doc).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        let events = parsed["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), 3);
        for (e, s) in events.iter().zip(&spans) {
            assert_eq!(e["ph"], "X", "complete events");
            assert_eq!(e["name"].as_str().unwrap(), s.name);
            assert_eq!(e["ts"].as_u64().unwrap(), s.ts_us);
            assert_eq!(e["dur"].as_u64().unwrap(), s.dur_us);
            assert_eq!(e["pid"].as_u64().unwrap(), 1);
        }
        assert_eq!(parsed["displayTimeUnit"], "ms");
    }

    #[test]
    fn chrome_trace_of_nothing_is_still_valid() {
        let doc = chrome_trace(&[]);
        let text = serde_json::to_string(&doc).unwrap();
        let parsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        assert_eq!(parsed["traceEvents"].as_array().unwrap().len(), 0);
    }

    #[test]
    fn flame_summary_aggregates_and_indents_by_depth() {
        let spans = vec![
            rec("solve", "solver", 0, 300, 0),
            rec("solve", "solver", 400, 100, 0),
            rec("eval", "solver", 10, 50, 1),
        ];
        let out = flame_summary(&spans);
        let lines: Vec<&str> = out.lines().collect();
        assert!(lines[0].starts_with("span"));
        // Depth 0 rows come first; "solve" aggregated to 400 us over 2.
        assert!(lines[1].starts_with("solve"), "{out}");
        assert!(lines[1].contains("400"));
        assert!(lines[1].contains("200.0"), "mean over two spans");
        // Depth 1 rows are indented two spaces.
        assert!(lines[2].starts_with("  eval"), "{out}");
    }
}
