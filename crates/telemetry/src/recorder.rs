//! The [`Recorder`]: counters, gauges, log-scale histograms and the bounded
//! ring-buffer event journal.
//!
//! All aggregate state lives in `BTreeMap`s keyed by `&'static str` so that
//! every exported view iterates in a deterministic order.

use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Number of log-scale histogram buckets. Bucket `i` covers
/// `[MIN_BUCKET * 2^i, MIN_BUCKET * 2^(i+1))`; the first and last buckets
/// absorb underflow and overflow.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Lower bound of bucket 0 — 1 nanosecond when observations are seconds.
pub const MIN_BUCKET: f64 = 1e-9;

/// Fixed-bucket log-scale histogram (powers of two above [`MIN_BUCKET`]).
#[derive(Debug, Clone)]
pub struct Histogram {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum: f64,
    pub min: f64,
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: `floor(log2(v / MIN_BUCKET))`, clamped.
    pub fn bucket_index(value: f64) -> usize {
        // NaN and anything at or below the floor land in bucket 0.
        if value.is_nan() || value <= MIN_BUCKET {
            return 0;
        }
        let idx = (value / MIN_BUCKET).log2().floor() as i64;
        idx.clamp(0, HISTOGRAM_BUCKETS as i64 - 1) as usize
    }

    /// Lower bound of bucket `i`.
    pub fn bucket_lo(i: usize) -> f64 {
        MIN_BUCKET * (2f64).powi(i as i32)
    }

    pub fn observe(&mut self, value: f64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        if value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
    }

    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Merges another histogram into this one. Bucket counts, `count`,
    /// `min` and `max` merge exactly and order-insensitively; `sum` is a
    /// floating-point fold, deterministic for a fixed merge order.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
    }

    /// Quantile estimate: walks buckets and returns the geometric midpoint
    /// of the bucket containing the q-th observation (clamped to the
    /// observed min/max so degenerate histograms stay sensible).
    ///
    /// A non-finite `q` returns NaN (it does not order against the rank
    /// ladder); finite `q` outside `[0, 1]` is clamped.
    pub fn quantile(&self, q: f64) -> f64 {
        if !q.is_finite() {
            return f64::NAN;
        }
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let lo = Self::bucket_lo(i);
                let hi = lo * 2.0;
                let mid = (lo * hi).sqrt();
                return mid.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

/// A journal entry keyed on virtual sim time.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Virtual sim time (seconds since sim epoch) at which this happened.
    pub t_s: f64,
    /// Dotted event kind, e.g. `pubsub.retry` or `kv.rmw_conflict`.
    pub kind: &'static str,
    /// Short free-form context (region name, node name, …).
    pub label: String,
    /// Numeric payload (bytes, attempt number, temperature, …).
    pub value: f64,
}

/// Bounded ring buffer of [`Event`]s. When full, the oldest entry is
/// dropped and counted.
#[derive(Debug, Default)]
pub struct Journal {
    entries: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl Journal {
    pub fn new(capacity: usize) -> Self {
        Journal {
            entries: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    pub fn push(&mut self, event: Event) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(event);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    pub fn iter(&self) -> impl Iterator<Item = &Event> {
        self.entries.iter()
    }

    pub fn into_vec(self) -> Vec<Event> {
        self.entries.into()
    }
}

/// Aggregating recorder: counters, gauges, histograms and the journal.
#[derive(Debug, Default)]
pub struct Recorder {
    pub counters: BTreeMap<&'static str, u64>,
    pub gauges: BTreeMap<&'static str, f64>,
    pub histograms: BTreeMap<&'static str, Histogram>,
    pub journal: Journal,
}

impl Recorder {
    pub fn new(journal_capacity: usize) -> Self {
        Recorder {
            journal: Journal::new(journal_capacity),
            ..Default::default()
        }
    }

    pub fn count(&mut self, key: &'static str, delta: u64) {
        *self.counters.entry(key).or_insert(0) += delta;
    }

    pub fn gauge(&mut self, key: &'static str, value: f64) {
        self.gauges.insert(key, value);
    }

    pub fn observe(&mut self, key: &'static str, value: f64) {
        self.histograms.entry(key).or_default().observe(value);
    }

    pub fn counter(&self, key: &str) -> u64 {
        self.counters.get(key).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // Each bucket's lower bound maps into that bucket; a value just
        // below it lands one bucket down.
        for i in 1..HISTOGRAM_BUCKETS {
            let lo = Histogram::bucket_lo(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(
                Histogram::bucket_index(lo * 0.999),
                i - 1,
                "just below bucket {i}"
            );
        }
    }

    #[test]
    fn degenerate_values_land_in_bucket_zero() {
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-1.0), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(MIN_BUCKET), 0);
        assert_eq!(Histogram::bucket_index(MIN_BUCKET / 2.0), 0);
    }

    #[test]
    fn overflow_clamps_to_last_bucket() {
        assert_eq!(Histogram::bucket_index(1e30), HISTOGRAM_BUCKETS - 1);
        assert_eq!(
            Histogram::bucket_index(f64::INFINITY),
            HISTOGRAM_BUCKETS - 1
        );
    }

    #[test]
    fn histogram_aggregates() {
        let mut h = Histogram::default();
        for v in [0.5, 1.5, 2.0, 4.0] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert!((h.sum - 8.0).abs() < 1e-12);
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.min, 0.5);
        assert_eq!(h.max, 4.0);
    }

    #[test]
    fn quantile_estimates_bracket_the_distribution() {
        let mut h = Histogram::default();
        for _ in 0..50 {
            h.observe(1.0);
        }
        for _ in 0..50 {
            h.observe(1000.0);
        }
        // The log-scale buckets separate 1 s and 1000 s by ~10 buckets; the
        // geometric-midpoint estimate stays within a bucket width (2x).
        let p25 = h.quantile(0.25);
        assert!((0.5..=2.0).contains(&p25), "p25 {p25}");
        let p90 = h.quantile(0.9);
        assert!((500.0..=1000.0).contains(&p90), "p90 {p90}");
        // Clamped to observed extremes.
        assert!(h.quantile(0.0) >= h.min);
        assert!(h.quantile(1.0) <= h.max);
    }

    #[test]
    fn quantile_of_constant_observations_is_exact() {
        let mut h = Histogram::default();
        for _ in 0..100 {
            h.observe(3.25);
        }
        // min == max == 3.25, so the clamp pins every quantile.
        assert_eq!(h.quantile(0.5), 3.25);
        assert_eq!(h.quantile(0.99), 3.25);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn quantile_rejects_non_finite_q() {
        let mut h = Histogram::default();
        for v in [1.0, 2.0, 3.0] {
            h.observe(v);
        }
        assert!(h.quantile(f64::NAN).is_nan());
        assert!(h.quantile(f64::INFINITY).is_nan());
        assert!(h.quantile(f64::NEG_INFINITY).is_nan());
        // Out-of-range finite q clamps to the extremes.
        assert_eq!(h.quantile(-1.0).to_bits(), h.quantile(0.0).to_bits());
        assert_eq!(h.quantile(2.0).to_bits(), h.quantile(1.0).to_bits());
    }

    #[test]
    fn merge_matches_single_stream_and_ignores_order_for_counts() {
        let mut whole = Histogram::default();
        let mut a = Histogram::default();
        let mut b = Histogram::default();
        for i in 0..200 {
            let v = 0.001 * (i as f64 + 1.0) * 1.7;
            whole.observe(v);
            if i % 3 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.buckets, whole.buckets);
        assert_eq!(ab.count, whole.count);
        assert_eq!(ab.min, whole.min);
        assert_eq!(ab.max, whole.max);
        assert!((ab.sum - whole.sum).abs() < 1e-9);
        // Integer/min/max state is order-insensitive.
        assert_eq!(ab.buckets, ba.buckets);
        assert_eq!(ab.count, ba.count);
        assert_eq!(ab.min.to_bits(), ba.min.to_bits());
        assert_eq!(ab.max.to_bits(), ba.max.to_bits());
    }

    #[test]
    fn merge_with_empty_histogram_is_identity() {
        let mut h = Histogram::default();
        h.observe(2.0);
        let before = h.clone();
        h.merge(&Histogram::default());
        assert_eq!(h.buckets, before.buckets);
        assert_eq!(h.count, before.count);
        assert_eq!(h.min, before.min);
        assert_eq!(h.max, before.max);
        let mut e = Histogram::default();
        e.merge(&before);
        assert_eq!(e.count, before.count);
        assert_eq!(e.min, before.min);
        assert_eq!(e.max, before.max);
    }

    fn ev(i: usize) -> Event {
        Event {
            t_s: i as f64,
            kind: "test.event",
            label: format!("e{i}"),
            value: i as f64,
        }
    }

    #[test]
    fn journal_wraps_dropping_oldest() {
        let mut j = Journal::new(4);
        for i in 0..10 {
            j.push(ev(i));
        }
        assert_eq!(j.len(), 4);
        assert_eq!(j.dropped(), 6);
        let kept: Vec<String> = j.iter().map(|e| e.label.clone()).collect();
        assert_eq!(kept, ["e6", "e7", "e8", "e9"]);
    }

    #[test]
    fn journal_under_capacity_keeps_everything() {
        let mut j = Journal::new(100);
        for i in 0..10 {
            j.push(ev(i));
        }
        assert_eq!(j.len(), 10);
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.into_vec().len(), 10);
    }

    #[test]
    fn zero_capacity_journal_drops_all() {
        let mut j = Journal::new(0);
        j.push(ev(0));
        j.push(ev(1));
        assert!(j.is_empty());
        assert_eq!(j.dropped(), 2);
    }

    #[test]
    fn recorder_counters_gauges_histograms() {
        let mut r = Recorder::new(16);
        r.count("a", 2);
        r.count("a", 3);
        r.gauge("g", 1.0);
        r.gauge("g", 7.5);
        r.observe("h", 0.25);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.counter("missing"), 0);
        assert_eq!(r.gauges["g"], 7.5);
        assert_eq!(r.histograms["h"].count, 1);
    }
}
