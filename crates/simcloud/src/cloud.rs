//! The [`SimCloud`] façade bundling every simulated service.

use caribou_model::region::{RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;

use crate::blob::BlobStore;
use crate::clock::SimClock;
use crate::compute::LambdaRuntime;
use crate::faults::FaultPlan;
use crate::iam::Iam;
use crate::kv::KvStore;
use crate::latency::LatencyModel;
use crate::meter::UsageMeter;
use crate::pricing::PricingCatalog;
use crate::pubsub::PubSub;
use crate::registry::ContainerRegistry;
use crate::warm::WarmPool;

/// The simulated multi-region cloud: one value owning every service, the
/// virtual clock, and a master RNG from which subsystems fork their own
/// deterministic streams.
#[derive(Debug)]
pub struct SimCloud {
    /// Region catalog.
    pub regions: RegionCatalog,
    /// Inter-region latency/bandwidth model.
    pub latency: LatencyModel,
    /// Pricing catalog.
    pub pricing: PricingCatalog,
    /// Lambda-like compute model.
    pub compute: LambdaRuntime,
    /// SNS-like pub/sub.
    pub pubsub: PubSub,
    /// DynamoDB-like key-value store.
    pub kv: KvStore,
    /// ECR-like container registry.
    pub registry: ContainerRegistry,
    /// S3-like object storage for large intermediate payloads.
    pub blob: BlobStore,
    /// Warm-container pool (disabled by default: probabilistic cold
    /// starts apply).
    pub warm: WarmPool,
    /// IAM role store.
    pub iam: Iam,
    /// Fault-injection plan.
    pub faults: FaultPlan,
    /// Framework-level usage meter (workflow executions meter separately).
    pub meter: UsageMeter,
    /// Virtual clock.
    pub clock: SimClock,
    /// Master RNG; fork sub-streams rather than drawing directly where a
    /// stable stream per subsystem matters.
    pub rng: Pcg32,
}

impl SimCloud {
    /// Creates a cloud over the default AWS catalog with the given master
    /// seed.
    pub fn aws(seed: u64) -> Self {
        let regions = RegionCatalog::aws_default();
        Self::with_catalog(regions, seed)
    }

    /// Creates a cloud over a custom catalog.
    pub fn with_catalog(regions: RegionCatalog, seed: u64) -> Self {
        let latency = LatencyModel::from_catalog(&regions);
        let pricing = PricingCatalog::aws_default(&regions);
        let compute = LambdaRuntime::aws_default(&regions);
        SimCloud {
            latency,
            pricing,
            compute,
            pubsub: PubSub::new(),
            kv: KvStore::new(),
            registry: ContainerRegistry::new(),
            blob: BlobStore::new(),
            warm: WarmPool::new(),
            iam: Iam::new(),
            faults: FaultPlan::none(),
            meter: UsageMeter::new(),
            clock: SimClock::new(),
            rng: Pcg32::seed_stream(seed, 0x5eed),
            regions,
        }
    }

    /// Installs a fault plan, propagating the message-drop probability and
    /// the windowed faults (outages, partitions, gray failures, throttles)
    /// to the pub/sub and KV services so each delivery attempt and each
    /// table operation consults them.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.pubsub.drop_probability = plan.message_drop_prob;
        self.pubsub.faults = plan.clone();
        self.kv.faults = plan.clone();
        self.faults = plan;
    }

    /// Positions the fault clock: windowed faults in pub/sub and KV are
    /// evaluated at this simulation time. The execution engine calls this
    /// with the invocation start time; per-invocation resolution is
    /// sufficient because fault windows span minutes, not milliseconds.
    pub fn set_fault_now(&mut self, now_s: f64) {
        self.pubsub.now_s = now_s;
        self.kv.now_s = now_s;
    }

    /// Resolves a region name against the catalog, returning the typed
    /// [`ModelError::UnknownRegion`](caribou_model::error::ModelError)
    /// for names the catalog does not know. Callers holding fixed,
    /// known-good names (tests, experiment setup) unwrap; anything fed
    /// from user input propagates the error.
    pub fn region(&self, name: &str) -> Result<RegionId, caribou_model::error::ModelError> {
        self.regions.resolve(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_cloud_constructs_consistently() {
        let cloud = SimCloud::aws(42);
        assert!(cloud.regions.len() >= 6);
        let east = cloud.region("us-east-1").unwrap();
        let west = cloud.region("us-west-1").unwrap();
        assert!(cloud.latency.rtt(east, west) > 0.02);
        assert!(cloud.pricing.region(east).lambda_gb_second > 0.0);
    }

    #[test]
    fn fault_plan_propagates_drop_probability() {
        let mut cloud = SimCloud::aws(1);
        cloud.set_faults(FaultPlan {
            message_drop_prob: 0.25,
            ..FaultPlan::none()
        });
        assert_eq!(cloud.pubsub.drop_probability, 0.25);
    }

    #[test]
    fn fault_plan_and_clock_propagate_to_services() {
        let mut cloud = SimCloud::aws(1);
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(FaultPlan::none().with_outage(ca, 10.0, 20.0));
        cloud.set_fault_now(15.0);
        assert!(cloud.pubsub.faults.region_down(ca, cloud.pubsub.now_s));
        assert_eq!(cloud.kv.now_s, 15.0);
        cloud.set_fault_now(25.0);
        assert!(!cloud.pubsub.faults.region_down(ca, cloud.pubsub.now_s));
    }

    #[test]
    fn unknown_region_is_a_typed_error() {
        let cloud = SimCloud::aws(1);
        let err = cloud.region("atlantis-1").unwrap_err();
        assert!(
            matches!(
                &err,
                caribou_model::error::ModelError::UnknownRegion { name } if name == "atlantis-1"
            ),
            "{err}"
        );
        assert!(err.to_string().contains("atlantis-1"));
    }
}
