//! The [`SimCloud`] façade bundling every simulated service.

use caribou_model::error::ModelError;
use caribou_model::region::{ProviderSet, RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;

use crate::blob::BlobStore;
use crate::clock::SimClock;
use crate::compute::LambdaRuntime;
use crate::faults::FaultPlan;
use crate::iam::Iam;
use crate::kv::KvStore;
use crate::latency::{InterProviderLatency, LatencyModel};
use crate::meter::UsageMeter;
use crate::pricing::PricingCatalog;
use crate::providers::backend_for;
use crate::pubsub::PubSub;
use crate::registry::ContainerRegistry;
use crate::warm::WarmPool;

/// The simulated multi-region cloud: one value owning every service, the
/// virtual clock, and a master RNG from which subsystems fork their own
/// deterministic streams.
#[derive(Debug)]
pub struct SimCloud {
    /// Region catalog.
    pub regions: RegionCatalog,
    /// Inter-region latency/bandwidth model.
    pub latency: LatencyModel,
    /// Pricing catalog.
    pub pricing: PricingCatalog,
    /// Lambda-like compute model.
    pub compute: LambdaRuntime,
    /// SNS-like pub/sub.
    pub pubsub: PubSub,
    /// DynamoDB-like key-value store.
    pub kv: KvStore,
    /// ECR-like container registry.
    pub registry: ContainerRegistry,
    /// S3-like object storage for large intermediate payloads.
    pub blob: BlobStore,
    /// Warm-container pool (disabled by default: probabilistic cold
    /// starts apply).
    pub warm: WarmPool,
    /// IAM role store.
    pub iam: Iam,
    /// Fault-injection plan.
    pub faults: FaultPlan,
    /// Framework-level usage meter (workflow executions meter separately).
    pub meter: UsageMeter,
    /// Virtual clock.
    pub clock: SimClock,
    /// Master RNG; fork sub-streams rather than drawing directly where a
    /// stable stream per subsystem matters.
    pub rng: Pcg32,
}

impl SimCloud {
    /// Creates a cloud over the default AWS catalog with the given master
    /// seed.
    pub fn aws(seed: u64) -> Self {
        let regions = RegionCatalog::aws_default();
        Self::with_catalog(regions, seed)
    }

    /// Creates a cloud over a custom catalog.
    pub fn with_catalog(regions: RegionCatalog, seed: u64) -> Self {
        let latency = LatencyModel::from_catalog(&regions);
        let pricing = PricingCatalog::aws_default(&regions);
        let compute = LambdaRuntime::aws_default(&regions);
        SimCloud {
            latency,
            pricing,
            compute,
            pubsub: PubSub::new(),
            kv: KvStore::new(),
            registry: ContainerRegistry::new(),
            blob: BlobStore::new(),
            warm: WarmPool::new(),
            iam: Iam::new(),
            faults: FaultPlan::none(),
            meter: UsageMeter::new(),
            clock: SimClock::new(),
            rng: Pcg32::seed_stream(seed, 0x5eed),
            regions,
        }
    }

    /// Assembles a cloud from provider backends: the catalog is the union
    /// of each member provider's regions (AWS first, so AWS ids match the
    /// legacy catalog), and every service is parameterized through the
    /// [`crate::providers::ProviderBackend`] trait objects.
    ///
    /// `for_providers(ProviderSet::aws_only(), seed)` is behaviorally
    /// identical to [`SimCloud::aws`] — same catalog, same constants, same
    /// RNG draw order — so all single-provider goldens are preserved.
    ///
    /// Errors with [`ModelError::UnknownProvider`] for providers without a
    /// backend (e.g. `azure`), and with
    /// [`ModelError::MissingInterProviderLatency`] when the inter-provider
    /// penalty table lacks a pair the catalog requires.
    pub fn for_providers(set: ProviderSet, seed: u64) -> Result<Self, ModelError> {
        let mut regions = RegionCatalog::new();
        let mut backends = Vec::new();
        for p in set.iter() {
            let b = backend_for(p).ok_or_else(|| ModelError::UnknownProvider {
                name: p.to_string(),
            })?;
            for spec in b.regions() {
                regions.push(spec);
            }
            backends.push(b);
        }
        if regions.is_empty() {
            return Err(ModelError::UnknownProvider {
                name: set.to_string(),
            });
        }
        let backend_of = |spec: &caribou_model::region::RegionSpec| {
            backend_for(spec.provider).expect("member providers have backends")
        };

        let latency =
            LatencyModel::from_catalog_with_providers(&regions, &InterProviderLatency::defaults())?;

        let mut per_region = Vec::with_capacity(regions.len());
        let mut provider_of = Vec::with_capacity(regions.len());
        let mut cross_rates = Vec::with_capacity(regions.len());
        for (_, spec) in regions.iter() {
            let b = backend_of(spec);
            let mut row = b.pricing(spec);
            let kv = b.kv(spec);
            row.dynamodb_per_write = kv.per_write_usd;
            row.dynamodb_per_read = kv.per_read_usd;
            per_region.push(row);
            provider_of.push(spec.provider);
            cross_rates.push(b.cross_provider_egress_per_gb(spec));
        }
        let pricing = PricingCatalog::with_providers(per_region, provider_of, cross_rates);

        let mut compute = LambdaRuntime::aws_default(&regions);
        let mut warm = WarmPool::new();
        let mut registry = ContainerRegistry::new();
        let mut pubsub = PubSub::new();
        let mut profiles = Vec::with_capacity(regions.len());
        for (id, spec) in regions.iter() {
            let b = backend_of(spec);
            let prof = b.compute(spec);
            compute.set_perf_factor(id, prof.perf_factor);
            compute.set_cold_start(id, prof.cold_start);
            warm.set_keep_alive(id, prof.keep_alive_s);
            registry.set_overhead(id, prof.registry_overhead_s);
            profiles.push(b.messaging(spec));
        }
        pubsub.set_profiles(profiles);

        Ok(SimCloud {
            latency,
            pricing,
            compute,
            pubsub,
            kv: KvStore::new(),
            registry,
            blob: BlobStore::new(),
            warm,
            iam: Iam::new(),
            faults: FaultPlan::none(),
            meter: UsageMeter::new(),
            clock: SimClock::new(),
            rng: Pcg32::seed_stream(seed, 0x5eed),
            regions,
        })
    }

    /// The region-name universe this cloud's provider set contributes to
    /// evaluation campaigns: the AWS evaluation regions (§9.1) plus each
    /// additional provider's evaluation regions, in catalog order.
    pub fn evaluation_universe(set: ProviderSet) -> Vec<&'static str> {
        let mut names = Vec::new();
        for p in set.iter() {
            if let Some(b) = backend_for(p) {
                names.extend_from_slice(b.evaluation_regions());
            }
        }
        names
    }

    /// Installs a fault plan, propagating the message-drop probability and
    /// the windowed faults (outages, partitions, gray failures, throttles)
    /// to the pub/sub and KV services so each delivery attempt and each
    /// table operation consults them.
    pub fn set_faults(&mut self, plan: FaultPlan) {
        self.pubsub.drop_probability = plan.message_drop_prob;
        self.pubsub.faults = plan.clone();
        self.kv.faults = plan.clone();
        self.faults = plan;
    }

    /// Positions the fault clock: windowed faults in pub/sub and KV are
    /// evaluated at this simulation time. The execution engine calls this
    /// with the invocation start time; per-invocation resolution is
    /// sufficient because fault windows span minutes, not milliseconds.
    pub fn set_fault_now(&mut self, now_s: f64) {
        self.pubsub.now_s = now_s;
        self.kv.now_s = now_s;
    }

    /// Resolves a region name against the catalog, returning the typed
    /// [`ModelError::UnknownRegion`](caribou_model::error::ModelError)
    /// for names the catalog does not know. Callers holding fixed,
    /// known-good names (tests, experiment setup) unwrap; anything fed
    /// from user input propagates the error.
    pub fn region(&self, name: &str) -> Result<RegionId, caribou_model::error::ModelError> {
        self.regions.resolve(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aws_cloud_constructs_consistently() {
        let cloud = SimCloud::aws(42);
        assert!(cloud.regions.len() >= 6);
        let east = cloud.region("us-east-1").unwrap();
        let west = cloud.region("us-west-1").unwrap();
        assert!(cloud.latency.rtt(east, west) > 0.02);
        assert!(cloud.pricing.region(east).lambda_gb_second > 0.0);
    }

    #[test]
    fn fault_plan_propagates_drop_probability() {
        let mut cloud = SimCloud::aws(1);
        cloud.set_faults(FaultPlan {
            message_drop_prob: 0.25,
            ..FaultPlan::none()
        });
        assert_eq!(cloud.pubsub.drop_probability, 0.25);
    }

    #[test]
    fn fault_plan_and_clock_propagate_to_services() {
        let mut cloud = SimCloud::aws(1);
        let ca = cloud.region("ca-central-1").unwrap();
        cloud.set_faults(FaultPlan::none().with_outage(ca, 10.0, 20.0));
        cloud.set_fault_now(15.0);
        assert!(cloud.pubsub.faults.region_down(ca, cloud.pubsub.now_s));
        assert_eq!(cloud.kv.now_s, 15.0);
        cloud.set_fault_now(25.0);
        assert!(!cloud.pubsub.faults.region_down(ca, cloud.pubsub.now_s));
    }

    #[test]
    fn aws_only_backend_cloud_matches_legacy_cloud() {
        use caribou_model::rng::Pcg32;

        let legacy = SimCloud::aws(42);
        let mut built = SimCloud::for_providers(ProviderSet::aws_only(), 42).unwrap();
        assert_eq!(built.regions.len(), legacy.regions.len());
        for (id, spec) in legacy.regions.iter() {
            assert_eq!(built.regions.spec(id), spec);
            assert_eq!(built.pricing.region(id), legacy.pricing.region(id));
            assert_eq!(
                built.compute.perf_factor(id),
                legacy.compute.perf_factor(id)
            );
            assert_eq!(
                built.warm.keep_alive_for(id),
                crate::warm::DEFAULT_KEEP_ALIVE_S
            );
            for (other, _) in legacy.regions.iter() {
                assert_eq!(
                    built.latency.one_way(id, other),
                    legacy.latency.one_way(id, other)
                );
            }
        }
        // Identical RNG draw order through the messaging path.
        let mut legacy = SimCloud::aws(42);
        let east = legacy.region("us-east-1").unwrap();
        let ca = legacy.region("ca-central-1").unwrap();
        let key = crate::pubsub::TopicKey {
            workflow: "wf".into(),
            stage: "a".into(),
            region: ca,
        };
        legacy.pubsub.create_topic(key.clone());
        built.pubsub.create_topic(key.clone());
        let mut ra = Pcg32::seed(9);
        let mut rb = Pcg32::seed(9);
        for _ in 0..100 {
            let a = legacy
                .pubsub
                .publish(&key, east, 4096.0, &legacy.latency, &mut ra);
            let b = built
                .pubsub
                .publish(&key, east, 4096.0, &built.latency, &mut rb);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn multi_provider_cloud_differs_where_it_should() {
        let cloud = SimCloud::for_providers(ProviderSet::parse("aws,gcp").unwrap(), 7).unwrap();
        // Catalog is the multi-cloud union, AWS ids first.
        assert_eq!(cloud.regions.len(), RegionCatalog::multi_cloud().len());
        let aws_west = cloud.region("aws:us-west-2").unwrap();
        let gcp_west = cloud.region("gcp:us-west1").unwrap();
        // Cross-provider latency carries the explicit peering penalty on
        // top of distance (the regions are geographically close).
        let plain = LatencyModel::from_catalog(&cloud.regions);
        assert!(cloud.latency.rtt(aws_west, gcp_west) > plain.rtt(aws_west, gcp_west) + 0.007);
        // Cross-provider egress bills the internet tier.
        assert!(cloud.pricing.is_cross_provider(aws_west, gcp_west));
        assert!(
            cloud.pricing.egress_cost(aws_west, gcp_west, 1e9)
                > cloud
                    .pricing
                    .egress_cost(aws_west, cloud.region("us-east-1").unwrap(), 1e9)
        );
        // GCP warm decay is faster; KV pricing is flat.
        assert!(cloud.warm.keep_alive_for(gcp_west) < cloud.warm.keep_alive_for(aws_west));
        let gp = cloud.pricing.region(gcp_west);
        assert_eq!(gp.dynamodb_per_read, gp.dynamodb_per_write);
        // The evaluation universe grows with the provider set.
        let aws_universe = SimCloud::evaluation_universe(ProviderSet::aws_only());
        let both = SimCloud::evaluation_universe(ProviderSet::parse("aws,gcp").unwrap());
        assert_eq!(aws_universe.len(), 4);
        assert!(both.len() > aws_universe.len());
        assert!(both.contains(&"us-west1"));
    }

    #[test]
    fn providers_without_backend_error() {
        let err = SimCloud::for_providers(ProviderSet::parse("azure").unwrap(), 1).unwrap_err();
        assert!(matches!(err, ModelError::UnknownProvider { .. }));
    }

    #[test]
    fn unknown_region_is_a_typed_error() {
        let cloud = SimCloud::aws(1);
        let err = cloud.region("atlantis-1").unwrap_err();
        assert!(
            matches!(
                &err,
                caribou_model::error::ModelError::UnknownRegion { name } if name == "atlantis-1"
            ),
            "{err}"
        );
        assert!(err.to_string().contains("atlantis-1"));
    }
}
