//! Fault injection for resilience testing.
//!
//! The paper's Migrator "catches potential issues with deployment,
//! including region unavailability due to increased traffic" and falls
//! back to the home region (§6.1). The fault plan lets tests and
//! experiments inject exactly those conditions deterministically — and,
//! beyond full-region outages, the weaker failure modes a chaos campaign
//! needs: pairwise network partitions, gray failures (latency inflation
//! over a window), KV throttling windows, and cold-start storms. All
//! windows are half-open `[start, end)` in simulation seconds, and every
//! probabilistic draw flows through an explicit [`Pcg32`], so a campaign
//! is bit-reproducible from its seed.

use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::clock::SimTime;

/// A scheduled region outage window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionOutage {
    /// Affected region.
    pub region: RegionId,
    /// Outage start (inclusive), simulation seconds.
    pub start: SimTime,
    /// Outage end (exclusive), simulation seconds.
    pub end: SimTime,
}

/// A pairwise network partition: traffic between the two regions is lost
/// while the window is active (both regions stay up for other peers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkPartition {
    /// One side of the partition.
    pub a: RegionId,
    /// The other side.
    pub b: RegionId,
    /// Partition start (inclusive), simulation seconds.
    pub start: SimTime,
    /// Partition end (exclusive), simulation seconds.
    pub end: SimTime,
}

/// A gray failure: the region stays reachable but every transfer touching
/// it takes `latency_factor`× as long for the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayFailure {
    /// Affected region.
    pub region: RegionId,
    /// Window start (inclusive), simulation seconds.
    pub start: SimTime,
    /// Window end (exclusive), simulation seconds.
    pub end: SimTime,
    /// Multiplier applied to transfer latency (≥ 1).
    pub latency_factor: f64,
}

/// A KV throttling window: operations against tables homed in the region
/// get throttled with `throttle_prob` and pay SDK-retry latency. Data is
/// never lost — DynamoDB-style throttling slows requests, it does not
/// drop them — so throttles create latency pressure without breaking the
/// delivery invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvThrottle {
    /// Region whose tables are throttled.
    pub region: RegionId,
    /// Window start (inclusive), simulation seconds.
    pub start: SimTime,
    /// Window end (exclusive), simulation seconds.
    pub end: SimTime,
    /// Probability any single operation is throttled.
    pub throttle_prob: f64,
}

/// A cold-start storm: every function start in the region is forced cold
/// for the window (capacity churn evicting warm containers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdStartStorm {
    /// Affected region.
    pub region: RegionId,
    /// Window start (inclusive), simulation seconds.
    pub start: SimTime,
    /// Window end (exclusive), simulation seconds.
    pub end: SimTime,
}

/// The fault-injection plan for a simulation run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scheduled full-region outages.
    pub outages: Vec<RegionOutage>,
    /// Scheduled pairwise network partitions.
    pub partitions: Vec<NetworkPartition>,
    /// Scheduled gray failures (latency inflation windows).
    pub gray_failures: Vec<GrayFailure>,
    /// Scheduled KV throttling windows.
    pub kv_throttles: Vec<KvThrottle>,
    /// Scheduled cold-start storms.
    pub cold_storms: Vec<ColdStartStorm>,
    /// Probability any single function re-deployment attempt fails.
    pub deploy_failure_prob: f64,
    /// Probability any single pub/sub delivery attempt is lost.
    pub message_drop_prob: f64,
}

fn in_window(t: SimTime, start: SimTime, end: SimTime) -> bool {
    t >= start && t < end
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an outage window.
    pub fn with_outage(mut self, region: RegionId, start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "outage window must be non-empty");
        self.outages.push(RegionOutage { region, start, end });
        self
    }

    /// Adds a pairwise partition window.
    pub fn with_partition(
        mut self,
        a: RegionId,
        b: RegionId,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        assert!(end > start, "partition window must be non-empty");
        assert!(a != b, "a region cannot be partitioned from itself");
        self.partitions.push(NetworkPartition { a, b, start, end });
        self
    }

    /// Adds a gray-failure window inflating the region's transfer latency.
    pub fn with_gray_failure(
        mut self,
        region: RegionId,
        start: SimTime,
        end: SimTime,
        latency_factor: f64,
    ) -> Self {
        assert!(end > start, "gray-failure window must be non-empty");
        assert!(latency_factor >= 1.0, "latency factor must be ≥ 1");
        self.gray_failures.push(GrayFailure {
            region,
            start,
            end,
            latency_factor,
        });
        self
    }

    /// Adds a KV throttling window.
    pub fn with_kv_throttle(
        mut self,
        region: RegionId,
        start: SimTime,
        end: SimTime,
        throttle_prob: f64,
    ) -> Self {
        assert!(end > start, "throttle window must be non-empty");
        assert!(
            (0.0..=1.0).contains(&throttle_prob),
            "throttle probability must be in [0, 1]"
        );
        self.kv_throttles.push(KvThrottle {
            region,
            start,
            end,
            throttle_prob,
        });
        self
    }

    /// Adds a cold-start storm window.
    pub fn with_cold_storm(mut self, region: RegionId, start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "storm window must be non-empty");
        self.cold_storms.push(ColdStartStorm { region, start, end });
        self
    }

    /// Whether `region` is down at time `t`.
    pub fn region_down(&self, region: RegionId, t: SimTime) -> bool {
        self.outages
            .iter()
            .any(|o| o.region == region && in_window(t, o.start, o.end))
    }

    /// Whether traffic between `a` and `b` is partitioned at time `t`.
    pub fn partitioned(&self, a: RegionId, b: RegionId, t: SimTime) -> bool {
        if a == b {
            return false;
        }
        self.partitions.iter().any(|p| {
            ((p.a == a && p.b == b) || (p.a == b && p.b == a)) && in_window(t, p.start, p.end)
        })
    }

    /// Latency multiplier for transfers touching `region` at time `t`
    /// (1.0 when no gray failure is active; overlapping windows take the
    /// worst factor).
    pub fn latency_factor(&self, region: RegionId, t: SimTime) -> f64 {
        self.gray_failures
            .iter()
            .filter(|g| g.region == region && in_window(t, g.start, g.end))
            .map(|g| g.latency_factor)
            .fold(1.0, f64::max)
    }

    /// Latency multiplier for a transfer between two regions: the worst
    /// gray failure on either endpoint.
    pub fn pair_latency_factor(&self, a: RegionId, b: RegionId, t: SimTime) -> f64 {
        self.latency_factor(a, t).max(self.latency_factor(b, t))
    }

    /// Samples whether a KV operation against a table homed in `region` is
    /// throttled at time `t`. Draws from `rng` only while a throttle
    /// window is active, so quiet plans leave the stream untouched.
    pub fn kv_throttled(&self, region: RegionId, t: SimTime, rng: &mut Pcg32) -> bool {
        let prob = self
            .kv_throttles
            .iter()
            .filter(|w| w.region == region && in_window(t, w.start, w.end))
            .map(|w| w.throttle_prob)
            .fold(0.0, f64::max);
        prob > 0.0 && rng.chance(prob)
    }

    /// Whether a cold-start storm forces cold starts in `region` at `t`.
    pub fn cold_storm(&self, region: RegionId, t: SimTime) -> bool {
        self.cold_storms
            .iter()
            .any(|s| s.region == region && in_window(t, s.start, s.end))
    }

    /// Whether the plan injects no faults at all.
    pub fn is_quiet(&self) -> bool {
        self.outages.is_empty()
            && self.partitions.is_empty()
            && self.gray_failures.is_empty()
            && self.kv_throttles.is_empty()
            && self.cold_storms.is_empty()
            && self.deploy_failure_prob == 0.0
            && self.message_drop_prob == 0.0
    }

    /// Samples whether a deployment attempt fails.
    pub fn deploy_fails(&self, region: RegionId, t: SimTime, rng: &mut Pcg32) -> bool {
        let fails = self.region_down(region, t) || rng.chance(self.deploy_failure_prob);
        if fails && caribou_telemetry::is_enabled() {
            caribou_telemetry::event_at(t, "fault.deploy_failure", format!("r{}", region.0), 0.0);
        }
        fails
    }

    /// Generates a seeded randomized fault campaign over `[0, duration_s)`.
    ///
    /// The home region is never taken down (the §6.1 fallback target must
    /// exist for the no-invocation-lost invariant to be provable), but it
    /// can still suffer gray failures, throttling, storms, and partitions
    /// towards it. At least one partition, gray failure, and KV throttle
    /// is always scheduled so every campaign exercises every fault class.
    pub fn randomized(
        seed: u64,
        regions: &[RegionId],
        home: RegionId,
        duration_s: SimTime,
    ) -> FaultPlan {
        assert!(duration_s > 0.0, "campaign duration must be positive");
        let mut rng = Pcg32::seed_stream(seed, 0xfa17);
        let window = |rng: &mut Pcg32, min_frac: f64, max_frac: f64| -> (SimTime, SimTime) {
            let len = duration_s * rng.uniform(min_frac, max_frac);
            let start = rng.uniform(0.0, duration_s - len);
            (start, start + len)
        };
        let others: Vec<RegionId> = regions.iter().copied().filter(|r| *r != home).collect();
        let mut plan = FaultPlan::none();

        for &r in &others {
            if rng.chance(0.6) {
                let (s, e) = window(&mut rng, 0.05, 0.15);
                plan = plan.with_outage(r, s, e);
            }
        }
        for _ in 0..(1 + rng.next_bounded(2)) {
            if regions.len() < 2 {
                break;
            }
            let a = regions[rng.next_index(regions.len())];
            let b = regions[rng.next_index(regions.len())];
            if a == b {
                continue;
            }
            let (s, e) = window(&mut rng, 0.05, 0.20);
            plan = plan.with_partition(a, b, s, e);
        }
        for &r in regions {
            if rng.chance(0.35) {
                let (s, e) = window(&mut rng, 0.10, 0.25);
                let factor = rng.uniform(2.0, 8.0);
                plan = plan.with_gray_failure(r, s, e, factor);
            }
        }
        for &r in regions {
            if rng.chance(0.3) {
                let (s, e) = window(&mut rng, 0.05, 0.20);
                let prob = rng.uniform(0.2, 0.8);
                plan = plan.with_kv_throttle(r, s, e, prob);
            }
        }
        for &r in &others {
            if rng.chance(0.3) {
                let (s, e) = window(&mut rng, 0.02, 0.10);
                plan = plan.with_cold_storm(r, s, e);
            }
        }

        // Guarantee coverage of every fault class the acceptance criteria
        // name, regardless of what the probabilistic passes produced.
        if plan.partitions.is_empty() {
            if let Some(&other) = others.first() {
                let (s, e) = window(&mut rng, 0.05, 0.20);
                plan = plan.with_partition(home, other, s, e);
            }
        }
        if plan.gray_failures.is_empty() {
            let r = *others.first().unwrap_or(&home);
            let (s, e) = window(&mut rng, 0.10, 0.25);
            let factor = rng.uniform(2.0, 8.0);
            plan = plan.with_gray_failure(r, s, e, factor);
        }
        if plan.kv_throttles.is_empty() {
            let r = *others.first().unwrap_or(&home);
            let (s, e) = window(&mut rng, 0.05, 0.20);
            let prob = rng.uniform(0.2, 0.8);
            plan = plan.with_kv_throttle(r, s, e, prob);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_window_is_half_open() {
        let plan = FaultPlan::none().with_outage(RegionId(1), 10.0, 20.0);
        assert!(!plan.region_down(RegionId(1), 9.9));
        assert!(plan.region_down(RegionId(1), 10.0));
        assert!(plan.region_down(RegionId(1), 19.9));
        assert!(!plan.region_down(RegionId(1), 20.0));
        assert!(!plan.region_down(RegionId(0), 15.0));
    }

    #[test]
    fn deploy_fails_during_outage() {
        let plan = FaultPlan::none().with_outage(RegionId(2), 0.0, 100.0);
        let mut rng = Pcg32::seed(1);
        assert!(plan.deploy_fails(RegionId(2), 50.0, &mut rng));
        assert!(!plan.deploy_fails(RegionId(2), 150.0, &mut rng));
    }

    #[test]
    fn probabilistic_deploy_failure() {
        let plan = FaultPlan {
            deploy_failure_prob: 0.5,
            ..FaultPlan::none()
        };
        let mut rng = Pcg32::seed(2);
        let fails = (0..1000)
            .filter(|_| plan.deploy_fails(RegionId(0), 0.0, &mut rng))
            .count();
        assert!((400..600).contains(&fails), "fails {fails}");
    }

    #[test]
    #[should_panic]
    fn empty_outage_window_rejected() {
        FaultPlan::none().with_outage(RegionId(0), 5.0, 5.0);
    }

    #[test]
    fn partition_is_symmetric_and_windowed() {
        let plan = FaultPlan::none().with_partition(RegionId(0), RegionId(1), 10.0, 20.0);
        assert!(plan.partitioned(RegionId(0), RegionId(1), 15.0));
        assert!(plan.partitioned(RegionId(1), RegionId(0), 15.0));
        assert!(!plan.partitioned(RegionId(0), RegionId(1), 25.0));
        assert!(!plan.partitioned(RegionId(0), RegionId(2), 15.0));
        assert!(!plan.partitioned(RegionId(0), RegionId(0), 15.0));
    }

    #[test]
    #[should_panic]
    fn self_partition_rejected() {
        FaultPlan::none().with_partition(RegionId(3), RegionId(3), 0.0, 1.0);
    }

    #[test]
    fn gray_failure_inflates_latency_in_window_only() {
        let plan = FaultPlan::none().with_gray_failure(RegionId(2), 100.0, 200.0, 4.0);
        assert_eq!(plan.latency_factor(RegionId(2), 150.0), 4.0);
        assert_eq!(plan.latency_factor(RegionId(2), 50.0), 1.0);
        assert_eq!(plan.latency_factor(RegionId(1), 150.0), 1.0);
        assert_eq!(
            plan.pair_latency_factor(RegionId(1), RegionId(2), 150.0),
            4.0
        );
    }

    #[test]
    fn overlapping_gray_failures_take_worst_factor() {
        let plan = FaultPlan::none()
            .with_gray_failure(RegionId(0), 0.0, 100.0, 2.0)
            .with_gray_failure(RegionId(0), 50.0, 150.0, 6.0);
        assert_eq!(plan.latency_factor(RegionId(0), 75.0), 6.0);
        assert_eq!(plan.latency_factor(RegionId(0), 25.0), 2.0);
        assert_eq!(plan.latency_factor(RegionId(0), 125.0), 6.0);
    }

    #[test]
    fn kv_throttle_draws_only_inside_window() {
        let plan = FaultPlan::none().with_kv_throttle(RegionId(1), 10.0, 20.0, 1.0);
        let mut rng = Pcg32::seed(3);
        let before = rng.clone();
        assert!(!plan.kv_throttled(RegionId(1), 5.0, &mut rng));
        // No draw happened outside the window: streams still aligned.
        assert_eq!(rng.next_u64(), before.clone().next_u64());
        assert!(plan.kv_throttled(RegionId(1), 15.0, &mut rng));
        assert!(!plan.kv_throttled(RegionId(2), 15.0, &mut rng));
    }

    #[test]
    fn cold_storm_windowed() {
        let plan = FaultPlan::none().with_cold_storm(RegionId(4), 100.0, 200.0);
        assert!(plan.cold_storm(RegionId(4), 150.0));
        assert!(!plan.cold_storm(RegionId(4), 250.0));
        assert!(!plan.cold_storm(RegionId(3), 150.0));
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let regions: Vec<RegionId> = (0..4).map(RegionId).collect();
        let a = FaultPlan::randomized(42, &regions, RegionId(0), 3600.0);
        let b = FaultPlan::randomized(42, &regions, RegionId(0), 3600.0);
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.partitions, b.partitions);
        assert_eq!(a.gray_failures, b.gray_failures);
        assert_eq!(a.kv_throttles, b.kv_throttles);
        assert_eq!(a.cold_storms, b.cold_storms);
        let c = FaultPlan::randomized(43, &regions, RegionId(0), 3600.0);
        assert!(
            a.outages != c.outages
                || a.partitions != c.partitions
                || a.gray_failures != c.gray_failures,
            "different seeds should differ"
        );
    }

    #[test]
    fn randomized_never_takes_home_down_and_covers_every_class() {
        let regions: Vec<RegionId> = (0..4).map(RegionId).collect();
        for seed in 0..50 {
            let plan = FaultPlan::randomized(seed, &regions, RegionId(0), 7200.0);
            assert!(
                plan.outages.iter().all(|o| o.region != RegionId(0)),
                "seed {seed}: home must never be down"
            );
            assert!(!plan.partitions.is_empty(), "seed {seed}: partitions");
            assert!(!plan.gray_failures.is_empty(), "seed {seed}: gray failures");
            assert!(!plan.kv_throttles.is_empty(), "seed {seed}: throttles");
            for o in &plan.outages {
                assert!(o.start >= 0.0 && o.end <= 7200.0, "windows inside campaign");
            }
        }
    }

    #[test]
    fn quiet_plan_detected() {
        assert!(FaultPlan::none().is_quiet());
        assert!(!FaultPlan::none()
            .with_gray_failure(RegionId(0), 0.0, 1.0, 2.0)
            .is_quiet());
        assert!(!FaultPlan {
            message_drop_prob: 0.1,
            ..FaultPlan::none()
        }
        .is_quiet());
    }
}
