//! Fault injection for resilience testing.
//!
//! The paper's Migrator "catches potential issues with deployment,
//! including region unavailability due to increased traffic" and falls
//! back to the home region (§6.1). The fault plan lets tests and
//! experiments inject exactly those conditions deterministically — and,
//! beyond full-region outages, the weaker failure modes a chaos campaign
//! needs: pairwise network partitions, gray failures (latency inflation
//! over a window), KV throttling windows, and cold-start storms. On top
//! of the independent classes sit three *correlated* classes: provider-
//! wide outages (every region of a provider down at once), shared
//! failure domains (a seeded set of regions failing together), and
//! carbon-data outages (the forecast source goes dark, forcing the
//! staleness ladder in `caribou-carbon`). All windows are half-open
//! `[start, end)` in simulation seconds via the shared [`Window`]
//! helper, and every probabilistic draw flows through an explicit
//! [`Pcg32`], so a campaign is bit-reproducible from its seed.

use caribou_model::region::{Provider, RegionId};
use caribou_model::rng::Pcg32;

use crate::clock::SimTime;

/// A half-open `[start, end)` window in simulation seconds.
///
/// Every fault class shares this single helper so boundary semantics
/// agree everywhere: `start` is inside, `end` is outside, and empty or
/// inverted windows are rejected at construction — there is exactly one
/// place where the edge rule lives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Window start (inclusive), simulation seconds.
    pub start: SimTime,
    /// Window end (exclusive), simulation seconds.
    pub end: SimTime,
}

impl Window {
    /// Creates a window, rejecting empty or inverted ranges.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(
            end > start,
            "window must be non-empty (half-open [start, end))"
        );
        Self { start, end }
    }

    /// Whether `t` falls inside the half-open window.
    pub fn contains(self, t: SimTime) -> bool {
        t >= self.start && t < self.end
    }

    /// Window length in seconds.
    pub fn duration(self) -> SimTime {
        self.end - self.start
    }

    /// Whether two windows share at least one instant.
    pub fn overlaps(self, other: Window) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// A scheduled region outage window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionOutage {
    /// Affected region.
    pub region: RegionId,
    /// Active window.
    pub window: Window,
}

/// A pairwise network partition: traffic between the two regions is lost
/// while the window is active (both regions stay up for other peers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkPartition {
    /// One side of the partition.
    pub a: RegionId,
    /// The other side.
    pub b: RegionId,
    /// Active window.
    pub window: Window,
}

/// A gray failure: the region stays reachable but every transfer touching
/// it takes `latency_factor`× as long for the window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GrayFailure {
    /// Affected region.
    pub region: RegionId,
    /// Active window.
    pub window: Window,
    /// Multiplier applied to transfer latency (≥ 1).
    pub latency_factor: f64,
}

/// A KV throttling window: operations against tables homed in the region
/// get throttled with `throttle_prob` and pay SDK-retry latency. Data is
/// never lost — DynamoDB-style throttling slows requests, it does not
/// drop them — so throttles create latency pressure without breaking the
/// delivery invariants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvThrottle {
    /// Region whose tables are throttled.
    pub region: RegionId,
    /// Active window.
    pub window: Window,
    /// Probability any single operation is throttled.
    pub throttle_prob: f64,
}

/// A cold-start storm: every function start in the region is forced cold
/// for the window (capacity churn evicting warm containers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColdStartStorm {
    /// Affected region.
    pub region: RegionId,
    /// Active window.
    pub window: Window,
}

/// A provider-wide outage: every listed region of `provider` is down at
/// once for the window. The region list is resolved at construction so
/// the plan stays decoupled from any particular catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct ProviderOutage {
    /// Provider suffering the outage.
    pub provider: Provider,
    /// Regions of that provider taken down together.
    pub regions: Vec<RegionId>,
    /// Active window.
    pub window: Window,
}

/// A shared failure domain: a correlated set of regions (same submarine
/// cable, same control-plane cell, same grid interconnect) failing
/// together for the window.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureDomain {
    /// Regions that fail together.
    pub regions: Vec<RegionId>,
    /// Active window.
    pub window: Window,
}

/// A carbon-data outage: the hourly forecast source is dark for the
/// window. Consumers (the staleness wrapper in `caribou-carbon`) degrade
/// to last-known-good and then yearly-average intensity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CarbonOutage {
    /// Active window.
    pub window: Window,
}

/// The fault-injection plan for a simulation run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scheduled full-region outages.
    pub outages: Vec<RegionOutage>,
    /// Scheduled pairwise network partitions.
    pub partitions: Vec<NetworkPartition>,
    /// Scheduled gray failures (latency inflation windows).
    pub gray_failures: Vec<GrayFailure>,
    /// Scheduled KV throttling windows.
    pub kv_throttles: Vec<KvThrottle>,
    /// Scheduled cold-start storms.
    pub cold_storms: Vec<ColdStartStorm>,
    /// Scheduled provider-wide outages.
    pub provider_outages: Vec<ProviderOutage>,
    /// Scheduled shared failure domains.
    pub failure_domains: Vec<FailureDomain>,
    /// Scheduled carbon-data outages.
    pub carbon_outages: Vec<CarbonOutage>,
    /// Probability any single function re-deployment attempt fails.
    pub deploy_failure_prob: f64,
    /// Probability any single pub/sub delivery attempt is lost.
    pub message_drop_prob: f64,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an outage window.
    pub fn with_outage(mut self, region: RegionId, start: SimTime, end: SimTime) -> Self {
        self.outages.push(RegionOutage {
            region,
            window: Window::new(start, end),
        });
        self
    }

    /// Adds a pairwise partition window.
    pub fn with_partition(
        mut self,
        a: RegionId,
        b: RegionId,
        start: SimTime,
        end: SimTime,
    ) -> Self {
        assert!(a != b, "a region cannot be partitioned from itself");
        self.partitions.push(NetworkPartition {
            a,
            b,
            window: Window::new(start, end),
        });
        self
    }

    /// Adds a gray-failure window inflating the region's transfer latency.
    pub fn with_gray_failure(
        mut self,
        region: RegionId,
        start: SimTime,
        end: SimTime,
        latency_factor: f64,
    ) -> Self {
        assert!(latency_factor >= 1.0, "latency factor must be ≥ 1");
        self.gray_failures.push(GrayFailure {
            region,
            window: Window::new(start, end),
            latency_factor,
        });
        self
    }

    /// Adds a KV throttling window.
    pub fn with_kv_throttle(
        mut self,
        region: RegionId,
        start: SimTime,
        end: SimTime,
        throttle_prob: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&throttle_prob),
            "throttle probability must be in [0, 1]"
        );
        self.kv_throttles.push(KvThrottle {
            region,
            window: Window::new(start, end),
            throttle_prob,
        });
        self
    }

    /// Adds a cold-start storm window.
    pub fn with_cold_storm(mut self, region: RegionId, start: SimTime, end: SimTime) -> Self {
        self.cold_storms.push(ColdStartStorm {
            region,
            window: Window::new(start, end),
        });
        self
    }

    /// Adds a provider-wide outage taking `regions` down together.
    pub fn with_provider_outage(
        mut self,
        provider: Provider,
        regions: &[RegionId],
        start: SimTime,
        end: SimTime,
    ) -> Self {
        assert!(
            !regions.is_empty(),
            "provider outage needs at least one region"
        );
        self.provider_outages.push(ProviderOutage {
            provider,
            regions: regions.to_vec(),
            window: Window::new(start, end),
        });
        self
    }

    /// Adds a shared failure domain taking `regions` down together.
    pub fn with_failure_domain(
        mut self,
        regions: &[RegionId],
        start: SimTime,
        end: SimTime,
    ) -> Self {
        assert!(
            regions.len() >= 2,
            "a failure domain correlates at least two regions"
        );
        self.failure_domains.push(FailureDomain {
            regions: regions.to_vec(),
            window: Window::new(start, end),
        });
        self
    }

    /// Adds a carbon-data outage window.
    pub fn with_carbon_outage(mut self, start: SimTime, end: SimTime) -> Self {
        self.carbon_outages.push(CarbonOutage {
            window: Window::new(start, end),
        });
        self
    }

    /// Whether `region` is down at time `t`, from any class that can take
    /// a region down: independent outages, provider-wide outages, and
    /// shared failure domains.
    pub fn region_down(&self, region: RegionId, t: SimTime) -> bool {
        self.outages
            .iter()
            .any(|o| o.region == region && o.window.contains(t))
            || self
                .provider_outages
                .iter()
                .any(|o| o.window.contains(t) && o.regions.contains(&region))
            || self
                .failure_domains
                .iter()
                .any(|d| d.window.contains(t) && d.regions.contains(&region))
    }

    /// Whether a provider-wide outage for `provider` is active at `t`.
    pub fn provider_down(&self, provider: Provider, t: SimTime) -> bool {
        self.provider_outages
            .iter()
            .any(|o| o.provider == provider && o.window.contains(t))
    }

    /// Whether the carbon forecast source is dark at time `t`.
    pub fn carbon_data_down(&self, t: SimTime) -> bool {
        self.carbon_outages.iter().any(|o| o.window.contains(t))
    }

    /// Start of the carbon-data outage active at `t`, if any (the
    /// earliest start among overlapping windows — how long the forecast
    /// has been stale).
    pub fn carbon_down_since(&self, t: SimTime) -> Option<SimTime> {
        self.carbon_outages
            .iter()
            .filter(|o| o.window.contains(t))
            .map(|o| o.window.start)
            .fold(None, |acc, s| Some(acc.map_or(s, |a: SimTime| a.min(s))))
    }

    /// Latest end among the down-windows covering `region` at `t`, if the
    /// region is down at all — when the Migrator can expect the region
    /// back.
    pub fn down_until(&self, region: RegionId, t: SimTime) -> Option<SimTime> {
        let mut until: Option<SimTime> = None;
        let mut push = |w: Window| {
            if w.contains(t) {
                until = Some(until.map_or(w.end, |u: SimTime| u.max(w.end)));
            }
        };
        for o in &self.outages {
            if o.region == region {
                push(o.window);
            }
        }
        for o in &self.provider_outages {
            if o.regions.contains(&region) {
                push(o.window);
            }
        }
        for d in &self.failure_domains {
            if d.regions.contains(&region) {
                push(d.window);
            }
        }
        until
    }

    /// Whether traffic between `a` and `b` is partitioned at time `t`.
    pub fn partitioned(&self, a: RegionId, b: RegionId, t: SimTime) -> bool {
        if a == b {
            return false;
        }
        self.partitions
            .iter()
            .any(|p| ((p.a == a && p.b == b) || (p.a == b && p.b == a)) && p.window.contains(t))
    }

    /// Latency multiplier for transfers touching `region` at time `t`
    /// (1.0 when no gray failure is active; overlapping windows take the
    /// worst factor).
    pub fn latency_factor(&self, region: RegionId, t: SimTime) -> f64 {
        self.gray_failures
            .iter()
            .filter(|g| g.region == region && g.window.contains(t))
            .map(|g| g.latency_factor)
            .fold(1.0, f64::max)
    }

    /// Latency multiplier for a transfer between two regions: the worst
    /// gray failure on either endpoint.
    pub fn pair_latency_factor(&self, a: RegionId, b: RegionId, t: SimTime) -> f64 {
        self.latency_factor(a, t).max(self.latency_factor(b, t))
    }

    /// Samples whether a KV operation against a table homed in `region` is
    /// throttled at time `t`. Draws from `rng` only while a throttle
    /// window is active, so quiet plans leave the stream untouched.
    pub fn kv_throttled(&self, region: RegionId, t: SimTime, rng: &mut Pcg32) -> bool {
        let prob = self
            .kv_throttles
            .iter()
            .filter(|w| w.region == region && w.window.contains(t))
            .map(|w| w.throttle_prob)
            .fold(0.0, f64::max);
        prob > 0.0 && rng.chance(prob)
    }

    /// Whether a cold-start storm forces cold starts in `region` at `t`.
    pub fn cold_storm(&self, region: RegionId, t: SimTime) -> bool {
        self.cold_storms
            .iter()
            .any(|s| s.region == region && s.window.contains(t))
    }

    /// Whether the plan injects no faults at all.
    pub fn is_quiet(&self) -> bool {
        self.outages.is_empty()
            && self.partitions.is_empty()
            && self.gray_failures.is_empty()
            && self.kv_throttles.is_empty()
            && self.cold_storms.is_empty()
            && self.provider_outages.is_empty()
            && self.failure_domains.is_empty()
            && self.carbon_outages.is_empty()
            && self.deploy_failure_prob == 0.0
            && self.message_drop_prob == 0.0
    }

    /// Samples whether a deployment attempt fails.
    pub fn deploy_fails(&self, region: RegionId, t: SimTime, rng: &mut Pcg32) -> bool {
        let fails = self.region_down(region, t) || rng.chance(self.deploy_failure_prob);
        if fails && caribou_telemetry::is_enabled() {
            caribou_telemetry::event_at(t, "fault.deploy_failure", format!("r{}", region.0), 0.0);
        }
        fails
    }

    /// Generates a seeded randomized fault campaign over `[0, duration_s)`.
    ///
    /// The home region is never taken down (the §6.1 fallback target must
    /// exist for the no-invocation-lost invariant to be provable), but it
    /// can still suffer gray failures, throttling, storms, and partitions
    /// towards it. At least one partition, gray failure, and KV throttle
    /// is always scheduled so every campaign exercises every fault class.
    pub fn randomized(
        seed: u64,
        regions: &[RegionId],
        home: RegionId,
        duration_s: SimTime,
    ) -> FaultPlan {
        assert!(duration_s > 0.0, "campaign duration must be positive");
        let mut rng = Pcg32::seed_stream(seed, 0xfa17);
        let window = |rng: &mut Pcg32, min_frac: f64, max_frac: f64| -> (SimTime, SimTime) {
            let len = duration_s * rng.uniform(min_frac, max_frac);
            let start = rng.uniform(0.0, duration_s - len);
            (start, start + len)
        };
        let others: Vec<RegionId> = regions.iter().copied().filter(|r| *r != home).collect();
        let mut plan = FaultPlan::none();

        for &r in &others {
            if rng.chance(0.6) {
                let (s, e) = window(&mut rng, 0.05, 0.15);
                plan = plan.with_outage(r, s, e);
            }
        }
        for _ in 0..(1 + rng.next_bounded(2)) {
            if regions.len() < 2 {
                break;
            }
            let a = regions[rng.next_index(regions.len())];
            let b = regions[rng.next_index(regions.len())];
            if a == b {
                continue;
            }
            let (s, e) = window(&mut rng, 0.05, 0.20);
            plan = plan.with_partition(a, b, s, e);
        }
        for &r in regions {
            if rng.chance(0.35) {
                let (s, e) = window(&mut rng, 0.10, 0.25);
                let factor = rng.uniform(2.0, 8.0);
                plan = plan.with_gray_failure(r, s, e, factor);
            }
        }
        for &r in regions {
            if rng.chance(0.3) {
                let (s, e) = window(&mut rng, 0.05, 0.20);
                let prob = rng.uniform(0.2, 0.8);
                plan = plan.with_kv_throttle(r, s, e, prob);
            }
        }
        for &r in &others {
            if rng.chance(0.3) {
                let (s, e) = window(&mut rng, 0.02, 0.10);
                plan = plan.with_cold_storm(r, s, e);
            }
        }

        // Guarantee coverage of every fault class the acceptance criteria
        // name, regardless of what the probabilistic passes produced.
        if plan.partitions.is_empty() {
            if let Some(&other) = others.first() {
                let (s, e) = window(&mut rng, 0.05, 0.20);
                plan = plan.with_partition(home, other, s, e);
            }
        }
        if plan.gray_failures.is_empty() {
            let r = *others.first().unwrap_or(&home);
            let (s, e) = window(&mut rng, 0.10, 0.25);
            let factor = rng.uniform(2.0, 8.0);
            plan = plan.with_gray_failure(r, s, e, factor);
        }
        if plan.kv_throttles.is_empty() {
            let r = *others.first().unwrap_or(&home);
            let (s, e) = window(&mut rng, 0.05, 0.20);
            let prob = rng.uniform(0.2, 0.8);
            plan = plan.with_kv_throttle(r, s, e, prob);
        }
        plan
    }

    /// Generates a seeded *correlated* fault campaign: everything
    /// [`FaultPlan::randomized`] produces, plus a provider-wide outage, one
    /// or two shared failure domains, a carbon-data outage, and a gray
    /// failure at home overlapping the provider outage (the load spike of
    /// everyone's traffic re-routing to the same fallback at once).
    ///
    /// `regions` carries each region's provider so the plan can group
    /// them without depending on a catalog. The correlated draws come
    /// from a fresh domain-separated stream (`0xfa18`), so the base
    /// campaign for a given seed is bit-identical to the uncorrelated
    /// one — existing seeds are not perturbed.
    ///
    /// The provider taken down is chosen deterministically: a non-home
    /// provider when one exists (so the home fallback always survives a
    /// full provider loss), otherwise the home provider minus home.
    pub fn randomized_correlated(
        seed: u64,
        regions: &[(RegionId, Provider)],
        home: RegionId,
        duration_s: SimTime,
    ) -> FaultPlan {
        let plain: Vec<RegionId> = regions.iter().map(|(r, _)| *r).collect();
        let mut plan = Self::randomized(seed, &plain, home, duration_s);
        let mut rng = Pcg32::seed_stream(seed, 0xfa18);

        let home_provider = regions
            .iter()
            .find(|(r, _)| *r == home)
            .map(|(_, p)| *p)
            .expect("home must be in the region set");
        let mut providers: Vec<Provider> = Vec::new();
        for &(_, p) in regions {
            if !providers.contains(&p) {
                providers.push(p);
            }
        }

        // Provider-wide outage: prefer a non-home provider so the home
        // fallback survives; pick among candidates by rng for variety.
        let candidates: Vec<Provider> = providers
            .iter()
            .copied()
            .filter(|p| *p != home_provider)
            .collect();
        let victim = if candidates.is_empty() {
            home_provider
        } else {
            candidates[rng.next_index(candidates.len())]
        };
        let victim_regions: Vec<RegionId> = regions
            .iter()
            .filter(|(r, p)| *p == victim && *r != home)
            .map(|(r, _)| *r)
            .collect();
        let mut outage_window = None;
        if !victim_regions.is_empty() {
            let len = duration_s * rng.uniform(0.20, 0.40);
            let start = rng.uniform(0.05 * duration_s, duration_s - len);
            plan = plan.with_provider_outage(victim, &victim_regions, start, start + len);
            outage_window = Some(Window::new(start, start + len));
        }

        // Shared failure domains: one or two pairs of non-home regions.
        let others: Vec<RegionId> = plain.iter().copied().filter(|r| *r != home).collect();
        if others.len() >= 2 {
            for _ in 0..(1 + rng.next_bounded(2)) {
                let a = others[rng.next_index(others.len())];
                let b = others[rng.next_index(others.len())];
                if a == b {
                    continue;
                }
                let len = duration_s * rng.uniform(0.05, 0.20);
                let start = rng.uniform(0.0, duration_s - len);
                plan = plan.with_failure_domain(&[a, b], start, start + len);
            }
        }

        // Carbon-data outage: the forecast source goes dark once.
        {
            let len = duration_s * rng.uniform(0.15, 0.35);
            let start = rng.uniform(0.0, duration_s - len);
            plan = plan.with_carbon_outage(start, start + len);
        }

        // Correlated load spike: home slows down exactly while the
        // provider outage dumps its traffic somewhere else.
        if let Some(w) = outage_window {
            let factor = rng.uniform(3.0, 6.0);
            plan = plan.with_gray_failure(home, w.start, w.end, factor);
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_is_half_open_at_both_edges() {
        let w = Window::new(10.0, 20.0);
        assert!(!w.contains(9.999));
        assert!(w.contains(10.0));
        assert!(w.contains(19.999));
        assert!(!w.contains(20.0));
        assert_eq!(w.duration(), 10.0);
    }

    #[test]
    #[should_panic]
    fn zero_duration_window_rejected() {
        Window::new(5.0, 5.0);
    }

    #[test]
    #[should_panic]
    fn inverted_window_rejected() {
        Window::new(5.0, 4.0);
    }

    #[test]
    fn window_overlap_is_open_at_shared_edge() {
        let a = Window::new(0.0, 10.0);
        assert!(a.overlaps(Window::new(5.0, 15.0)));
        assert!(a.overlaps(Window::new(0.0, 1.0)));
        // Half-open: [0,10) and [10,20) share no instant.
        assert!(!a.overlaps(Window::new(10.0, 20.0)));
        assert!(!a.overlaps(Window::new(20.0, 30.0)));
    }

    #[test]
    fn outage_window_is_half_open() {
        let plan = FaultPlan::none().with_outage(RegionId(1), 10.0, 20.0);
        assert!(!plan.region_down(RegionId(1), 9.9));
        assert!(plan.region_down(RegionId(1), 10.0));
        assert!(plan.region_down(RegionId(1), 19.9));
        assert!(!plan.region_down(RegionId(1), 20.0));
        assert!(!plan.region_down(RegionId(0), 15.0));
    }

    #[test]
    fn all_fault_classes_agree_at_boundaries() {
        // Every class built over the same [100, 200) window flips at the
        // same instants because they all share `Window`.
        let plan = FaultPlan::none()
            .with_outage(RegionId(1), 100.0, 200.0)
            .with_partition(RegionId(0), RegionId(1), 100.0, 200.0)
            .with_gray_failure(RegionId(1), 100.0, 200.0, 4.0)
            .with_kv_throttle(RegionId(1), 100.0, 200.0, 1.0)
            .with_cold_storm(RegionId(1), 100.0, 200.0)
            .with_provider_outage(Provider::Gcp, &[RegionId(2)], 100.0, 200.0)
            .with_failure_domain(&[RegionId(3), RegionId(4)], 100.0, 200.0)
            .with_carbon_outage(100.0, 200.0);
        let mut rng = Pcg32::seed(9);
        for (t, active) in [(99.9, false), (100.0, true), (199.9, true), (200.0, false)] {
            assert_eq!(plan.region_down(RegionId(1), t), active, "outage at {t}");
            assert_eq!(
                plan.partitioned(RegionId(0), RegionId(1), t),
                active,
                "partition at {t}"
            );
            assert_eq!(
                plan.latency_factor(RegionId(1), t) > 1.0,
                active,
                "gray at {t}"
            );
            assert_eq!(
                plan.kv_throttled(RegionId(1), t, &mut rng),
                active,
                "throttle at {t}"
            );
            assert_eq!(plan.cold_storm(RegionId(1), t), active, "storm at {t}");
            assert_eq!(
                plan.region_down(RegionId(2), t),
                active,
                "provider outage at {t}"
            );
            assert_eq!(
                plan.region_down(RegionId(3), t) && plan.region_down(RegionId(4), t),
                active,
                "failure domain at {t}"
            );
            assert_eq!(plan.carbon_data_down(t), active, "carbon outage at {t}");
        }
    }

    #[test]
    fn deploy_fails_during_outage() {
        let plan = FaultPlan::none().with_outage(RegionId(2), 0.0, 100.0);
        let mut rng = Pcg32::seed(1);
        assert!(plan.deploy_fails(RegionId(2), 50.0, &mut rng));
        assert!(!plan.deploy_fails(RegionId(2), 150.0, &mut rng));
    }

    #[test]
    fn probabilistic_deploy_failure() {
        let plan = FaultPlan {
            deploy_failure_prob: 0.5,
            ..FaultPlan::none()
        };
        let mut rng = Pcg32::seed(2);
        let fails = (0..1000)
            .filter(|_| plan.deploy_fails(RegionId(0), 0.0, &mut rng))
            .count();
        assert!((400..600).contains(&fails), "fails {fails}");
    }

    #[test]
    #[should_panic]
    fn empty_outage_window_rejected() {
        FaultPlan::none().with_outage(RegionId(0), 5.0, 5.0);
    }

    #[test]
    fn partition_is_symmetric_and_windowed() {
        let plan = FaultPlan::none().with_partition(RegionId(0), RegionId(1), 10.0, 20.0);
        assert!(plan.partitioned(RegionId(0), RegionId(1), 15.0));
        assert!(plan.partitioned(RegionId(1), RegionId(0), 15.0));
        assert!(!plan.partitioned(RegionId(0), RegionId(1), 25.0));
        assert!(!plan.partitioned(RegionId(0), RegionId(2), 15.0));
        assert!(!plan.partitioned(RegionId(0), RegionId(0), 15.0));
    }

    #[test]
    #[should_panic]
    fn self_partition_rejected() {
        FaultPlan::none().with_partition(RegionId(3), RegionId(3), 0.0, 1.0);
    }

    #[test]
    fn gray_failure_inflates_latency_in_window_only() {
        let plan = FaultPlan::none().with_gray_failure(RegionId(2), 100.0, 200.0, 4.0);
        assert_eq!(plan.latency_factor(RegionId(2), 150.0), 4.0);
        assert_eq!(plan.latency_factor(RegionId(2), 50.0), 1.0);
        assert_eq!(plan.latency_factor(RegionId(1), 150.0), 1.0);
        assert_eq!(
            plan.pair_latency_factor(RegionId(1), RegionId(2), 150.0),
            4.0
        );
    }

    #[test]
    fn overlapping_gray_failures_take_worst_factor() {
        let plan = FaultPlan::none()
            .with_gray_failure(RegionId(0), 0.0, 100.0, 2.0)
            .with_gray_failure(RegionId(0), 50.0, 150.0, 6.0);
        assert_eq!(plan.latency_factor(RegionId(0), 75.0), 6.0);
        assert_eq!(plan.latency_factor(RegionId(0), 25.0), 2.0);
        assert_eq!(plan.latency_factor(RegionId(0), 125.0), 6.0);
    }

    #[test]
    fn kv_throttle_draws_only_inside_window() {
        let plan = FaultPlan::none().with_kv_throttle(RegionId(1), 10.0, 20.0, 1.0);
        let mut rng = Pcg32::seed(3);
        let before = rng.clone();
        assert!(!plan.kv_throttled(RegionId(1), 5.0, &mut rng));
        // No draw happened outside the window: streams still aligned.
        assert_eq!(rng.next_u64(), before.clone().next_u64());
        assert!(plan.kv_throttled(RegionId(1), 15.0, &mut rng));
        assert!(!plan.kv_throttled(RegionId(2), 15.0, &mut rng));
    }

    #[test]
    fn cold_storm_windowed() {
        let plan = FaultPlan::none().with_cold_storm(RegionId(4), 100.0, 200.0);
        assert!(plan.cold_storm(RegionId(4), 150.0));
        assert!(!plan.cold_storm(RegionId(4), 250.0));
        assert!(!plan.cold_storm(RegionId(3), 150.0));
    }

    #[test]
    fn provider_outage_takes_all_regions_down_together() {
        let plan = FaultPlan::none().with_provider_outage(
            Provider::Gcp,
            &[RegionId(10), RegionId(11), RegionId(12)],
            50.0,
            150.0,
        );
        for r in [RegionId(10), RegionId(11), RegionId(12)] {
            assert!(plan.region_down(r, 100.0));
            assert!(!plan.region_down(r, 150.0));
        }
        assert!(!plan.region_down(RegionId(0), 100.0));
        assert!(plan.provider_down(Provider::Gcp, 100.0));
        assert!(!plan.provider_down(Provider::Aws, 100.0));
        assert!(!plan.provider_down(Provider::Gcp, 150.0));
    }

    #[test]
    fn failure_domain_correlates_members_only() {
        let plan = FaultPlan::none().with_failure_domain(&[RegionId(1), RegionId(3)], 10.0, 20.0);
        assert!(plan.region_down(RegionId(1), 15.0));
        assert!(plan.region_down(RegionId(3), 15.0));
        assert!(!plan.region_down(RegionId(2), 15.0));
        assert!(!plan.region_down(RegionId(1), 20.0));
    }

    #[test]
    #[should_panic]
    fn single_region_failure_domain_rejected() {
        FaultPlan::none().with_failure_domain(&[RegionId(1)], 0.0, 1.0);
    }

    #[test]
    fn carbon_outage_reports_staleness_origin() {
        let plan = FaultPlan::none()
            .with_carbon_outage(100.0, 200.0)
            .with_carbon_outage(150.0, 300.0);
        assert!(!plan.carbon_data_down(50.0));
        assert_eq!(plan.carbon_down_since(50.0), None);
        assert_eq!(plan.carbon_down_since(120.0), Some(100.0));
        // Overlap: staleness is measured from the earliest active start.
        assert_eq!(plan.carbon_down_since(180.0), Some(100.0));
        assert_eq!(plan.carbon_down_since(250.0), Some(150.0));
        assert_eq!(plan.carbon_down_since(300.0), None);
    }

    #[test]
    fn down_until_spans_overlapping_windows() {
        let plan = FaultPlan::none()
            .with_outage(RegionId(1), 0.0, 100.0)
            .with_provider_outage(Provider::Aws, &[RegionId(1)], 50.0, 250.0)
            .with_failure_domain(&[RegionId(1), RegionId(2)], 60.0, 80.0);
        assert_eq!(plan.down_until(RegionId(1), 70.0), Some(250.0));
        assert_eq!(plan.down_until(RegionId(1), 120.0), Some(250.0));
        assert_eq!(plan.down_until(RegionId(2), 70.0), Some(80.0));
        assert_eq!(plan.down_until(RegionId(1), 250.0), None);
        assert_eq!(plan.down_until(RegionId(3), 70.0), None);
    }

    #[test]
    fn randomized_is_deterministic_per_seed() {
        let regions: Vec<RegionId> = (0..4).map(RegionId).collect();
        let a = FaultPlan::randomized(42, &regions, RegionId(0), 3600.0);
        let b = FaultPlan::randomized(42, &regions, RegionId(0), 3600.0);
        assert_eq!(a.outages, b.outages);
        assert_eq!(a.partitions, b.partitions);
        assert_eq!(a.gray_failures, b.gray_failures);
        assert_eq!(a.kv_throttles, b.kv_throttles);
        assert_eq!(a.cold_storms, b.cold_storms);
        let c = FaultPlan::randomized(43, &regions, RegionId(0), 3600.0);
        assert!(
            a.outages != c.outages
                || a.partitions != c.partitions
                || a.gray_failures != c.gray_failures,
            "different seeds should differ"
        );
    }

    #[test]
    fn randomized_never_takes_home_down_and_covers_every_class() {
        let regions: Vec<RegionId> = (0..4).map(RegionId).collect();
        for seed in 0..50 {
            let plan = FaultPlan::randomized(seed, &regions, RegionId(0), 7200.0);
            assert!(
                plan.outages.iter().all(|o| o.region != RegionId(0)),
                "seed {seed}: home must never be down"
            );
            assert!(!plan.partitions.is_empty(), "seed {seed}: partitions");
            assert!(!plan.gray_failures.is_empty(), "seed {seed}: gray failures");
            assert!(!plan.kv_throttles.is_empty(), "seed {seed}: throttles");
            for o in &plan.outages {
                assert!(
                    o.window.start >= 0.0 && o.window.end <= 7200.0,
                    "windows inside campaign"
                );
            }
        }
    }

    fn two_provider_set() -> Vec<(RegionId, Provider)> {
        vec![
            (RegionId(0), Provider::Aws),
            (RegionId(1), Provider::Aws),
            (RegionId(2), Provider::Gcp),
            (RegionId(3), Provider::Gcp),
        ]
    }

    #[test]
    fn correlated_extends_base_plan_without_perturbing_it() {
        let regions = two_provider_set();
        let plain: Vec<RegionId> = regions.iter().map(|(r, _)| *r).collect();
        let base = FaultPlan::randomized(42, &plain, RegionId(0), 7200.0);
        let corr = FaultPlan::randomized_correlated(42, &regions, RegionId(0), 7200.0);
        // The independent classes drawn from the 0xfa17 stream are
        // bit-identical — correlated draws live on their own stream.
        assert_eq!(base.outages, corr.outages);
        assert_eq!(base.partitions, corr.partitions);
        assert_eq!(base.kv_throttles, corr.kv_throttles);
        assert_eq!(base.cold_storms, corr.cold_storms);
        assert_eq!(
            &base.gray_failures[..],
            &corr.gray_failures[..base.gray_failures.len()],
            "correlated gray failures are appended, never interleaved"
        );
        assert!(base.provider_outages.is_empty());
        assert!(!corr.provider_outages.is_empty());
        assert!(!corr.carbon_outages.is_empty());
    }

    #[test]
    fn correlated_is_deterministic_and_never_takes_home_down() {
        let regions = two_provider_set();
        for seed in 0..50 {
            let a = FaultPlan::randomized_correlated(seed, &regions, RegionId(0), 7200.0);
            let b = FaultPlan::randomized_correlated(seed, &regions, RegionId(0), 7200.0);
            assert_eq!(a.provider_outages, b.provider_outages, "seed {seed}");
            assert_eq!(a.failure_domains, b.failure_domains, "seed {seed}");
            assert_eq!(a.carbon_outages, b.carbon_outages, "seed {seed}");
            for t in [0.0, 1800.0, 3600.0, 5400.0, 7199.0] {
                assert!(
                    !a.region_down(RegionId(0), t),
                    "seed {seed}: home down at {t}"
                );
            }
            // The provider-wide outage always hits the non-home provider.
            for o in &a.provider_outages {
                assert_eq!(o.provider, Provider::Gcp, "seed {seed}");
            }
            assert!(!a.carbon_outages.is_empty(), "seed {seed}: carbon outage");
        }
    }

    #[test]
    fn correlated_single_provider_spares_home() {
        let regions: Vec<(RegionId, Provider)> =
            (0..4).map(|i| (RegionId(i), Provider::Aws)).collect();
        for seed in 0..20 {
            let plan = FaultPlan::randomized_correlated(seed, &regions, RegionId(0), 7200.0);
            for o in &plan.provider_outages {
                assert!(
                    !o.regions.contains(&RegionId(0)),
                    "seed {seed}: home inside provider outage"
                );
            }
        }
    }

    #[test]
    fn quiet_plan_detected() {
        assert!(FaultPlan::none().is_quiet());
        assert!(!FaultPlan::none()
            .with_gray_failure(RegionId(0), 0.0, 1.0, 2.0)
            .is_quiet());
        assert!(!FaultPlan::none().with_carbon_outage(0.0, 1.0).is_quiet());
        assert!(!FaultPlan::none()
            .with_provider_outage(Provider::Aws, &[RegionId(1)], 0.0, 1.0)
            .is_quiet());
        assert!(!FaultPlan {
            message_drop_prob: 0.1,
            ..FaultPlan::none()
        }
        .is_quiet());
    }
}
