//! Fault injection for resilience testing.
//!
//! The paper's Migrator "catches potential issues with deployment,
//! including region unavailability due to increased traffic" and falls
//! back to the home region (§6.1). The fault plan lets tests and
//! experiments inject exactly those conditions deterministically.

use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::clock::SimTime;

/// A scheduled region outage window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionOutage {
    /// Affected region.
    pub region: RegionId,
    /// Outage start (inclusive), simulation seconds.
    pub start: SimTime,
    /// Outage end (exclusive), simulation seconds.
    pub end: SimTime,
}

/// The fault-injection plan for a simulation run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Scheduled full-region outages.
    pub outages: Vec<RegionOutage>,
    /// Probability any single function re-deployment attempt fails.
    pub deploy_failure_prob: f64,
    /// Probability any single pub/sub delivery attempt is lost.
    pub message_drop_prob: f64,
}

impl FaultPlan {
    /// A plan with no faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an outage window.
    pub fn with_outage(mut self, region: RegionId, start: SimTime, end: SimTime) -> Self {
        assert!(end > start, "outage window must be non-empty");
        self.outages.push(RegionOutage { region, start, end });
        self
    }

    /// Whether `region` is down at time `t`.
    pub fn region_down(&self, region: RegionId, t: SimTime) -> bool {
        self.outages
            .iter()
            .any(|o| o.region == region && t >= o.start && t < o.end)
    }

    /// Samples whether a deployment attempt fails.
    pub fn deploy_fails(&self, region: RegionId, t: SimTime, rng: &mut Pcg32) -> bool {
        let fails = self.region_down(region, t) || rng.chance(self.deploy_failure_prob);
        if fails && caribou_telemetry::is_enabled() {
            caribou_telemetry::event_at(t, "fault.deploy_failure", format!("r{}", region.0), 0.0);
        }
        fails
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_window_is_half_open() {
        let plan = FaultPlan::none().with_outage(RegionId(1), 10.0, 20.0);
        assert!(!plan.region_down(RegionId(1), 9.9));
        assert!(plan.region_down(RegionId(1), 10.0));
        assert!(plan.region_down(RegionId(1), 19.9));
        assert!(!plan.region_down(RegionId(1), 20.0));
        assert!(!plan.region_down(RegionId(0), 15.0));
    }

    #[test]
    fn deploy_fails_during_outage() {
        let plan = FaultPlan::none().with_outage(RegionId(2), 0.0, 100.0);
        let mut rng = Pcg32::seed(1);
        assert!(plan.deploy_fails(RegionId(2), 50.0, &mut rng));
        assert!(!plan.deploy_fails(RegionId(2), 150.0, &mut rng));
    }

    #[test]
    fn probabilistic_deploy_failure() {
        let plan = FaultPlan {
            deploy_failure_prob: 0.5,
            ..FaultPlan::none()
        };
        let mut rng = Pcg32::seed(2);
        let fails = (0..1000)
            .filter(|_| plan.deploy_fails(RegionId(0), 0.0, &mut rng))
            .count();
        assert!((400..600).contains(&fails), "fails {fails}");
    }

    #[test]
    #[should_panic]
    fn empty_outage_window_rejected() {
        FaultPlan::none().with_outage(RegionId(0), 5.0, 5.0);
    }
}
