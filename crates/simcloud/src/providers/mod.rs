//! Trait-based provider backends.
//!
//! The simulated substrate is not one AWS-shaped cloud: each provider
//! family plugs in behind [`ProviderBackend`], a bundle of sub-traits
//! describing its messaging, key-value, registry/compute, and pricing
//! semantics. [`crate::cloud::SimCloud::for_providers`] assembles a cloud
//! from any [`ProviderSet`](caribou_model::region::ProviderSet) by
//! dispatching through these trait objects; the default AWS-only set
//! reproduces the legacy substrate bit-for-bit, while adding `gcp` opens a
//! plan space with genuinely different semantics (push-based ordered
//! pub/sub with ack-deadline redelivery, flat-rate KV pricing, a different
//! egress tier table, and a steeper cold-start curve with faster warm
//! decay).

pub mod aws;
pub mod gcp;

use caribou_model::dist::DistSpec;
use caribou_model::region::{Provider, RegionSpec};

use crate::pricing::RegionPricing;

/// How a provider's pub/sub service retries an unacknowledged delivery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeliveryKind {
    /// SNS-style pull fan-out: subscribers poll, retries back off with
    /// exponential growth and decorrelated jitter.
    PullFanOut {
        /// Minimum (and initial) backoff before a retry, seconds.
        backoff_base_s: f64,
        /// Cap on any single retry backoff, seconds.
        backoff_cap_s: f64,
    },
    /// Pub/Sub-style push delivery with per-subscription ordering: the
    /// service pushes in order, waits a fixed ack deadline, and redelivers
    /// on expiry (no jittered backoff).
    PushOrdered {
        /// Ack deadline after which an unacknowledged push is redelivered,
        /// seconds.
        ack_deadline_s: f64,
        /// Serialization delay added once per publish to preserve ordering
        /// within the subscription, seconds.
        ordering_delay_s: f64,
    },
}

/// Messaging semantics of one region's pub/sub service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MessagingProfile {
    /// Median service-side publish overhead, seconds.
    pub publish_overhead_median_s: f64,
    /// Log-space sigma of the publish overhead.
    pub publish_overhead_sigma: f64,
    /// Maximum delivery attempts before dead-lettering.
    pub max_attempts: u32,
    /// Retry semantics.
    pub delivery: DeliveryKind,
}

impl MessagingProfile {
    /// The SNS-shaped profile the legacy substrate hard-coded; the
    /// constants here must stay equal to the historical
    /// [`crate::pubsub`] values so AWS-only runs remain bit-identical.
    pub fn aws_sns() -> Self {
        MessagingProfile {
            publish_overhead_median_s: crate::pubsub::PUBLISH_OVERHEAD_MEDIAN_S,
            publish_overhead_sigma: crate::pubsub::PUBLISH_OVERHEAD_SIGMA,
            max_attempts: crate::pubsub::MAX_ATTEMPTS,
            delivery: DeliveryKind::PullFanOut {
                backoff_base_s: crate::pubsub::RETRY_BACKOFF_BASE_S,
                backoff_cap_s: crate::pubsub::RETRY_BACKOFF_CAP_S,
            },
        }
    }
}

/// Compute (and registry) semantics of one region.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeProfile {
    /// Multiplier on reference execution time; >1 is slower.
    pub perf_factor: f64,
    /// Cold-start duration distribution, seconds.
    pub cold_start: DistSpec,
    /// Warm-container keep-alive window, seconds.
    pub keep_alive_s: f64,
    /// Service-side overhead of a registry push or copy, seconds.
    pub registry_overhead_s: f64,
}

/// Key-value store billing semantics of one region.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvProfile {
    /// Price per write request unit, USD.
    pub per_write_usd: f64,
    /// Price per read request unit, USD.
    pub per_read_usd: f64,
    /// Whether reads and writes bill at one flat rate (GCP-style) rather
    /// than the asymmetric read/write units of DynamoDB.
    pub flat_rate: bool,
}

/// Messaging semantics per region.
pub trait MessagingBackend {
    /// The pub/sub profile of `region`.
    fn messaging(&self, region: &RegionSpec) -> MessagingProfile;
}

/// Key-value billing semantics per region.
pub trait KvBackend {
    /// The KV billing profile of `region`.
    fn kv(&self, region: &RegionSpec) -> KvProfile;
}

/// Compute and registry semantics per region.
pub trait ComputeBackend {
    /// The compute/registry profile of `region`.
    fn compute(&self, region: &RegionSpec) -> ComputeProfile;
}

/// Pricing semantics per region.
pub trait PricingBackend {
    /// The full price sheet of `region` (KV rates are overridden from
    /// [`KvBackend::kv`] when a cloud is assembled).
    fn pricing(&self, region: &RegionSpec) -> RegionPricing;

    /// Egress price per GB from `region` toward another provider's region.
    /// Cross-provider traffic leaves the provider's backbone, so this is
    /// typically the internet tier, not the inter-region tier.
    fn cross_provider_egress_per_gb(&self, region: &RegionSpec) -> f64;
}

/// One provider family: regions plus all service semantics.
pub trait ProviderBackend:
    MessagingBackend + KvBackend + ComputeBackend + PricingBackend + std::fmt::Debug + Sync
{
    /// Which provider this backend models.
    fn provider(&self) -> Provider;

    /// The regions this provider operates, in catalog order.
    fn regions(&self) -> Vec<RegionSpec>;

    /// Region names this provider contributes to evaluation universes.
    fn evaluation_regions(&self) -> &'static [&'static str];
}

/// The static backend registry: resolves a [`Provider`] to its backend
/// trait object, or `None` for providers without an implementation yet.
pub fn backend_for(provider: Provider) -> Option<&'static dyn ProviderBackend> {
    match provider {
        Provider::Aws => Some(&aws::AwsBackend),
        Provider::Gcp => Some(&gcp::GcpBackend),
        Provider::Azure => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    #[test]
    fn registry_resolves_implemented_providers() {
        assert_eq!(
            backend_for(Provider::Aws).unwrap().provider(),
            Provider::Aws
        );
        assert_eq!(
            backend_for(Provider::Gcp).unwrap().provider(),
            Provider::Gcp
        );
        assert!(backend_for(Provider::Azure).is_none());
    }

    #[test]
    fn aws_backend_matches_legacy_substrate() {
        let b = backend_for(Provider::Aws).unwrap();
        let cat = RegionCatalog::aws_default();
        // The backend's region rows are exactly the legacy catalog.
        let rows = b.regions();
        assert_eq!(rows.len(), cat.len());
        for ((_, legacy), row) in cat.iter().zip(rows.iter()) {
            assert_eq!(legacy, row);
        }
        // Messaging reproduces the historical SNS constants.
        let east = rows.iter().find(|r| r.name == "us-east-1").unwrap();
        assert_eq!(b.messaging(east), MessagingProfile::aws_sns());
        // Compute reproduces the historical perf factors and curves.
        let prof = b.compute(east);
        assert_eq!(prof.perf_factor, 1.00);
        assert_eq!(prof.keep_alive_s, crate::warm::DEFAULT_KEEP_ALIVE_S);
        // Pricing reproduces the legacy catalog bit-for-bit.
        let pc = crate::pricing::PricingCatalog::aws_default(&cat);
        for (id, spec) in cat.iter() {
            let mut row = b.pricing(spec);
            let kv = b.kv(spec);
            row.dynamodb_per_write = kv.per_write_usd;
            row.dynamodb_per_read = kv.per_read_usd;
            assert_eq!(&row, pc.region(id), "pricing mismatch in {}", spec.name);
        }
    }

    #[test]
    fn gcp_backend_has_genuinely_different_semantics() {
        let aws = backend_for(Provider::Aws).unwrap();
        let gcp = backend_for(Provider::Gcp).unwrap();
        let g = &gcp.regions()[0];
        let a = &aws.regions()[0];
        // Push-based ordered delivery, not pull fan-out.
        assert!(matches!(
            gcp.messaging(g).delivery,
            DeliveryKind::PushOrdered { .. }
        ));
        // Flat-rate KV pricing.
        let kv = gcp.kv(g);
        assert!(kv.flat_rate);
        assert_eq!(kv.per_read_usd, kv.per_write_usd);
        assert!(!aws.kv(a).flat_rate);
        // Steeper cold starts, faster warm decay.
        let (gc, ac) = (gcp.compute(g), aws.compute(a));
        assert!(gc.keep_alive_s < ac.keep_alive_s);
        match (gc.cold_start, ac.cold_start) {
            (DistSpec::LogNormal { median: gm, .. }, DistSpec::LogNormal { median: am, .. }) => {
                assert!(gm > am, "gcp cold starts are steeper")
            }
            other => panic!("unexpected cold-start specs {other:?}"),
        }
        // Different egress tier table.
        let (gp, ap) = (gcp.pricing(g), aws.pricing(a));
        assert!(gp.egress_inter_region_per_gb > ap.egress_inter_region_per_gb);
        assert!(gcp.cross_provider_egress_per_gb(g) > aws.cross_provider_egress_per_gb(a));
    }
}
