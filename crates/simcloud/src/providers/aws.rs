//! The AWS-shaped provider backend.
//!
//! This module is the legacy substrate, verbatim, behind the
//! [`ProviderBackend`] traits: SNS-style pull fan-out pub/sub with
//! decorrelated-jitter retries, DynamoDB's asymmetric read/write units,
//! the published Lambda cold-start curve with the ~10-minute keep-alive,
//! and the AWS price list with tiered inter-region egress. Every constant
//! here must stay equal to its historical hard-coded value so that
//! AWS-only runs remain bit-identical to the pre-refactor substrate.

use caribou_model::dist::DistSpec;
use caribou_model::region::{Provider, RegionCatalog, RegionSpec};

use crate::pricing::RegionPricing;
use crate::warm::DEFAULT_KEEP_ALIVE_S;

use super::{
    ComputeBackend, ComputeProfile, KvBackend, KvProfile, MessagingBackend, MessagingProfile,
    PricingBackend, ProviderBackend,
};

/// Service-side overhead of a registry push or copy, seconds (matches the
/// historical `registry::REGISTRY_OVERHEAD_S`).
const AWS_REGISTRY_OVERHEAD_S: f64 = 1.5;

/// The AWS backend (a unit struct; all state lives in the profiles).
#[derive(Debug)]
pub struct AwsBackend;

/// The published per-region price premium over us-east-1 (must match the
/// historical `PricingCatalog::aws_default` table).
fn premium(name: &str) -> f64 {
    match name {
        "us-east-1" | "us-east-2" => 1.0,
        "us-west-1" => 1.08,
        "us-west-2" => 1.0,
        "ca-central-1" => 1.03,
        "ca-west-1" => 1.07,
        "eu-west-1" => 1.02,
        "eu-central-1" => 1.10,
        "ap-southeast-2" => 1.15,
        "sa-east-1" => 1.35,
        _ => 1.05,
    }
}

impl MessagingBackend for AwsBackend {
    fn messaging(&self, _region: &RegionSpec) -> MessagingProfile {
        MessagingProfile::aws_sns()
    }
}

impl KvBackend for AwsBackend {
    fn kv(&self, region: &RegionSpec) -> KvProfile {
        // DynamoDB's asymmetric request units, with the region premium
        // applied exactly as the legacy pricing catalog does.
        let f = premium(&region.name);
        KvProfile {
            per_write_usd: 1.25 / 1.0e6 * f,
            per_read_usd: 0.25 / 1.0e6 * f,
            flat_rate: false,
        }
    }
}

impl ComputeBackend for AwsBackend {
    fn compute(&self, region: &RegionSpec) -> ComputeProfile {
        // Must match the historical `LambdaRuntime::aws_default` table.
        let perf_factor = match region.name.as_str() {
            "us-east-1" => 1.00,
            "us-east-2" => 0.99,
            "us-west-1" => 1.03,
            "us-west-2" => 1.01,
            "ca-central-1" => 1.02,
            "ca-west-1" => 1.04,
            _ => 1.05,
        };
        ComputeProfile {
            perf_factor,
            cold_start: DistSpec::LogNormal {
                median: 0.35,
                sigma: 0.35,
            },
            keep_alive_s: DEFAULT_KEEP_ALIVE_S,
            registry_overhead_s: AWS_REGISTRY_OVERHEAD_S,
        }
    }
}

impl PricingBackend for AwsBackend {
    fn pricing(&self, region: &RegionSpec) -> RegionPricing {
        RegionPricing::us_east_1_baseline().scaled(premium(&region.name))
    }

    fn cross_provider_egress_per_gb(&self, region: &RegionSpec) -> f64 {
        // Traffic to another provider leaves AWS's backbone at the
        // internet tier.
        self.pricing(region).egress_internet_per_gb
    }
}

impl ProviderBackend for AwsBackend {
    fn provider(&self) -> Provider {
        Provider::Aws
    }

    fn regions(&self) -> Vec<RegionSpec> {
        RegionCatalog::aws_default()
            .iter()
            .map(|(_, spec)| spec.clone())
            .collect()
    }

    fn evaluation_regions(&self) -> &'static [&'static str] {
        &["us-east-1", "us-west-1", "us-west-2", "ca-central-1"]
    }
}
