//! A GCP-like provider backend with genuinely different semantics.
//!
//! Where AWS models SNS-style pull fan-out, DynamoDB request units, and a
//! gentle cold-start curve with a long keep-alive, this family models:
//!
//! * **push-based ordered pub/sub** — the service pushes to the
//!   subscriber in order and redelivers after a fixed per-subscription
//!   ack deadline (no jittered backoff), with a small per-publish
//!   ordering-serialization delay;
//! * **a different egress tier table** — inter-region egress is markedly
//!   more expensive than AWS's discounted backbone tier, and
//!   cross-provider traffic bills at the (higher) internet tier;
//! * **flat-rate KV pricing** — reads and writes bill at one flat
//!   per-operation rate instead of asymmetric read/write units;
//! * **a steeper cold-start curve with faster warm decay** — slower cold
//!   starts (higher median, fatter tail) but containers are reclaimed
//!   after ~4 idle minutes instead of ~10.

use caribou_model::dist::DistSpec;
use caribou_model::region::{Provider, RegionCatalog, RegionSpec};

use crate::pricing::RegionPricing;

use super::{
    ComputeBackend, ComputeProfile, DeliveryKind, KvBackend, KvProfile, MessagingBackend,
    MessagingProfile, PricingBackend, ProviderBackend,
};

/// Warm containers are reclaimed after this idle window, seconds.
const GCP_KEEP_ALIVE_S: f64 = 240.0;
/// Artifact-Registry-style copy overhead, seconds.
const GCP_REGISTRY_OVERHEAD_S: f64 = 1.0;
/// Per-subscription ack deadline driving redelivery, seconds.
const GCP_ACK_DEADLINE_S: f64 = 1.0;
/// Ordering-serialization delay added once per publish, seconds.
const GCP_ORDERING_DELAY_S: f64 = 0.005;
/// Flat per-operation KV rate (reads == writes), USD.
const GCP_KV_FLAT_RATE_USD: f64 = 0.60 / 1.0e6;

/// The GCP-like backend.
#[derive(Debug)]
pub struct GcpBackend;

/// Per-region price premium over the us-east-1 baseline.
fn premium(name: &str) -> f64 {
    match name {
        "us-central1" | "us-west1" => 0.98,
        "northamerica-northeast1" => 1.02,
        "europe-west1" | "europe-north1" => 1.04,
        _ => 1.05,
    }
}

impl MessagingBackend for GcpBackend {
    fn messaging(&self, _region: &RegionSpec) -> MessagingProfile {
        MessagingProfile {
            publish_overhead_median_s: 0.020,
            publish_overhead_sigma: 0.30,
            max_attempts: 5,
            delivery: DeliveryKind::PushOrdered {
                ack_deadline_s: GCP_ACK_DEADLINE_S,
                ordering_delay_s: GCP_ORDERING_DELAY_S,
            },
        }
    }
}

impl KvBackend for GcpBackend {
    fn kv(&self, region: &RegionSpec) -> KvProfile {
        let rate = GCP_KV_FLAT_RATE_USD * premium(&region.name);
        KvProfile {
            per_write_usd: rate,
            per_read_usd: rate,
            flat_rate: true,
        }
    }
}

impl ComputeBackend for GcpBackend {
    fn compute(&self, region: &RegionSpec) -> ComputeProfile {
        let perf_factor = match region.name.as_str() {
            "us-central1" => 1.04,
            "us-west1" => 0.97,
            "northamerica-northeast1" => 0.98,
            "europe-west1" => 1.01,
            "europe-north1" => 0.99,
            _ => 1.05,
        };
        ComputeProfile {
            perf_factor,
            // Steeper than AWS's {0.35, 0.35}: higher median, fatter tail.
            cold_start: DistSpec::LogNormal {
                median: 0.85,
                sigma: 0.50,
            },
            keep_alive_s: GCP_KEEP_ALIVE_S,
            registry_overhead_s: GCP_REGISTRY_OVERHEAD_S,
        }
    }
}

impl PricingBackend for GcpBackend {
    fn pricing(&self, region: &RegionSpec) -> RegionPricing {
        let f = premium(&region.name);
        let mut p = RegionPricing::us_east_1_baseline().scaled(f);
        // GCP's egress tier table: no discounted inter-region backbone
        // tier; internet egress is pricier than AWS's.
        p.egress_inter_region_per_gb = 0.05 * f;
        p.egress_internet_per_gb = 0.12 * f;
        p
    }

    fn cross_provider_egress_per_gb(&self, region: &RegionSpec) -> f64 {
        self.pricing(region).egress_internet_per_gb
    }
}

impl ProviderBackend for GcpBackend {
    fn provider(&self) -> Provider {
        Provider::Gcp
    }

    fn regions(&self) -> Vec<RegionSpec> {
        // The GCP rows of the multi-cloud catalog (everything after the
        // AWS prefix).
        RegionCatalog::multi_cloud()
            .iter()
            .map(|(_, spec)| spec.clone())
            .filter(|spec| spec.provider == Provider::Gcp)
            .collect()
    }

    fn evaluation_regions(&self) -> &'static [&'static str] {
        &["us-west1", "northamerica-northeast1", "us-central1"]
    }
}
