//! A small sorted map with inline storage.
//!
//! [`UsageMeter`](crate::meter::UsageMeter) is created fresh for every
//! invocation, and a `BTreeMap` allocates a tree node on its first
//! insert — eight maps made the meter the largest per-invocation
//! allocation source after buffer pooling. A [`TinyMap`] keeps its first
//! `N` entries in a sorted inline array (no heap traffic at all for the
//! handful of regions one invocation touches) and spills to a boxed
//! `BTreeMap` only beyond that.
//!
//! Iteration is always in ascending key order — inline and spilled alike
//! — so everything downstream that relied on `BTreeMap`'s deterministic
//! iteration (cost folds, serialization) is byte-identical. The serde
//! impls emit the same map encoding `BTreeMap` would.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::Index;

use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// A map over `Copy` keys and values: first `N` entries inline and
/// sorted, unbounded via a boxed `BTreeMap` spill.
#[derive(Clone)]
pub struct TinyMap<K, V, const N: usize> {
    len: usize,
    inline: [(K, V); N],
    // Boxed to keep the spill pointer-sized: the map is moved by value on
    // the hot path and spilling is the rare case.
    #[allow(clippy::box_collection)]
    spill: Option<Box<BTreeMap<K, V>>>,
}

impl<K: Copy + Ord + Default, V: Copy + Default, const N: usize> Default for TinyMap<K, V, N> {
    fn default() -> Self {
        TinyMap {
            len: 0,
            inline: [(K::default(), V::default()); N],
            spill: None,
        }
    }
}

impl<K: Copy + Ord + Default, V: Copy + Default, const N: usize> TinyMap<K, V, N> {
    /// Creates an empty map. Allocates nothing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        match &self.spill {
            Some(m) => m.len(),
            None => self.len,
        }
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The value under `key`, if present.
    pub fn get(&self, key: &K) -> Option<&V> {
        match &self.spill {
            Some(m) => m.get(key),
            None => self.inline[..self.len]
                .binary_search_by(|e| e.0.cmp(key))
                .ok()
                .map(|i| &self.inline[i].1),
        }
    }

    /// Mutable access to the value under `key`, inserting `default`
    /// first when absent (the `entry(k).or_insert(d)` idiom).
    pub fn entry_or(&mut self, key: K, default: V) -> &mut V {
        if self.spill.is_none() {
            match self.inline[..self.len].binary_search_by(|e| e.0.cmp(&key)) {
                Ok(i) => return &mut self.inline[i].1,
                Err(i) => {
                    if self.len < N {
                        self.inline.copy_within(i..self.len, i + 1);
                        self.inline[i] = (key, default);
                        self.len += 1;
                        return &mut self.inline[i].1;
                    }
                    // Inline storage exhausted: spill everything.
                    let mut m = Box::new(BTreeMap::new());
                    for e in &self.inline[..self.len] {
                        m.insert(e.0, e.1);
                    }
                    self.spill = Some(m);
                }
            }
        }
        // Reached only with a spill installed; `get_or_insert_with` just
        // keeps the borrow checker happy without an `expect`.
        self.spill
            .get_or_insert_with(Box::default)
            .entry(key)
            .or_insert(default)
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> + '_ {
        let (inline, spill) = match &self.spill {
            Some(m) => (&self.inline[..0], Some(m.iter())),
            None => (&self.inline[..self.len], None),
        };
        inline
            .iter()
            .map(|e| (&e.0, &e.1))
            .chain(spill.into_iter().flatten())
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl<K: Copy + Ord + Default, V: Copy + Default, const N: usize> Index<&K> for TinyMap<K, V, N> {
    type Output = V;
    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry found for key")
    }
}

impl<K, V, const N: usize> PartialEq for TinyMap<K, V, N>
where
    K: Copy + Ord + Default,
    V: Copy + Default + PartialEq,
{
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<K, V, const N: usize> fmt::Debug for TinyMap<K, V, N>
where
    K: Copy + Ord + Default + fmt::Debug,
    V: Copy + Default + fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<K, V, const N: usize> Serialize for TinyMap<K, V, N>
where
    K: Copy + Ord + Default + Serialize,
    V: Copy + Default + Serialize,
{
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        // Delegating to `BTreeMap`'s impl makes the encoding identical to
        // the pre-TinyMap one by construction. Serialization is a cold
        // path, so the temporary tree is fine.
        let tree: BTreeMap<K, V> = self.iter().map(|(k, v)| (*k, *v)).collect();
        tree.serialize(serializer)
    }
}

impl<'de, K, V, const N: usize> Deserialize<'de> for TinyMap<K, V, N>
where
    K: Copy + Ord + Default + Deserialize<'de>,
    V: Copy + Default + Deserialize<'de>,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let tree = BTreeMap::<K, V>::deserialize(deserializer)?;
        let mut out = TinyMap::new();
        for (k, v) in tree {
            *out.entry_or(k, v) = v;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inline_inserts_stay_sorted() {
        let mut m: TinyMap<u32, u64, 4> = TinyMap::new();
        for k in [3u32, 1, 2] {
            *m.entry_or(k, 0) += u64::from(k) * 10;
        }
        assert_eq!(m.len(), 3);
        assert!(m.spill.is_none());
        let got: Vec<(u32, u64)> = m.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, vec![(1, 10), (2, 20), (3, 30)]);
        assert_eq!(m[&2], 20);
        assert_eq!(m.get(&9), None);
    }

    #[test]
    fn spills_beyond_inline_capacity() {
        let mut m: TinyMap<u32, u64, 2> = TinyMap::new();
        for k in 0..10u32 {
            *m.entry_or(k, 0) += 1;
        }
        assert!(m.spill.is_some());
        assert_eq!(m.len(), 10);
        // Updates after the spill land in the tree.
        *m.entry_or(0, 0) += 1;
        assert_eq!(m[&0], 2);
        let keys: Vec<u32> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn serializes_exactly_like_btreemap() {
        let mut a: TinyMap<u32, f64, 2> = TinyMap::new();
        let mut b: BTreeMap<u32, f64> = BTreeMap::new();
        for (k, v) in [(5u32, 1.5f64), (1, 2.5), (3, 3.5), (2, 4.5)] {
            *a.entry_or(k, 0.0) += v;
            *b.entry(k).or_insert(0.0) += v;
        }
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
        let back: TinyMap<u32, f64, 2> =
            serde_json::from_str(&serde_json::to_string(&a).unwrap()).expect("round trip");
        assert_eq!(back, a);
    }

    #[test]
    fn equality_ignores_storage_shape() {
        let mut small: TinyMap<u32, u64, 8> = TinyMap::new();
        let mut spilled: TinyMap<u32, u64, 1> = TinyMap::new();
        // Different N means different types; compare same-N maps in
        // different fill orders instead.
        for k in [4u32, 2, 9] {
            *small.entry_or(k, 0) += 1;
        }
        let mut other: TinyMap<u32, u64, 8> = TinyMap::new();
        for k in [9u32, 4, 2] {
            *other.entry_or(k, 0) += 1;
        }
        assert_eq!(small, other);
        for k in [4u32, 2, 9] {
            *spilled.entry_or(k, 0) += 1;
        }
        assert_eq!(spilled.len(), 3);
    }
}
