//! Lambda-like function execution.
//!
//! Models the pieces of AWS Lambda that the paper's metrics pipeline
//! observes: the memory→vCPU allocation rule (`n_vcpu = mem / 1769`, §7.1),
//! billed duration, `cpu_total_time` (the Lambda-Insights counter feeding
//! the utilization-based power model, Eq. 7.3), per-region performance
//! factors (§7.1: execution time distributions differ per region), and
//! cold starts.

use caribou_model::dist::DistSpec;
use caribou_model::region::{RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;

/// Memory (MB) granting one full vCPU on AWS Lambda.
pub const MB_PER_VCPU: f64 = 1769.0;

/// Outcome of one simulated function execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionRecord {
    /// Wall-clock duration in seconds (billed duration).
    pub duration_s: f64,
    /// Total CPU time across all vCPUs, seconds (Lambda Insights
    /// `cpu_total_time`).
    pub cpu_total_time_s: f64,
    /// Configured memory in MB.
    pub memory_mb: u32,
    /// Whether this execution paid a cold start.
    pub cold_start: bool,
    /// Cold-start penalty included in `duration_s`, seconds.
    pub cold_start_s: f64,
}

impl ExecutionRecord {
    /// The vCPU allocation for this execution.
    pub fn vcpus(&self) -> f64 {
        vcpus(self.memory_mb)
    }

    /// Average CPU utilization over the execution (Eq. 7.3 numerator over
    /// `t × n_vcpu`).
    pub fn avg_utilization(&self) -> f64 {
        if self.duration_s <= 0.0 {
            return 0.0;
        }
        (self.cpu_total_time_s / (self.duration_s * self.vcpus())).clamp(0.0, 1.0)
    }
}

/// vCPU allocation for a memory size (`mem / 1769`, fractional below
/// 1769 MB, as on AWS Lambda).
pub fn vcpus(memory_mb: u32) -> f64 {
    memory_mb as f64 / MB_PER_VCPU
}

/// Per-region execution performance model.
#[derive(Debug, Clone)]
pub struct LambdaRuntime {
    /// Multiplier on reference execution time per region; >1 is slower.
    perf_factor: Vec<f64>,
    /// Run-to-run multiplicative execution noise (log-space sigma).
    pub exec_sigma: f64,
    /// Cold-start duration distribution, seconds.
    pub cold_start: DistSpec,
    /// Probability an invocation is a cold start (the simulator does not
    /// track per-container warm pools; the paper's workloads are frequent
    /// enough that cold starts are rare).
    pub cold_start_prob: f64,
    /// Per-region cold-start curves overriding [`LambdaRuntime::cold_start`]
    /// (providers differ: GCP's curve is steeper than Lambda's). Empty in
    /// legacy single-provider runtimes.
    cold_start_override: Vec<Option<DistSpec>>,
}

impl LambdaRuntime {
    /// Builds the runtime with the default per-region performance factors.
    ///
    /// Factors reflect the observation (§7.1, and the "Night Shift" study
    /// the paper cites) that the same function runs a few percent faster or
    /// slower in different regions.
    pub fn aws_default(catalog: &RegionCatalog) -> Self {
        let perf_factor = catalog
            .iter()
            .map(|(_, spec)| match spec.name.as_str() {
                "us-east-1" => 1.00,
                "us-east-2" => 0.99,
                "us-west-1" => 1.03,
                "us-west-2" => 1.01,
                "ca-central-1" => 1.02,
                "ca-west-1" => 1.04,
                _ => 1.05,
            })
            .collect();
        LambdaRuntime {
            perf_factor,
            exec_sigma: 0.06,
            cold_start: DistSpec::LogNormal {
                median: 0.35,
                sigma: 0.35,
            },
            cold_start_prob: 0.02,
            cold_start_override: Vec::new(),
        }
    }

    /// The performance factor of a region.
    pub fn perf_factor(&self, region: RegionId) -> f64 {
        self.perf_factor[region.index()]
    }

    /// Overrides a region's performance factor.
    pub fn set_perf_factor(&mut self, region: RegionId, factor: f64) {
        self.perf_factor[region.index()] = factor;
    }

    /// Overrides a region's cold-start curve (provider-specific curves).
    pub fn set_cold_start(&mut self, region: RegionId, dist: DistSpec) {
        if self.cold_start_override.len() < self.perf_factor.len() {
            self.cold_start_override
                .resize(self.perf_factor.len(), None);
        }
        self.cold_start_override[region.index()] = Some(dist);
    }

    /// The cold-start curve governing a region.
    pub fn cold_start_for(&self, region: RegionId) -> &DistSpec {
        self.cold_start_override
            .get(region.index())
            .and_then(|o| o.as_ref())
            .unwrap_or(&self.cold_start)
    }

    /// Simulates one execution of a function stage.
    ///
    /// `ref_exec` is the execution-time distribution on reference
    /// (us-east-1) hardware; `cpu_utilization` the stage's average CPU
    /// utilization. Cold starts are sampled probabilistically; use
    /// [`LambdaRuntime::execute_forced`] when a warm-pool model decides
    /// coldness. Determinism: all randomness comes from `rng`.
    pub fn execute(
        &self,
        region: RegionId,
        ref_exec: &DistSpec,
        memory_mb: u32,
        cpu_utilization: f64,
        rng: &mut Pcg32,
    ) -> ExecutionRecord {
        let cold = rng.chance(self.cold_start_prob);
        self.execute_forced(region, ref_exec, memory_mb, cpu_utilization, cold, rng)
    }

    /// Simulates one execution with an externally decided cold-start flag
    /// (driven by the stateful [`crate::warm::WarmPool`]).
    pub fn execute_forced(
        &self,
        region: RegionId,
        ref_exec: &DistSpec,
        memory_mb: u32,
        cpu_utilization: f64,
        cold: bool,
        rng: &mut Pcg32,
    ) -> ExecutionRecord {
        let base = ref_exec.sample(rng).max(0.0);
        let noise = rng.lognormal(0.0, self.exec_sigma);
        let compute_s = base * self.perf_factor(region) * noise;
        let cold_s = if cold {
            self.cold_start_for(region).sample(rng).max(0.0)
        } else {
            0.0
        };
        let duration = compute_s + cold_s;
        let cpu_total = compute_s * vcpus(memory_mb) * cpu_utilization.clamp(0.0, 1.0);
        ExecutionRecord {
            duration_s: duration,
            cpu_total_time_s: cpu_total,
            memory_mb,
            cold_start: cold,
            cold_start_s: cold_s,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runtime() -> (RegionCatalog, LambdaRuntime) {
        let cat = RegionCatalog::aws_default();
        let rt = LambdaRuntime::aws_default(&cat);
        (cat, rt)
    }

    #[test]
    fn vcpu_rule_matches_paper() {
        assert!((vcpus(1769) - 1.0).abs() < 1e-12);
        assert!((vcpus(3538) - 2.0).abs() < 1e-12);
        assert!(vcpus(512) < 0.3);
    }

    #[test]
    fn execution_duration_tracks_reference() {
        let (cat, rt) = runtime();
        let r = cat.id_of("us-east-1").unwrap();
        let spec = DistSpec::Constant { value: 2.0 };
        let mut rng = Pcg32::seed(1);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| rt.execute(r, &spec, 1769, 0.7, &mut rng).duration_s)
            .sum::<f64>()
            / n as f64;
        // Mean should sit near 2 s; cold starts and jitter add a little.
        assert!((1.95..2.15).contains(&mean), "mean {mean}");
    }

    #[test]
    fn utilization_recovered_from_cpu_total_time() {
        let (cat, mut rt) = runtime();
        rt.cold_start_prob = 0.0;
        rt.exec_sigma = 0.0;
        let r = cat.id_of("us-east-1").unwrap();
        let spec = DistSpec::Constant { value: 3.0 };
        let mut rng = Pcg32::seed(2);
        let rec = rt.execute(r, &spec, 1769, 0.6, &mut rng);
        assert!((rec.avg_utilization() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn slower_region_runs_longer() {
        let (cat, mut rt) = runtime();
        rt.cold_start_prob = 0.0;
        rt.exec_sigma = 0.0;
        let east = cat.id_of("us-east-1").unwrap();
        let west1 = cat.id_of("us-west-1").unwrap();
        let spec = DistSpec::Constant { value: 1.0 };
        let mut rng = Pcg32::seed(3);
        let a = rt.execute(east, &spec, 1024, 0.7, &mut rng).duration_s;
        let b = rt.execute(west1, &spec, 1024, 0.7, &mut rng).duration_s;
        assert!(b > a);
    }

    #[test]
    fn cold_start_adds_latency() {
        let (cat, mut rt) = runtime();
        rt.cold_start_prob = 1.0;
        let r = cat.id_of("us-east-1").unwrap();
        let spec = DistSpec::Constant { value: 1.0 };
        let mut rng = Pcg32::seed(4);
        let rec = rt.execute(r, &spec, 1024, 0.7, &mut rng);
        assert!(rec.cold_start);
        assert!(rec.cold_start_s > 0.0);
        assert!(rec.duration_s > 1.0);
    }

    #[test]
    fn per_region_cold_start_override_applies() {
        let (cat, mut rt) = runtime();
        rt.exec_sigma = 0.0;
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-2").unwrap();
        rt.set_cold_start(west, DistSpec::Constant { value: 2.5 });
        let spec = DistSpec::Constant { value: 1.0 };
        let mut rng = Pcg32::seed(5);
        let a = rt.execute_forced(east, &spec, 1024, 0.7, true, &mut rng);
        let b = rt.execute_forced(west, &spec, 1024, 0.7, true, &mut rng);
        // East keeps the shared curve; west pays the overridden constant.
        assert!(a.cold_start_s < 2.5);
        assert!((b.cold_start_s - 2.5).abs() < 1e-12);
        assert!(matches!(
            rt.cold_start_for(east),
            DistSpec::LogNormal { .. }
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let (cat, rt) = runtime();
        let r = cat.id_of("us-west-2").unwrap();
        let spec = DistSpec::LogNormal {
            median: 1.5,
            sigma: 0.2,
        };
        let a = rt.execute(r, &spec, 1024, 0.7, &mut Pcg32::seed(9));
        let b = rt.execute(r, &spec, 1024, 0.7, &mut Pcg32::seed(9));
        assert_eq!(a, b);
    }
}
