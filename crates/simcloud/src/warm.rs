//! Warm-container pool for state-dependent cold starts.
//!
//! The default compute model charges cold starts probabilistically; this
//! pool makes them *stateful*: a function deployment is warm while
//! invocations arrive within its keep-alive window and cold after idling
//! past it — so freshly offloaded regions pay cold starts until traffic
//! warms them up, exactly the transient a migration causes in production.

use std::collections::HashMap;

use caribou_model::region::RegionId;

use crate::clock::SimTime;

/// Default provider keep-alive for idle containers, seconds (~10 minutes,
/// the commonly observed AWS Lambda window).
pub const DEFAULT_KEEP_ALIVE_S: f64 = 600.0;

/// Tracks the last invocation time per function deployment.
///
/// # Examples
///
/// ```
/// use caribou_simcloud::warm::WarmPool;
/// use caribou_model::region::RegionId;
///
/// let mut pool = WarmPool::enabled(600.0);
/// assert!(pool.check_and_touch("wf", 0, RegionId(0), 100.0)); // cold
/// assert!(!pool.check_and_touch("wf", 0, RegionId(0), 200.0)); // warm
/// assert!(pool.check_and_touch("wf", 0, RegionId(0), 2000.0)); // idle → cold
/// ```
#[derive(Debug, Clone)]
pub struct WarmPool {
    /// Whether the pool drives cold starts (when `false`, the compute
    /// model's probabilistic cold starts apply instead).
    pub enabled: bool,
    /// Idle window after which a container is reclaimed, seconds.
    pub keep_alive_s: f64,
    /// Per-region keep-alive overrides: providers reclaim idle containers
    /// at different rates (GCP's decay is faster than Lambda's).
    keep_alive_override: HashMap<RegionId, f64>,
    last_seen: HashMap<(String, u32, RegionId), SimTime>,
}

impl Default for WarmPool {
    fn default() -> Self {
        WarmPool {
            enabled: false,
            keep_alive_s: DEFAULT_KEEP_ALIVE_S,
            keep_alive_override: HashMap::new(),
            last_seen: HashMap::new(),
        }
    }
}

impl WarmPool {
    /// Creates a disabled pool (probabilistic cold starts apply).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an enabled pool with the given keep-alive.
    pub fn enabled(keep_alive_s: f64) -> Self {
        WarmPool {
            enabled: true,
            keep_alive_s,
            keep_alive_override: HashMap::new(),
            last_seen: HashMap::new(),
        }
    }

    /// Overrides the keep-alive window of one region.
    pub fn set_keep_alive(&mut self, region: RegionId, keep_alive_s: f64) {
        self.keep_alive_override.insert(region, keep_alive_s);
    }

    /// The keep-alive window governing a region.
    pub fn keep_alive_for(&self, region: RegionId) -> f64 {
        self.keep_alive_override
            .get(&region)
            .copied()
            .unwrap_or(self.keep_alive_s)
    }

    /// Whether an invocation of `(workflow, node, region)` at `now` is a
    /// cold start, and records the invocation.
    pub fn check_and_touch(
        &mut self,
        workflow: &str,
        node: u32,
        region: RegionId,
        now: SimTime,
    ) -> bool {
        let key = (workflow.to_string(), node, region);
        let cold = match self.last_seen.get(&key) {
            Some(last) => now - last > self.keep_alive_for(region),
            None => true,
        };
        self.last_seen.insert(key, now);
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::count(
                if cold {
                    "compute.cold_start"
                } else {
                    "compute.warm_start"
                },
                1,
            );
        }
        cold
    }

    /// Peeks without recording.
    pub fn is_cold(&self, workflow: &str, node: u32, region: RegionId, now: SimTime) -> bool {
        match self.last_seen.get(&(workflow.to_string(), node, region)) {
            Some(last) => now - last > self.keep_alive_for(region),
            None => true,
        }
    }

    /// Forgets all container state (e.g. after an undeploy).
    pub fn clear(&mut self) {
        self.last_seen.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_invocation_is_cold_then_warm() {
        let mut p = WarmPool::enabled(600.0);
        assert!(p.check_and_touch("wf", 0, RegionId(0), 100.0));
        assert!(!p.check_and_touch("wf", 0, RegionId(0), 150.0));
        assert!(!p.check_and_touch("wf", 0, RegionId(0), 700.0));
    }

    #[test]
    fn idle_past_keep_alive_goes_cold() {
        let mut p = WarmPool::enabled(600.0);
        p.check_and_touch("wf", 0, RegionId(0), 0.0);
        assert!(p.is_cold("wf", 0, RegionId(0), 601.0));
        assert!(!p.is_cold("wf", 0, RegionId(0), 599.0));
        assert!(p.check_and_touch("wf", 0, RegionId(0), 1000.0));
    }

    #[test]
    fn deployments_are_independent() {
        let mut p = WarmPool::enabled(600.0);
        p.check_and_touch("wf", 0, RegionId(0), 0.0);
        assert!(p.is_cold("wf", 1, RegionId(0), 1.0), "other node cold");
        assert!(p.is_cold("wf", 0, RegionId(1), 1.0), "other region cold");
        assert!(
            p.is_cold("other", 0, RegionId(0), 1.0),
            "other workflow cold"
        );
    }

    #[test]
    fn per_region_keep_alive_decays_faster() {
        let mut p = WarmPool::enabled(600.0);
        p.set_keep_alive(RegionId(1), 240.0);
        p.check_and_touch("wf", 0, RegionId(0), 0.0);
        p.check_and_touch("wf", 0, RegionId(1), 0.0);
        // At t=300 the default region is still warm; the fast-decay
        // region has already been reclaimed.
        assert!(!p.is_cold("wf", 0, RegionId(0), 300.0));
        assert!(p.is_cold("wf", 0, RegionId(1), 300.0));
        assert_eq!(p.keep_alive_for(RegionId(0)), 600.0);
        assert_eq!(p.keep_alive_for(RegionId(1)), 240.0);
    }

    #[test]
    fn clear_resets_state() {
        let mut p = WarmPool::enabled(600.0);
        p.check_and_touch("wf", 0, RegionId(0), 0.0);
        p.clear();
        assert!(p.is_cold("wf", 0, RegionId(0), 1.0));
    }
}
