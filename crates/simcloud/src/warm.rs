//! Warm-container pool for state-dependent cold starts.
//!
//! The default compute model charges cold starts probabilistically; this
//! pool makes them *stateful*: a function deployment is warm while
//! invocations arrive within its keep-alive window and cold after idling
//! past it — so freshly offloaded regions pay cold starts until traffic
//! warms them up, exactly the transient a migration causes in production.
//!
//! For sharded simulation (see `caribou_core::loadgen`), a pool can
//! journal its touches: each shard drains its journal at a tick boundary
//! ([`WarmPool::drain_touches`], sorted by key so the exchange order is
//! deterministic) and absorbs every other shard's touches with
//! [`WarmPool::absorb_touch`], which max-merges timestamps so the pools
//! converge to the same state regardless of which shard saw a deployment
//! last.

use std::collections::BTreeMap;
use std::collections::HashMap;

use caribou_model::intern::IStr;
use caribou_model::region::RegionId;

use crate::clock::SimTime;

/// Default provider keep-alive for idle containers, seconds (~10 minutes,
/// the commonly observed AWS Lambda window).
pub const DEFAULT_KEEP_ALIVE_S: f64 = 600.0;

/// One journaled warm-pool touch: `(workflow, node, region)` was invoked
/// at sim time `at`. Exchanged between shards at tick boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct WarmTouch {
    pub workflow: IStr,
    pub node: u32,
    pub region: RegionId,
    pub at: SimTime,
}

/// Tracks the last invocation time per function deployment.
///
/// # Examples
///
/// ```
/// use caribou_simcloud::warm::WarmPool;
/// use caribou_model::intern::IStr;
/// use caribou_model::region::RegionId;
///
/// let wf = IStr::from("wf");
/// let mut pool = WarmPool::enabled(600.0);
/// assert!(pool.check_and_touch(&wf, 0, RegionId(0), 100.0)); // cold
/// assert!(!pool.check_and_touch(&wf, 0, RegionId(0), 200.0)); // warm
/// assert!(pool.check_and_touch(&wf, 0, RegionId(0), 2000.0)); // idle → cold
/// ```
#[derive(Debug, Clone)]
pub struct WarmPool {
    /// Whether the pool drives cold starts (when `false`, the compute
    /// model's probabilistic cold starts apply instead).
    pub enabled: bool,
    /// Idle window after which a container is reclaimed, seconds.
    pub keep_alive_s: f64,
    /// Per-region keep-alive overrides: providers reclaim idle containers
    /// at different rates (GCP's decay is faster than Lambda's).
    keep_alive_override: HashMap<RegionId, f64>,
    last_seen: HashMap<(IStr, u32, RegionId), SimTime>,
    /// When journaling, local touches since the last drain, keyed for a
    /// deterministic drain order.
    journal: Option<BTreeMap<(IStr, u32, RegionId), SimTime>>,
}

impl Default for WarmPool {
    fn default() -> Self {
        WarmPool {
            enabled: false,
            keep_alive_s: DEFAULT_KEEP_ALIVE_S,
            keep_alive_override: HashMap::new(),
            last_seen: HashMap::new(),
            journal: None,
        }
    }
}

impl WarmPool {
    /// Creates a disabled pool (probabilistic cold starts apply).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an enabled pool with the given keep-alive.
    pub fn enabled(keep_alive_s: f64) -> Self {
        WarmPool {
            enabled: true,
            keep_alive_s,
            ..Default::default()
        }
    }

    /// Overrides the keep-alive window of one region.
    pub fn set_keep_alive(&mut self, region: RegionId, keep_alive_s: f64) {
        self.keep_alive_override.insert(region, keep_alive_s);
    }

    /// The keep-alive window governing a region.
    pub fn keep_alive_for(&self, region: RegionId) -> f64 {
        if self.keep_alive_override.is_empty() {
            return self.keep_alive_s;
        }
        self.keep_alive_override
            .get(&region)
            .copied()
            .unwrap_or(self.keep_alive_s)
    }

    /// Turns touch journaling on or off (off discards any pending
    /// journal). Sharded loadgen enables it to exchange touches between
    /// shards at tick boundaries.
    pub fn set_journaling(&mut self, on: bool) {
        self.journal = if on { Some(BTreeMap::new()) } else { None };
    }

    /// Whether an invocation of `(workflow, node, region)` at `now` is a
    /// cold start, and records the invocation.
    ///
    /// The recorded last-seen time only moves forward: with open-loop
    /// overlapping invocations a shorter invocation can report an earlier
    /// `now` after a longer one already advanced the container, and
    /// letting it rewind would resurrect already-expired idle windows.
    pub fn check_and_touch(
        &mut self,
        workflow: &IStr,
        node: u32,
        region: RegionId,
        now: SimTime,
    ) -> bool {
        let keep_alive = self.keep_alive_for(region);
        let key = (workflow.clone(), node, region);
        // One hash walk decides cold vs warm and max-merges the touch.
        let (cold, seen) = match self.last_seen.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let last = *e.get();
                if now > last {
                    *e.get_mut() = now;
                }
                (now - last > keep_alive, last.max(now))
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(now);
                (true, now)
            }
        };
        if let Some(journal) = self.journal.as_mut() {
            let j = journal
                .entry((workflow.clone(), node, region))
                .or_insert(seen);
            if seen > *j {
                *j = seen;
            }
        }
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::count(
                if cold {
                    "compute.cold_start"
                } else {
                    "compute.warm_start"
                },
                1,
            );
        }
        cold
    }

    /// Peeks without recording.
    pub fn is_cold(&self, workflow: &IStr, node: u32, region: RegionId, now: SimTime) -> bool {
        match self.last_seen.get(&(workflow.clone(), node, region)) {
            Some(last) => now - last > self.keep_alive_for(region),
            None => true,
        }
    }

    /// Drains the touch journal in sorted key order. Empty when
    /// journaling is off or nothing was touched since the last drain.
    pub fn drain_touches(&mut self) -> Vec<WarmTouch> {
        match self.journal.as_mut() {
            Some(journal) => std::mem::take(journal)
                .into_iter()
                .map(|((workflow, node, region), at)| WarmTouch {
                    workflow,
                    node,
                    region,
                    at,
                })
                .collect(),
            None => Vec::new(),
        }
    }

    /// Absorbs a touch from another shard: max-merges the last-seen time
    /// without counting telemetry or re-journaling, so exchanges don't
    /// echo back and forth.
    pub fn absorb_touch(&mut self, touch: &WarmTouch) {
        let key = (touch.workflow.clone(), touch.node, touch.region);
        let slot = self.last_seen.entry(key).or_insert(touch.at);
        if touch.at > *slot {
            *slot = touch.at;
        }
    }

    /// Forgets all container state (e.g. after an undeploy).
    pub fn clear(&mut self) {
        self.last_seen.clear();
        if let Some(journal) = self.journal.as_mut() {
            journal.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wf() -> IStr {
        IStr::from("wf")
    }

    #[test]
    fn first_invocation_is_cold_then_warm() {
        let mut p = WarmPool::enabled(600.0);
        assert!(p.check_and_touch(&wf(), 0, RegionId(0), 100.0));
        assert!(!p.check_and_touch(&wf(), 0, RegionId(0), 150.0));
        assert!(!p.check_and_touch(&wf(), 0, RegionId(0), 700.0));
    }

    #[test]
    fn idle_past_keep_alive_goes_cold() {
        let mut p = WarmPool::enabled(600.0);
        p.check_and_touch(&wf(), 0, RegionId(0), 0.0);
        assert!(p.is_cold(&wf(), 0, RegionId(0), 601.0));
        assert!(!p.is_cold(&wf(), 0, RegionId(0), 599.0));
        assert!(p.check_and_touch(&wf(), 0, RegionId(0), 1000.0));
    }

    #[test]
    fn deployments_are_independent() {
        let mut p = WarmPool::enabled(600.0);
        p.check_and_touch(&wf(), 0, RegionId(0), 0.0);
        assert!(p.is_cold(&wf(), 1, RegionId(0), 1.0), "other node cold");
        assert!(p.is_cold(&wf(), 0, RegionId(1), 1.0), "other region cold");
        assert!(
            p.is_cold(&IStr::from("other"), 0, RegionId(0), 1.0),
            "other workflow cold"
        );
    }

    #[test]
    fn per_region_keep_alive_decays_faster() {
        let mut p = WarmPool::enabled(600.0);
        p.set_keep_alive(RegionId(1), 240.0);
        p.check_and_touch(&wf(), 0, RegionId(0), 0.0);
        p.check_and_touch(&wf(), 0, RegionId(1), 0.0);
        // At t=300 the default region is still warm; the fast-decay
        // region has already been reclaimed.
        assert!(!p.is_cold(&wf(), 0, RegionId(0), 300.0));
        assert!(p.is_cold(&wf(), 0, RegionId(1), 300.0));
        assert_eq!(p.keep_alive_for(RegionId(0)), 600.0);
        assert_eq!(p.keep_alive_for(RegionId(1)), 240.0);
    }

    #[test]
    fn touches_never_rewind_last_seen() {
        let mut p = WarmPool::enabled(100.0);
        p.check_and_touch(&wf(), 0, RegionId(0), 500.0);
        // An overlapping invocation finishing "earlier" must not rewind
        // the container's idle clock.
        assert!(!p.check_and_touch(&wf(), 0, RegionId(0), 450.0));
        assert!(!p.is_cold(&wf(), 0, RegionId(0), 590.0));
        assert!(p.is_cold(&wf(), 0, RegionId(0), 601.0));
    }

    #[test]
    fn journal_drains_sorted_and_max_merged() {
        let mut p = WarmPool::enabled(600.0);
        p.set_journaling(true);
        p.check_and_touch(&IStr::from("b"), 1, RegionId(0), 10.0);
        p.check_and_touch(&IStr::from("a"), 0, RegionId(2), 20.0);
        p.check_and_touch(&IStr::from("a"), 0, RegionId(2), 35.0);
        p.check_and_touch(&IStr::from("a"), 0, RegionId(2), 30.0); // no rewind
        let touches = p.drain_touches();
        assert_eq!(touches.len(), 2);
        assert_eq!(touches[0].workflow, "a");
        assert_eq!(touches[0].at, 35.0);
        assert_eq!(touches[1].workflow, "b");
        assert_eq!(touches[1].at, 10.0);
        // Drained: a second drain is empty.
        assert!(p.drain_touches().is_empty());
    }

    #[test]
    fn absorb_touch_warms_without_journaling() {
        let mut a = WarmPool::enabled(600.0);
        a.set_journaling(true);
        let touch = WarmTouch {
            workflow: wf(),
            node: 0,
            region: RegionId(0),
            at: 50.0,
        };
        a.absorb_touch(&touch);
        assert!(!a.is_cold(&wf(), 0, RegionId(0), 100.0));
        // Absorbed touches don't echo back out of the journal.
        assert!(a.drain_touches().is_empty());
        // Max-merge: an older absorbed touch doesn't rewind.
        a.check_and_touch(&wf(), 0, RegionId(0), 400.0);
        a.absorb_touch(&WarmTouch { at: 60.0, ..touch });
        assert!(!a.is_cold(&wf(), 0, RegionId(0), 900.0));
    }

    #[test]
    fn clear_resets_state() {
        let mut p = WarmPool::enabled(600.0);
        p.check_and_touch(&wf(), 0, RegionId(0), 0.0);
        p.clear();
        assert!(p.is_cold(&wf(), 0, RegionId(0), 1.0));
    }
}
