//! A DynamoDB-like distributed key-value store.
//!
//! Caribou's components interact asynchronously through a distributed KV
//! store (§3): deployment plans, workflow metadata, intermediate data, and
//! the synchronization-node annotations all live here. The store supports
//! the atomic read-modify-write the synchronization protocol of §4
//! requires ("the predecessor invocation is required to atomically update
//! an annotation").
//!
//! Each table is homed in a region; accesses from other regions pay the
//! inter-region round trip. Operation counts are tracked per region for
//! billing (the paper explicitly accounts for "additional DynamoDB
//! accesses introduced by Caribou", §7.1).

use std::collections::HashMap;

use bytes::Bytes;
use caribou_model::region::RegionId;
use caribou_model::rng::Pcg32;

use crate::faults::FaultPlan;
use crate::latency::LatencyModel;

/// Base service-side latency of one KV operation, seconds.
const KV_OP_BASE_S: f64 = 0.004;
/// Minimum extra client-observed delay when an operation is throttled
/// (SDK retry with backoff), seconds.
const KV_THROTTLE_RETRY_MIN_S: f64 = 0.05;
/// Maximum extra client-observed delay when an operation is throttled.
const KV_THROTTLE_RETRY_MAX_S: f64 = 0.2;

/// Result of a KV access: the value (for reads) and the latency paid.
#[derive(Debug, Clone)]
pub struct KvAccess {
    /// Value returned by a read; `None` for writes or missing keys.
    pub value: Option<Bytes>,
    /// End-to-end latency of the operation in seconds.
    pub latency_s: f64,
}

/// Operation counters per region, for billing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvOpCounts {
    /// Number of read operations served.
    pub reads: u64,
    /// Number of write operations served (atomic updates count as one
    /// write and one read).
    pub writes: u64,
}

/// The distributed key-value store.
#[derive(Debug, Default)]
pub struct KvStore {
    /// `(table, key) → value`; tables are homed per [`KvStore::create_table`].
    data: HashMap<(String, String), Bytes>,
    /// Table → home region.
    table_home: HashMap<String, RegionId>,
    /// Per-region operation counts.
    ops: HashMap<RegionId, KvOpCounts>,
    /// Windowed faults (gray latency, throttling) evaluated at the current
    /// fault clock [`KvStore::now_s`]. Throttling slows operations via SDK
    /// retries but never loses data, matching DynamoDB semantics.
    pub faults: FaultPlan,
    /// Simulation time used to evaluate windowed faults; positioned via
    /// `SimCloud::set_fault_now`.
    pub now_s: f64,
    /// Reusable `(table, key)` lookup buffer: point reads and overwrites
    /// of existing keys allocate nothing (the map only ever owns a key
    /// string for first-time inserts).
    lookup: (String, String),
    /// Recycled `(table, key)` string pairs from [`KvStore::reclaim`] /
    /// [`KvStore::delete`]: first-time inserts reuse these buffers, so a
    /// steady-state write/reclaim cycle (one intermediate per DAG edge per
    /// invocation) allocates nothing and the store stays bounded.
    free: Vec<(String, String)>,
}

/// Cap on recycled key pairs retained; beyond this they are dropped.
const KV_FREE_LIST_CAP: usize = 256;

impl KvStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rewrites the reusable lookup buffer to `(table, key)`.
    fn set_lookup(&mut self, table: &str, key: &str) {
        self.lookup.0.clear();
        self.lookup.0.push_str(table);
        self.lookup.1.clear();
        self.lookup.1.push_str(key);
    }

    /// An owned `(table, key)` pair for a first-time insert, reusing a
    /// recycled buffer when one is available.
    fn owned_pair(&mut self, table: &str, key: &str) -> (String, String) {
        match self.free.pop() {
            Some(mut pair) => {
                pair.0.clear();
                pair.0.push_str(table);
                pair.1.clear();
                pair.1.push_str(key);
                pair
            }
            None => (table.to_string(), key.to_string()),
        }
    }

    /// Recycles an owned key pair for later reuse.
    fn recycle(&mut self, pair: (String, String)) {
        if self.free.len() < KV_FREE_LIST_CAP {
            self.free.push(pair);
        }
    }

    /// Creates (or re-homes) a table in `home` region.
    pub fn create_table(&mut self, table: impl Into<String>, home: RegionId) {
        self.table_home.insert(table.into(), home);
    }

    /// Home region of a table; defaults to the accessing region when the
    /// table was never explicitly created (DynamoDB global-table style
    /// local replica).
    pub fn table_home(&self, table: &str, fallback: RegionId) -> RegionId {
        self.table_home.get(table).copied().unwrap_or(fallback)
    }

    fn op_latency(
        &self,
        table: &str,
        from: RegionId,
        latency: &LatencyModel,
        bytes: f64,
        rng: &mut Pcg32,
    ) -> f64 {
        let home = self.table_home(table, from);
        let net = if home == from {
            latency.sample_transfer_seconds(from, home, bytes, rng)
        } else {
            // Request + response cross the inter-region link.
            latency.sample_transfer_seconds(from, home, bytes, rng)
                + latency.sample_transfer_seconds(home, from, 256.0, rng)
        };
        let gray = self.faults.pair_latency_factor(from, home, self.now_s);
        let mut total = KV_OP_BASE_S + net * gray;
        if self.faults.kv_throttled(home, self.now_s, rng) {
            // Throttled: the SDK transparently retries, so the operation
            // still succeeds but pays an extra round trip plus backoff.
            // This also covers conditional-write conflicts under load —
            // the retry path is the same.
            total += KV_OP_BASE_S
                + net * gray
                + rng.uniform(KV_THROTTLE_RETRY_MIN_S, KV_THROTTLE_RETRY_MAX_S);
            if caribou_telemetry::is_enabled() {
                caribou_telemetry::count("fault.kv_throttle", 1);
            }
        }
        total
    }

    fn count(&mut self, table: &str, from: RegionId, reads: u64, writes: u64) {
        let home = self.table_home(table, from);
        let c = self.ops.entry(home).or_default();
        c.reads += reads;
        c.writes += writes;
        if caribou_telemetry::is_enabled() {
            caribou_telemetry::count("kv.read", reads);
            caribou_telemetry::count("kv.write", writes);
        }
    }

    /// Reads a key.
    pub fn get(
        &mut self,
        table: &str,
        key: &str,
        from: RegionId,
        latency: &LatencyModel,
        rng: &mut Pcg32,
    ) -> KvAccess {
        self.set_lookup(table, key);
        let value = self.data.get(&self.lookup).cloned();
        let size = value.as_ref().map(|v| v.len() as f64).unwrap_or(128.0);
        let latency_s = self.op_latency(table, from, latency, size, rng);
        self.count(table, from, 1, 0);
        KvAccess { value, latency_s }
    }

    /// Writes a key.
    pub fn put(
        &mut self,
        table: &str,
        key: &str,
        value: Bytes,
        from: RegionId,
        latency: &LatencyModel,
        rng: &mut Pcg32,
    ) -> KvAccess {
        let latency_s = self.op_latency(table, from, latency, value.len() as f64, rng);
        self.set_lookup(table, key);
        if let Some(slot) = self.data.get_mut(&self.lookup) {
            *slot = value;
        } else {
            let pair = self.owned_pair(table, key);
            self.data.insert(pair, value);
        }
        self.count(table, from, 0, 1);
        KvAccess {
            value: None,
            latency_s,
        }
    }

    /// Deletes a key, returning whether it existed.
    pub fn delete(&mut self, table: &str, key: &str, from: RegionId) -> bool {
        self.count(table, from, 0, 1);
        self.set_lookup(table, key);
        match self.data.remove_entry(&self.lookup) {
            Some((pair, _)) => {
                self.recycle(pair);
                true
            }
            None => false,
        }
    }

    /// Removes a key without billing or latency simulation: garbage
    /// collection of consumed intermediates and annotations, which real
    /// deployments handle with DynamoDB TTL expiry (not billed as a
    /// write). Recycles the key strings so the paired first-time insert
    /// of the next invocation allocates nothing.
    pub fn reclaim(&mut self, table: &str, key: &str) -> bool {
        self.set_lookup(table, key);
        match self.data.remove_entry(&self.lookup) {
            Some((pair, _)) => {
                self.recycle(pair);
                true
            }
            None => false,
        }
    }

    /// Atomically transforms the value under a key, returning the
    /// transformed value. This is the primitive behind the
    /// synchronization-node annotation update of §4: the transform is
    /// applied under the store's (simulated) single-writer serialization,
    /// so concurrent predecessors observe a linearizable history.
    pub fn atomic_update(
        &mut self,
        table: &str,
        key: &str,
        from: RegionId,
        latency: &LatencyModel,
        rng: &mut Pcg32,
        f: impl FnOnce(Option<&Bytes>) -> Bytes,
    ) -> KvAccess {
        self.set_lookup(table, key);
        let prev = self.data.get(&self.lookup);
        if caribou_telemetry::is_enabled() {
            // A read-modify-write over an existing annotation means another
            // writer got there first — the contended case of §4.
            if prev.is_some() {
                caribou_telemetry::event("kv.rmw_conflict", key, 0.0);
            }
            caribou_telemetry::count("kv.rmw", 1);
        }
        let new = f(prev);
        let size = new.len() as f64;
        if let Some(slot) = self.data.get_mut(&self.lookup) {
            *slot = new.clone();
        } else {
            let pair = self.owned_pair(table, key);
            self.data.insert(pair, new.clone());
        }
        let latency_s = self.op_latency(table, from, latency, size, rng);
        self.count(table, from, 1, 1);
        KvAccess {
            value: Some(new),
            latency_s,
        }
    }

    /// Conditional put: writes only when the key is absent, returning
    /// whether the write happened (DynamoDB `attribute_not_exists`).
    pub fn put_if_absent(&mut self, table: &str, key: &str, value: Bytes, from: RegionId) -> bool {
        self.count(table, from, 1, 1);
        self.set_lookup(table, key);
        if self.data.contains_key(&self.lookup) {
            return false;
        }
        let pair = self.owned_pair(table, key);
        self.data.insert(pair, value);
        true
    }

    /// Read without latency/billing simulation (framework-internal
    /// bookkeeping reads that the paper does not charge to workflows).
    pub fn peek(&self, table: &str, key: &str) -> Option<&Bytes> {
        self.data.get(&(table.to_string(), key.to_string()))
    }

    /// Operation counters for a region's tables.
    pub fn ops(&self, region: RegionId) -> KvOpCounts {
        self.ops.get(&region).copied().unwrap_or_default()
    }

    /// Total operation counters across regions.
    pub fn total_ops(&self) -> KvOpCounts {
        self.ops.values().fold(KvOpCounts::default(), |mut acc, c| {
            acc.reads += c.reads;
            acc.writes += c.writes;
            acc
        })
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use caribou_model::region::RegionCatalog;

    fn setup() -> (RegionCatalog, LatencyModel, KvStore, Pcg32) {
        let cat = RegionCatalog::aws_default();
        let lm = LatencyModel::from_catalog(&cat);
        (cat, lm, KvStore::new(), Pcg32::seed(1))
    }

    #[test]
    fn put_then_get_round_trips() {
        let (cat, lm, mut kv, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        kv.create_table("meta", r);
        kv.put("meta", "k", Bytes::from_static(b"v"), r, &lm, &mut rng);
        let got = kv.get("meta", "k", r, &lm, &mut rng);
        assert_eq!(got.value.as_deref(), Some(b"v".as_slice()));
        assert!(got.latency_s > 0.0);
    }

    #[test]
    fn remote_access_slower_than_local() {
        let (cat, lm, mut kv, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-1").unwrap();
        kv.create_table("meta", east);
        kv.put("meta", "k", Bytes::from_static(b"v"), east, &lm, &mut rng);
        let mut local = 0.0;
        let mut remote = 0.0;
        for _ in 0..200 {
            local += kv.get("meta", "k", east, &lm, &mut rng).latency_s;
            remote += kv.get("meta", "k", west, &lm, &mut rng).latency_s;
        }
        assert!(remote > local * 2.0, "local {local} remote {remote}");
    }

    #[test]
    fn atomic_update_applies_serially() {
        let (cat, lm, mut kv, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        kv.create_table("ann", r);
        for _ in 0..10 {
            kv.atomic_update("ann", "counter", r, &lm, &mut rng, |prev| {
                let n = prev
                    .map(|b| String::from_utf8_lossy(b).parse::<u64>().unwrap())
                    .unwrap_or(0);
                Bytes::from((n + 1).to_string())
            });
        }
        let v = kv.peek("ann", "counter").unwrap();
        assert_eq!(String::from_utf8_lossy(v), "10");
    }

    #[test]
    fn put_if_absent_only_first_wins() {
        let (cat, _lm, mut kv, _rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        assert!(kv.put_if_absent("t", "k", Bytes::from_static(b"a"), r));
        assert!(!kv.put_if_absent("t", "k", Bytes::from_static(b"b"), r));
        assert_eq!(kv.peek("t", "k").unwrap().as_ref(), b"a");
    }

    #[test]
    fn op_counts_accumulate_at_table_home() {
        let (cat, lm, mut kv, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-1").unwrap();
        kv.create_table("meta", east);
        kv.put("meta", "k", Bytes::from_static(b"v"), west, &lm, &mut rng);
        kv.get("meta", "k", west, &lm, &mut rng);
        let ops = kv.ops(east);
        assert_eq!(ops.reads, 1);
        assert_eq!(ops.writes, 1);
        assert_eq!(kv.ops(west), KvOpCounts::default());
    }

    #[test]
    fn delete_removes_key() {
        let (cat, lm, mut kv, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        kv.put("t", "k", Bytes::from_static(b"v"), r, &lm, &mut rng);
        assert!(kv.delete("t", "k", r));
        assert!(!kv.delete("t", "k", r));
        assert!(kv.get("t", "k", r, &lm, &mut rng).value.is_none());
    }

    #[test]
    fn reclaim_is_unbilled_and_recycles_keys() {
        let (cat, lm, mut kv, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        kv.put("t", "k1", Bytes::from_static(b"v"), r, &lm, &mut rng);
        let writes_before = kv.ops(r).writes;
        assert!(kv.reclaim("t", "k1"));
        assert!(!kv.reclaim("t", "k1"));
        // No billing for the reclaim itself.
        assert_eq!(kv.ops(r).writes, writes_before);
        assert!(kv.is_empty());
        // The recycled pair is reused by the next first-time insert.
        assert_eq!(kv.free.len(), 1);
        kv.put("t", "k2", Bytes::from_static(b"w"), r, &lm, &mut rng);
        assert!(kv.free.is_empty());
        assert_eq!(kv.peek("t", "k2").unwrap().as_ref(), b"w");
    }

    #[test]
    fn uncreated_table_homes_at_accessor() {
        let (cat, lm, mut kv, mut rng) = setup();
        let west = cat.id_of("us-west-1").unwrap();
        assert_eq!(kv.table_home("ghost", west), west);
        // Accesses bill at the accessor's region when no home was set.
        kv.put("ghost", "k", Bytes::from_static(b"v"), west, &lm, &mut rng);
        assert_eq!(kv.ops(west).writes, 1);
    }

    #[test]
    fn throttle_window_slows_ops_but_loses_nothing() {
        let (cat, lm, mut kv, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        kv.create_table("t", r);
        let n = 200;
        let mut clean = 0.0;
        for i in 0..n {
            clean += kv
                .put(
                    "t",
                    &format!("k{i}"),
                    Bytes::from_static(b"v"),
                    r,
                    &lm,
                    &mut rng,
                )
                .latency_s;
        }
        kv.faults = FaultPlan::none().with_kv_throttle(r, 0.0, 1e9, 1.0);
        let mut throttled = 0.0;
        for i in 0..n {
            throttled += kv
                .put(
                    "t",
                    &format!("k{i}"),
                    Bytes::from_static(b"w"),
                    r,
                    &lm,
                    &mut rng,
                )
                .latency_s;
        }
        assert!(
            throttled > clean * 2.0,
            "clean {clean} throttled {throttled}"
        );
        // Every write landed despite the throttling.
        for i in 0..n {
            assert_eq!(kv.peek("t", &format!("k{i}")).unwrap().as_ref(), b"w");
        }
    }

    #[test]
    fn gray_failure_inflates_kv_latency() {
        let (cat, lm, mut kv, mut rng) = setup();
        let east = cat.id_of("us-east-1").unwrap();
        let west = cat.id_of("us-west-1").unwrap();
        kv.create_table("t", east);
        kv.put("t", "k", Bytes::from_static(b"v"), east, &lm, &mut rng);
        let n = 200;
        let mut clean = 0.0;
        for _ in 0..n {
            clean += kv.get("t", "k", west, &lm, &mut rng).latency_s;
        }
        kv.faults = FaultPlan::none().with_gray_failure(east, 0.0, 1e9, 6.0);
        let mut gray = 0.0;
        for _ in 0..n {
            gray += kv.get("t", "k", west, &lm, &mut rng).latency_s;
        }
        assert!(gray > clean * 2.0, "clean {clean} gray {gray}");
    }

    #[test]
    fn missing_key_read_returns_none_with_latency() {
        let (cat, lm, mut kv, mut rng) = setup();
        let r = cat.id_of("us-east-1").unwrap();
        let got = kv.get("t", "nope", r, &lm, &mut rng);
        assert!(got.value.is_none());
        assert!(got.latency_s > 0.0);
    }
}
