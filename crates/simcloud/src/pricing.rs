//! AWS-price-list-calibrated pricing catalog (§7.1 Cost).
//!
//! Prices are the published on-demand numbers for AWS Lambda, SNS,
//! DynamoDB, and inter-region data transfer as of the paper's evaluation
//! window; per-region multipliers capture the small premium of some
//! regions. The free tier is deliberately not modeled, matching §7.1.

use caribou_model::region::{Provider, RegionCatalog, RegionId};
use serde::{Deserialize, Serialize};

/// Prices for one region, in USD.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegionPricing {
    /// Lambda compute price per GB-second.
    pub lambda_gb_second: f64,
    /// Lambda fixed fee per invocation.
    pub lambda_per_request: f64,
    /// SNS price per published message.
    pub sns_per_publish: f64,
    /// DynamoDB price per write request unit.
    pub dynamodb_per_write: f64,
    /// DynamoDB price per read request unit.
    pub dynamodb_per_read: f64,
    /// Egress price per GB to another region of the same provider.
    pub egress_inter_region_per_gb: f64,
    /// Egress price per GB to the public internet.
    pub egress_internet_per_gb: f64,
    /// Object-storage price per PUT request.
    pub blob_per_put: f64,
    /// Object-storage price per GET request.
    pub blob_per_get: f64,
}

impl RegionPricing {
    /// Published us-east-1 baseline prices.
    pub fn us_east_1_baseline() -> Self {
        RegionPricing {
            lambda_gb_second: 0.0000166667,
            lambda_per_request: 0.20 / 1.0e6,
            sns_per_publish: 0.50 / 1.0e6,
            dynamodb_per_write: 1.25 / 1.0e6,
            dynamodb_per_read: 0.25 / 1.0e6,
            egress_inter_region_per_gb: 0.02,
            egress_internet_per_gb: 0.09,
            blob_per_put: 5.0e-6,
            blob_per_get: 4.0e-7,
        }
    }

    /// Scales all prices by a region premium factor.
    pub fn scaled(&self, f: f64) -> Self {
        RegionPricing {
            lambda_gb_second: self.lambda_gb_second * f,
            lambda_per_request: self.lambda_per_request * f,
            sns_per_publish: self.sns_per_publish * f,
            dynamodb_per_write: self.dynamodb_per_write * f,
            dynamodb_per_read: self.dynamodb_per_read * f,
            egress_inter_region_per_gb: self.egress_inter_region_per_gb * f,
            egress_internet_per_gb: self.egress_internet_per_gb * f,
            blob_per_put: self.blob_per_put * f,
            blob_per_get: self.blob_per_get * f,
        }
    }
}

/// Pricing catalog covering every region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PricingCatalog {
    per_region: Vec<RegionPricing>,
    /// Provider of each region. Empty in legacy single-provider catalogs:
    /// every pair then bills at the inter-region tier, exactly as before.
    #[serde(default)]
    provider_of: Vec<Provider>,
    /// Egress price per GB from each region toward another provider
    /// (typically the internet tier). Empty when `provider_of` is empty.
    #[serde(default)]
    cross_provider_egress_per_gb: Vec<f64>,
}

impl PricingCatalog {
    /// Builds the default catalog from region names, applying the published
    /// per-region premiums (us-west-1 and ca-* carry a small premium over
    /// us-east-1; this is the cost-differential dimension of §2.3).
    pub fn aws_default(catalog: &RegionCatalog) -> Self {
        let base = RegionPricing::us_east_1_baseline();
        let per_region = catalog
            .iter()
            .map(|(_, spec)| {
                let premium = match spec.name.as_str() {
                    "us-east-1" | "us-east-2" => 1.0,
                    "us-west-1" => 1.08,
                    "us-west-2" => 1.0,
                    "ca-central-1" => 1.03,
                    "ca-west-1" => 1.07,
                    "eu-west-1" => 1.02,
                    "eu-central-1" => 1.10,
                    "ap-southeast-2" => 1.15,
                    "sa-east-1" => 1.35,
                    // GCP regions (Cloud Functions pricing is broadly
                    // comparable; small deltas).
                    "us-central1" => 0.98,
                    "us-west1" => 0.98,
                    "northamerica-northeast1" => 1.02,
                    "europe-west1" => 1.04,
                    "europe-north1" => 1.04,
                    _ => 1.05,
                };
                base.scaled(premium)
            })
            .collect();
        PricingCatalog {
            per_region,
            provider_of: Vec::new(),
            cross_provider_egress_per_gb: Vec::new(),
        }
    }

    /// Builds a provider-aware catalog from explicit rows: per-region
    /// prices, the provider of each region, and the per-region
    /// cross-provider egress rate. All three must have one entry per
    /// catalog region.
    pub fn with_providers(
        per_region: Vec<RegionPricing>,
        provider_of: Vec<Provider>,
        cross_provider_egress_per_gb: Vec<f64>,
    ) -> Self {
        assert_eq!(per_region.len(), provider_of.len());
        assert_eq!(per_region.len(), cross_provider_egress_per_gb.len());
        PricingCatalog {
            per_region,
            provider_of,
            cross_provider_egress_per_gb,
        }
    }

    /// Whether a pair of regions belongs to different providers (always
    /// `false` on legacy catalogs built without provider rows).
    pub fn is_cross_provider(&self, from: RegionId, to: RegionId) -> bool {
        match (
            self.provider_of.get(from.index()),
            self.provider_of.get(to.index()),
        ) {
            (Some(a), Some(b)) => a != b,
            _ => false,
        }
    }

    /// Prices for one region.
    ///
    /// # Panics
    ///
    /// Panics if the region id is outside the catalog used to build this
    /// pricing table.
    pub fn region(&self, id: RegionId) -> &RegionPricing {
        &self.per_region[id.index()]
    }

    /// Overrides the prices of one region (e.g. to track a price-list
    /// update, §7.2's "AWS Price List for latest prices").
    ///
    /// # Panics
    ///
    /// Panics if the region id is outside the catalog.
    pub fn set_region(&mut self, id: RegionId, pricing: RegionPricing) {
        self.per_region[id.index()] = pricing;
    }

    /// Lambda execution cost: billed duration × memory × GB-s rate plus the
    /// per-request fee (§7.1 Cost).
    pub fn lambda_cost(&self, region: RegionId, duration_s: f64, memory_mb: u32) -> f64 {
        let p = self.region(region);
        // Lambda bills in 1 ms increments.
        let billed = (duration_s * 1000.0).ceil() / 1000.0;
        billed * (memory_mb as f64 / 1024.0) * p.lambda_gb_second + p.lambda_per_request
    }

    /// Egress cost for moving `bytes` from `from` toward `to`.
    ///
    /// Same-provider pairs bill at the source region's inter-region tier;
    /// cross-provider pairs leave the provider's backbone and bill at the
    /// source's cross-provider (internet) rate instead.
    pub fn egress_cost(&self, from: RegionId, to: RegionId, bytes: f64) -> f64 {
        if from == to {
            0.0
        } else {
            let gb = bytes.max(0.0) / 1.0e9;
            gb * self.egress_rate_per_gb(from, to)
        }
    }

    /// The per-GB egress rate applicable from `from` toward `to`: the
    /// cross-provider (internet) rate when the pair crosses providers, the
    /// source's inter-region tier otherwise. Intra-region transfers are
    /// free regardless of this rate; callers must special-case `from == to`
    /// exactly as [`PricingCatalog::egress_cost`] does.
    pub fn egress_rate_per_gb(&self, from: RegionId, to: RegionId) -> f64 {
        if self.is_cross_provider(from, to) {
            self.cross_provider_egress_per_gb[from.index()]
        } else {
            self.region(from).egress_inter_region_per_gb
        }
    }

    /// SNS publish cost in the publishing region.
    pub fn sns_cost(&self, region: RegionId, messages: u64) -> f64 {
        messages as f64 * self.region(region).sns_per_publish
    }

    /// DynamoDB cost for a mix of reads and writes in a region.
    pub fn dynamodb_cost(&self, region: RegionId, reads: u64, writes: u64) -> f64 {
        let p = self.region(region);
        reads as f64 * p.dynamodb_per_read + writes as f64 * p.dynamodb_per_write
    }

    /// Object-storage request cost for a mix of GETs and PUTs in a region.
    pub fn blob_cost(&self, region: RegionId, gets: u64, puts: u64) -> f64 {
        let p = self.region(region);
        gets as f64 * p.blob_per_get + puts as f64 * p.blob_per_put
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalogs() -> (RegionCatalog, PricingCatalog) {
        let cat = RegionCatalog::aws_default();
        let pc = PricingCatalog::aws_default(&cat);
        (cat, pc)
    }

    #[test]
    fn lambda_cost_matches_hand_calculation() {
        let (cat, pc) = catalogs();
        let r = cat.id_of("us-east-1").unwrap();
        // 1 second at 1024 MB = 1 GB-s.
        let c = pc.lambda_cost(r, 1.0, 1024);
        let expected = 0.0000166667 + 0.20 / 1.0e6;
        assert!((c - expected).abs() < 1e-12, "cost {c}");
    }

    #[test]
    fn lambda_bills_in_millisecond_increments() {
        let (cat, pc) = catalogs();
        let r = cat.id_of("us-east-1").unwrap();
        let a = pc.lambda_cost(r, 0.0101, 1024); // bills 11 ms
        let b = pc.lambda_cost(r, 0.0111, 1024); // bills 12 ms
        assert!(b > a, "rounding up to next ms");
        let c = pc.lambda_cost(r, 0.0119, 1024); // also bills 12 ms
        assert!((b - c).abs() < 1e-15, "same billed ms");
    }

    #[test]
    fn egress_free_intra_region() {
        let (cat, pc) = catalogs();
        let r = cat.id_of("us-east-1").unwrap();
        assert_eq!(pc.egress_cost(r, r, 1e9), 0.0);
    }

    #[test]
    fn egress_charged_inter_region() {
        let (cat, pc) = catalogs();
        let a = cat.id_of("us-east-1").unwrap();
        let b = cat.id_of("us-west-2").unwrap();
        let c = pc.egress_cost(a, b, 5e9);
        assert!((c - 0.10).abs() < 1e-9, "cost {c}");
    }

    #[test]
    fn regional_premium_applies() {
        let (cat, pc) = catalogs();
        let east = cat.id_of("us-east-1").unwrap();
        let west1 = cat.id_of("us-west-1").unwrap();
        assert!(
            pc.region(west1).lambda_gb_second > pc.region(east).lambda_gb_second,
            "us-west-1 carries a premium"
        );
    }

    #[test]
    fn cross_provider_egress_bills_cross_rate() {
        let base = RegionPricing::us_east_1_baseline();
        let pc = PricingCatalog::with_providers(
            vec![base.clone(), base.clone(), base.clone()],
            vec![Provider::Aws, Provider::Aws, Provider::Gcp],
            vec![0.09, 0.09, 0.12],
        );
        let (a, b, g) = (RegionId(0), RegionId(1), RegionId(2));
        assert!(!pc.is_cross_provider(a, b));
        assert!(pc.is_cross_provider(a, g));
        // Same provider: inter-region tier. Cross provider: cross rate.
        assert!((pc.egress_cost(a, b, 1e9) - 0.02).abs() < 1e-12);
        assert!((pc.egress_cost(a, g, 1e9) - 0.09).abs() < 1e-12);
        assert!((pc.egress_cost(g, a, 1e9) - 0.12).abs() < 1e-12);
        // Legacy catalogs never see a cross-provider pair.
        let (cat, legacy) = catalogs();
        let e = cat.id_of("us-east-1").unwrap();
        let w = cat.id_of("us-west-2").unwrap();
        assert!(!legacy.is_cross_provider(e, w));
    }

    #[test]
    fn dynamodb_and_sns_costs() {
        let (cat, pc) = catalogs();
        let r = cat.id_of("us-east-1").unwrap();
        assert!((pc.sns_cost(r, 1_000_000) - 0.50).abs() < 1e-9);
        assert!((pc.dynamodb_cost(r, 1_000_000, 1_000_000) - 1.50).abs() < 1e-9);
    }
}
