//! Inter-region latency and bandwidth model.
//!
//! The base round-trip times are derived from great-circle distances with a
//! fiber-route factor and calibrated against published CloudPing numbers
//! for the AWS North American regions (e.g. us-east-1 ↔ us-west-1 is
//! roughly 60–65 ms RTT). Individual transfers add log-normal jitter and a
//! payload-size-dependent term from effective per-flow bandwidth. The model
//! plays the role of the paper's CloudPing fallback (§7.1): the Metrics
//! Manager prefers learned transmission distributions and falls back to
//! this model when no history exists.

use caribou_model::error::ModelError;
use caribou_model::region::{Provider, RegionCatalog, RegionId};
use caribou_model::rng::Pcg32;

/// Effective propagation speed of light in fiber, km/s.
const FIBER_KM_PER_S: f64 = 200_000.0;
/// Multiplier capturing non-great-circle fiber routing.
const ROUTE_FACTOR: f64 = 1.6;
/// Fixed per-hop processing overhead, seconds (one way).
const HOP_OVERHEAD_S: f64 = 0.0008;

/// One-way latency penalties for traffic crossing provider boundaries.
///
/// Cross-provider traffic exits one backbone and re-enters another through
/// public peering, which costs extra hops no intra-provider matrix
/// captures. The table is explicit: a missing pair is the typed
/// [`ModelError::MissingInterProviderLatency`], never a silent 0 or a
/// silent reuse of the intra-provider matrix.
#[derive(Debug, Clone, Default)]
pub struct InterProviderLatency {
    entries: Vec<(Provider, Provider, f64)>,
}

impl InterProviderLatency {
    /// An empty table (every cross-provider lookup errors).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The default calibration: AWS ↔ GCP peer through public exchanges at
    /// roughly +4 ms one way.
    pub fn defaults() -> Self {
        Self::empty().with_pair(Provider::Aws, Provider::Gcp, 0.004)
    }

    /// Adds a symmetric penalty for a provider pair.
    pub fn with_pair(mut self, a: Provider, b: Provider, penalty_s: f64) -> Self {
        self.entries.push((a, b, penalty_s));
        self
    }

    /// The one-way penalty between two providers: 0 within one provider, a
    /// typed error for a pair the table does not cover.
    pub fn penalty_s(&self, from: Provider, to: Provider) -> Result<f64, ModelError> {
        if from == to {
            return Ok(0.0);
        }
        self.entries
            .iter()
            .find(|(a, b, _)| (*a == from && *b == to) || (*a == to && *b == from))
            .map(|(_, _, p)| *p)
            .ok_or(ModelError::MissingInterProviderLatency { from, to })
    }
}

/// Latency/bandwidth model between regions.
///
/// # Examples
///
/// ```
/// use caribou_model::region::RegionCatalog;
/// use caribou_simcloud::latency::LatencyModel;
///
/// let catalog = RegionCatalog::aws_default();
/// let model = LatencyModel::from_catalog(&catalog);
/// let east = catalog.id_of("us-east-1").unwrap();
/// let west = catalog.id_of("us-west-1").unwrap();
/// // Coast-to-coast RTT lands in the CloudPing ballpark.
/// assert!((0.04..0.09).contains(&model.rtt(east, west)));
/// ```
#[derive(Debug, Clone)]
pub struct LatencyModel {
    /// One-way base latency in seconds, `n × n` row-major.
    one_way: Vec<f64>,
    n: usize,
    /// Effective single-flow bandwidth within a region, bytes/second.
    pub intra_bandwidth_bps: f64,
    /// Effective single-flow bandwidth between regions, bytes/second.
    pub inter_bandwidth_bps: f64,
    /// Log-space sigma of multiplicative latency jitter.
    pub jitter_sigma: f64,
}

impl LatencyModel {
    /// Builds the model from a region catalog using the distance-based
    /// calibration.
    pub fn from_catalog(catalog: &RegionCatalog) -> Self {
        let n = catalog.len();
        let mut one_way = vec![0.0; n * n];
        for (a, _) in catalog.iter() {
            for (b, _) in catalog.iter() {
                let d = catalog.distance_km(a, b);
                let base = if a == b {
                    // Intra-region (cross-AZ) latency.
                    0.0005
                } else {
                    d / FIBER_KM_PER_S * ROUTE_FACTOR + HOP_OVERHEAD_S
                };
                one_way[a.index() * n + b.index()] = base;
            }
        }
        LatencyModel {
            one_way,
            n,
            intra_bandwidth_bps: 100.0e6,
            inter_bandwidth_bps: 30.0e6,
            jitter_sigma: 0.08,
        }
    }

    /// Builds the model from a multi-provider catalog: the distance-based
    /// calibration plus an explicit one-way penalty for every
    /// cross-provider pair. Fails with the typed
    /// [`ModelError::MissingInterProviderLatency`] when the table lacks a
    /// provider pair present in the catalog — cross-provider delivery must
    /// never silently reuse the intra-provider matrix.
    ///
    /// On a single-provider catalog no pair crosses providers, so the
    /// result is identical to [`LatencyModel::from_catalog`].
    pub fn from_catalog_with_providers(
        catalog: &RegionCatalog,
        penalties: &InterProviderLatency,
    ) -> Result<Self, ModelError> {
        let mut model = Self::from_catalog(catalog);
        let n = model.n;
        for (a, sa) in catalog.iter() {
            for (b, sb) in catalog.iter() {
                if sa.provider != sb.provider {
                    let penalty = penalties.penalty_s(sa.provider, sb.provider)?;
                    model.one_way[a.index() * n + b.index()] += penalty;
                }
            }
        }
        Ok(model)
    }

    /// Overrides the one-way base latency between a pair (both directions),
    /// e.g. to pin values to fresh CloudPing measurements.
    pub fn set_one_way(&mut self, a: RegionId, b: RegionId, seconds: f64) {
        self.one_way[a.index() * self.n + b.index()] = seconds;
        self.one_way[b.index() * self.n + a.index()] = seconds;
    }

    /// Base one-way latency in seconds.
    pub fn one_way(&self, from: RegionId, to: RegionId) -> f64 {
        self.one_way[from.index() * self.n + to.index()]
    }

    /// Base round-trip time in seconds.
    pub fn rtt(&self, a: RegionId, b: RegionId) -> f64 {
        self.one_way(a, b) + self.one_way(b, a)
    }

    /// Effective bandwidth for a flow between two regions, bytes/second.
    pub fn bandwidth_bps(&self, from: RegionId, to: RegionId) -> f64 {
        if from == to {
            self.intra_bandwidth_bps
        } else {
            self.inter_bandwidth_bps
        }
    }

    /// Expected (jitter-free) one-way transfer time for a payload.
    pub fn expected_transfer_seconds(&self, from: RegionId, to: RegionId, bytes: f64) -> f64 {
        self.one_way(from, to) + bytes.max(0.0) / self.bandwidth_bps(from, to)
    }

    /// Samples a one-way transfer time with multiplicative jitter.
    pub fn sample_transfer_seconds(
        &self,
        from: RegionId,
        to: RegionId,
        bytes: f64,
        rng: &mut Pcg32,
    ) -> f64 {
        let base = self.expected_transfer_seconds(from, to, bytes);
        base * rng.lognormal(0.0, self.jitter_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> (RegionCatalog, LatencyModel) {
        let cat = RegionCatalog::aws_default();
        let lm = LatencyModel::from_catalog(&cat);
        (cat, lm)
    }

    #[test]
    fn east_west_rtt_matches_cloudping_ballpark() {
        let (cat, lm) = model();
        let rtt = lm.rtt(
            cat.id_of("us-east-1").unwrap(),
            cat.id_of("us-west-1").unwrap(),
        );
        // CloudPing reports roughly 60-65 ms; accept a generous band.
        assert!((0.045..0.085).contains(&rtt), "rtt {rtt}");
    }

    #[test]
    fn intra_region_latency_small() {
        let (cat, lm) = model();
        let id = cat.id_of("us-east-1").unwrap();
        assert!(lm.rtt(id, id) < 0.005);
    }

    #[test]
    fn transfer_time_scales_with_bytes() {
        let (cat, lm) = model();
        let a = cat.id_of("us-east-1").unwrap();
        let b = cat.id_of("us-west-2").unwrap();
        let small = lm.expected_transfer_seconds(a, b, 1e3);
        let large = lm.expected_transfer_seconds(a, b, 1e8);
        assert!(large > small + 1.0, "small {small} large {large}");
    }

    #[test]
    fn sampled_transfer_jitters_around_expectation() {
        let (cat, lm) = model();
        let a = cat.id_of("us-east-1").unwrap();
        let b = cat.id_of("ca-central-1").unwrap();
        let expected = lm.expected_transfer_seconds(a, b, 1e6);
        let mut rng = Pcg32::seed(1);
        let n = 5000;
        let mean: f64 = (0..n)
            .map(|_| lm.sample_transfer_seconds(a, b, 1e6, &mut rng))
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean / expected - 1.0).abs() < 0.05,
            "mean {mean} expected {expected}"
        );
    }

    #[test]
    fn override_applies_symmetrically() {
        let (cat, mut lm) = model();
        let a = cat.id_of("us-east-1").unwrap();
        let b = cat.id_of("us-west-2").unwrap();
        lm.set_one_way(a, b, 0.1);
        assert_eq!(lm.one_way(a, b), 0.1);
        assert_eq!(lm.one_way(b, a), 0.1);
        assert_eq!(lm.rtt(a, b), 0.2);
    }

    #[test]
    fn cross_provider_pairs_pay_explicit_penalty() {
        let cat = RegionCatalog::multi_cloud();
        let plain = LatencyModel::from_catalog(&cat);
        let lm = LatencyModel::from_catalog_with_providers(&cat, &InterProviderLatency::defaults())
            .unwrap();
        let aws_east = cat.resolve("aws:us-east-1").unwrap();
        let aws_west = cat.resolve("aws:us-west-2").unwrap();
        let gcp_west = cat.resolve("gcp:us-west1").unwrap();
        // Intra-provider entries are untouched.
        assert_eq!(
            lm.one_way(aws_east, aws_west),
            plain.one_way(aws_east, aws_west)
        );
        // Cross-provider entries carry the penalty in both directions.
        assert!(
            (lm.one_way(aws_west, gcp_west) - plain.one_way(aws_west, gcp_west) - 0.004).abs()
                < 1e-12
        );
        assert!((lm.rtt(aws_west, gcp_west) - plain.rtt(aws_west, gcp_west) - 0.008).abs() < 1e-12);
    }

    #[test]
    fn missing_inter_provider_pair_is_a_typed_error() {
        let cat = RegionCatalog::multi_cloud();
        let err = LatencyModel::from_catalog_with_providers(&cat, &InterProviderLatency::empty())
            .unwrap_err();
        assert!(matches!(
            err,
            ModelError::MissingInterProviderLatency { .. }
        ));
        let table = InterProviderLatency::defaults();
        assert!(table.penalty_s(Provider::Aws, Provider::Azure).is_err());
        assert_eq!(table.penalty_s(Provider::Gcp, Provider::Gcp).unwrap(), 0.0);
        // Symmetric lookup.
        assert_eq!(
            table.penalty_s(Provider::Gcp, Provider::Aws).unwrap(),
            table.penalty_s(Provider::Aws, Provider::Gcp).unwrap()
        );
    }

    #[test]
    fn single_provider_catalog_identical_with_penalty_table() {
        let cat = RegionCatalog::aws_default();
        let plain = LatencyModel::from_catalog(&cat);
        let with =
            LatencyModel::from_catalog_with_providers(&cat, &InterProviderLatency::defaults())
                .unwrap();
        for (a, _) in cat.iter() {
            for (b, _) in cat.iter() {
                assert_eq!(plain.one_way(a, b), with.one_way(a, b));
            }
        }
    }

    #[test]
    fn symmetry_of_distance_model() {
        let (cat, lm) = model();
        for (a, _) in cat.iter() {
            for (b, _) in cat.iter() {
                assert!((lm.one_way(a, b) - lm.one_way(b, a)).abs() < 1e-12);
            }
        }
    }
}
